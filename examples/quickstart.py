"""Quickstart: Part-Wise Aggregation in five minutes.

Builds a small network, partitions it into connected parts, and asks every
part to agree on (a) its minimum node uid and (b) its size — the two most
common PA instances (leader election and counting).  Prints the metered
round/message cost and the constructed shortcut's quality.

Run:  python examples/quickstart.py
"""

from repro import MIN, SUM, solve_pa
from repro.graphs import random_connected, random_connected_partition


def main() -> None:
    # A connected "general" network of 80 nodes and a partition into 8
    # connected parts (imagine: racks in a data center, or sensor clusters).
    net = random_connected(80, 0.06, seed=7)
    partition = random_connected_partition(net, 8, seed=8)
    print(f"network: n={net.n}, m={net.m}, D~{net.diameter_estimate()}")
    print(f"partition: {partition.num_parts} connected parts, sizes "
          f"{[partition.size_of(p) for p in range(partition.num_parts)]}")

    # (a) every part elects its minimum-uid member.
    uids = [net.uid[v] for v in range(net.n)]
    election = solve_pa(net, partition, uids, MIN, seed=1)
    print("\nper-part minimum uid (a leader election):")
    for pid, value in sorted(election.aggregates.items()):
        print(f"  part {pid}: leader uid {value}")

    # (b) every part counts itself.
    counting = solve_pa(net, partition, [1] * net.n, SUM, seed=2)
    print("\nper-part sizes, as computed distributively:")
    for pid, value in sorted(counting.aggregates.items()):
        assert value == partition.size_of(pid)
        print(f"  part {pid}: {value} nodes")

    # Every node of a part knows its part's aggregate, not just the leader.
    v = partition.members[0][-1]
    print(f"\nnode {v} (an arbitrary member of part 0) learned: "
          f"{counting.value_at_node[v]}")

    b, c = counting.setup.quality()
    print(f"\nshortcut quality: block parameter b={b}, congestion c={c}")
    print(f"metered cost: {counting.rounds} rounds, "
          f"{counting.messages} messages (every phase on the ledger)")
    print("\ncost breakdown by phase:")
    for name, stats in sorted(counting.ledger.by_name().items()):
        print(f"  {name:40s} rounds={stats.rounds:6d} "
              f"messages={stats.messages:7d}")


if __name__ == "__main__":
    main()
