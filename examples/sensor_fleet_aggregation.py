"""Scenario: aggregating sensor readings over cluster territories.

A 2D sensor field (a planar grid) is organized into geographic clusters;
each cluster must learn the maximum reading among its sensors and how many
sensors it has — continuously, so the per-query cost matters.  This is
Part-Wise Aggregation on a planar graph, where the paper's shortcuts give
O~(D)-round, O~(m)-message queries (Table 2, "Planar" column), and where
the setup (division + shortcut construction) amortizes across queries.

Run:  python examples/sensor_fleet_aggregation.py
"""

import random

from repro import MAX, SUM, PASolver
from repro.graphs import bfs_ball_partition, grid_2d


def main() -> None:
    rows, cols = 8, 16
    net = grid_2d(rows, cols)
    clusters = bfs_ball_partition(net, target_size=12, seed=3)
    print(f"sensor field: {rows}x{cols} grid, "
          f"{clusters.num_parts} clusters")

    solver = PASolver(net, seed=4)
    setup = solver.prepare(clusters)
    b, c = setup.quality()
    print(f"one-time setup: shortcut b={b}, c={c}; "
          f"{setup.setup_ledger.rounds} rounds, "
          f"{setup.setup_ledger.messages} messages")

    rng = random.Random(5)
    readings = [rng.randint(0, 500) for _ in range(net.n)]

    # Query 1: max reading per cluster (setup charged once).
    hot = solver.solve(setup, readings, MAX)
    # Query 2..4: repeated queries reuse the setup for the PA-wave price.
    for query in range(3):
        readings = [max(0, r + rng.randint(-40, 40)) for r in readings]
        hot = solver.solve(setup, readings, MAX, charge_setup=False)
        print(f"query {query + 1}: per-query cost {hot.rounds} rounds, "
              f"{hot.messages} messages")

    counts = solver.solve(setup, [1] * net.n, SUM, charge_setup=False)
    print("\ncluster -> (max reading, sensors):")
    for pid in range(clusters.num_parts):
        print(f"  cluster {pid:2d}: ({hot.aggregates[pid]:3d}, "
              f"{counts.aggregates[pid]:2d})")

    # Every sensor knows its own cluster's values (e.g. for local alarms).
    v = clusters.members[0][0]
    assert hot.value_at_node[v] == hot.aggregates[clusters.part_of[v]]
    print(f"\nsensor {v} locally knows its cluster max: "
          f"{hot.value_at_node[v]}")


if __name__ == "__main__":
    main()
