"""Scenario: one PA service, three tenants, a graph that won't sit still.

The sensor field from examples/sensor_fleet_aggregation.py grows a
serving layer: an operations team wants the minimum battery level per
cluster, billing wants device counts, and a science team wants the top-2
readings — all at once, over the same clusters.  :class:`repro.PAService`
packs their concurrent queries into one shared wave (one broadcast /
reversal / replay instead of three), and when a maintenance crew strings
a new cable or a cluster is split for load, the service absorbs the
change incrementally instead of rebuilding the paper's whole Theorem 1.2
pipeline.

Run:  python examples/multi_tenant_service.py
"""

import random

from repro import PAService
from repro.graphs import bfs_ball_partition, grid_2d
from repro.graphs.partitions import Partition
from repro.service import min_query, sum_query, top_k_query


def main() -> None:
    rows, cols = 8, 16
    net = grid_2d(rows, cols)
    clusters = bfs_ball_partition(net, target_size=12, seed=3)
    rng = random.Random(5)

    with PAService(net, clusters, seed=4, max_batch=3) as svc:
        print(f"service up: {rows}x{cols} grid, "
              f"{clusters.num_parts} clusters, max_batch=3")

        # Epoch 1: three tenants submit; the third submit fills the
        # micro-batch and the wave runs across all of them at once.
        battery = [rng.randint(0, 100) for _ in range(net.n)]
        readings = [rng.randint(0, 500) for _ in range(net.n)]
        q_ops = svc.submit("ops", min_query(battery))
        q_bill = svc.submit("billing", sum_query([1] * net.n))
        q_sci = svc.submit("science", top_k_query(readings, 2))

        ops = svc.result(q_ops)
        print(f"\nwave {ops.wave}: {svc.stats.batched_queries} queries "
              f"shared {ops.rounds} rounds / {ops.messages} messages")
        worst = min(ops.aggregates, key=ops.aggregates.get)
        print(f"  ops: cluster {worst} lowest battery "
              f"({ops.aggregates[worst]}%)")
        print(f"  billing: {sum(svc.result(q_bill).aggregates.values())} "
              f"devices metered")
        print(f"  science: cluster 0 top-2 readings "
              f"{svc.result(q_sci).aggregates[0]}")

        # Shared-cost attribution: every tenant in the wave carries its
        # full ledger on its own obs stream.
        for name in svc.tenants:
            ledger = svc.tenant_ledger(name)
            print(f"  {ledger.stream}: {ledger.rounds} rounds attributed")

        # Epoch 2: maintenance strings a diagonal cable.  The session
        # rebinds the standing machinery (the BFS tree survives), so the
        # next wave is served from a repaired setup, not a fresh prepare.
        chord = next(
            (u, v) for u in range(net.n) for v in range(u + 2, net.n)
            if not net.has_edge(u, v)
        )
        report = svc.update_edges(add=[chord])
        print(f"\ncable {chord} added: "
              f"{'repaired' if report.repaired else 'rebuilt'}")

        # Epoch 3: cluster 0 is split for load (a BFS-leaf peel keeps
        # both halves connected) — a split-only refinement.
        members = sorted(clusters.members[0])
        part_of = list(clusters.part_of)
        part_of[members[-1]] = clusters.num_parts
        svc.update_partition(Partition(part_of))
        q2 = svc.submit("ops", min_query(battery))
        svc.flush()
        print(f"cluster 0 split: now "
              f"{len(svc.result(q2).aggregates)} clusters served")

        stats = svc.session_stats()
        print(f"\nsession: {stats['prepares']} full prepare(s), "
              f"{stats['cache_hits']} cache hits, "
              f"{stats['refinements']} refinement(s), "
              f"{stats['repairs']} repair(s)")
        print(f"service ledger: {svc.ledger.rounds} rounds, "
              f"{svc.ledger.messages} messages (ground truth)")


if __name__ == "__main__":
    main()
