"""Scenario: backbone planning on a road-like planar network.

A municipality wants a minimum-cost backbone (MST) over a planar road
grid, computed *by the network itself* (Corollary 1.3), and compares the
paper's PA-based Boruvka against a GHS-style baseline: the baseline is
message-frugal but pays rounds proportional to fragment diameters, which
on elongated road networks is the whole map.

Run:  python examples/planar_road_network_mst.py
"""

from repro.algorithms import minimum_spanning_tree
from repro.analysis import kruskal_mst, mst_weight
from repro.baselines import ghs_mst
from repro.graphs import grid_2d, with_random_weights


def main() -> None:
    # An elongated road grid: 3 avenues x 35 blocks, costs = road lengths.
    net = with_random_weights(grid_2d(3, 35), max_weight=90, seed=11)
    print(f"road network: n={net.n}, m={net.m}, "
          f"D={net.exact_diameter()}")

    ours = minimum_spanning_tree(net, seed=12)
    baseline = ghs_mst(net, seed=13)
    reference = kruskal_mst(net)

    assert mst_weight(net, set(ours.output)) == mst_weight(net, reference)
    assert mst_weight(net, set(baseline.output)) == mst_weight(net, reference)
    print(f"backbone cost: {mst_weight(net, set(ours.output))} "
          f"(verified against Kruskal)")

    print("\n                     rounds    messages")
    print(f"PA-based MST (ours) {ours.rounds:8d} {ours.messages:10d}")
    print(f"GHS-style baseline  {baseline.rounds:8d} {baseline.messages:10d}")
    print("\nThe baseline's fragments become ~map-length chains, so its")
    print("round count tracks n; the PA version routes fragment traffic")
    print("through low-congestion shortcuts instead (Corollary 1.3).")


if __name__ == "__main__":
    main()
