"""Scenario: self-diagnosing overlay network.

An overlay maintains a spanning tree H and needs to verify, in-band, that
H is still a spanning tree after churn; locate the network's weak point
(approximate min cut); and give every node a distance estimate to the
control node (approximate SSSP).  All three are Corollary applications of
Part-Wise Aggregation (A.1, 1.4, 1.5).

Run:  python examples/network_diagnostics.py
"""

from repro.algorithms import (
    approx_min_cut,
    approx_sssp,
    verify_spanning_tree,
)
from repro.analysis import dijkstra, kruskal_mst, stoer_wagner_min_cut
from repro.graphs import random_connected, with_random_weights


def main() -> None:
    net = with_random_weights(random_connected(50, 0.07, seed=21), seed=22)
    print(f"overlay: n={net.n}, m={net.m}")

    # 1. Spanning tree verification (Corollary A.1).
    tree = list(kruskal_mst(net))
    ok = verify_spanning_tree(net, tree, seed=23)
    broken = verify_spanning_tree(net, tree[:-2], seed=24)
    print(f"\nspanning-tree check (intact):  {ok.output} "
          f"[{ok.rounds} rounds, {ok.messages} messages]")
    print(f"spanning-tree check (2 links down): {broken.output}")

    # 2. Weak point: approximate min cut (Corollary 1.4).
    cut = approx_min_cut(net, epsilon=0.8, seed=25, max_trees=4)
    exact = stoer_wagner_min_cut(net)
    value, side = cut.output
    print(f"\nmin-cut estimate: {value} (exact {exact}); "
          f"{sum(side)} nodes on the small side")

    # 3. Distances to the control node (Corollary 1.5).
    control = 0
    est = approx_sssp(net, control, beta=0.15, seed=26)
    truth = dijkstra(net, control)
    worst = max(
        est.output[v] / truth[v] for v in range(1, net.n) if truth[v]
    )
    print(f"\nSSSP estimates from node {control}: worst stretch "
          f"{worst:.3f} over {net.n - 1} nodes "
          f"[{est.rounds} rounds, {est.messages} messages]")


if __name__ == "__main__":
    main()
