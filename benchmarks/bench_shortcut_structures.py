"""E11 + E13 (Figures 1, 3, 4): structural reproductions.

Figure 1: a T-restricted shortcut instance with congestion 3 and block
parameter 2 — rebuilt and measured exactly.  Figures 3/4: sub-part
divisions with O~(|P|/D) sub-parts of O(D) depth, and the wave activating
each block/sub-part once (message counts stay linear-ish).
"""

import math
import random

from repro.bench import print_table, record, run_once
from repro.congest import CostLedger, Engine
from repro.core import (
    PASolver,
    SUM,
    build_subpart_division_randomized,
)
from repro.graphs import Partition, grid_2d


def test_figure1_quantities(benchmark):
    from repro.core import ROOT, RootedForest, Shortcut
    from repro.graphs import path_graph

    def experiment():
        net = path_graph(12)
        tree = RootedForest(net, [ROOT] + list(range(11)))
        part = Partition([0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3])
        up = [set() for _ in range(12)]
        up[4], up[5] = {1, 2, 3}, {1}
        up[7], up[8] = {2}, {2}
        up[9], up[10], up[11] = {3}, {3}, {3}
        sc = Shortcut(tree, part, up)
        print_table(
            "Figure 1: reconstructed instance",
            ["quantity", "value"],
            [("congestion c", sc.congestion()),
             ("block parameter b", sc.max_block_parameter()),
             ("parts", part.num_parts)],
        )
        return sc.quality()

    b, c = run_once(benchmark, experiment)
    assert (b, c) == (2, 3)
    record(benchmark, b=b, c=c)


def test_figure34_division_structure(benchmark):
    rows, cols = 4, 30
    net = grid_2d(rows, cols)
    part = Partition([r for r in range(rows) for _ in range(cols)])
    diameter = 10

    def experiment():
        engine = Engine(net)
        ledger = CostLedger()
        leaders = [min(m, key=lambda v: net.uid[v]) for m in part.members]
        division = build_subpart_division_randomized(
            engine, net, part, leaders, diameter, ledger, random.Random(36)
        )
        cost = (ledger.rounds, ledger.messages)
        out = []
        for pid in range(part.num_parts):
            count = len(division.subparts_of_part(pid))
            bound = math.ceil(
                8 * part.size_of(pid) / diameter * math.log(net.n)
            )
            out.append((pid, part.size_of(pid), count, bound))
        print_table(
            "Figures 3/4: sub-part division structure",
            ["part", "size", "sub-parts", "O~(|P|/D) bound"],
            out,
        )
        return division, out, cost

    division, out, cost = run_once(benchmark, experiment)
    assert division.max_subpart_depth() <= 2 * diameter
    for _pid, _size, count, bound in out:
        assert count <= bound
    record(benchmark, max_depth=division.max_subpart_depth(),
           rounds=cost[0], messages=cost[1])
