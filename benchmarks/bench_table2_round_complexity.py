"""E3 (Table 2): PA round complexity per family, deterministic vs randomized.

Paper claim (Table 2): per-family runtimes O~(D) for planar/pathwidth-like
families, O~(D + sqrt n) in general; randomized O~(bD + c) at most the
deterministic O~(b(D + c)).
"""

from repro.analysis import TABLE2_DETERMINISTIC, TABLE2_RANDOMIZED
from repro.bench import print_table, record, run_once
from repro.core import DETERMINISTIC, RANDOMIZED, SUM, PASolver
from repro.families import provider_for
from repro.graphs import (
    grid_2d,
    ladder,
    random_connected_partition,
    random_regular_ish,
    torus_2d,
)

FAMILIES = {
    "general": lambda: random_regular_ish(64, 5, seed=7),
    "planar": lambda: grid_2d(4, 14),
    "genus": lambda: torus_2d(4, 10),
    "pathwidth": lambda: ladder(24),
}

#: Canonical family parameter of each workload above (genus of the torus,
#: pathwidth of the ladder); the registry's defaults cover the rest.
FAMILY_PARAMS = {"genus": 1, "pathwidth": 2}


def _solve(net, part, mode, provider=None):
    solver = PASolver(net, mode=mode, seed=8)
    setup = solver.prepare(part, shortcut_provider=provider)
    result = solver.solve(setup, [1] * net.n, SUM, charge_setup=False)
    return result


def test_table2_round_complexity(benchmark):
    def experiment():
        rows = []
        data = {}
        for family, make in FAMILIES.items():
            net = make()
            part = random_connected_partition(net, max(2, net.n // 12), seed=9)
            det = _solve(net, part, DETERMINISTIC)
            rand = _solve(net, part, RANDOMIZED)
            # The family-aware construction (repro.families registry) on
            # the same instance, randomized mode — the provider Table 2's
            # per-family bounds actually describe.  claim_small drops the
            # parts-below-D exemption: at these reproduction sizes every
            # part fits inside D, so without it the family column would
            # silently measure an empty shortcut identical to the rand
            # column.
            fam = _solve(
                net, part, RANDOMIZED,
                provider=provider_for(
                    family, param=FAMILY_PARAMS.get(family), claim_small=True
                ),
            )
            d = net.diameter_estimate()
            data[family] = (det.rounds, rand.rounds, d, net.n,
                            det.messages, fam.rounds)
            rows.append(
                (
                    family, net.n, d,
                    det.rounds, TABLE2_DETERMINISTIC[family],
                    rand.rounds, TABLE2_RANDOMIZED[family],
                    fam.rounds,
                )
            )
        print_table(
            "Table 2: PA solve rounds (excluding setup), det vs randomized",
            ["family", "n", "D", "det rounds", "det bound",
             "rand rounds", "rand bound", "family-provider rounds"],
            rows,
        )
        return data

    data = run_once(benchmark, experiment)
    import math

    for family, (det_rounds, rand_rounds, d, n, _msgs, fam_rounds) in data.items():
        envelope = (d + math.sqrt(n)) * math.log2(n) ** 2
        assert det_rounds <= 40 * envelope, family
        assert rand_rounds <= 40 * envelope, family
        assert fam_rounds <= 40 * envelope, family
        record(benchmark, **{f"{family}_det": det_rounds,
                             f"{family}_rand": rand_rounds,
                             f"{family}_provider": fam_rounds})
    record(benchmark, rounds=data["general"][0], messages=data["general"][4])
