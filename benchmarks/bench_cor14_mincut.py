"""E6 (Corollary 1.4): approximate min-cut quality and eps scaling.

Paper claim: (1+eps)-approximation with cost scaling poly(1/eps).  We
plant a known min cut, sweep eps, and report the measured approximation
ratio and the packed-tree count (the poly(1/eps) driver).
"""

from repro.algorithms import approx_min_cut
from repro.analysis import stoer_wagner_min_cut
from repro.bench import print_table, record, run_once
from repro.graphs import cut_weight, grid_2d, with_planted_cut


def test_mincut_eps_sweep(benchmark):
    base = grid_2d(3, 10)
    side = {r * 10 + c for r in range(3) for c in range(5)}
    net = with_planted_cut(base, side, cut_weight_each=1, bulk_weight=200)
    exact = stoer_wagner_min_cut(net)

    def experiment():
        rows = []
        ratios = {}
        for eps in (1.0, 0.6, 0.35):
            run = approx_min_cut(net, epsilon=eps, seed=19, max_trees=6)
            value, side_bits = run.output
            realized = cut_weight(
                net, {v for v in range(net.n) if side_bits[v] == 1}
            )
            assert realized == value
            ratios[eps] = (value / exact, run.meta["trees_packed"],
                           run.rounds, run.messages)
            rows.append(
                (eps, exact, value, f"{value / exact:.3f}",
                 run.meta["trees_packed"], run.rounds, run.messages)
            )
        print_table(
            "Corollary 1.4: min-cut approximation vs eps",
            ["eps", "exact", "found", "ratio", "trees packed",
             "rounds", "messages"],
            rows,
        )
        return ratios

    ratios = run_once(benchmark, experiment)
    for eps, (ratio, trees, _r, _m) in ratios.items():
        assert ratio <= 1.0 + eps + 1e-9
    # Cost grows as eps shrinks (the poly(1/eps) shape).
    assert ratios[0.35][1] >= ratios[1.0][1]
    assert ratios[0.35][3] >= ratios[1.0][3]
    record(benchmark, ratios={str(k): v[0] for k, v in ratios.items()},
           rounds=ratios[0.35][2], messages=ratios[0.35][3])
