"""E-async (PR 5): rounds / messages / time-units across delivery schedules.

The asynchronous engine runs the unmodified Theorem 1.2 pipeline behind
an alpha-synchronizer, so three quantities separate cleanly per
schedule:

* **model rounds / messages** — the main-ledger cost, which is
  schedule-invariant (the headline metrics; under the delay-0 schedule
  they are bit-for-bit the synchronous engine's, which is what the
  regression gate pins);
* **time-units** — the virtual-clock makespan, which stretches with the
  schedule's delays (×~3 at delay-0: the synchronizer's three-slot
  pulse frame, then growing with random and adversarial slow-edge
  delays);
* **synchronizer control messages** — acks + safe waves, the classic
  ~2m-per-pulse alpha-synchronizer tax that message-frugal algorithms
  keep small relative to *payloads carried*.

``max pulse skew`` witnesses genuine out-of-order execution: 0 in
lockstep, > 0 whenever delays are heterogeneous.

Workloads: one PA solve (grid, BFS-ball parts) and one full MST
(random graph), each under four schedules.  Graphs stay sub-100-node —
the event-driven simulation pays O(m log m) per pulse for the safe
waves, and the *model* numbers these tables pin do not change with n.
"""

from repro.algorithms import minimum_spanning_tree
from repro.analysis import kruskal_mst
from repro.bench import print_table, record, run_once
from repro.congest import make_schedule
from repro.core import SUM, solve_pa
from repro.graphs import (
    bfs_ball_partition,
    grid_2d,
    random_connected,
    with_distinct_weights,
)

#: (label, schedule factory) — seeded replayably, one instance per run.
SCHEDULES = [
    ("sync (delay-0)", lambda: make_schedule("sync")),
    ("random d<=4", lambda: make_schedule("random", seed=5, max_delay=4)),
    ("slow-edge 25%/d8", lambda: make_schedule(
        "slow-edge", seed=9, slow_fraction=0.25, slow_delay=8)),
    ("fifo d<=4", lambda: make_schedule("fifo", seed=5, max_delay=4)),
]


def _overhead_totals(session):
    ledger = session.async_overhead
    time_units = sum(p.rounds for p in ledger.phases())
    control = sum(p.messages for p in ledger.phases())
    max_skew = max(
        (o.max_skew for o in session.solver.engine.overhead_log), default=0
    )
    return time_units, control, max_skew


def test_pa_schedules(benchmark):
    """One PA solve under every schedule: invariant model, measured tax."""
    from repro import PASession

    net = grid_2d(8, 8)
    partition = bfs_ball_partition(net, target_size=12, seed=3)
    values = [(v * 5 + 1) % 31 for v in range(net.n)]

    def experiment():
        rows = []
        data = {}
        sync = solve_pa(net, partition, values, SUM, seed=7)
        rows.append(
            ("synchronous engine", sync.rounds, sync.messages, "-", "-", "-")
        )
        for label, make in SCHEDULES:
            session = PASession(net, seed=7, schedule=make())
            setup = session.prepare(partition)
            res = session.solve(setup, values, SUM)
            res.ledger.merge(session.tree_ledger, prefix="tree:")
            assert res.aggregates == sync.aggregates
            time_units, control, skew = _overhead_totals(session)
            if label.startswith("sync"):
                assert (res.rounds, res.messages) == (sync.rounds, sync.messages)
                assert skew == 0
                data.update(
                    rounds=res.rounds, messages=res.messages,
                    time_units_delay0=time_units,
                    control_messages_delay0=control,
                )
            data["max_skew"] = max(data.get("max_skew", 0), skew)
            data["fast_forward_jumps"] = (
                data.get("fast_forward_jumps", 0)
                + session.solver.engine.fast_forward_jumps
            )
            rows.append(
                (label, res.rounds, res.messages, time_units, control, skew)
            )
        data["rows"] = rows
        return data

    data = run_once(benchmark, experiment)
    print_table(
        "E-async/PA: 8x8 grid, BFS-ball parts, one SUM per schedule",
        ["schedule", "rounds", "messages", "time-units", "ctrl msgs",
         "max skew"],
        data["rows"],
    )
    record(
        benchmark, rounds=data["rounds"], messages=data["messages"],
        time_units_delay0=data["time_units_delay0"],
        control_messages_delay0=data["control_messages_delay0"],
        max_skew=data["max_skew"],
        fast_forward_jumps=data["fast_forward_jumps"],
    )


def test_mst_schedules(benchmark):
    """Full Boruvka MST under every schedule: same tree, same ledger."""
    net = with_distinct_weights(random_connected(48, 0.07, seed=12), seed=4)
    oracle = frozenset(kruskal_mst(net))

    def experiment():
        rows = []
        data = {}
        sync = minimum_spanning_tree(net, seed=3)
        assert sync.output == oracle
        rows.append(
            ("synchronous engine", sync.rounds, sync.messages, "-", "-", "-")
        )
        for label, make in SCHEDULES:
            from repro import PASession

            session = PASession(net, seed=3, schedule=make())
            res = minimum_spanning_tree(net, seed=3, session=session)
            assert res.output == oracle
            time_units, control, skew = _overhead_totals(session)
            if label.startswith("sync"):
                assert (res.rounds, res.messages) == (sync.rounds, sync.messages)
                data.update(
                    rounds=res.rounds, messages=res.messages,
                    time_units_delay0=time_units,
                    control_messages_delay0=control,
                )
            data["max_skew"] = max(data.get("max_skew", 0), skew)
            data["fast_forward_jumps"] = (
                data.get("fast_forward_jumps", 0)
                + session.solver.engine.fast_forward_jumps
            )
            rows.append(
                (label, res.rounds, res.messages, time_units, control, skew)
            )
        data["rows"] = rows
        return data

    data = run_once(benchmark, experiment)
    print_table(
        "E-async/MST: n=48 random graph, Boruvka over PA per schedule",
        ["schedule", "rounds", "messages", "time-units", "ctrl msgs",
         "max skew"],
        data["rows"],
    )
    record(
        benchmark, rounds=data["rounds"], messages=data["messages"],
        time_units_delay0=data["time_units_delay0"],
        control_messages_delay0=data["control_messages_delay0"],
        max_skew=data["max_skew"],
        fast_forward_jumps=data["fast_forward_jumps"],
    )
