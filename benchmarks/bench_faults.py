"""E-faults (PR 7): self-healing PA/MST under k seeded crashes.

The recovery driver's contract mirrors the synchronizer-tax rule: the
**main ledger carries exactly the fault-free cost** — at k=0 it is
bit-for-bit the plain async run (asserted here, every run) — while
everything recovery-specific (heartbeat windows, tainted attempts,
Algorithm 9 re-elections) lands on the separate ``recovery_overhead``
ledger.  These tables sweep k ∈ {0, 1, 2, 4} crash-recover faults from
one seeded :class:`~repro.congest.FaultPlan` per k and tabulate both
ledgers side by side: the headline (gated) metrics are the k=0 main
ledger, which must never move; the recovery columns show the tax
growing with k while the *output stays exact* (PA aggregates equal the
fault-free run's, MST equals Kruskal — asserted every run too).
"""

from repro.algorithms import minimum_spanning_tree
from repro.analysis import kruskal_mst
from repro.bench import print_table, record, run_once
from repro.congest import FaultPlan
from repro.core import SUM, solve_pa
from repro.graphs import (
    random_connected,
    random_connected_partition,
    with_distinct_weights,
)
from repro.runtime import RecoveryDriver

#: Crash counts swept per workload (k=0 is the bit-for-bit gate).
CRASH_COUNTS = (0, 1, 2, 4)
FAULT_SEED = 20260808


def _plan(k: int, n: int) -> FaultPlan:
    if k == 0:
        return FaultPlan()
    return FaultPlan.seeded(
        FAULT_SEED + k, n, crashes=k, recover=True,
        crash_window=(3, 30), outage=(10, 35),
    )


def _ledger_totals(ledger):
    return (
        sum(p.rounds for p in ledger.phases()),
        sum(p.messages for p in ledger.phases()),
    )


def _phase_log(ledger):
    return [(p.name, p.rounds, p.messages, p.ticks) for p in ledger.phases()]


def test_pa_crash_recovery(benchmark):
    """PA with k crash-recover faults: exact output, segregated tax."""
    net = random_connected(40, 0.1, seed=17)
    partition = random_connected_partition(net, 6, seed=17)
    values = [(v * 5 + 1) % 31 for v in range(net.n)]

    def experiment():
        rows = []
        data = {}
        ref = solve_pa(net, partition, values, SUM, seed=7, async_mode=True)
        for k in CRASH_COUNTS:
            driver = RecoveryDriver(net, faults=_plan(k, net.n), seed=7)
            res = driver.solve_pa(partition, values, SUM)
            assert res.aggregates == ref.aggregates
            assert res.value_at_node == ref.value_at_node
            if k == 0:
                # The no-fault path is the plain async run, to the bit.
                assert _phase_log(res.ledger) == _phase_log(ref.ledger)
                assert driver.stats.attempts == 1
                assert driver.recovery_overhead.phases() == ()
                data.update(rounds=res.rounds, messages=res.messages)
            rec_rounds, rec_msgs = _ledger_totals(driver.recovery_overhead)
            if k == max(CRASH_COUNTS):
                data.update(
                    attempts=driver.stats.attempts,
                    heartbeat_windows=driver.stats.heartbeat_windows,
                    reelections=driver.stats.reelections,
                    recovery_rounds=rec_rounds,
                    recovery_messages=rec_msgs,
                    fast_forward_jumps=driver.engine.fast_forward_jumps,
                )
            rows.append((
                f"k={k}", driver.stats.attempts,
                driver.stats.heartbeat_windows, driver.stats.reelections,
                res.rounds, res.messages, rec_rounds, rec_msgs,
            ))
        data["rows"] = rows
        return data

    data = run_once(benchmark, experiment)
    print_table(
        "E-faults/PA: n=40 random graph, k seeded crash-recover faults",
        ["crashes", "attempts", "hb windows", "re-elections",
         "main rounds", "main msgs", "recovery rounds", "recovery msgs"],
        data["rows"],
    )
    record(
        benchmark, rounds=data["rounds"], messages=data["messages"],
        attempts=data["attempts"],
        heartbeat_windows=data["heartbeat_windows"],
        reelections=data["reelections"],
        recovery_rounds=data["recovery_rounds"],
        recovery_messages=data["recovery_messages"],
        fast_forward_jumps=data["fast_forward_jumps"],
    )


def test_mst_crash_recovery(benchmark):
    """MST with k crash-recover faults: exact tree, segregated tax."""
    net = with_distinct_weights(random_connected(36, 0.1, seed=23), seed=6)
    oracle = frozenset(kruskal_mst(net))

    def experiment():
        rows = []
        data = {}
        ref = minimum_spanning_tree(net, seed=3, async_mode=True)
        assert ref.output == oracle
        for k in CRASH_COUNTS:
            driver = RecoveryDriver(net, faults=_plan(k, net.n), seed=3)
            res = driver.minimum_spanning_tree()
            assert res.output == oracle
            if k == 0:
                assert _phase_log(res.ledger) == _phase_log(ref.ledger)
                assert driver.stats.attempts == 1
                assert driver.recovery_overhead.phases() == ()
                data.update(rounds=res.rounds, messages=res.messages)
            rec_rounds, rec_msgs = _ledger_totals(driver.recovery_overhead)
            if k == max(CRASH_COUNTS):
                data.update(
                    attempts=driver.stats.attempts,
                    heartbeat_windows=driver.stats.heartbeat_windows,
                    reelections=driver.stats.reelections,
                    recovery_rounds=rec_rounds,
                    recovery_messages=rec_msgs,
                    fast_forward_jumps=driver.engine.fast_forward_jumps,
                )
            rows.append((
                f"k={k}", driver.stats.attempts,
                driver.stats.heartbeat_windows, driver.stats.reelections,
                res.rounds, res.messages, rec_rounds, rec_msgs,
            ))
        data["rows"] = rows
        return data

    data = run_once(benchmark, experiment)
    print_table(
        "E-faults/MST: n=36 random graph, k seeded crash-recover faults",
        ["crashes", "attempts", "hb windows", "re-elections",
         "main rounds", "main msgs", "recovery rounds", "recovery msgs"],
        data["rows"],
    )
    record(
        benchmark, rounds=data["rounds"], messages=data["messages"],
        attempts=data["attempts"],
        heartbeat_windows=data["heartbeat_windows"],
        reelections=data["reelections"],
        recovery_rounds=data["recovery_rounds"],
        recovery_messages=data["recovery_messages"],
        fast_forward_jumps=data["fast_forward_jumps"],
    )
