"""E8 (Corollary A.1): the verification suite at PA-dominated cost.

Paper claim: every Das Sarma et al. verification problem is solvable in
O~(D + sqrt n) rounds and O~(m) messages once PA is.  We run the whole
suite on one workload and report each verifier's cost next to the cost of
its underlying CC-labeling PA call.
"""

import math

from repro.algorithms import (
    verify_bipartiteness,
    verify_connectivity,
    verify_cut,
    verify_cycle_containment,
    verify_spanning_tree,
    verify_st_connectivity,
)
from repro.analysis import kruskal_mst
from repro.bench import print_table, record, run_once
from repro.graphs import random_connected, with_distinct_weights


def test_verification_suite(benchmark):
    net = with_distinct_weights(random_connected(60, 0.06, seed=23), seed=24)
    tree = list(kruskal_mst(net))
    half = tree[: len(tree) // 2]

    def experiment():
        runs = {
            "connectivity(T)": verify_connectivity(net, tree, seed=25),
            "connectivity(half)": verify_connectivity(net, half, seed=26),
            "s-t connectivity": verify_st_connectivity(net, half, 0, 1, seed=27),
            "spanning tree": verify_spanning_tree(net, tree, seed=28),
            "cycle containment": verify_cycle_containment(
                net, list(net.edges), seed=29
            ),
            "cut": verify_cut(net, tree[:2], seed=30),
            "bipartiteness(T)": verify_bipartiteness(net, tree, seed=31),
        }
        rows = [
            (name, run.output, run.rounds, run.messages)
            for name, run in runs.items()
        ]
        print_table(
            "Corollary A.1: verification problems (all PA-dominated)",
            ["problem", "verdict", "rounds", "messages"],
            rows,
        )
        return runs

    runs = run_once(benchmark, experiment)
    assert runs["connectivity(T)"].output is True
    assert runs["connectivity(half)"].output is False
    assert runs["spanning tree"].output is True
    assert runs["cycle containment"].output is True
    assert runs["bipartiteness(T)"].output is True
    envelope = (net.diameter_estimate() + math.sqrt(net.n)) * math.log2(net.n) ** 2
    for name, run in runs.items():
        if "bipartite" not in name:  # documented deviation: H-diameter term
            assert run.rounds <= 60 * envelope, name
    record(benchmark,
           rounds_by_problem={k: v.rounds for k, v in runs.items()},
           rounds=runs["connectivity(T)"].rounds,
           messages=runs["connectivity(T)"].messages)
