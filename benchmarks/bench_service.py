"""PR10: PA-as-a-service — throughput under graph churn, repair parity.

Three claims about the :mod:`repro.service` layer:

1. **Batching wins the round economy.**  The same query stream served
   with ``max_batch=4`` (cross-tenant micro-batching) costs strictly
   fewer metered rounds AND messages than ``max_batch=1`` (sequential
   per-query waves), with bit-identical answers.

2. **Throughput degrades gracefully with churn.**  Queries/sec is
   measured against the graph-update rate (0 / 0.25 / 0.5 updates per
   wave); the session absorbs the churn incrementally — the
   ``SessionStats`` hit rates show coarsen/refine/repair doing the work
   instead of full prepares.  Walls are reported, never gated.

3. **Repairs reproduce full prepares.**  An edge-delete repair (tree
   preserved, so the verified budget is trivially intact) serves the
   next wave with a ledger *bit-for-bit equal* to a fresh full prepare
   on the updated graph; and when a split-part refinement blows the PA
   budget, the counted fallback's rebuild ledger equals a direct full
   prepare's bit for bit.

The scenario is the sensor-fleet one from examples/: a 2D sensor grid in
geographic clusters, three tenants (ops / billing / science) streaming
min/sum/top-k queries while chords appear and disappear and clusters
merge and re-split.  Headline rounds/messages are deterministic and
regression-gated; queries/sec is a hardware fact.
"""

from __future__ import annotations

import random
import time

from repro import PASession
from repro.bench import print_table, record, run_once
from repro.core import MIN
from repro.graphs import bfs_ball_partition, grid_2d
from repro.graphs.partitions import Partition
from repro.service import PAService, min_query, sum_query, top_k_query
from repro.runtime.session import PASession as _PASession

ROWS, COLS = 12, 20
CLUSTER = 24
TENANTS = ("ops", "billing", "science")
WAVES = 12           # flushes per run
BATCH = 4            # queries per wave (one per tenant + one extra)
UPDATE_RATES = (0.0, 0.25, 0.5)


def _scenario():
    net = grid_2d(ROWS, COLS)
    partition = bfs_ball_partition(net, CLUSTER, seed=3)
    return net, partition


def _query_stream(net, rng):
    """One wave's worth of queries: every tenant asks, ops asks twice."""
    readings = [rng.randint(0, 500) for _ in range(net.n)]
    return [
        ("ops", min_query(readings)),
        ("billing", sum_query([1] * net.n)),
        ("science", top_k_query(readings, 2)),
        ("ops", min_query([r + 1 for r in readings])),
    ]


def _split_cluster(net, partition, pid):
    """Peel a BFS-tree leaf off cluster ``pid`` (both halves connected)."""
    from collections import deque

    members = set(partition.members[pid])
    if len(members) < 2:
        return None
    start = min(members)
    order, seen, queue = [start], {start}, deque([start])
    while queue:
        u = queue.popleft()
        for nb in net.neighbors[u]:
            if nb in members and nb not in seen:
                seen.add(nb)
                order.append(nb)
                queue.append(nb)
    part_of = list(partition.part_of)
    part_of[order[-1]] = partition.num_parts
    return Partition(part_of)


def _chord(net, rng, present):
    """A random absent grid chord (or a present one to delete)."""
    nodes = list(range(net.n))
    while True:
        u, v = rng.sample(nodes, 2)
        e = (min(u, v), max(u, v))
        if present:
            return e
        if not net.has_edge(u, v):
            return e


def _serve(update_rate, max_batch, seed=7):
    """Run the fixed stream; returns (service, wall_seconds, queries)."""
    net, partition = _scenario()
    rng = random.Random(seed)
    svc = PAService(net, partition, seed=17, max_batch=max_batch)
    chords = []
    queries = 0
    t0 = time.perf_counter()
    for wave in range(WAVES):
        for tenant, query in _query_stream(svc.net, rng):
            svc.submit(tenant, query)
            queries += 1
        svc.flush()
        if rng.random() < update_rate:
            if rng.random() < 0.5 or not chords:
                # Edge churn: add a chord, or delete one added earlier
                # (added chords never join the BFS tree, so deleting one
                # is always a tree-preserving repair).
                if chords and rng.random() < 0.5:
                    svc.update_edges(remove=[chords.pop()])
                else:
                    e = _chord(svc.net, rng, present=False)
                    svc.update_edges(add=[e])
                    chords.append(e)
            elif rng.random() < 0.5:
                # Partition churn, splits: peel a leaf off a rotating
                # cluster — a split-only refinement each epoch (novel
                # fingerprint, so never a cache hit) — then coarsen back.
                split = _split_cluster(
                    svc.net, partition, wave % partition.num_parts
                )
                if split is not None:
                    svc.update_partition(split)
                    svc.update_partition(partition)
            else:
                # Partition churn, merges: collapse all clusters, then
                # re-split — a merge-only coarsening followed by a
                # cached (or refined) return to the base clustering.
                svc.update_partition(Partition([0] * svc.net.n))
                svc.update_partition(partition)
    wall = time.perf_counter() - t0
    svc.close()
    return svc, wall, queries


def test_service_throughput_vs_update_rate(benchmark):
    """Queries/sec against churn; batching beats sequential serving."""

    def experiment():
        rows = []
        data = {}
        for rate in UPDATE_RATES:
            svc, wall, queries = _serve(rate, BATCH)
            stats = svc.session_stats()
            incremental = (
                stats["cache_hits"] + stats["coarsenings"]
                + stats["refinements"] + stats["repairs"]
            )
            rows.append((
                f"{rate:.2f}", queries, f"{queries / wall:.0f}",
                svc.ledger.rounds, svc.ledger.messages,
                stats["prepares"], stats["cache_hits"],
                stats["coarsenings"], stats["refinements"],
                stats["repairs"], stats["graph_rebuilds"],
            ))
            data[rate] = (svc, wall, queries, incremental, stats)
        print_table(
            "PR10: PAService throughput vs graph-update rate "
            f"(grid {ROWS}x{COLS}, {len(TENANTS)} tenants, "
            f"max_batch={BATCH})",
            ["update rate", "queries", "q/sec", "rounds", "messages",
             "prepares", "cache hits", "coarsen", "refine", "repairs",
             "rebuilds"],
            rows,
        )
        return data

    data = run_once(benchmark, experiment)

    # Claim 1: the same stream, batched vs sequential.  Both pay the
    # identical ``prepare:`` phases, so total ledgers compare directly.
    batched, _, _, _, _ = data[0.0]
    sequential, _, seq_queries = _serve(0.0, 1)
    assert batched.stats.batched_queries == WAVES * BATCH
    assert sequential.stats.solo_queries == seq_queries
    assert batched.ledger.rounds < sequential.ledger.rounds
    assert batched.ledger.messages < sequential.ledger.messages

    # Claim 2: under churn the session serves incrementally — full
    # prepares stay at 1 (the initial one) plus any counted fallbacks.
    churn_svc, churn_wall, churn_queries, incremental, stats = data[0.5]
    assert incremental > 0
    assert stats["prepares"] <= 1 + stats["rebuilds"] + stats["graph_rebuilds"]

    svc0, wall0, queries0, _, _ = data[0.0]
    record(
        benchmark,
        # Headline (deterministic, gated): the no-churn stream's cost.
        rounds=svc0.ledger.rounds,
        messages=svc0.ledger.messages,
        churn_rounds=churn_svc.ledger.rounds,
        churn_messages=churn_svc.ledger.messages,
        sequential_rounds=sequential.ledger.rounds,
        sequential_messages=sequential.ledger.messages,
        batched_queries=svc0.stats.batched_queries,
        waves=svc0.stats.waves,
        cache_hits=stats["cache_hits"],
        coarsenings=stats["coarsenings"],
        refinements=stats["refinements"],
        repairs=stats["repairs"],
        # Walls (hardware facts, never gated).
        qps_rate0=round(queries0 / wall0, 1),
        qps_rate50=round(churn_queries / churn_wall, 1),
    )


def test_repair_ledger_parity(benchmark):
    """Repairs and counted fallbacks reproduce full prepares bit-for-bit."""

    def experiment():
        net, partition = _scenario()
        values = [(v * 17) % 101 for v in range(net.n)]

        # (a) Edge-delete repair: remove a non-tree edge, serve, and
        # compare the serving ledger against a fresh full prepare on the
        # updated graph — phase names, rounds and messages must all match.
        session = PASession(net, seed=17, reuse=True)
        session.prepare(partition)
        tree_edges = {
            (min(v, p), max(v, p))
            for v, p in enumerate(session.tree.parent)
            if p >= 0
        }
        chord = next(e for e in net.edges if e not in tree_edges)
        report = session.apply_edge_updates(remove=[chord])
        assert report.repaired, "chord removal must be a repair"
        served = session.solve(
            session.prepare(partition), values, MIN, charge_setup=False
        )
        twin = PASession(session.net, seed=17)
        full = twin.solve(
            twin.prepare(partition), values, MIN, charge_setup=False
        )
        repaired_phases = [
            (p.name, p.rounds, p.messages) for p in served.ledger.phases()
        ]
        full_phases = [
            (p.name, p.rounds, p.messages) for p in full.ledger.phases()
        ]
        assert served.aggregates == full.aggregates
        assert repaired_phases == full_phases, (
            "edge-delete repair must serve with the full-prepare ledger"
        )

        # (b) Split-part refinement whose verified b blows the budget:
        # the counted fallback's rebuild ledger is the full prepare's.
        class _ZeroBudget(_PASession):
            def block_budget(self) -> int:
                return 0

        strict = _ZeroBudget(net, seed=17, reuse=True)
        base = strict.prepare(Partition([0] * net.n))
        refined = strict.prepare_incremental(base, partition)
        assert strict.stats.refinements == 1
        assert strict.stats.rebuilds == 1
        fresh = PASession(net, seed=17).prepare(partition)
        rebuild_phases = [
            (p.name[len("rebuild:"):], p.rounds, p.messages)
            for p in refined.setup_ledger.phases()
            if p.name.startswith("rebuild:")
        ]
        fresh_phases = [
            (p.name, p.rounds, p.messages)
            for p in fresh.setup_ledger.phases()
        ]
        assert rebuild_phases == fresh_phases, (
            "budget fallback must rebuild with the full-prepare ledger"
        )

        print_table(
            "PR10: repair-vs-full-prepare ledger parity",
            ["path", "phases", "rounds", "messages", "bit-for-bit"],
            [
                ("edge-delete repair", len(repaired_phases),
                 served.rounds, served.messages, "yes"),
                ("split budget fallback", len(rebuild_phases),
                 sum(r for _n, r, _m in rebuild_phases),
                 sum(m for _n, _r, m in rebuild_phases), "yes"),
            ],
        )
        return {
            "repair_rounds": served.rounds,
            "repair_messages": served.messages,
            "fallback_rounds": sum(r for _n, r, _m in rebuild_phases),
            "fallback_messages": sum(m for _n, _r, m in rebuild_phases),
        }

    out = run_once(benchmark, experiment)
    record(benchmark, **out)
