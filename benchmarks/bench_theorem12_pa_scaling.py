"""E4 (Theorem 1.2): PA scaling on general graphs.

Paper claim: O~(D + sqrt n) rounds and O~(m) messages.  We sweep n on a
bounded-degree general family and report rounds / (D + sqrt n) and
messages / m: both ratios should stay within polylog factors (flat-ish),
rather than growing polynomially.

The sweep runs with ``strict_bits=False`` and ``strict_edges=False``:
payload sizes and program sends are pinned by the test suite
(``tests/congest/test_engine_edge.py`` proves audit-off runs charge
identical rounds/messages), so the per-message audits are pure simulator
overhead here.  The ledger numbers are identical either way.
"""

import math
import time

from repro.bench import print_table, record, run_once
from repro.core import SUM, PASolver
from repro.graphs import random_connected_partition, random_regular_ish

SIZES = (36, 64, 100, 144)


def test_theorem12_scaling(benchmark):
    def experiment():
        rows = []
        ratios = []
        walls = {}
        headline = {}
        for n in SIZES:
            start = time.perf_counter()
            net = random_regular_ish(n, 4, seed=11)
            part = random_connected_partition(net, max(2, n // 10), seed=12)
            solver = PASolver(
                net, seed=13, strict_bits=False, strict_edges=False
            )
            setup = solver.prepare(part)
            result = solver.solve(setup, [1] * n, SUM, charge_setup=False)
            walls[n] = time.perf_counter() - start
            d = net.diameter_estimate()
            round_ratio = result.rounds / (d + math.sqrt(n))
            # Total messages include the one-time setup (construction is
            # part of Theorem 1.2's budget).
            total_msgs = result.messages + setup.setup_ledger.messages
            msg_ratio = total_msgs / net.m
            ratios.append((round_ratio, msg_ratio))
            headline[n] = (result.rounds, total_msgs)
            rows.append(
                (n, net.m, d, result.rounds, f"{round_ratio:.1f}",
                 total_msgs, f"{msg_ratio:.1f}")
            )
        print_table(
            "Theorem 1.2: PA scaling on general graphs",
            ["n", "m", "D", "solve rounds", "rounds/(D+sqrt n)",
             "total msgs", "msgs/m"],
            rows,
        )
        return ratios, walls, headline

    ratios, walls, headline = run_once(benchmark, experiment)
    # Polylog envelope: the normalized ratios must not grow like a
    # polynomial in n (factor-of-4 n growth allows only polylog ratio drift).
    first_round, first_msg = ratios[0]
    last_round, last_msg = ratios[-1]
    growth = math.log2(SIZES[-1]) ** 2 / math.log2(SIZES[0]) ** 2
    assert last_round <= max(first_round, 1.0) * 8 * growth
    assert last_msg <= max(first_msg, 1.0) * 8 * growth
    largest = SIZES[-1]
    record(benchmark,
           rounds=headline[largest][0],
           messages=headline[largest][1],
           round_ratios=[r for r, _ in ratios],
           msg_ratios=[m for _, m in ratios],
           wall_seconds_by_n={str(n): walls[n] for n in SIZES},
           largest_n=largest,
           largest_n_wall_seconds=walls[largest])
