"""E4 (Theorem 1.2): PA scaling on general graphs.

Paper claim: O~(D + sqrt n) rounds and O~(m) messages.  We sweep n on a
bounded-degree general family and report rounds / (D + sqrt n) and
messages / m: both ratios should stay within polylog factors (flat-ish),
rather than growing polynomially.
"""

import math

from repro.bench import print_table, record, run_once
from repro.core import SUM, PASolver
from repro.graphs import random_connected_partition, random_regular_ish

SIZES = (36, 64, 100, 144)


def test_theorem12_scaling(benchmark):
    def experiment():
        rows = []
        ratios = []
        for n in SIZES:
            net = random_regular_ish(n, 4, seed=11)
            part = random_connected_partition(net, max(2, n // 10), seed=12)
            solver = PASolver(net, seed=13)
            setup = solver.prepare(part)
            result = solver.solve(setup, [1] * n, SUM, charge_setup=False)
            d = net.diameter_estimate()
            round_ratio = result.rounds / (d + math.sqrt(n))
            # Total messages include the one-time setup (construction is
            # part of Theorem 1.2's budget).
            total = result.rounds, result.messages + setup.setup_ledger.messages
            msg_ratio = total[1] / net.m
            ratios.append((round_ratio, msg_ratio))
            rows.append(
                (n, net.m, d, result.rounds, f"{round_ratio:.1f}",
                 total[1], f"{msg_ratio:.1f}")
            )
        print_table(
            "Theorem 1.2: PA scaling on general graphs",
            ["n", "m", "D", "solve rounds", "rounds/(D+sqrt n)",
             "total msgs", "msgs/m"],
            rows,
        )
        return ratios

    ratios = run_once(benchmark, experiment)
    # Polylog envelope: the normalized ratios must not grow like a
    # polynomial in n (factor-of-4 n growth allows only polylog ratio drift).
    first_round, first_msg = ratios[0]
    last_round, last_msg = ratios[-1]
    growth = math.log2(SIZES[-1]) ** 2 / math.log2(SIZES[0]) ** 2
    assert last_round <= max(first_round, 1.0) * 8 * growth
    assert last_msg <= max(first_msg, 1.0) * 8 * growth
    record(benchmark, round_ratios=[r for r, _ in ratios],
           msg_ratios=[m for _, m in ratios])
