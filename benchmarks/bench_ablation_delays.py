"""E15 (ablation): the Section 4.2 random delays and meta-rounds.

Paper claim: randomized PA delays each part uniformly in [0, c) so that
per-edge load per meta-round is O(log n) w.h.p., giving O~(bD + c) rounds
vs the deterministic O~(b(D + c)).  We run the same many-parts workload in
both modes and report solve rounds; the deterministic variant pays the
congestion term per wave, the randomized one amortizes it.
"""

from repro.bench import print_table, record, run_once
from repro.core import DETERMINISTIC, RANDOMIZED, SUM, PASolver
from repro.graphs import grid_2d, Partition


def test_delay_ablation(benchmark):
    rows_, cols = 6, 20
    net = grid_2d(rows_, cols)
    part = Partition([r for r in range(rows_) for _ in range(cols)])

    def experiment():
        out = {}
        for mode in (DETERMINISTIC, RANDOMIZED):
            solver = PASolver(net, mode=mode, seed=37)
            setup = solver.prepare(part)
            result = solver.solve(setup, [1] * net.n, SUM, charge_setup=False)
            b, c = setup.quality()
            out[mode] = (result.rounds, result.messages, b, c)
        print_table(
            "Ablation: deterministic vs randomized (delays + meta-rounds)",
            ["mode", "solve rounds", "messages", "b", "c"],
            [(m, *v) for m, v in out.items()],
        )
        return out

    out = run_once(benchmark, experiment)
    assert out[DETERMINISTIC][0] > 0 and out[RANDOMIZED][0] > 0
    # Both must be correct and within a small factor of each other here;
    # the structural point is that both terminate with the same aggregates
    # while charging their respective round disciplines.
    record(benchmark, det=out[DETERMINISTIC][0], rand=out[RANDOMIZED][0],
           rounds=out[RANDOMIZED][0], messages=out[RANDOMIZED][1])
