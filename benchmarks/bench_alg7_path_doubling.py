"""E12 (Figure 5 / Lemma 6.6): Algorithm 7's round bound on paths.

Paper claim: the doubling construction finishes in O(c log D + D) rounds
with per-edge congestion O(c log D).  We sweep the path length and the
congestion budget and compare measured rounds against the envelope.
"""

import math

from repro.bench import print_table, record, run_once
from repro.congest import CostLedger, Engine
from repro.core import bfs_tree
from repro.core.heavy_path import build_heavy_path_decomposition
from repro.core.path_shortcut import run_path_doubling_wave
from repro.graphs import path_graph


def test_alg7_round_envelope(benchmark):
    def experiment():
        rows = []
        data = []
        for n, threshold in ((32, 2), (64, 2), (64, 6), (128, 4)):
            net = path_graph(n)
            engine = Engine(net)
            tree = bfs_tree(engine, net, 0, CostLedger()).tree
            hpd = build_heavy_path_decomposition(engine, tree, CostLedger())
            tops = [v for v in range(n) if hpd.path_top[v]]
            store = {v: {v % (2 * threshold)} for v in range(n // 2, n)}
            ledger = CostLedger()
            run_path_doubling_wave(
                engine, tree, hpd, tops, store, threshold, ledger, "bench"
            )
            rounds = sum(p.rounds for p in ledger.phases())
            messages = sum(p.messages for p in ledger.phases())
            envelope = 2 * (
                2 * threshold * math.ceil(math.log2(n)) + n
            ) + 16
            data.append((rounds, envelope, messages))
            rows.append((n, threshold, rounds, envelope, messages))
        print_table(
            "Algorithm 7: measured rounds vs O(c log D + D) envelope",
            ["path length", "c", "rounds", "envelope", "messages"],
            rows,
        )
        return data

    data = run_once(benchmark, experiment)
    for rounds, envelope, _messages in data:
        assert rounds <= envelope
    record(benchmark, pairs=[(r, e) for r, e, _m in data],
           rounds=data[-1][0], messages=data[-1][2])
