"""E-session (PR 4): cross-phase reuse and batched solves in the runtime.

Two claims about the :class:`repro.runtime.PASession` layer:

1. **Reuse pays at scale.**  Boruvka MST rebuilds the whole Theorem 1.2
   pipeline every phase; a reusing session coarsens the previous phase's
   division/shortcut and memoizes repeated partitions instead.  At
   n >= 20k the end-to-end wall-clock of the full MST drops by >= 1.5x
   (and the metered rounds fall with it), with the output bit-identical.

2. **Batching cuts rounds.**  k aggregations over one setup run in one
   wave pass instead of k; the ledger shows the round/message saving and
   the aggregates are unchanged.

``REPRO_SESSION_MAX_N`` caps the sweep (default 20000; the issue's range
runs to 50000 — raise the env var to measure it).  Wall times are
reported for the reuse experiment because the *simulator's* speed is the
claim under test there; ledger rounds/messages stay the headline metrics
and the regression-gate contract.  The >=1.5x wall assertion is enforced
by default on local runs but can be lifted with
``REPRO_SESSION_WALL_GATE=0`` — CI sets that, and the bench runner's
``--jobs`` pool sets it in its workers, consistent with the repo-wide
rule that wall times are hardware facts and are never gated where
timing is noisy (the deterministic ledger assertions always run).
"""

import math
import os
import time

from repro import PASession
from repro.algorithms import minimum_spanning_tree
from repro.analysis import kruskal_mst
from repro.bench import print_table, record, run_once
from repro.core import MIN, MIN_TUPLE, SUM
from repro.graphs import bfs_ball_partition, grid_2d, with_distinct_weights

MAX_N = int(os.environ.get("REPRO_SESSION_MAX_N", "20000"))

#: Wall-clock speedup assertion switch (see module docstring): on by
#: default for local measurement runs, off in CI where timing is noisy.
WALL_GATE = os.environ.get("REPRO_SESSION_WALL_GATE", "1") != "0"

#: (rows, cols) MST sweep; the largest obeys MAX_N.
_SIZES = [(32, 64), (100, 200), (200, 250)]


def _mst_workloads():
    out = []
    for rows, cols in _SIZES:
        if rows * cols <= max(2048, MAX_N):
            out.append((rows, cols))
    return out


def test_mst_session_reuse(benchmark):
    """Full Boruvka MST, bare pipeline vs reusing+batching session."""

    def experiment():
        rows_out = []
        data = {}
        for rows, cols in _mst_workloads():
            net = with_distinct_weights(grid_2d(rows, cols), seed=rows)
            t0 = time.perf_counter()
            off = minimum_spanning_tree(net, seed=17)
            wall_off = time.perf_counter() - t0

            sess = PASession(net, seed=17, reuse=True, batch=True)
            t0 = time.perf_counter()
            on = minimum_spanning_tree(net, seed=17, session=sess)
            wall_on = time.perf_counter() - t0

            assert set(on.output) == set(off.output), "reuse changed the MST"
            if net.n <= 4096:
                assert set(off.output) == kruskal_mst(net)

            stats = sess.stats
            rows_out.append(
                (f"grid {rows}x{cols}", net.n,
                 f"{wall_off:.2f}", f"{wall_on:.2f}",
                 f"{wall_off / wall_on:.2f}",
                 off.rounds, on.rounds,
                 off.messages, on.messages,
                 stats.coarsenings, stats.cache_hits, stats.rebuilds)
            )
            data[net.n] = (off, on, wall_off, wall_on, stats)
        print_table(
            "PR4: MST end-to-end, bare pipeline vs PASession(reuse, batch)",
            ["graph", "n", "wall off (s)", "wall on (s)", "speedup",
             "rounds off", "rounds on", "msgs off", "msgs on",
             "coarsenings", "cache hits", "rebuilds"],
            rows_out,
        )
        return data

    data = run_once(benchmark, experiment)
    largest_n = max(data)
    off, on, wall_off, wall_on, stats = data[largest_n]

    # Reuse must never inflate the metered cost model.
    assert on.rounds < off.rounds
    assert on.messages < off.messages
    # Coarsening (not wholesale rebuilding) must be doing the work.
    assert stats.coarsenings > 0
    assert stats.coarsenings >= 4 * stats.rebuilds
    if WALL_GATE and largest_n >= 20000:
        # The issue's headline target, asserted only at the scale it names
        # (REPRO_SESSION_MAX_N below 20000 smoke-tests the sweep shape)
        # and only where timing is trustworthy (REPRO_SESSION_WALL_GATE).
        assert wall_off / wall_on >= 1.5, (
            f"reuse speedup {wall_off / wall_on:.2f} < 1.5 at n={largest_n}"
        )
    record(
        benchmark,
        largest_n=largest_n,
        wall_off_seconds=round(wall_off, 3),
        wall_on_seconds=round(wall_on, 3),
        speedup=round(wall_off / wall_on, 3),
        rounds_off=off.rounds,
        rounds_on=on.rounds,
        prepares=stats.prepares,
        cache_hits=stats.cache_hits,
        coarsenings=stats.coarsenings,
        rebuilds=stats.rebuilds,
        evictions=stats.evictions,
        rounds=on.rounds,
        messages=on.messages,
    )


def test_batched_vs_sequential_solves(benchmark):
    """k aggregates over one setup: one wave pass vs k sequential solves."""

    def experiment():
        net = grid_2d(40, 50)
        part = bfs_ball_partition(net, 80, seed=7)
        uids = [net.uid[v] for v in range(net.n)]
        moe_like = [(net.uid[v] % 13, net.uid[v]) for v in range(net.n)]
        items = [([1] * net.n, SUM), (uids, MIN), (moe_like, MIN_TUPLE)]

        seq_sess = PASession(net, seed=9, batch=False)
        setup = seq_sess.prepare(part)
        seq = seq_sess.solve_many(setup, items, charge_setup=False)

        bat_sess = PASession(net, seed=9, batch=True)
        setup_b = bat_sess.prepare(part)
        bat = bat_sess.solve_many(setup_b, items, charge_setup=False)

        for k in range(len(items)):
            assert bat.per_agg[k].aggregates == seq.per_agg[k].aggregates

        print_table(
            "PR4: k=3 aggregations over one setup, sequential vs batched",
            ["schedule", "wave passes", "rounds", "messages"],
            [
                ("sequential", 3, seq.ledger.rounds, seq.ledger.messages),
                ("batched", 1, bat.ledger.rounds, bat.ledger.messages),
                ("saving", "-",
                 seq.ledger.rounds - bat.ledger.rounds,
                 seq.ledger.messages - bat.ledger.messages),
            ],
        )
        return seq, bat, part

    seq, bat, part = run_once(benchmark, experiment)
    assert bat.ledger.rounds < seq.ledger.rounds
    assert bat.ledger.messages < seq.ledger.messages
    record(
        benchmark,
        parts=part.num_parts,
        sequential_rounds=seq.ledger.rounds,
        batched_rounds=bat.ledger.rounds,
        sequential_messages=seq.ledger.messages,
        batched_messages=bat.ledger.messages,
        rounds=bat.ledger.rounds,
        messages=bat.ledger.messages,
    )


def test_mincut_session_sharing(benchmark):
    """Tree packing through one reusing session: shared tree + setups."""

    from repro.algorithms import approx_min_cut

    def experiment():
        net = with_distinct_weights(grid_2d(12, 16), seed=23)
        off = approx_min_cut(net, seed=5, max_trees=4)
        sess = PASession(net, seed=5, reuse=True, batch=True)
        on = approx_min_cut(net, seed=5, max_trees=4, session=sess)
        assert on.output == off.output, "session changed the cut"
        print_table(
            "PR4: min-cut tree packing, bare vs shared session",
            ["pipeline", "rounds", "messages", "prepares", "cache hits",
             "coarsenings"],
            [
                ("bare", off.rounds, off.messages, "-", "-", "-"),
                ("session", on.rounds, on.messages, sess.stats.prepares,
                 sess.stats.cache_hits, sess.stats.coarsenings),
            ],
        )
        return off, on, sess

    off, on, sess = run_once(benchmark, experiment)
    assert on.rounds < off.rounds
    # The singleton phase-1 partition must be served from cache for every
    # packing tree after the first.
    assert sess.stats.cache_hits > 0
    record(
        benchmark,
        rounds_off=off.rounds,
        prepares=sess.stats.prepares,
        cache_hits=sess.stats.cache_hits,
        coarsenings=sess.stats.coarsenings,
        evictions=sess.stats.evictions,
        rounds=on.rounds,
        messages=on.messages,
    )
