"""E2 (Table 1): measured shortcut quality (b, c) per graph family.

Paper claim (Table 1): general graphs admit (b=1, c=sqrt n); planar
(b=O(log D), c=O~(D)); genus-g (b=O(sqrt g), c=O~(sqrt g D)); treewidth-t
(b=O(t), c=O~(t)); pathwidth-p (b=p, c=p).  We construct shortcuts with
the randomized pipeline and report measured (b, c) next to the targets.
"""

import math

from repro.analysis import TABLE1
from repro.bench import print_table, record, run_once
from repro.core import PASolver
from repro.families import family_hint, provider_for
from repro.graphs import (
    grid_2d,
    k_tree,
    ladder,
    random_connected_partition,
    random_regular_ish,
    torus_2d,
)

FAMILIES = {
    "general": (lambda: random_regular_ish(128, 5, seed=3), 1),
    "planar": (lambda: grid_2d(6, 20), 1),
    "genus": (lambda: torus_2d(6, 16), 1),
    "treewidth": (lambda: k_tree(96, 3, seed=4), 3),
    "pathwidth": (lambda: ladder(48), 2),
}


def test_table1_shortcut_quality(benchmark):
    def experiment():
        out_rows = []
        measured = {}
        setup_cost = None
        for family, (make, param) in FAMILIES.items():
            net = make()
            part = random_connected_partition(net, max(2, net.n // 12), seed=5)
            solver = PASolver(net, seed=6)
            setup = solver.prepare(part)
            b, c = setup.quality()
            if setup_cost is None or family == "general":
                # Headline cost: the "general" family, falling back to the
                # first family if the dict is ever reshuffled.
                setup_cost = (setup.setup_ledger.rounds,
                              setup.setup_ledger.messages)
            d = net.diameter_estimate()
            bounds = TABLE1[family]
            tb = bounds.block_parameter(net.n, d, param)
            tc = bounds.congestion(net.n, d, param)
            measured[family] = (b, c, tb, tc)
            out_rows.append(
                (family, net.n, d, b, f"{tb:.1f}", c, f"{tc:.1f}")
            )
        print_table(
            "Table 1: measured vs known (b, c) per family",
            ["family", "n", "D", "b meas", "b known", "c meas", "c known"],
            out_rows,
        )

        # Family-aware providers (repro.families) on the same instances:
        # the constructions the Table 1 rows actually claim, via the
        # registry.  claim_small drops the parts-below-D exemption so the
        # construction is visible at these small reproduction sizes.
        provider_rows = []
        provider_measured = {}
        for family, (make, param) in FAMILIES.items():
            net = make()
            part = random_connected_partition(net, max(2, net.n // 12), seed=5)
            provider = provider_for(family, param=param, claim_small=True)
            solver = PASolver(net, seed=16)
            setup = solver.prepare(part, shortcut_provider=provider)
            b, c = setup.quality()
            hb, hc = family_hint(family, net.n, solver.diameter, param=param)
            provider_measured[family] = (b, c, hb, hc)
            provider_rows.append(
                (family, provider.name, net.n, b, hb, c, hc)
            )
        print_table(
            "Table 1 (family providers): measured (b, c) vs registry hints",
            ["family", "provider", "n", "b meas", "b hint", "c meas",
             "c hint"],
            provider_rows,
        )
        return measured, setup_cost, provider_measured

    measured, setup_cost, provider_measured = run_once(benchmark, experiment)
    for family, (b, c, tb, tc) in measured.items():
        n = 128
        polylog = math.log2(n) ** 2
        assert b <= max(3, tb * polylog), family
        assert c <= max(3, tc * polylog), family
        record(benchmark, **{f"{family}_b": b, f"{family}_c": c})
    for family, (b, c, hb, hc) in provider_measured.items():
        polylog = math.log2(128) ** 2
        assert b <= max(3, hb * polylog), family
        assert c <= max(3, hc * polylog), family
        record(benchmark, **{f"{family}_provider_b": b,
                             f"{family}_provider_c": c})
    record(benchmark, rounds=setup_cost[0], messages=setup_cost[1])
