"""E2 (Table 1): measured shortcut quality (b, c) per graph family.

Paper claim (Table 1): general graphs admit (b=1, c=sqrt n); planar
(b=O(log D), c=O~(D)); genus-g (b=O(sqrt g), c=O~(sqrt g D)); treewidth-t
(b=O(t), c=O~(t)); pathwidth-p (b=p, c=p).  We construct shortcuts with
the randomized pipeline and report measured (b, c) next to the targets.
"""

import math

from repro.analysis import TABLE1
from repro.bench import print_table, record, run_once
from repro.core import PASolver
from repro.graphs import (
    grid_2d,
    k_tree,
    ladder,
    random_connected_partition,
    random_regular_ish,
    torus_2d,
)

FAMILIES = {
    "general": (lambda: random_regular_ish(128, 5, seed=3), 1),
    "planar": (lambda: grid_2d(6, 20), 1),
    "genus": (lambda: torus_2d(6, 16), 1),
    "treewidth": (lambda: k_tree(96, 3, seed=4), 3),
    "pathwidth": (lambda: ladder(48), 2),
}


def test_table1_shortcut_quality(benchmark):
    def experiment():
        out_rows = []
        measured = {}
        setup_cost = None
        for family, (make, param) in FAMILIES.items():
            net = make()
            part = random_connected_partition(net, max(2, net.n // 12), seed=5)
            solver = PASolver(net, seed=6)
            setup = solver.prepare(part)
            b, c = setup.quality()
            if setup_cost is None or family == "general":
                # Headline cost: the "general" family, falling back to the
                # first family if the dict is ever reshuffled.
                setup_cost = (setup.setup_ledger.rounds,
                              setup.setup_ledger.messages)
            d = net.diameter_estimate()
            bounds = TABLE1[family]
            tb = bounds.block_parameter(net.n, d, param)
            tc = bounds.congestion(net.n, d, param)
            measured[family] = (b, c, tb, tc)
            out_rows.append(
                (family, net.n, d, b, f"{tb:.1f}", c, f"{tc:.1f}")
            )
        print_table(
            "Table 1: measured vs known (b, c) per family",
            ["family", "n", "D", "b meas", "b known", "c meas", "c known"],
            out_rows,
        )
        return measured, setup_cost

    measured, setup_cost = run_once(benchmark, experiment)
    for family, (b, c, tb, tc) in measured.items():
        n = 128
        polylog = math.log2(n) ** 2
        assert b <= max(3, tb * polylog), family
        assert c <= max(3, tc * polylog), family
        record(benchmark, **{f"{family}_b": b, f"{family}_c": c})
    record(benchmark, rounds=setup_cost[0], messages=setup_cost[1])
