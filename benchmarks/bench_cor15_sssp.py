"""E7 (Corollary 1.5): SSSP stretch vs beta tradeoff.

Paper claim: smaller beta buys a better approximation at a cost of
O~(1/beta) more rounds and messages.  We sweep beta and report measured
max/mean stretch against Dijkstra, plus the Bellman-Ford round cost.
"""

from repro.algorithms import approx_sssp
from repro.analysis import dijkstra
from repro.bench import print_table, record, run_once
from repro.core import PASolver
from repro.graphs import grid_2d, with_random_weights


def test_sssp_beta_sweep(benchmark):
    net = with_random_weights(grid_2d(5, 14), max_weight=40, seed=20)
    exact = dijkstra(net, 0)
    solver = PASolver(net, seed=21)
    from repro.analysis import kruskal_mst

    tree = kruskal_mst(net)  # amortized across the sweep

    def experiment():
        rows = []
        curve = {}
        for beta in (0.5, 0.2, 0.1, 0.05):
            run = approx_sssp(
                net, 0, beta=beta, seed=22, solver=solver, tree_edges=tree
            )
            stretches = [
                run.output[v] / exact[v]
                for v in range(1, net.n)
                if exact[v] > 0
            ]
            bf = [p for p in run.ledger.phases()
                  if p.name == "sssp_bellman_ford"][0]
            curve[beta] = (max(stretches), bf.rounds, bf.messages)
            rows.append(
                (beta, run.meta["hops"], f"{max(stretches):.3f}",
                 f"{sum(stretches) / len(stretches):.3f}",
                 bf.rounds, bf.messages)
            )
        print_table(
            "Corollary 1.5: SSSP stretch vs beta",
            ["beta", "BF hops", "max stretch", "mean stretch",
             "BF rounds", "BF messages"],
            rows,
        )
        return curve

    curve = run_once(benchmark, experiment)
    assert curve[0.05][0] <= curve[0.5][0] + 1e-9  # stretch improves
    assert curve[0.05][1] > curve[0.5][1]          # rounds grow ~1/beta
    assert all(v >= 1.0 - 1e-9 for v, _r, _m in curve.values())
    record(benchmark, stretches={str(k): v[0] for k, v in curve.items()},
           rounds=curve[0.05][1], messages=curve[0.05][2])
