"""E9 (Corollary A.2): O(log n)-approximate connected dominating set.

Paper claim: an O(log n)-approximate minimum CDS at PA-dominated cost.
We report CDS size against the sequential greedy dominating set (its own
O(log n)-approximation anchor) across workloads.
"""

from repro.algorithms import connected_dominating_set
from repro.analysis import greedy_dominating_set_size
from repro.bench import print_table, record, run_once
from repro.graphs import (
    grid_2d,
    induces_connected_subgraph,
    is_dominating_set,
    random_connected,
)


def test_cds_quality(benchmark):
    workloads = {
        "grid 4x10": grid_2d(4, 10),
        "sparse random": random_connected(48, 0.05, seed=32),
        "dense random": random_connected(48, 0.15, seed=33),
    }

    def experiment():
        rows = []
        sizes = {}
        costs = {}
        for label, net in workloads.items():
            run = connected_dominating_set(net, seed=34)
            cds = set(run.output)
            assert is_dominating_set(net, cds)
            assert induces_connected_subgraph(net, cds)
            greedy = greedy_dominating_set_size(net)
            sizes[label] = (len(cds), greedy)
            costs[label] = (run.rounds, run.messages)
            rows.append(
                (label, net.n, len(cds), greedy,
                 f"{len(cds) / greedy:.2f}", run.rounds, run.messages)
            )
        print_table(
            "Corollary A.2: CDS size vs greedy dominating-set anchor",
            ["graph", "n", "CDS size", "greedy DS", "CDS/DS",
             "rounds", "messages"],
            rows,
        )
        return sizes, costs

    sizes, costs = run_once(benchmark, experiment)
    for label, (cds_size, greedy) in sizes.items():
        assert cds_size <= 3 * greedy + 2, label
    record(benchmark, sizes={k: v[0] for k, v in sizes.items()},
           rounds=costs["grid 4x10"][0], messages=costs["grid 4x10"][1])
