"""E15 (Tables 1-2 at scale): family-aware shortcut providers vs general.

The paper's structural claim (Theorem 1.1, Tables 1-2, Appendix C) is that
planar, bounded-genus, bounded-treewidth and bounded-pathwidth graphs
admit low-congestion shortcuts of quality O~(D) — far below the general
(b=1, c=sqrt n) guarantee.  ``repro.families`` finally *constructs* those
shortcuts; this sweep measures them at up to 50k nodes, side by side with
the general randomized pipeline and the Table 1 envelopes.

Two demonstrations:

* **Planar congestion tracks D, not sqrt n.**  On tall R x 8 grids with
  one part per row, the tree-restricted construction's measured
  congestion grows linearly with the diameter (c ~ R ~ D) while staying
  inside the Table 1 envelope D * log n — and far above sqrt n, which it
  would hug if the congestion were sqrt(n)-driven.  The general pipeline
  column shows what today's construction does on the same instances, and
  the classic full-tree shortcut (c = #parts) is the b=1 baseline the
  envelope beats.  On square grids with BFS-ball parts the full pipelines
  run end to end (prepare + solve) and the PA round comparison shows the
  family construction's b=1 against the general pipeline's truncated-climb
  blocks.

* **Width families live on their envelopes.**  k-trees / series-parallel
  graphs get c <= 2 t log n via the tree-decomposition certificate,
  ladders / caterpillars get c <= 2 (p + 1) via the path-decomposition
  certificate, at n up to 50k.

Like the other scaling sweeps everything runs with ``strict_bits=False``
and ``strict_edges=False`` (ledger parity is pinned by the engine tests);
``REPRO_FAMILIES_MAX_N`` caps the sweep (default 50000).
"""

import math
import os
import time

from repro.bench import print_table, record, run_once
from repro.core import SUM, PASolver, full_tree_shortcut
from repro.families import (
    PathwidthProvider,
    TreeRestrictedProvider,
    TreewidthProvider,
)
from repro.graphs import (
    bfs_ball_partition,
    caterpillar,
    grid_2d,
    k_tree,
    ladder,
    random_planar,
    row_partition,
    series_parallel,
)

MAX_N = int(os.environ.get("REPRO_FAMILIES_MAX_N", "50000"))

#: Tall grids (rows x 8): one part per row; D ~ rows while sqrt n ~ sqrt(8 rows).
TALL_ROWS = (32, 64, 128, 256)
TALL_COLS = 8

#: Square grids with BFS-ball parts: the full-pipeline comparison.
SQUARE_SIDES = (32, 64, 141, 223)

#: Width-family sizes (k-trees, series-parallel, ladders, caterpillars).
TREEWIDTH_SIZES = (2048, 8192, 20000)
SP_SIZES = (2048, 20000, 50000)
PATHWIDTH_SIZES = (1024, 8192, 25000)


def _log2(n: int) -> int:
    return max(1, math.ceil(math.log2(max(2, n))))


def _fresh_solver(net, seed):
    return PASolver(net, seed=seed, strict_bits=False, strict_edges=False)


def _full_pa(net, partition, provider, seed):
    """Full pipeline (tree + prepare + solve); returns quality + ledger."""
    start = time.perf_counter()
    solver = _fresh_solver(net, seed)
    setup = solver.prepare(partition, shortcut_provider=provider)
    result = solver.solve(setup, [1] * net.n, SUM, charge_setup=True)
    wall = time.perf_counter() - start
    assert all(
        result.aggregates[pid] == len(partition.members[pid])
        for pid in range(partition.num_parts)
    ), "PA sum must count each part's members"
    b, c = setup.quality()
    return b, c, result.rounds, result.messages, wall


def test_planar_congestion_tracks_diameter(benchmark):
    def experiment():
        # --- Tall grids: congestion must track D, not sqrt n -----------
        tall_rows_out = []
        tall_data = []
        for rows in TALL_ROWS:
            n = rows * TALL_COLS
            if n > MAX_N:
                continue
            net = grid_2d(rows, TALL_COLS)
            part = row_partition(rows, TALL_COLS)
            # Root pinned at the corner: every row's Steiner subtree then
            # climbs the full column prefix above it, so the measured
            # congestion is the clean c ~ rows ~ D signal (an elected
            # leader in the middle would halve it without changing the
            # asymptotics).
            solver = PASolver(
                net, seed=11, root=0, strict_bits=False, strict_edges=False
            )
            d = solver.diameter
            # Rows are smaller than D, so both pipelines would exempt
            # them; claim_small exhibits the construction's envelope.
            setup = solver.prepare(
                part,
                shortcut_provider=TreeRestrictedProvider(claim_small=True),
            )
            b_t, c_t = setup.quality()
            # General pipeline on the same instance (exemption applies:
            # parts fit inside D, it builds no shortcut at all).
            gen = _fresh_solver(net, seed=11)
            gsetup = gen.prepare(part)
            b_g, c_g = gsetup.quality()
            # Classic b=1 baseline: every part uses the whole BFS tree.
            c_full = full_tree_shortcut(solver.tree, part).congestion()
            sqrt_n = math.isqrt(n)
            envelope = d * _log2(n)
            tall_data.append((rows, n, d, sqrt_n, b_t, c_t, envelope))
            tall_rows_out.append(
                (rows, n, d, sqrt_n, b_t, c_t, envelope,
                 f"{b_g}/{c_g}", c_full)
            )
        print_table(
            "Planar tall grids (rows x 8, row parts): tree-restricted "
            "congestion tracks D",
            ["rows", "n", "D", "sqrt n", "b tree", "c tree",
             "envelope D*log n", "general b/c", "full-tree c"],
            tall_rows_out,
        )

        # --- Square grids + random planar: full pipelines side by side -
        square_rows_out = []
        square_data = []
        walls = {}
        for kind, side in [("grid", s) for s in SQUARE_SIDES] + [
            ("random_planar", 141), ("random_planar", 223),
        ]:
            n = side * side
            if n > MAX_N:
                continue
            if kind == "grid":
                net = grid_2d(side, side)
            else:
                net = random_planar(n, seed=13)
            d = net.diameter_estimate()
            part = bfs_ball_partition(net, 2 * (d + 1), seed=12)
            b_t, c_t, rounds_t, msgs_t, wall_t = _full_pa(
                net, part, TreeRestrictedProvider(), seed=11
            )
            b_g, c_g, rounds_g, msgs_g, wall_g = _full_pa(
                net, part, None, seed=11
            )
            envelope = d * _log2(n)
            walls[f"{kind}_{n}_tree"] = wall_t
            walls[f"{kind}_{n}_general"] = wall_g
            square_data.append(
                (kind, n, d, b_t, c_t, envelope, rounds_t, msgs_t,
                 b_g, c_g, rounds_g, msgs_g)
            )
            square_rows_out.append(
                (kind, n, d, part.num_parts, f"{b_t}/{c_t}", envelope,
                 rounds_t, f"{b_g}/{c_g}", rounds_g,
                 f"{wall_t:.2f}/{wall_g:.2f}")
            )
        print_table(
            "Planar full pipelines (BFS-ball parts > D): family provider "
            "vs general",
            ["family", "n", "D", "parts", "tree b/c", "envelope",
             "tree rounds", "general b/c", "general rounds",
             "wall t/g (s)"],
            square_rows_out,
        )
        return tall_data, square_data, walls

    tall_data, square_data, walls = run_once(benchmark, experiment)

    # Tall grids: c grows with D (within the Table 1 envelope) and is NOT
    # sqrt(n)-driven — on the largest instance it exceeds sqrt n severalfold.
    for rows, n, d, sqrt_n, b_t, c_t, envelope in tall_data:
        assert c_t <= envelope, (rows, c_t, envelope)
        assert c_t >= d // 4, (rows, c_t, d)
        assert b_t <= max(3, 2 * _log2(d)), (rows, b_t)
    if tall_data and tall_data[-1][0] == TALL_ROWS[-1]:
        # Only meaningful when the sweep reached the largest tall grid;
        # a lowered REPRO_FAMILIES_MAX_N smoke run skips the growth check.
        largest = tall_data[-1]
        assert largest[5] > 2 * largest[3], (
            "tree-restricted congestion should track D, not sqrt n"
        )

    # Square grids: the family construction stays inside the O~(D)
    # envelope with single-block parts while running the full pipeline.
    for kind, n, d, b_t, c_t, envelope, *_rest in square_data:
        assert c_t <= envelope, (kind, n, c_t, envelope)
        assert b_t <= max(3, 2 * _log2(d)), (kind, n, b_t)

    metrics = {
        "tall_c_by_rows": {str(r[0]): r[5] for r in tall_data},
        "wall_seconds_by_workload": {
            k: round(v, 4) for k, v in walls.items()
        },
    }
    if square_data:
        headline = square_data[-1]
        metrics.update(
            rounds=headline[6], messages=headline[7],
            largest_planar_n=headline[1],
        )
    record(benchmark, **metrics)


def test_width_families_scaling(benchmark):
    def experiment():
        rows_out = []
        data = []
        walls = {}
        headline = None

        def measure(family, net, part, provider, envelope, solve, seed=21):
            nonlocal headline
            if solve:
                b, c, rounds, msgs, wall = _full_pa(net, part, provider, seed)
            else:
                start = time.perf_counter()
                solver = _fresh_solver(net, seed)
                setup = solver.prepare(part, shortcut_provider=provider)
                b, c = setup.quality()
                rounds = setup.setup_ledger.rounds
                msgs = setup.setup_ledger.messages
                wall = time.perf_counter() - start
            d = net.diameter_estimate()
            walls[f"{family}_{net.n}"] = wall
            data.append((family, net.n, d, b, c, envelope))
            rows_out.append(
                (family, net.n, d, part.num_parts, b, c, envelope,
                 rounds, msgs, f"{wall:.2f}")
            )
            if solve:
                headline = (rounds, msgs, net.n)

        for n in TREEWIDTH_SIZES:
            if n > MAX_N:
                continue
            net = k_tree(n, 3, seed=19)
            part = bfs_ball_partition(net, 55, seed=20)
            measure(
                "k_tree(t=3)", net, part, TreewidthProvider(width=3),
                envelope=2 * 3 * _log2(n), solve=(n <= 8192),
            )
        for n in SP_SIZES:
            if n > MAX_N:
                continue
            net = series_parallel(n, seed=19)
            part = bfs_ball_partition(net, 55, seed=20)
            measure(
                "series_parallel", net, part, TreewidthProvider(width=2),
                envelope=2 * 2 * _log2(n), solve=(n <= 8192),
            )
        for n in PATHWIDTH_SIZES:
            if n > MAX_N:
                continue
            length = n // 2
            net = ladder(length)
            # contiguous rung segments, forced to claim (segments < D)
            part = bfs_ball_partition(net, max(16, length // 32), seed=20)
            measure(
                "ladder", net, part,
                PathwidthProvider(width=2, claim_small=True),
                envelope=2 * (3 + 1), solve=(n <= 8192),
            )
        n_cat = 24000
        if n_cat <= MAX_N:
            net = caterpillar(8000, 2)
            part = bfs_ball_partition(net, 250, seed=20)
            measure(
                "caterpillar", net, part,
                PathwidthProvider(width=1, claim_small=True),
                envelope=2 * (2 + 1), solve=False,
            )

        print_table(
            "Width families at scale: measured (b, c) vs the Table 1 "
            "envelopes",
            ["family", "n", "D", "parts", "b", "c", "c envelope",
             "rounds", "messages", "wall (s)"],
            rows_out,
        )
        return data, walls, headline

    data, walls, headline = run_once(benchmark, experiment)
    for family, n, d, b, c, envelope in data:
        assert c <= envelope, (family, n, c, envelope)
        assert b <= max(4, 3 * _log2(n)), (family, n, b)
    if headline is not None:
        record(benchmark, rounds=headline[0], messages=headline[1])
    record(
        benchmark,
        families={f"{fam}_{n}": (b, c) for fam, n, _d, b, c, _e in data},
        wall_seconds_by_workload={k: round(v, 4) for k, v in walls.items()},
    )
