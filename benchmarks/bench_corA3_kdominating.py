"""E10 (Corollary A.3): k-dominating sets of size O(n/k).

Paper claim: a k-dominating set of cardinality at most 6n/k in
O~(D + sqrt n) rounds, independent of k.  We sweep k and report size and
realized radius.
"""

from repro.algorithms import k_dominating_set
from repro.bench import print_table, record, run_once
from repro.graphs import grid_2d, is_k_dominating_set


def test_kdominating_sweep(benchmark):
    net = grid_2d(5, 16)

    def experiment():
        rows = []
        sizes = {}
        for k in (4, 8, 16, 32):
            run = k_dominating_set(net, k, seed=35)
            centers = set(run.output)
            assert is_k_dominating_set(net, centers, k)
            bound = max(1, 6 * net.n // k) + 1
            sizes[k] = (len(centers), bound, run.rounds, run.messages)
            rows.append((k, len(centers), bound, run.rounds, run.messages))
        print_table(
            "Corollary A.3: k-dominating set size vs 6n/k",
            ["k", "centers", "6n/k bound", "rounds", "messages"],
            rows,
        )
        return sizes

    sizes = run_once(benchmark, experiment)
    for k, (size, bound, _rounds, _messages) in sizes.items():
        assert size <= bound, k
    # Size falls as k grows (the O(n/k) shape).
    assert sizes[32][0] < sizes[4][0]
    record(benchmark, sizes={str(k): v[0] for k, v in sizes.items()},
           rounds=sizes[32][2], messages=sizes[32][3])
