"""Benchmark-wide configuration: always show the experiment tables."""

import pytest


@pytest.fixture(autouse=True)
def _show_output(capsys):
    yield
    # Let the printed tables pass through to the terminal after each bench.
    out = capsys.readouterr().out
    if out:
        import sys
        sys.stdout.write(out)
