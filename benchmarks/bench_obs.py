"""E-obs (PR 8): tracing is free when off and exact when on.

Two contracts pin the observability layer to the repo's
ledger-is-ground-truth rule:

1. **Zero cost when off.**  With the default :data:`~repro.obs.NULL_TRACER`
   installed, every hook point is one ``current_tracer()`` fetch plus one
   ``.enabled`` check per *phase* (the per-tick paths receive
   ``tracer=None`` and skip all event work).  The ledger — phase names,
   rounds, messages, ticks, bits — is bit-for-bit identical with tracing
   on or off, across all three engines.  Asserted here every run.

2. **Exact when on.**  A recorded trace *replays* the ledger: summing the
   main-stream "ledger" instants reproduces the run's total rounds and
   messages exactly, for the scalar, array, and async engines.  This is
   what makes ``python -m repro.obs diff`` a per-phase regression gate
   rather than a sampling profiler.

The wall-clock table quantifies the off-path tax two ways: the per-phase
hook cost in isolation (a tight ``current_tracer()`` + ``enabled`` loop)
and end-to-end solve walls with tracing off vs on.  Per the repo-wide
rule, wall numbers are reported, never gated against the baseline; the
coarse sanity assertion (hook fetch under 5 µs/op) sits behind
``REPRO_SESSION_WALL_GATE`` like the session-reuse speedup gate, and the
deterministic identity/replay assertions always run.
"""

import os
import time

from repro.bench import print_table, record, run_once
from repro.core import SUM, solve_pa
from repro.graphs import bfs_ball_partition, grid_2d
from repro.obs import NULL_TRACER, Tracer, current_tracer, use_tracer

#: Wall-clock assertion switch (see module docstring): on by default for
#: local measurement runs, off in CI and the --jobs pool workers.
WALL_GATE = os.environ.get("REPRO_SESSION_WALL_GATE", "1") != "0"

#: (label, solve_pa kwargs) — one entry per engine implementation.
ENGINES = [
    ("scalar", {}),
    ("array", {"engine_impl": "array"}),
    ("async", {"async_mode": True}),
]


def _phase_log(ledger):
    return [
        (p.name, p.rounds, p.messages, p.ticks, p.bits)
        for p in ledger.phases()
    ]


def _ledger_event_totals(tracer):
    events = tracer.ledger_events("main")
    return (
        sum(e["args"]["rounds"] for e in events),
        sum(e["args"]["messages"] for e in events),
    )


def test_tracing_identity_and_replay(benchmark):
    """Off = bit-for-bit ledger; on = trace replays the ledger exactly."""
    net = grid_2d(8, 8)
    partition = bfs_ball_partition(net, target_size=12, seed=3)
    values = [(v * 5 + 1) % 31 for v in range(net.n)]

    def experiment():
        rows = []
        data = {}
        for label, kwargs in ENGINES:
            # Explicit scoping (not the ambient default) so this bench
            # stays valid under the runner's own --trace wrapper.
            with use_tracer(NULL_TRACER):
                off = solve_pa(net, partition, values, SUM, seed=7, **kwargs)

            tracer = Tracer()
            with use_tracer(tracer):
                on = solve_pa(net, partition, values, SUM, seed=7, **kwargs)

            # Contract 1: tracing never perturbs the cost model.
            assert on.aggregates == off.aggregates
            assert _phase_log(on.ledger) == _phase_log(off.ledger)

            # Contract 2: the trace replays the ledger to the unit.
            ev_rounds, ev_msgs = _ledger_event_totals(tracer)
            assert (ev_rounds, ev_msgs) == (on.rounds, on.messages)

            n_events = len(tracer.events)
            n_spans = sum(1 for e in tracer.events if e.get("ph") == "X")
            if label == "scalar":
                data.update(rounds=off.rounds, messages=off.messages)
            data[f"events_{label}"] = n_events
            rows.append(
                (label, off.rounds, off.messages, ev_rounds, ev_msgs,
                 n_events, n_spans)
            )
        data["rows"] = rows
        return data

    data = run_once(benchmark, experiment)
    print_table(
        "E-obs: 8x8 grid PA per engine, tracing off vs on",
        ["engine", "rounds", "messages", "replayed rounds",
         "replayed msgs", "trace events", "spans"],
        data["rows"],
    )
    record(
        benchmark, rounds=data["rounds"], messages=data["messages"],
        trace_events_scalar=data["events_scalar"],
        trace_events_array=data["events_array"],
        trace_events_async=data["events_async"],
    )


def test_null_tracer_overhead(benchmark):
    """The disabled hook path costs one fetch + one flag check per phase."""
    net = grid_2d(8, 8)
    partition = bfs_ball_partition(net, target_size=12, seed=3)
    values = [(v * 5 + 1) % 31 for v in range(net.n)]
    reps = 3

    def experiment():
        # Isolated hook cost: the entire per-phase work when disabled.
        # NULL_TRACER is scoped explicitly so the measurement (and the
        # "off" walls below) stay valid under the runner's --trace.
        loops = 200_000
        enabled_hits = 0
        with use_tracer(NULL_TRACER):
            t0 = time.perf_counter()
            for _ in range(loops):
                tracer = current_tracer()
                if tracer.enabled:
                    enabled_hits += 1
            hook_ns = (time.perf_counter() - t0) / loops * 1e9
        assert enabled_hits == 0

        def median_wall(tracer):
            walls = []
            for _ in range(reps):
                t0 = time.perf_counter()
                with use_tracer(tracer):
                    solve_pa(net, partition, values, SUM, seed=7)
                walls.append(time.perf_counter() - t0)
            return sorted(walls)[reps // 2]

        wall_off = median_wall(NULL_TRACER)
        wall_on = median_wall(Tracer())
        return hook_ns, wall_off, wall_on

    hook_ns, wall_off, wall_on = run_once(benchmark, experiment)
    print_table(
        "E-obs: NullTracer overhead (walls reported, never gated)",
        ["metric", "value"],
        [
            ("hook fetch+check (ns/op)", f"{hook_ns:.0f}"),
            ("solve wall, tracing off (ms)", f"{wall_off * 1e3:.2f}"),
            ("solve wall, tracing on (ms)", f"{wall_on * 1e3:.2f}"),
            ("on/off ratio", f"{wall_on / wall_off:.2f}"),
        ],
    )
    if WALL_GATE:
        # Near-zero means the whole disabled hook is pointer-fetch cheap;
        # 5 µs/op would already be two orders of magnitude off.
        assert hook_ns < 5000, f"disabled hook costs {hook_ns:.0f} ns/op"
    res = solve_pa(net, partition, values, SUM, seed=7)
    record(
        benchmark,
        hook_ns_per_op=round(hook_ns),
        wall_off_seconds=round(wall_off, 4),
        wall_on_seconds=round(wall_on, 4),
        rounds=res.rounds,
        messages=res.messages,
    )
