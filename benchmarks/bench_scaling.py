"""Scaling sweep: PA and MST wall time / ledger cost up to n ~ 100k.

The asymptotic claims of Theorem 1.2 — O~(D + sqrt n) rounds, O~(m)
messages — only become visible orders of magnitude beyond the few-hundred-
node reproduction experiments.  This sweep drives the CSR data layer and
the bulk-dispatch engine across three graph families at 50k+ nodes:

* ``grid_2d`` — the high-diameter planar regime (D ~ sqrt n); row parts
  stay below the diameter, so PA runs wave-only, no shortcut claiming.
* ``random_regular`` — the low-diameter expander regime (D ~ log n);
  BFS-ball parts well above the diameter force the full sub-part /
  CoreFast shortcut machinery.
* ``preferential_attachment`` — heavy-tailed hub-dominated topology, the
  adversarial case for per-edge congestion.

MST (Corollary 1.3) runs on the expander family at smaller n: each
Boruvka phase rebuilds the PA pipeline, so its wall cost per node is an
order of magnitude above a single PA solve.

Like the theorem-1.2 sweep, everything runs with ``strict_bits=False``
and ``strict_edges=False``: the per-message audits are pure simulator
overhead once the test suite has pinned payload sizes and program sends
(parity is asserted by ``tests/congest/test_engine_edge.py``).  Ledger
values are identical either way.

``REPRO_SCALING_MAX_N`` caps the sweep (default 50000; raise to 100000+
locally to plot the full regime, lower it to smoke-test quickly).
"""

import math
import os
import time

from repro.bench import print_table, record, run_once
from repro.core import SUM, PASolver
from repro.graphs import (
    bfs_ball_partition,
    grid_2d,
    preferential_attachment,
    random_regular,
    row_partition,
)

MAX_N = int(os.environ.get("REPRO_SCALING_MAX_N", "50000"))

#: (family, sizes) — sizes filtered by MAX_N at run time.
GRID_SIDES = (50, 100, 223, 316)
GENERAL_SIZES = (2048, 8192, 50000, 100000)
MST_SIZES = (512, 1024, 2048)

#: BFS-ball target size for the general families: comfortably above the
#: expander diameter (so the shortcut machinery engages) but small enough
#: that per-edge congestion, not part size, dominates.
BALL_SIZE = 55


def _pa_once(net, partition, seed):
    """One full PA pipeline (tree + prepare + solve); returns metrics."""
    start = time.perf_counter()
    solver = PASolver(net, seed=seed, strict_bits=False, strict_edges=False)
    setup = solver.prepare(partition)
    result = solver.solve(setup, [1] * net.n, SUM, charge_setup=True)
    wall = time.perf_counter() - start
    assert all(
        result.aggregates[pid] == len(partition.members[pid])
        for pid in range(partition.num_parts)
    ), "PA sum must count each part's members"
    return wall, result.rounds, result.messages


def test_pa_scaling_families(benchmark):
    def experiment():
        rows = []
        walls = {}
        headline = None
        for side in GRID_SIDES:
            n = side * side
            if n > MAX_N:
                continue
            net = grid_2d(side, side)
            partition = row_partition(side, side)
            wall, rounds, messages = _pa_once(net, partition, seed=23)
            walls[f"grid_{n}"] = wall
            rows.append(("grid", n, net.m, partition.num_parts,
                         rounds, messages, f"{wall:.2f}"))
        for n in GENERAL_SIZES:
            if n > MAX_N:
                continue
            net = random_regular(n, 4, seed=21)
            partition = bfs_ball_partition(net, BALL_SIZE, seed=22)
            wall, rounds, messages = _pa_once(net, partition, seed=23)
            walls[f"regular_{n}"] = wall
            rows.append(("random-regular", n, net.m, partition.num_parts,
                         rounds, messages, f"{wall:.2f}"))
            headline = (n, rounds, messages)
        for n in GENERAL_SIZES:
            if n > MAX_N:
                continue
            net = preferential_attachment(n, 3, seed=21)
            partition = bfs_ball_partition(net, BALL_SIZE, seed=22)
            wall, rounds, messages = _pa_once(net, partition, seed=23)
            walls[f"prefattach_{n}"] = wall
            rows.append(("pref-attach", n, net.m, partition.num_parts,
                         rounds, messages, f"{wall:.2f}"))
        print_table(
            "PA scaling to 50k+ nodes (full pipeline, ledger-metered)",
            ["family", "n", "m", "parts", "rounds", "messages", "wall (s)"],
            rows,
        )
        return walls, headline

    walls, headline = run_once(benchmark, experiment)
    if headline is None:
        # REPRO_SCALING_MAX_N capped the sweep below the smallest general
        # size: nothing to gate, record the (grid-only) walls and stop.
        record(benchmark, largest_n=0,
               wall_seconds_by_workload={k: round(v, 4) for k, v in walls.items()})
        return
    largest_n, rounds, messages = headline
    if MAX_N >= 50000:
        assert largest_n >= 50000, (
            "the default sweep must include a PA run at the target scale"
        )
    # Sanity envelope, not a tuned bound: the paper's message guarantee is
    # O~(m); at 50k nodes / 100k edges a polylog factor is ~17^2, far
    # above the ~12x we observe, so this only catches gross regressions.
    m = 2 * largest_n
    assert messages <= m * max(1, math.log2(largest_n)) ** 2
    record(benchmark,
           rounds=rounds,
           messages=messages,
           largest_n=largest_n,
           wall_seconds_by_workload={k: round(v, 4) for k, v in walls.items()})


def test_mst_scaling(benchmark):
    from repro.algorithms.mst import minimum_spanning_tree
    from repro.analysis.reference import kruskal_mst
    from repro.graphs.weights import with_distinct_weights

    def experiment():
        rows = []
        walls = {}
        headline = None
        for n in MST_SIZES:
            if n > MAX_N:
                continue
            net = with_distinct_weights(random_regular(n, 4, seed=31), seed=5)
            start = time.perf_counter()
            solver = PASolver(
                net, seed=33, strict_bits=False, strict_edges=False
            )
            result = minimum_spanning_tree(net, seed=33, solver=solver)
            wall = time.perf_counter() - start
            walls[n] = wall
            rows.append((n, net.m, result.meta["phases"],
                         result.ledger.rounds, result.ledger.messages,
                         f"{wall:.2f}"))
            headline = (n, result.ledger.rounds, result.ledger.messages,
                        result.output)
        if headline is None:
            return walls, None  # sweep capped below the smallest MST size
        largest_n, rounds, messages, edges = headline
        net = with_distinct_weights(
            random_regular(largest_n, 4, seed=31), seed=5
        )
        assert set(edges) == set(kruskal_mst(net)), (
            "distributed MST must match the Kruskal oracle"
        )
        print_table(
            "MST scaling (Boruvka-over-PA, ledger-metered)",
            ["n", "m", "phases", "rounds", "messages", "wall (s)"],
            rows,
        )
        return walls, (largest_n, rounds, messages)

    walls, headline = run_once(benchmark, experiment)
    if headline is None:
        record(benchmark, largest_n=0)
        return
    largest_n, rounds, messages = headline
    record(benchmark,
           rounds=rounds,
           messages=messages,
           largest_n=largest_n,
           wall_seconds_by_n={str(n): round(w, 4) for n, w in walls.items()})
