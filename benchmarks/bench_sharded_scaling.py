"""Sharded multiprocess backend (PR 9): partition-parallel PA and MST.

The claim under test: ``PASession(backend="sharded")`` keeps the ledger
**bit-for-bit** identical to the serial array engine — same phase names,
same rounds, same messages, for every worker count — while spreading the
wave-phase work over forked workers.  Both experiments assert that
parity in-bench for workers in {1, 2, 4, 8} before recording any
timing, so a drift can never hide behind a speedup.

Scaling knobs:

* ``REPRO_SHARD_BENCH_N`` — target node count for the PA sweep (default
  4096; the issue's million-node measurement runs with
  ``REPRO_SHARD_BENCH_N=1000000``).  The grid is sized to the nearest
  square.
* ``REPRO_SHARD_BENCH_MST_N`` — node count for the MST sweep (default
  1024; end-to-end Boruvka is heavier per node than one PA pass).
* ``REPRO_SHARD_WORKERS`` — comma-separated worker counts (default
  ``1,2,4,8``).

Wall times are hardware facts: they are recorded (per worker count,
with per-shard walls and ship/merge overhead from
``session.shard_report``) but never gated — speedup depends on the
machine's core count, and a single-core runner legitimately measures a
flat curve.  The deterministic ledger assertions always run.
"""

import math
import os
import time

from repro import PASession
from repro.algorithms import minimum_spanning_tree
from repro.bench import print_table, record, run_once
from repro.core import SUM
from repro.graphs import bfs_ball_partition, grid_2d, with_distinct_weights

PA_N = int(os.environ.get("REPRO_SHARD_BENCH_N", "4096"))
MST_N = int(os.environ.get("REPRO_SHARD_BENCH_MST_N", "1024"))
WORKER_COUNTS = [
    int(w) for w in os.environ.get("REPRO_SHARD_WORKERS", "1,2,4,8").split(",")
]


def _grid_for(n):
    side = max(2, int(math.isqrt(n)))
    return grid_2d(side, side)


def _phase_sig(ledger):
    return [(p.name, p.rounds, p.messages) for p in ledger.phases()]


def test_pa_sharded_scaling(benchmark):
    """One PA pass per worker count vs the serial array engine."""

    def experiment():
        net = _grid_for(PA_N)
        partition = bfs_ball_partition(
            net, max(8, int(math.isqrt(net.n))), seed=5
        )
        values = [(v * 2654435761) % 1000 for v in range(net.n)]

        serial = PASession(net, seed=3)
        setup = serial.prepare(partition)
        t0 = time.perf_counter()
        expected = serial.solve(setup, values, SUM)
        serial_wall = time.perf_counter() - t0
        sig = _phase_sig(expected.ledger)

        rows = []
        curve = {}
        last_report = None
        for workers in WORKER_COUNTS:
            session = PASession(
                net, seed=3, backend="sharded",
                workers=workers, shard_min_n=0,
            )
            try:
                sh_setup = session.prepare(partition)
                t0 = time.perf_counter()
                result = session.solve(sh_setup, values, SUM)
                wall = time.perf_counter() - t0
                assert session.stats.sharded_solves == 1
                assert result.aggregates == expected.aggregates, (
                    f"sharded aggregates drift at workers={workers}"
                )
                assert _phase_sig(result.ledger) == sig, (
                    f"sharded ledger drift at workers={workers}"
                )
                report = session.shard_report
            finally:
                session.close()
            last_report = (workers, wall, report)
            curve[workers] = wall
            rows.append((
                workers, report["shards"], f"{wall:.3f}",
                f"{max(report['shard_wall_seconds']):.3f}",
                f"{report['ship_seconds']:.3f}",
                f"{report['merge_seconds']:.4f}",
            ))

        print_table(
            f"sharded PA scaling (n={net.n}, parts={partition.num_parts}, "
            f"serial {serial_wall:.3f}s)",
            ["workers", "shards", "wall (s)", "max shard (s)",
             "ship (s)", "merge (s)"],
            rows,
        )
        return expected.ledger, last_report, curve, serial_wall, net.n

    ledger, (workers, wall, report), curve, serial_wall, n = run_once(
        benchmark, experiment
    )
    record(
        benchmark,
        rounds=ledger.rounds,
        messages=ledger.messages,
        n=n,
        serial_wall_seconds=serial_wall,
        scaling_curve={str(w): t for w, t in curve.items()},
        workers=workers,
        shard_wall_seconds=report["shard_wall_seconds"],
        shard_merge_seconds=report["merge_seconds"],
    )


def test_mst_sharded_scaling(benchmark):
    """Full Boruvka MST per worker count vs the serial pipeline."""

    def experiment():
        net = with_distinct_weights(_grid_for(MST_N), seed=9)
        t0 = time.perf_counter()
        expected = minimum_spanning_tree(net, seed=5)
        serial_wall = time.perf_counter() - t0
        sig = _phase_sig(expected.ledger)
        mst_edges = sorted(expected.output)

        rows = []
        curve = {}
        last_report = None
        for workers in WORKER_COUNTS:
            session = PASession(
                net, seed=5, backend="sharded",
                workers=workers, shard_min_n=0,
            )
            try:
                t0 = time.perf_counter()
                result = minimum_spanning_tree(net, seed=5, session=session)
                wall = time.perf_counter() - t0
                assert session.stats.sharded_solves > 0
                assert sorted(result.output) == mst_edges, (
                    f"sharded MST drift at workers={workers}"
                )
                assert _phase_sig(result.ledger) == sig, (
                    f"sharded ledger drift at workers={workers}"
                )
                report = session.shard_report
            finally:
                session.close()
            last_report = (workers, report)
            curve[workers] = wall
            rows.append((
                workers, f"{wall:.3f}",
                f"{report['merge_seconds']:.4f}" if report else "-",
            ))

        print_table(
            f"sharded MST scaling (n={net.n}, serial {serial_wall:.3f}s)",
            ["workers", "wall (s)", "last merge (s)"],
            rows,
        )
        return expected.ledger, last_report, curve, serial_wall, net.n

    ledger, (workers, report), curve, serial_wall, n = run_once(
        benchmark, experiment
    )
    record(
        benchmark,
        rounds=ledger.rounds,
        messages=ledger.messages,
        n=n,
        serial_wall_seconds=serial_wall,
        scaling_curve={str(w): t for w, t in curve.items()},
        workers=workers,
        shard_wall_seconds=report["shard_wall_seconds"] if report else [],
        shard_merge_seconds=report["merge_seconds"] if report else 0.0,
    )
