"""E5 (Corollary 1.3): MST — simultaneous round/message competitiveness.

Paper claim: our MST is simultaneously round- and message-optimal; GHS-
style baselines are message-optimal but pay Theta(n)-type rounds on
high-diameter fragments.  We run both on a deep grid (fragments become
long paths) and report the two-axis tradeoff.
"""

from repro.analysis import kruskal_mst
from repro.algorithms import minimum_spanning_tree
from repro.baselines import ghs_mst
from repro.bench import print_table, record, run_once
from repro.graphs import grid_2d, with_distinct_weights


def test_mst_tradeoff(benchmark):
    def experiment():
        rows = []
        data = {}
        for label, net in (
            ("grid 2x40", with_distinct_weights(grid_2d(2, 40), seed=15)),
            ("grid 4x15", with_distinct_weights(grid_2d(4, 15), seed=16)),
        ):
            ref = kruskal_mst(net)
            ours = minimum_spanning_tree(net, seed=17)
            ghs = ghs_mst(net, seed=18)
            assert set(ours.output) == ref and set(ghs.output) == ref
            data[label] = (ours, ghs, net)
            rows.append(
                (label, net.exact_diameter(),
                 ours.rounds, ours.messages,
                 ghs.rounds, ghs.messages)
            )
        print_table(
            "Corollary 1.3: MST rounds/messages, ours vs GHS baseline",
            ["graph", "D", "ours rounds", "ours msgs",
             "GHS rounds", "GHS msgs"],
            rows,
        )
        return data

    data = run_once(benchmark, experiment)
    ours, ghs, net = data["grid 2x40"]
    # Who-wins shape: GHS is message-cheaper but pays rounds well above
    # the graph diameter on deep fragments; both are exact.
    assert ghs.messages < ours.messages
    assert ghs.rounds > 2 * net.exact_diameter()
    record(benchmark, ours_rounds=ours.rounds, ghs_rounds=ghs.rounds,
           ours_msgs=ours.messages, ghs_msgs=ghs.messages,
           rounds=ours.rounds, messages=ours.messages)
