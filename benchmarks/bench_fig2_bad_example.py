"""E1 + E14 (Figure 2, Section 3.1): the apex-grid message blowup.

Paper claim: block-aggregation PA needs Theta(nD) messages on the
D x (n-1)/D grid with an apex row-neighbor, while sub-part PA needs
O~(n) = O~(m); the gap grows linearly with D.  The ablation column
isolates the sub-part division (our waves vs. all-nodes block
aggregation on the *same* topology and parts).
"""

from repro.baselines import block_aggregation_pa
from repro.bench import print_table, record, run_once
from repro.core import SUM, solve_pa
from repro.graphs import grid_with_apex, row_partition

COLS = 16
DEPTHS = (4, 8, 16)


def _one_depth(rows):
    net = grid_with_apex(rows, COLS)
    part = row_partition(rows, COLS, include_apex=True)
    values = [1] * net.n
    naive = block_aggregation_pa(net, part, values, SUM, root=rows * COLS)
    ours = solve_pa(net, part, values, SUM, seed=1)
    assert ours.aggregates == naive.output
    wave_msgs = sum(
        p.messages for p in ours.ledger.phases() if p.name.startswith("pa_")
    )
    return net, naive, ours, wave_msgs


def test_fig2_message_blowup(benchmark):
    def experiment():
        rows_out = []
        series = {}
        for rows in DEPTHS:
            net, naive, ours, wave_msgs = _one_depth(rows)
            series[rows] = (naive.messages, wave_msgs, ours.messages,
                            ours.rounds)
            rows_out.append(
                (
                    rows,
                    net.n,
                    net.m,
                    naive.messages,
                    f"{naive.messages / net.n:.1f}",
                    wave_msgs,
                    f"{wave_msgs / net.n:.1f}",
                    ours.messages,
                )
            )
        print_table(
            "Figure 2 / Section 3.1: apex-grid messages vs depth D",
            ["D", "n", "m", "naive msgs", "naive/n", "PA-wave msgs",
             "wave/n", "ours total (incl. setup)"],
            rows_out,
        )
        return series

    series = run_once(benchmark, experiment)
    small, large = series[DEPTHS[0]], series[DEPTHS[-1]]
    # The paper's shape: naive per-node cost grows ~linearly in D while the
    # wave cost stays flat; the naive/wave gap widens with D.
    gap_small = small[0] / max(1, small[1])
    gap_large = large[0] / max(1, large[1])
    assert gap_large > gap_small
    record(benchmark, naive_gap_small=gap_small, naive_gap_large=gap_large,
           rounds=large[3], messages=large[2])
