"""Thurimella-style connected components labeling (Appendix A.2).

Given a subgraph ``H`` of the network (each node knows which of its
incident edges are in ``H``), every node learns a label such that two
nodes share a label iff they are ``H``-connected — the workhorse of the
Das Sarma et al. verification suite [5] and of Ghaffari's CDS algorithm.

As the paper observes, this *is* Part-Wise Aggregation: the parts are the
components of ``H`` (connected in G because they are connected in H), the
value is the node uid and ``f = min``; the minimum uid doubles as both the
component's elected leader and its label.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..congest.ledger import CostLedger, RunResult
from ..congest.network import Network, canonical_edge
from ..congest.schedule import Schedule
from ..graphs.partitions import Partition, partition_from_component_labels
from ..core.aggregation import MIN
from ..core.pa import PASetup, PASolver, RANDOMIZED
from ..runtime import PASession, ensure_session


def components_partition(
    net: Network, subgraph_edges: Sequence[Tuple[int, int]]
) -> Partition:
    """The partition of V into H-components (orchestrator bookkeeping).

    Node-locally this partition is *implicit* — each node knows its
    incident H-edges — which is exactly the input format of PA; the
    explicit Partition object mirrors that knowledge for the simulator.
    """
    adj: List[List[int]] = [[] for _ in range(net.n)]
    for u, v in subgraph_edges:
        if not net.has_edge(u, v):
            raise ValueError(f"subgraph edge {(u, v)} is not a network edge")
        adj[u].append(v)
        adj[v].append(u)
    label = [-1] * net.n
    for start in range(net.n):
        if label[start] != -1:
            continue
        label[start] = start
        stack = [start]
        while stack:
            x = stack.pop()
            for y in adj[x]:
                if label[y] == -1:
                    label[y] = start
                    stack.append(y)
    return partition_from_component_labels(label)


def cc_labeling(
    net: Network,
    subgraph_edges: Sequence[Tuple[int, int]],
    mode: str = RANDOMIZED,
    seed: int = 0,
    solver: Optional[PASolver] = None,
    session: Optional[PASession] = None,
    shortcut_provider: Optional[object] = None,
    family: Optional[str] = None,
    schedule: Optional[Schedule] = None,
    async_mode: bool = False,
    engine_impl: str = "array",
) -> RunResult:
    """Label H-components with their minimum member uid, via one PA solve.

    Returns labels per node in ``output`` (a list), with the PA setup and
    session kept in ``meta`` for callers chaining further aggregations
    over the same components (the verification suite does this heavily).
    A reusing session also memoizes the setup on the component partition,
    so repeated labelings of the same subgraph are construction-free.
    """
    session = ensure_session(
        session, net, mode=mode, seed=seed, solver=solver,
        shortcut_provider=shortcut_provider, family=family,
        schedule=schedule, async_mode=async_mode, engine_impl=engine_impl,
    )
    solver = session.solver
    partition = components_partition(net, subgraph_edges)
    setup = session.prepare(partition)
    result = session.solve(
        setup, [net.uid[v] for v in range(net.n)], MIN,
        phase_prefix="cc_label",
    )
    labels = [result.value_at_node[v] for v in range(net.n)]
    ledger = CostLedger()
    ledger.merge(solver.tree_ledger, prefix="tree:")
    ledger.merge(result.ledger)
    return RunResult(
        output=labels,
        ledger=ledger,
        meta={
            "setup": setup,
            "partition": partition,
            "solver": solver,
            "session": session,
        },
    )
