"""k-dominating sets of size O(n/k) (Corollary A.3).

The corollary generalizes the sub-part division machinery: grow clusters
by star joinings until each has at least ``k/6`` nodes (or spans the
graph); cluster leaders then form a k-dominating set of cardinality at
most ``6n/k``.  Crucially — and this is the paper's point versus the
classic O~(k)-round algorithms [26, 38] — the merging steps communicate
via Part-Wise Aggregation, so the round complexity is O~(D + sqrt n)
*independent of k*: each iteration is O(1) PA operations for the edge
choice, O(log* n) PA operations inside the star joining (Lemma 6.3), and
O(1) for relabeling.

Radius: incomplete clusters have fewer than ``k/6`` nodes, hence radius
below ``k/6``; star joinings bound the growth at completion, and the
benchmark measures the realized radius and size against the ``<= k`` and
``<= 6n/k`` targets.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..congest.ledger import CostLedger, RunResult
from ..congest.network import Network
from ..congest.schedule import Schedule
from ..graphs.partitions import partition_from_component_labels
from ..core.aggregation import MIN, MIN_TUPLE, SUM
from ..core.no_leader import PASuperOps
from ..core.pa import PASolver, RANDOMIZED
from ..core.star_joining import SuperEdge, compute_star_joining
from ..runtime import PASession, ensure_session


def k_dominating_set(
    net: Network,
    k: int,
    mode: str = RANDOMIZED,
    seed: int = 0,
    solver: Optional[PASolver] = None,
    session: Optional[PASession] = None,
    shortcut_provider: Optional[object] = None,
    family: Optional[str] = None,
    schedule: Optional[Schedule] = None,
    async_mode: bool = False,
) -> RunResult:
    """Compute a k-dominating set of size at most ~6n/k, via PA merging.

    Returns the set of cluster-leader nodes; ``meta`` carries the final
    cluster assignment so callers (and tests) can check the radius.  With
    a reusing session, each star-joining round coarsens the previous
    round's PA machinery instead of rebuilding it.
    """
    if k < 1:
        raise ValueError("k must be positive")
    session = ensure_session(
        session, net, mode=mode, seed=seed, solver=solver,
        shortcut_provider=shortcut_provider, family=family,
        schedule=schedule, async_mode=async_mode,
    )
    solver = session.solver
    ledger = CostLedger()
    ledger.merge(solver.tree_ledger, prefix="tree:")
    n = net.n
    # Clusters must reach k/6 nodes; a floor of 2 keeps small k meaningful
    # (singleton clusters dominate nothing beyond themselves).
    threshold = min(n, max(2, math.ceil(k / 6)))

    coarse: List[int] = list(range(n))       # cluster representative node
    leader_of: List[int] = list(range(n))    # cluster leader (the center)
    complete: Set[int] = set()               # cluster rep nodes done growing

    cap = 3 * max(1, math.ceil(math.log2(max(2, n)))) + 8
    prev_setup = None
    for _iteration in range(cap):
        partition = partition_from_component_labels(coarse)
        leaders = [leader_of[members[0]] for members in partition.members]
        setup = session.prepare_incremental(
            prev_setup, partition, leaders=leaders
        )
        ledger.merge(setup.setup_ledger, prefix="kdom_setup:")
        prev_setup = setup

        sizes = session.solve(
            setup, [1] * n, SUM, charge_setup=False, phase_prefix="kdom_size"
        )
        ledger.merge(sizes.ledger)
        for sid in range(partition.num_parts):
            if sizes.aggregates[sid] >= threshold:
                complete.add(coarse[partition.members[sid][0]])

        incomplete = [
            sid
            for sid in range(partition.num_parts)
            if coarse[partition.members[sid][0]] not in complete
        ]
        if not incomplete:
            break

        # Each incomplete cluster picks an edge to any other cluster.
        pick_values: List[object] = [None] * n
        incomplete_set = {
            coarse[partition.members[sid][0]] for sid in incomplete
        }
        for v in range(n):
            if coarse[v] not in incomplete_set:
                continue
            for nb in net.neighbors[v]:
                if coarse[nb] == coarse[v]:
                    continue
                cand = (net.uid[v], net.uid[nb])
                if pick_values[v] is None or cand < pick_values[v]:
                    pick_values[v] = cand
        picked = session.solve(
            setup, pick_values, MIN_TUPLE, charge_setup=False,
            phase_prefix="kdom_pick",
        )
        ledger.merge(picked.ledger)

        chosen: Dict[int, SuperEdge] = {}
        for sid in incomplete:
            choice = picked.aggregates.get(sid)
            if choice is None:
                # No out-edge: the cluster spans the whole network.
                complete.add(coarse[partition.members[sid][0]])
                continue
            uid_u, uid_nb = choice
            u = net.node_of_uid(uid_u)
            v_nb = net.node_of_uid(uid_nb)
            chosen[sid] = (u, v_nb, partition.part_of[v_nb])
        if not chosen:
            continue

        ops = PASuperOps(solver, setup, chosen, ledger, phase_prefix="kdom_star")
        ops.announce_requests()
        _receivers, joins = compute_star_joining(ops, set(chosen))

        for sid, (_u, _v, target_sid) in joins.items():
            target_rep = coarse[partition.members[target_sid][0]]
            new_leader = leaders[target_sid]
            for v in partition.members[sid]:
                coarse[v] = target_rep
                leader_of[v] = new_leader
    else:
        raise RuntimeError("k-dominating clustering did not converge")

    centers = sorted({leader_of[v] for v in range(n)})
    return RunResult(
        output=frozenset(centers),
        ledger=ledger,
        meta={
            "cluster_of": list(coarse),
            "center_of": list(leader_of),
            "threshold": threshold,
        },
    )
