"""O(log n)-approximate Minimum Connected Dominating Set (Corollary A.2).

Ghaffari [14] computes an O(log n)-approximate MCDS whose communication
bottleneck is Thurimella-style connected-component labeling — i.e. PA.
Per DESIGN.md substitution 7 we implement the classic unweighted variant
with the same bottleneck structure:

1. **Dominating set** by distributed greedy: O(log n) rounds of "join if
   your (span, uid) is maximal within two hops", where span counts the
   undominated closed neighborhood — the standard ln-Delta-approximate
   greedy, parallelized by 2-hop symmetry breaking.
2. **Connection** a la Guha-Khuller: cluster every node under an adjacent
   dominator, then run Boruvka-over-PA on the cluster partition, adding
   both endpoints of each chosen inter-cluster edge as connectors.  At
   most two connectors per merge keeps the final size within 3x the
   dominating set, preserving the O(log n) approximation against the CDS
   optimum (which is at least the domination optimum).

Every step is metered; the connection phase is where PA's
O~(D + sqrt n) rounds / O~(m) messages dominate, as in the corollary.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..congest.engine import Context, Engine, Inbox, Program
from ..congest.ledger import CostLedger, RunResult
from ..congest.network import Network
from ..congest.schedule import Schedule
from ..graphs.partitions import partition_from_component_labels
from ..core.aggregation import MIN, MIN_TUPLE
from ..core.no_leader import PASuperOps, _CrossProgram
from ..core.pa import PASolver, RANDOMIZED
from ..core.star_joining import compute_star_joining
from ..runtime import PASession, ensure_session


class _SpanExchangeProgram(Program):
    """Two rounds: spans to neighbors, then neighborhood maxima back out."""

    name = "cds_span_exchange"

    def __init__(self, net: Network, span: Sequence[int]) -> None:
        self.net = net
        self.span = span
        self.best_seen: List[Tuple[int, int]] = [
            (span[v], net.uid[v]) for v in range(net.n)
        ]
        self.best_two_hop: List[Tuple[int, int]] = list(self.best_seen)
        self._phase_one_done = False

    def on_start(self, ctx: Context) -> None:
        for v in range(self.net.n):
            for nb in self.net.neighbors[v]:
                ctx.send(v, nb, ("sp", self.span[v], self.net.uid[v]))

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        rebroadcast = False
        for _sender, payload in inbox:
            tag = payload[0]
            cand = (payload[1], payload[2])
            if tag == "sp":
                if cand > self.best_seen[node]:
                    self.best_seen[node] = cand
                rebroadcast = True
            else:
                if cand > self.best_two_hop[node]:
                    self.best_two_hop[node] = cand
        if rebroadcast:
            if self.best_two_hop[node] < self.best_seen[node]:
                self.best_two_hop[node] = self.best_seen[node]
            span, uid = self.best_seen[node]
            for nb in self.net.neighbors[node]:
                ctx.send(node, nb, ("mx", span, uid))


def _greedy_dominating_set(
    net: Network, ledger: CostLedger, engine: Engine
) -> Set[int]:
    """Distributed greedy dominating set with 2-hop symmetry breaking."""
    dominated = [False] * net.n
    dominators: Set[int] = set()
    cap = 4 * max(1, math.ceil(math.log2(max(2, net.n)))) + net.n
    iteration = 0
    while not all(dominated):
        iteration += 1
        if iteration > cap:
            raise RuntimeError("greedy dominating set failed to converge")
        span = [0] * net.n
        for v in range(net.n):
            count = 0 if dominated[v] else 1
            count += sum(1 for nb in net.neighbors[v] if not dominated[nb])
            span[v] = count
        # One round so neighbors know each other's domination status is
        # folded into the span computation above.
        ledger.charge_local("cds_status_exchange", rounds=1, messages=2 * net.m)

        exchange = _SpanExchangeProgram(net, span)
        ledger.charge(engine.run(exchange, max_ticks=4))

        joined = []
        for v in range(net.n):
            if span[v] == 0 or v in dominators:
                continue
            if (span[v], net.uid[v]) >= exchange.best_two_hop[v]:
                joined.append(v)
        for v in joined:
            dominators.add(v)
            dominated[v] = True
            for nb in net.neighbors[v]:
                dominated[nb] = True
        # Joiners announce membership to their neighborhoods.
        ledger.charge_local(
            "cds_join_announce", rounds=1,
            messages=sum(net.degree(v) for v in joined),
        )
    return dominators


def connected_dominating_set(
    net: Network,
    mode: str = RANDOMIZED,
    seed: int = 0,
    solver: Optional[PASolver] = None,
    session: Optional[PASession] = None,
    shortcut_provider: Optional[object] = None,
    family: Optional[str] = None,
    schedule: Optional[Schedule] = None,
    async_mode: bool = False,
) -> RunResult:
    """Compute an O(log n)-approximate CDS; returns the node set.

    The Boruvka-over-PA connection phase acquires PA through ``session``:
    a reusing session coarsens across merge phases, and a batching one
    folds the edge-pick and coin-spread aggregates into one wave pass.
    """
    session = ensure_session(
        session, net, mode=mode, seed=seed, solver=solver,
        shortcut_provider=shortcut_provider, family=family,
        schedule=schedule, async_mode=async_mode,
    )
    solver = session.solver
    ledger = CostLedger()
    ledger.merge(solver.tree_ledger, prefix="tree:")
    engine = solver.engine
    n = net.n

    dominators = _greedy_dominating_set(net, ledger, engine)
    cds: Set[int] = set(dominators)
    if n == 1:
        return RunResult(output=frozenset(cds or {0}), ledger=ledger, meta={})

    # Cluster every node under its minimum-uid adjacent dominator.
    cluster: List[int] = [-1] * n
    for v in range(n):
        if v in dominators:
            cluster[v] = v
            continue
        candidates = [nb for nb in net.neighbors[v] if nb in dominators]
        cluster[v] = min(candidates, key=lambda u: net.uid[u])
    ledger.charge_local("cds_cluster_assign", rounds=1, messages=2 * net.m)

    # Boruvka-over-PA on clusters: each phase every cluster component picks
    # one outgoing edge; both endpoints become connectors; coin merging.
    import random as _random

    rng = _random.Random(seed ^ 0xCD5)
    comp = list(cluster)
    cap = 4 * max(1, math.ceil(math.log2(max(2, n)))) + 8
    prev_setup = None
    for _phase in range(cap):
        partition = partition_from_component_labels(comp)
        if partition.num_parts == 1:
            break
        setup = session.prepare_incremental(prev_setup, partition)
        ledger.merge(setup.setup_ledger, prefix="cds_setup:")
        prev_setup = setup

        values: List[object] = [None] * n
        for v in range(n):
            for nb in net.neighbors[v]:
                if comp[nb] == comp[v]:
                    continue
                cand = (net.uid[v], net.uid[nb])
                if values[v] is None or cand < values[v]:
                    values[v] = cand
        # Coins depend only on the part ids, so they are drawn up front
        # (same independent-rng draw order as before) and their spread
        # shares the pick's wave pass when the session batches.
        coins = {
            sid: rng.random() < 0.5 for sid in range(partition.num_parts)
        }
        coin_values: List[object] = [
            coins[partition.part_of[v]] * 1
            if v == setup.leaders[partition.part_of[v]] else None
            for v in range(n)
        ]
        batch = session.solve_many(
            setup,
            [(values, MIN_TUPLE), (coin_values, MIN)],
            charge_setup=False,
            phase_prefix="cds_pickcoins",
            phase_prefixes=["cds_pick", "cds_coins"],
        )
        ledger.merge(batch.ledger)
        picked = batch.per_agg[0]

        merged_any = False
        for sid in range(partition.num_parts):
            choice = picked.aggregates.get(sid)
            if choice is None or coins[sid]:
                continue
            uid_u, uid_nb = choice
            u = net.node_of_uid(uid_u)
            v_nb = net.node_of_uid(uid_nb)
            target_sid = partition.part_of[v_nb]
            if not coins[target_sid]:
                continue
            cds.add(u)
            cds.add(v_nb)
            target_rep = comp[partition.members[target_sid][0]]
            for v in partition.members[sid]:
                comp[v] = target_rep
            merged_any = True
        # Coin exchange accounting (one round over chosen edges; the coin
        # spread itself ran with the pick above).
        ledger.charge_local("cds_coin_exchange", rounds=2,
                            messages=2 * partition.num_parts)
        if not merged_any:
            continue
    else:
        raise RuntimeError("CDS connection phase did not converge")

    return RunResult(
        output=frozenset(cds),
        ledger=ledger,
        meta={"dominators": frozenset(dominators), "connectors": len(cds) - len(dominators)},
    )
