"""Minimum Spanning Tree via Part-Wise Aggregation (Corollary 1.3).

Boruvka's algorithm [34], with fragments as PA parts: every phase, each
fragment finds its minimum-weight outgoing edge (MOE) with one PA solve
(the tuple ``(weight, uid_u, uid_v)`` under lexicographic MIN), merges
fragments along chosen MOEs, and relabels — O(log n) phases, each costing
O~(PA) (Theorem 1.2's pipeline is rebuilt per phase because the partition
changes; the BFS tree ``T`` is built once).

Two merging disciplines, both controlling fragment-chain formation:

* ``"coin"`` (default for randomized mode): each fragment flips a fair
  coin; tails fragments whose MOE points at a heads fragment merge into
  it.  A quarter of fragments merge in expectation — the classic
  randomized symmetry breaking.
* ``"star"`` (default for deterministic mode): Algorithm 5's star joining
  over the MOE digraph, with Cole-Vishkin color exchanges routed through
  PA (the same machinery as Algorithm 9).

An MOE is added to the tree exactly when its fragment merges along it, so
the output has exactly n-1 edges and equals the (unique, under distinct
weights) MST — verified against Kruskal in the tests.

PA is acquired through a :class:`~repro.runtime.PASession`: with its
opt-ins off (the default) every phase prepares and solves exactly as the
historical code did, bit for bit; with ``reuse`` on, each Boruvka merge
*coarsens* the previous phase's division and shortcut instead of
rebuilding, and with ``batch`` on, the MOE and coin aggregates share one
wave pass per phase.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..congest.engine import Context, Engine, Inbox, Program
from ..congest.ledger import CostLedger, RunResult
from ..congest.network import Network, canonical_edge
from ..congest.schedule import Schedule
from ..graphs.partitions import Partition, partition_from_component_labels
from ..core.aggregation import MIN, MIN_TUPLE, OR
from ..core.no_leader import PASuperOps, _CrossProgram
from ..core.pa import DETERMINISTIC, PASolver, RANDOMIZED
from ..core.star_joining import SuperEdge, compute_star_joining
from ..core.treeops import broadcast as tree_broadcast
from ..core.treeops import convergecast as tree_convergecast
from ..runtime import PASession, ensure_session

COIN = "coin"
STAR = "star"


def _moe_values(
    net: Network, comp: Sequence[int]
) -> List[Optional[Tuple[int, int, int]]]:
    """Per-node candidate MOE: min (weight, uid_v, uid_nb) over out-edges.

    Walks the raw CSR arrays — this runs once per Boruvka phase over every
    edge, and the flat slices skip the lazily materialized ``neighbors``
    view (the adjacency order is the same, so the chosen tuples are
    identical).
    """
    offsets, adj = net.adjacency_csr()
    uid = net.uid
    weight = net.weight
    values: List[Optional[Tuple[int, int, int]]] = [None] * net.n
    for v in range(net.n):
        best = None
        my_comp = comp[v]
        my_uid = uid[v]
        for i in range(offsets[v], offsets[v + 1]):
            nb = adj[i]
            if comp[nb] == my_comp:
                continue
            cand = (weight(v, nb), my_uid, uid[nb])
            if best is None or cand < best:
                best = cand
        values[v] = best
    return values


def minimum_spanning_tree(
    net: Network,
    mode: str = RANDOMIZED,
    seed: int = 0,
    merging: Optional[str] = None,
    solver: Optional[PASolver] = None,
    max_phases: Optional[int] = None,
    session: Optional[PASession] = None,
    shortcut_provider: Optional[object] = None,
    family: Optional[str] = None,
    schedule: Optional[Schedule] = None,
    async_mode: bool = False,
    engine_impl: str = "array",
) -> RunResult:
    """Distributed MST; returns the edge set with a fully metered ledger.

    The network must be connected and weighted.  ``merging`` defaults to
    coin flips in randomized mode and star joinings in deterministic mode.
    PA is acquired through ``session`` (see :class:`repro.runtime.PASession`
    for the reuse/batch opt-ins); ``shortcut_provider``/``family`` select a
    family-aware shortcut construction for every phase's pipeline.
    """
    if net.weights is None:
        raise ValueError("MST requires a weighted network")
    if merging is None:
        merging = COIN if mode == RANDOMIZED else STAR
    session = ensure_session(
        session, net, mode=mode, seed=seed, solver=solver,
        shortcut_provider=shortcut_provider, family=family,
        schedule=schedule, async_mode=async_mode, engine_impl=engine_impl,
    )
    solver = session.solver
    rng = random.Random(seed ^ 0xB0B)
    ledger = CostLedger()
    ledger.merge(solver.tree_ledger, prefix="tree:")

    n = net.n
    comp: List[int] = list(range(n))        # fragment representative node
    leader_of: List[int] = list(range(n))   # fragment leader node
    mst_edges: Set[Tuple[int, int]] = set()

    if max_phases is None:
        max_phases = 4 * max(1, math.ceil(math.log2(max(2, n)))) + 8

    prev_setup = None
    for phase in range(1, max_phases + 1):
        partition = partition_from_component_labels(comp)
        if partition.num_parts == 1:
            break
        leaders = [leader_of[members[0]] for members in partition.members]

        # Every node refreshes which neighbors are outside its fragment
        # (one announce round; the PA input knowledge of Definition 1.1).
        ledger.charge_local("mst_neighbor_exchange", rounds=1, messages=2 * net.m)

        setup = session.prepare_incremental(prev_setup, partition, leaders=leaders)
        ledger.merge(setup.setup_ledger, prefix=f"phase{phase}_setup:")
        prev_setup = setup

        if merging == COIN:
            # Coins depend only on the fragment ids, so they are drawn
            # before the solves and their broadcast shares the MOE's wave
            # pass when the session batches (drawn from an independent
            # rng, so the draw order matches the historical code).
            coins = {
                sid: rng.random() < 0.5 for sid in range(partition.num_parts)
            }
            coin_values: List[object] = [None] * n
            for sid in range(partition.num_parts):
                coin_values[setup.leaders[sid]] = 1 if coins[sid] else 0
            batch = session.solve_many(
                setup,
                [(_moe_values(net, comp), MIN_TUPLE), (coin_values, MIN)],
                charge_setup=False,
                phase_prefix=f"phase{phase}_moecoins",
                phase_prefixes=[f"phase{phase}_moe", f"phase{phase}_coins"],
            )
            ledger.merge(batch.ledger)
            moe = batch.per_agg[0]
        else:
            coins = None
            moe = session.solve(
                setup, _moe_values(net, comp), MIN_TUPLE, charge_setup=False,
                phase_prefix=f"phase{phase}_moe",
            )
            ledger.merge(moe.ledger)

        chosen: Dict[int, SuperEdge] = {}
        for sid, choice in moe.aggregates.items():
            if choice is None:
                continue
            _w, uid_u, uid_nb = choice
            u = net.node_of_uid(uid_u)
            v_nb = net.node_of_uid(uid_nb)
            chosen[sid] = (u, v_nb, partition.part_of[v_nb])
        if not chosen:
            break

        if merging == COIN:
            merges = _coin_merges(
                solver, setup, partition, chosen, coins, ledger
            )
        else:
            merges = _star_merges(solver, setup, partition, chosen, ledger)

        if not merges and merging == COIN:
            continue  # unlucky coins; retry next phase

        # Merging fragments mark their MOE (one round over those edges) and
        # relabel via a PA broadcast of the new identity.
        mark_sends = []
        relabel_values: List[object] = [None] * n
        for sid, target_sid in merges.items():
            u, v_nb, _t = chosen[sid]
            mark_sends.append((u, v_nb, ("mark",)))
            new_leader = leaders[target_sid]
            target_rep = comp[partition.members[target_sid][0]]
            relabel_values[u] = (net.uid[new_leader], net.uid[target_rep])
            mst_edges.add(canonical_edge(u, v_nb))
        mark = _CrossProgram(mark_sends)
        mark.name = "mst_mark"
        ledger.charge(solver.engine.run(mark, max_ticks=2))

        relabel = session.solve(
            setup, relabel_values, MIN, charge_setup=False,
            phase_prefix=f"phase{phase}_relabel",
        )
        ledger.merge(relabel.ledger)
        for sid, update in relabel.aggregates.items():
            if update is None or sid not in merges:
                continue
            new_leader_uid, new_rep_uid = update
            new_leader = net.node_of_uid(new_leader_uid)
            new_rep = net.node_of_uid(new_rep_uid)
            for v in partition.members[sid]:
                comp[v] = new_rep
                leader_of[v] = new_leader

        # Termination detection: convergecast "any fragment still active"
        # over the global BFS tree (O(D) rounds, O(n) messages).
        det_values = [1 if comp[v] != comp[0] else 0 for v in range(n)]
        at_root, _ = tree_convergecast(
            solver.engine, solver.tree, OR, det_values, ledger,
            name="mst_termination",
        )
        if not at_root.get(solver.tree.roots[0], 0):
            break

    partition = partition_from_component_labels(comp)
    if partition.num_parts != 1:
        raise RuntimeError("MST did not converge within the phase budget")
    if len(mst_edges) != n - 1:
        raise RuntimeError(
            f"MST has {len(mst_edges)} edges, expected {n - 1}"
        )
    return RunResult(
        output=frozenset(mst_edges),
        ledger=ledger,
        meta={"phases": phase, "mode": mode, "merging": merging},
    )


def _coin_merges(
    solver: PASolver,
    setup,
    partition: Partition,
    chosen: Dict[int, SuperEdge],
    coins: Dict[int, bool],
    ledger: CostLedger,
) -> Dict[int, int]:
    """Coin-flip symmetry breaking: tails merge into heads they point at.

    The coins were already drawn and PA-broadcast alongside the MOE solve
    (sharing its wave pass when the session batches); what remains is the
    two-round exchange over MOE edges telling each tail endpoint its
    target's coin.  Returns {merging sid: target sid}.
    """
    net = solver.net

    # MOE endpoints exchange coins across the chosen edges (both endpoints
    # already know their own fragment's coin from the broadcast).  Mutual
    # MOE pairs schedule the same directed edge twice with identical
    # payloads; dedupe keeps the per-edge capacity honest.
    sends: Dict[Tuple[int, int], Tuple[int, int, object]] = {}
    for sid, (u, v_nb, _t) in chosen.items():
        sends[(u, v_nb)] = (u, v_nb, ("coin", 1 if coins[sid] else 0))
        target_coin = coins[partition.part_of[v_nb]]
        sends.setdefault(
            (v_nb, u), (v_nb, u, ("coin", 1 if target_coin else 0))
        )
    program = _CrossProgram(list(sends.values()))
    program.name = "mst_coin_exchange"
    ledger.charge(solver.engine.run(program, max_ticks=2))

    merges: Dict[int, int] = {}
    for sid, (u, v_nb, target_sid) in chosen.items():
        if not coins[sid] and coins[target_sid]:
            merges[sid] = target_sid
    return merges


def _star_merges(
    solver: PASolver,
    setup,
    partition: Partition,
    chosen: Dict[int, SuperEdge],
    ledger: CostLedger,
) -> Dict[int, int]:
    """Deterministic merging: Algorithm 5 over the MOE digraph."""
    ops = PASuperOps(solver, setup, chosen, ledger, phase_prefix="mst_star")
    ops.announce_requests()
    _receivers, joins = compute_star_joining(ops, set(chosen))
    return {sid: edge[2] for sid, edge in joins.items()}
