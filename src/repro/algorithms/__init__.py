"""Applications of Part-Wise Aggregation (Corollaries 1.3-1.5, A.1-A.3)."""

from .cds import connected_dominating_set
from .components import cc_labeling, components_partition
from .kdominating import k_dominating_set
from .mincut import approx_min_cut
from .mst import COIN, STAR, minimum_spanning_tree
from .sssp import approx_sssp
from .verification import (
    verify_bipartiteness,
    verify_connectivity,
    verify_cut,
    verify_cycle_containment,
    verify_spanning_tree,
    verify_st_connectivity,
    verify_st_cut,
)

__all__ = [
    "COIN",
    "STAR",
    "approx_min_cut",
    "approx_sssp",
    "cc_labeling",
    "components_partition",
    "connected_dominating_set",
    "k_dominating_set",
    "minimum_spanning_tree",
    "verify_bipartiteness",
    "verify_connectivity",
    "verify_cut",
    "verify_cycle_containment",
    "verify_spanning_tree",
    "verify_st_connectivity",
    "verify_st_cut",
]
