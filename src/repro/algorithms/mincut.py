"""(1 + eps)-approximate minimum cut (Corollary 1.4).

Ghaffari-Haeupler [15, Section 5.2]: sample a skeleton (Karger), greedily
pack O(log n) * poly(1/eps) spanning trees (Thorup), and find the single
tree edge whose removal 1-respects an approximately minimum cut; the
communication bottlenecks are the MST computations and PA.

Our rendition (DESIGN.md substitution 5):

* **Tree packing**: ``k = O(log n / eps^2)`` spanning trees computed with
  the PA-based MST of Corollary 1.3, under load-based weights (each tree
  increments the load of its edges; the next tree avoids loaded edges) —
  the greedy packing at the heart of Thorup's argument.
* **1-respecting cut evaluation** per tree, distributed on the tree
  itself: subtree interval labeling (two passes), one round of endpoint
  interval exchange, LCA routing of each non-tree edge's weight (metered
  climb along the tree), and a final convergecast of
  ``cut(sub(v)) = wdeg(sub(v)) - 2 * w_lca(sub(v))``.
* The best (value, tree edge) over all trees is the answer; the defining
  subtree is broadcast so every node learns its side — the output format
  of Corollary 1.4.

The eps dependence enters through the packing size; rounds for the cut
evaluation are O(depth(T*)) per tree rather than [15]'s sketch-based
O~(D + sqrt n) — flagged in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..congest.engine import Context, Engine, Inbox, Program
from ..congest.ledger import CostLedger, RunResult
from ..congest.network import Network, canonical_edge
from ..congest.schedule import Schedule
from ..core.aggregation import SUM, Aggregation
from ..core.pa import PASolver, RANDOMIZED
from ..core.queued import QueuedProgram
from ..runtime import PASession, ensure_session
from ..core.treeops import broadcast as tree_broadcast
from ..core.trees import ABSENT, ROOT, RootedForest
from .mst import minimum_spanning_tree
from .sssp import _root_tree_at


class _IntervalProgram(Program):
    """Two tree passes: subtree sizes up, preorder intervals down."""

    name = "mincut_intervals"

    def __init__(self, tree: RootedForest) -> None:
        self.tree = tree
        n = tree.net.n
        self.size: List[int] = [1] * n
        self.interval: List[Tuple[int, int]] = [(0, 0)] * n
        self._pending: List[int] = [
            len(tree.children[v]) for v in range(n)
        ]
        self._child_sizes: List[Dict[int, int]] = [dict() for _ in range(n)]

    def _fire_up(self, ctx: Context, v: int) -> None:
        self.size[v] = 1 + sum(self._child_sizes[v].values())
        parent = self.tree.parent[v]
        if parent >= 0:
            ctx.send(v, parent, ("sz", self.size[v]))
        else:
            self._assign(ctx, v, 0)

    def _assign(self, ctx: Context, v: int, start: int) -> None:
        self.interval[v] = (start, start + self.size[v] - 1)
        offset = start + 1
        for child in self.tree.children[v]:
            ctx.send(v, child, ("iv", offset))
            offset += self._child_sizes[v][child]

    def on_start(self, ctx: Context) -> None:
        for v in range(self.tree.net.n):
            if self._pending[v] == 0 and self.tree.member(v):
                self._fire_up(ctx, v)

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        for sender, payload in inbox:
            if payload[0] == "sz":
                self._child_sizes[node][sender] = payload[1]
                self._pending[node] -= 1
                if self._pending[node] == 0:
                    self._pending[node] = -1
                    self._fire_up(ctx, node)
            else:
                self._assign(ctx, node, payload[1])


class _LcaRouteProgram(QueuedProgram):
    """Route every non-tree edge's weight up the tree to its LCA.

    Each non-tree edge (x, y) starts at x (its canonical endpoint) and
    climbs parent pointers until reaching the first node whose preorder
    interval contains both endpoints — the LCA — where the weight is
    accumulated into ``lca_weight``.  One packet per edge; climbs are
    metered and share edges under the queue discipline.
    """

    name = "mincut_lca_route"

    def __init__(
        self,
        tree: RootedForest,
        interval: Sequence[Tuple[int, int]],
        packets: List[Tuple[int, int, int]],
    ) -> None:
        """``packets``: (start_node, other_preorder, weight) per non-tree edge."""
        super().__init__(capacity=1)
        self.tree = tree
        self.interval = interval
        self.packets = packets
        self.lca_weight: List[int] = [0] * tree.net.n

    def _route(self, ctx: Context, node: int, other: int, weight: int) -> None:
        lo, hi = self.interval[node]
        if lo <= other <= hi:
            self.lca_weight[node] += weight
            return
        parent = self.tree.parent[node]
        self.enqueue(ctx, node, parent, (0,), ("lc", other, weight))

    def on_start(self, ctx: Context) -> None:
        for start, other, weight in self.packets:
            self._route(ctx, start, other, weight)

    def handle(self, ctx: Context, node: int, inbox: Inbox) -> None:
        for _sender, payload in inbox:
            _tag, other, weight = payload
            self._route(ctx, node, other, weight)


class _CutConvergecast(Program):
    """Convergecast (wdeg sum, lca-weight sum) and record each subtree's cut."""

    name = "mincut_cut_values"

    def __init__(self, tree: RootedForest, wdeg: Sequence[int],
                 lca_weight: Sequence[int]) -> None:
        self.tree = tree
        self.wdeg = wdeg
        self.lca_weight = lca_weight
        n = tree.net.n
        self._pending = [len(tree.children[v]) for v in range(n)]
        self._acc: List[Tuple[int, int]] = [
            (wdeg[v], lca_weight[v]) for v in range(n)
        ]
        #: cut value of each node's subtree (meaningless at the root)
        self.cut_value: List[Optional[int]] = [None] * n

    def _fire(self, ctx: Context, v: int) -> None:
        a, b = self._acc[v]
        self.cut_value[v] = a - 2 * b
        parent = self.tree.parent[v]
        if parent >= 0:
            ctx.send(v, parent, (a, b))

    def on_start(self, ctx: Context) -> None:
        for v in range(self.tree.net.n):
            if self._pending[v] == 0:
                self._fire(ctx, v)

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        for _sender, payload in inbox:
            a, b = payload
            pa, pb = self._acc[node]
            self._acc[node] = (pa + a, pb + b)
            self._pending[node] -= 1
        if self._pending[node] == 0:
            self._pending[node] = -1
            self._fire(ctx, node)


def _one_respecting_min_cut(
    net: Network,
    tree_edges: Set[Tuple[int, int]],
    engine: Engine,
    ledger: CostLedger,
) -> Tuple[int, int]:
    """Best cut of the form (subtree(v), rest); returns (value, v)."""
    root = 0
    tree = _root_tree_at(net, tree_edges, root)

    intervals = _IntervalProgram(tree)
    ledger.charge(engine.run(intervals, max_ticks=2 * tree.height() + 6))

    # One round: endpoints exchange preorder numbers (2m messages).
    ledger.charge_local("mincut_interval_exchange", rounds=1, messages=2 * net.m)

    packets = []
    for u, v in net.edges:
        if canonical_edge(u, v) in tree_edges:
            continue
        packets.append((u, intervals.interval[v][0], net.weight(u, v)))
    router = _LcaRouteProgram(tree, intervals.interval, packets)
    budget = 16 + 2 * tree.height() + 2 * len(packets)
    ledger.charge(engine.run(router, max_ticks=budget))

    # Tree edges have their LCA at the upper endpoint by construction.
    lca_weight = list(router.lca_weight)
    for v in range(net.n):
        parent = tree.parent[v]
        if parent >= 0:
            lca_weight[parent] += net.weight(v, parent)

    wdeg = [
        sum(net.weight(v, nb) for nb in net.neighbors[v]) for v in range(net.n)
    ]
    cuts = _CutConvergecast(tree, wdeg, lca_weight)
    ledger.charge(engine.run(cuts, max_ticks=tree.height() + 4))

    best_value: Optional[int] = None
    best_node = -1
    for v in range(net.n):
        if tree.parent[v] < 0:
            continue
        value = cuts.cut_value[v]
        if best_value is None or value < best_value:
            best_value = value
            best_node = v
    return best_value, best_node


def approx_min_cut(
    net: Network,
    epsilon: float = 0.5,
    mode: str = RANDOMIZED,
    seed: int = 0,
    solver: Optional[PASolver] = None,
    max_trees: Optional[int] = None,
    session: Optional[PASession] = None,
    shortcut_provider: Optional[object] = None,
    family: Optional[str] = None,
    schedule: Optional[Schedule] = None,
    async_mode: bool = False,
) -> RunResult:
    """(1+eps)-approximate min cut; every node learns its side.

    Returns ``output = (cut_value, side)`` where ``side`` is a 0/1 list
    per node (1 = inside the cut-defining subtree).

    The tree-packing loop is k full MST builds over reweighted copies of
    the same topology; with a *reusing* session all k share one BFS tree,
    one singleton-partition setup (a fingerprint cache hit from the
    second tree on), and per-phase coarsening inside each Boruvka run.
    Without one, each packing constructs its own pipeline — the
    historical behavior, bit for bit.
    """
    if net.weights is None:
        raise ValueError("min-cut requires a weighted network")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    session = ensure_session(
        session, net, mode=mode, seed=seed, solver=solver,
        shortcut_provider=shortcut_provider, family=family,
        schedule=schedule, async_mode=async_mode,
    )
    solver = session.solver
    ledger = CostLedger()
    ledger.merge(solver.tree_ledger, prefix="tree:")

    log_n = max(1, math.ceil(math.log2(max(2, net.n))))
    k = max(2, math.ceil(log_n / (epsilon * epsilon)))
    if max_trees is not None:
        k = min(k, max_trees)

    loads: Dict[Tuple[int, int], int] = {e: 0 for e in net.edges}
    rank = {e: i for i, e in enumerate(net.edges)}
    best_value: Optional[int] = None
    best_tree: Optional[Set[Tuple[int, int]]] = None
    best_node = -1

    for t in range(k):
        # Greedy packing: prefer lightly loaded edges; normalize by weight
        # so heavy edges absorb more trees (Thorup's fractional packing).
        packed_weights = {
            e: 1 + loads[e] * (net.m + 1) * 64 // max(1, net.weights[e])
            + (rank[e] + t) % (net.m + 1)
            for e in net.edges
        }
        packed = Network(
            net.edges, n=net.n, weights=packed_weights,
        )
        if session.reuse or session.batch:
            # Same topology and uid permutation, different weights: the
            # session's tree, engine and memoized setups carry over.
            mst = minimum_spanning_tree(
                packed, mode=mode, seed=seed + t, session=session
            )
        else:
            mst = minimum_spanning_tree(
                packed, mode=mode, seed=seed + t, solver=None,
                shortcut_provider=session.shortcut_provider,
            )
        ledger.merge(mst.ledger, prefix=f"pack{t}:")
        tree_edges = set(mst.output)
        for e in tree_edges:
            loads[e] += 1

        value, node = _one_respecting_min_cut(
            net, tree_edges, solver.engine, ledger
        )
        if best_value is None or value < best_value:
            best_value = value
            best_tree = tree_edges
            best_node = node

    # Broadcast the winning subtree: nodes below best_node are side 1.
    tree = _root_tree_at(net, best_tree, 0)
    side = [0] * net.n
    for v in tree.subtree_nodes(best_node):
        side[v] = 1
    ledger.charge_local(
        "mincut_side_broadcast", rounds=tree.height() + 1, messages=net.n
    )
    return RunResult(
        output=(best_value, side),
        ledger=ledger,
        meta={"trees_packed": k, "cut_edge_child": best_node},
    )
