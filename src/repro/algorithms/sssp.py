"""Approximate single-source shortest paths (Corollary 1.5).

Corollary 1.5 (via Haeupler-Li [18]) trades approximation quality against
cost through a parameter ``beta``: O~((1/beta) * (bD + c)) rounds and
O~(m / beta) messages buy an L^{O(log log n)/log(1/beta)} approximation.
The full Haeupler-Li construction (hierarchical low-diameter decomposition
with PA-traversed zero-weight components) is replaced here — DESIGN.md
substitution 6 — by a hybrid with the same cost/quality tradeoff shape:

1. **Hop-limited Bellman-Ford**: ``h = ceil(1/beta)`` synchronous
   relaxation rounds give exact distances to every node within ``h`` hops
   of the source — cost exactly ``h`` rounds and at most ``h * 2m``
   messages, the 1/beta factor of the corollary.
2. **Tree backbone**: distances along a distributed MST (built with the
   PA pipeline of Corollary 1.3, which is where bD + c enters) are
   computed by a weight-accumulating broadcast; they bound every node's
   estimate, so far-away nodes get tree-stretch estimates instead of
   nothing.

The estimate is the minimum of the two; it never underestimates the true
distance and the measured stretch falls as ``beta`` does, which is the
tradeoff the benchmark (E7) reports.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..congest.engine import Context, Engine, Inbox, Program
from ..congest.ledger import CostLedger, RunResult
from ..congest.network import Network, canonical_edge
from ..congest.schedule import Schedule
from ..core.pa import PASolver, RANDOMIZED
from ..core.trees import ABSENT, ROOT, RootedForest
from ..runtime import PASession, ensure_session
from .mst import minimum_spanning_tree


class _BellmanFordProgram(Program):
    """``h`` rounds of synchronous distance relaxation from the source."""

    name = "sssp_bellman_ford"

    def __init__(self, net: Network, source: int, hops: int) -> None:
        self.net = net
        self.source = source
        self.hops = hops
        self.dist: List[Optional[int]] = [None] * net.n
        self.dist[source] = 0

    def _relax_out(self, ctx: Context, v: int, remaining: int) -> None:
        if remaining <= 0:
            return
        base = self.dist[v]
        for nb in self.net.neighbors[v]:
            ctx.send(v, nb, (base + self.net.weight(v, nb), remaining - 1))

    def on_start(self, ctx: Context) -> None:
        self._relax_out(ctx, self.source, self.hops)

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        best = None
        remaining = 0
        for _sender, payload in inbox:
            dist, rem = payload
            if best is None or dist < best:
                best = dist
                remaining = max(remaining, rem)
        if best is not None and (self.dist[node] is None or best < self.dist[node]):
            self.dist[node] = best
            self._relax_out(ctx, node, remaining)


class _TreeDistanceProgram(Program):
    """Accumulate weighted distance from the root down a spanning tree."""

    name = "sssp_tree_distance"

    def __init__(self, net: Network, tree: RootedForest, root: int) -> None:
        self.net = net
        self.tree = tree
        self.root = root
        self.dist: List[Optional[int]] = [None] * net.n
        self.dist[root] = 0

    def on_start(self, ctx: Context) -> None:
        for child in self.tree.children[self.root]:
            ctx.send(self.root, child, self.net.weight(self.root, child))

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        for _sender, dist in inbox:
            self.dist[node] = dist
            for child in self.tree.children[node]:
                ctx.send(node, child, dist + self.net.weight(node, child))


def _root_tree_at(net: Network, edges: Set[Tuple[int, int]], root: int) -> RootedForest:
    """Orient an edge set (a spanning tree) away from ``root``."""
    adj: List[List[int]] = [[] for _ in range(net.n)]
    for u, v in edges:
        adj[u].append(v)
        adj[v].append(u)
    parent = [ABSENT] * net.n
    parent[root] = ROOT
    stack = [root]
    while stack:
        x = stack.pop()
        for y in adj[x]:
            if parent[y] == ABSENT:
                parent[y] = x
                stack.append(y)
    return RootedForest(net, parent)


def approx_sssp(
    net: Network,
    source: int,
    beta: float = 0.1,
    mode: str = RANDOMIZED,
    seed: int = 0,
    solver: Optional[PASolver] = None,
    tree_edges: Optional[Set[Tuple[int, int]]] = None,
    session: Optional[PASession] = None,
    shortcut_provider: Optional[object] = None,
    family: Optional[str] = None,
    schedule: Optional[Schedule] = None,
    async_mode: bool = False,
) -> RunResult:
    """Approximate SSSP: every node learns ``dv >= d(s, v)``.

    ``beta`` controls the tradeoff: the Bellman-Ford horizon is
    ``ceil(1/beta)`` hops.  ``tree_edges`` lets callers amortize one MST
    across many sources; otherwise the MST is built (and charged) here —
    through ``session``, so its Boruvka phases coarsen/batch when the
    session opts in.
    """
    if net.weights is None:
        raise ValueError("SSSP requires a weighted network")
    if not 0 < beta <= 1:
        raise ValueError("beta must be in (0, 1]")
    session = ensure_session(
        session, net, mode=mode, seed=seed, solver=solver,
        shortcut_provider=shortcut_provider, family=family,
        schedule=schedule, async_mode=async_mode,
    )
    solver = session.solver
    ledger = CostLedger()
    ledger.merge(solver.tree_ledger, prefix="tree:")

    if tree_edges is None:
        mst = minimum_spanning_tree(net, mode=mode, seed=seed, session=session)
        ledger.merge(mst.ledger, prefix="mst:")
        tree_edges = set(mst.output)

    hops = max(1, math.ceil(1.0 / beta))
    bf = _BellmanFordProgram(net, source, hops)
    ledger.charge(solver.engine.run(bf, max_ticks=hops + 2))

    backbone = _root_tree_at(net, tree_edges, source)
    td = _TreeDistanceProgram(net, backbone, source)
    ledger.charge(solver.engine.run(td, max_ticks=backbone.height() + 3))

    estimates: List[int] = [0] * net.n
    for v in range(net.n):
        candidates = [
            d for d in (bf.dist[v], td.dist[v]) if d is not None
        ]
        if not candidates:
            raise RuntimeError(f"node {v} unreachable from source {source}")
        estimates[v] = min(candidates)
    return RunResult(
        output=estimates,
        ledger=ledger,
        meta={"hops": hops, "tree_depth": backbone.height()},
    )
