"""Graph verification problems (Corollary A.1, Das Sarma et al. [5]).

Each verifier takes the network and a subgraph ``H`` (an edge list; node-
locally, every node knows its incident H-edges) and decides a property,
using CC labeling (:mod:`repro.algorithms.components`) plus O(1) global
aggregations over the BFS tree.  The paper's point — which the benchmarks
measure — is that all of these cost O~(D + sqrt n) rounds and O~(m)
messages once PA does.

Implemented verifiers: connectivity, s-t connectivity, cut, s-t cut,
edge-cut size, spanning subgraph/spanning tree, cycle containment, and
bipartiteness.  Bipartiteness deviates from [5] (which uses the bipartite
double cover): we propagate parity along a spanning tree *of H* per
component, costing O(H-diameter) rounds — honest, metered, and flagged in
EXPERIMENTS.md as the one verifier whose round bound is weaker than the
paper's.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..congest.engine import Engine
from ..congest.ledger import CostLedger, RunResult
from ..congest.network import Network, canonical_edge
from ..congest.schedule import Schedule
from ..core.aggregation import OR, SUM
from ..core.pa import PASolver, RANDOMIZED
from ..runtime import PASession, ensure_session
from ..core.treeops import broadcast as tree_broadcast
from ..core.treeops import claim_bfs
from ..core.treeops import convergecast as tree_convergecast
from .components import cc_labeling, components_partition


def _global_sum(solver: PASolver, values: List[object], ledger: CostLedger,
                name: str) -> int:
    """Convergecast a sum over the global BFS tree, then broadcast it."""
    at_root, _ = tree_convergecast(
        solver.engine, solver.tree, SUM, values, ledger, name=f"{name}_up"
    )
    total = at_root.get(solver.tree.roots[0]) or 0
    tree_broadcast(
        solver.engine, solver.tree, {solver.tree.roots[0]: total}, ledger,
        name=f"{name}_down",
    )
    return total


def _labels_and_ledger(net, subgraph_edges, mode, seed, solver,
                       session=None, schedule=None, async_mode=False):
    run = cc_labeling(
        net, subgraph_edges, mode=mode, seed=seed, solver=solver,
        session=session, schedule=schedule, async_mode=async_mode,
    )
    return run.output, run.ledger, run.meta["solver"]


def verify_connectivity(
    net: Network,
    subgraph_edges: Sequence[Tuple[int, int]],
    mode: str = RANDOMIZED,
    seed: int = 0,
    solver: Optional[PASolver] = None,
    session: Optional[PASession] = None,
    schedule: Optional[Schedule] = None,
    async_mode: bool = False,
) -> RunResult:
    """Is H connected (as a spanning subgraph over all of V)?

    Counts component leaders (nodes whose uid equals their label) with one
    global sum: H is connected iff the count is one.
    """
    labels, ledger, solver = _labels_and_ledger(
        net, subgraph_edges, mode, seed, solver, session=session,
        schedule=schedule, async_mode=async_mode,
    )
    leader_flags = [1 if labels[v] == net.uid[v] else 0 for v in range(net.n)]
    count = _global_sum(solver, leader_flags, ledger, "connectivity_count")
    return RunResult(output=(count == 1), ledger=ledger,
                     meta={"components": count})


def verify_st_connectivity(
    net: Network,
    subgraph_edges: Sequence[Tuple[int, int]],
    s: int,
    t: int,
    mode: str = RANDOMIZED,
    seed: int = 0,
    solver: Optional[PASolver] = None,
    session: Optional[PASession] = None,
    schedule: Optional[Schedule] = None,
    async_mode: bool = False,
) -> RunResult:
    """Are s and t in the same H-component?

    s and t ship their labels up the BFS tree (a two-source convergecast);
    the root compares and broadcasts the verdict.
    """
    labels, ledger, solver = _labels_and_ledger(
        net, subgraph_edges, mode, seed, solver, session=session,
        schedule=schedule, async_mode=async_mode,
    )
    values: List[object] = [None] * net.n
    values[s] = ("s", labels[s])
    values[t] = ("t", labels[t]) if t != s else None
    at_root, _ = tree_convergecast(
        solver.engine, solver.tree,
        # Pair-collecting merge: keep up to two tagged labels.
        _PairCollect, values, ledger, name="st_up",
    )
    gathered = at_root.get(solver.tree.roots[0])
    verdict = s == t or (
        gathered is not None
        and _extract(gathered, "s") == _extract(gathered, "t")
        and _extract(gathered, "s") is not None
    )
    tree_broadcast(
        solver.engine, solver.tree, {solver.tree.roots[0]: verdict},
        ledger, name="st_down",
    )
    return RunResult(output=bool(verdict), ledger=ledger, meta={})


from ..core.aggregation import Aggregation


def _pair_merge(a, b):
    """Merge tagged label tuples, keeping one 's' and one 't' entry."""
    items = {}
    for part in (a, b):
        if isinstance(part[0], str):
            part = (part,)
        for tag, label in part:
            items.setdefault(tag, label)
    return tuple(sorted(items.items()))


_PairCollect = Aggregation("pair_collect", _pair_merge)


def _extract(gathered, tag):
    if isinstance(gathered[0], str):
        gathered = (gathered,)
    for item_tag, label in gathered:
        if item_tag == tag:
            return label
    return None


def verify_cut(
    net: Network,
    cut_edges: Sequence[Tuple[int, int]],
    mode: str = RANDOMIZED,
    seed: int = 0,
    solver: Optional[PASolver] = None,
    session: Optional[PASession] = None,
    schedule: Optional[Schedule] = None,
    async_mode: bool = False,
) -> RunResult:
    """Does removing ``cut_edges`` disconnect the network?

    Runs connectivity verification on the complement subgraph G - C.
    """
    removed = {canonical_edge(u, v) for u, v in cut_edges}
    rest = [e for e in net.edges if e not in removed]
    inner = verify_connectivity(
        net, rest, mode=mode, seed=seed, solver=solver, session=session,
        schedule=schedule, async_mode=async_mode,
    )
    return RunResult(
        output=not inner.output, ledger=inner.ledger, meta=inner.meta
    )


def verify_st_cut(
    net: Network,
    cut_edges: Sequence[Tuple[int, int]],
    s: int,
    t: int,
    mode: str = RANDOMIZED,
    seed: int = 0,
    solver: Optional[PASolver] = None,
    session: Optional[PASession] = None,
    schedule: Optional[Schedule] = None,
    async_mode: bool = False,
) -> RunResult:
    """Does removing ``cut_edges`` separate s from t?"""
    removed = {canonical_edge(u, v) for u, v in cut_edges}
    rest = [e for e in net.edges if e not in removed]
    inner = verify_st_connectivity(
        net, rest, s, t, mode=mode, seed=seed, solver=solver,
        session=session, schedule=schedule, async_mode=async_mode,
    )
    return RunResult(
        output=not inner.output, ledger=inner.ledger, meta=inner.meta
    )


def verify_spanning_tree(
    net: Network,
    subgraph_edges: Sequence[Tuple[int, int]],
    mode: str = RANDOMIZED,
    seed: int = 0,
    solver: Optional[PASolver] = None,
    session: Optional[PASession] = None,
    schedule: Optional[Schedule] = None,
    async_mode: bool = False,
) -> RunResult:
    """Is H a spanning tree: connected over V with exactly n - 1 edges?

    The edge count is a global half-degree sum; connectivity reuses the
    same labeling run.
    """
    session = ensure_session(
        session, net, mode=mode, seed=seed, solver=solver,
        schedule=schedule, async_mode=async_mode,
    )
    solver = session.solver
    conn = verify_connectivity(
        net, subgraph_edges, mode=mode, seed=seed, session=session
    )
    degree = [0] * net.n
    for u, v in subgraph_edges:
        degree[u] += 1
        degree[v] += 1
    double_edges = _global_sum(solver, degree, conn.ledger, "st_edge_count")
    is_tree = bool(conn.output) and double_edges == 2 * (net.n - 1)
    return RunResult(
        output=is_tree, ledger=conn.ledger,
        meta={"edges": double_edges // 2, "connected": conn.output},
    )


def verify_cycle_containment(
    net: Network,
    subgraph_edges: Sequence[Tuple[int, int]],
    mode: str = RANDOMIZED,
    seed: int = 0,
    solver: Optional[PASolver] = None,
    session: Optional[PASession] = None,
    schedule: Optional[Schedule] = None,
    async_mode: bool = False,
) -> RunResult:
    """Does H contain a cycle?  (Some component has >= as many edges as nodes.)

    Per-component node and edge counts are two PA sums over the component
    partition — one shared wave pass when the session batches; each node
    contributes half its H-degree to the edge sum.
    """
    session = ensure_session(
        session, net, mode=mode, seed=seed, solver=solver,
        schedule=schedule, async_mode=async_mode,
    )
    solver = session.solver
    run = cc_labeling(net, subgraph_edges, mode=mode, seed=seed, session=session)
    setup = run.meta["setup"]

    degree = [0] * net.n
    for u, v in subgraph_edges:
        degree[u] += 1
        degree[v] += 1
    counts = session.solve_many(
        setup,
        [([1] * net.n, SUM), (degree, SUM)],
        charge_setup=False,
        phase_prefix="cyc_counts",
        phase_prefixes=["cyc_nodes", "cyc_edges"],
    )
    run.ledger.merge(counts.ledger)
    node_counts, edge_counts = counts.per_agg

    has_cycle_flags = [0] * net.n
    for pid in range(setup.partition.num_parts):
        nodes = node_counts.aggregates[pid]
        twice_edges = edge_counts.aggregates[pid] or 0
        if twice_edges // 2 >= nodes:
            for v in setup.partition.members[pid]:
                has_cycle_flags[v] = 1
                break
    verdict = _global_sum(solver, has_cycle_flags, run.ledger, "cyc_any") > 0
    return RunResult(output=verdict, ledger=run.ledger, meta={})


def verify_bipartiteness(
    net: Network,
    subgraph_edges: Sequence[Tuple[int, int]],
    mode: str = RANDOMIZED,
    seed: int = 0,
    solver: Optional[PASolver] = None,
    session: Optional[PASession] = None,
    schedule: Optional[Schedule] = None,
    async_mode: bool = False,
) -> RunResult:
    """Is H bipartite?

    Parity is propagated from each component leader along a BFS tree of H
    (O(H-diameter) rounds — the documented deviation from [5]'s double
    cover); every H-edge then checks its endpoints' parities in one round,
    and a global OR reports any conflict.
    """
    session = ensure_session(
        session, net, mode=mode, seed=seed, solver=solver,
        schedule=schedule, async_mode=async_mode,
    )
    solver = session.solver
    run = cc_labeling(net, subgraph_edges, mode=mode, seed=seed, session=session)
    labels = run.output

    edge_set = {canonical_edge(u, v) for u, v in subgraph_edges}

    def in_h(u: int, v: int) -> bool:
        return canonical_edge(u, v) in edge_set

    leaders = {
        v: net.uid[v] for v in range(net.n) if labels[v] == net.uid[v]
    }
    bfs = claim_bfs(
        solver.engine, net, leaders, run.ledger, allowed=in_h,
        name="bip_h_bfs",
    )
    parity = [bfs.depth_of[v] % 2 if bfs.depth_of[v] >= 0 else 0
              for v in range(net.n)]

    conflict = [0] * net.n
    for u, v in subgraph_edges:
        if parity[u] == parity[v]:
            conflict[u] = 1
    # Endpoint parity exchange costs one round over H's edges.
    run.ledger.charge_local(
        "bip_parity_exchange", rounds=1, messages=2 * len(list(subgraph_edges))
    )
    verdict = _global_sum(solver, conflict, run.ledger, "bip_any") == 0
    return RunResult(output=verdict, ledger=run.ledger, meta={})
