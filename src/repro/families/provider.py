"""The ``ShortcutProvider`` strategy API and its concrete providers.

A provider is a pluggable shortcut-construction strategy for
:meth:`repro.core.pa.PASolver.prepare`: given the solver's network, spanning
tree, partition and sub-part division, it returns a
:class:`~repro.core.corefast.ShortcutBuildResult` — a shortcut plus block
annotations, ready for the PA waves.  ``prepare(..., shortcut_provider=p)``
swaps the construction; the default (``None``) is today's pipeline,
bit-for-bit.

Concrete providers, matching the paper's Tables 1-2 rows:

* :class:`GeneralProvider` — the existing general-graph pipeline
  (randomized CoreFast / Algorithm 4, or the deterministic Algorithms 7-8),
  wrapped behind the strategy API.  With the same solver state it consumes
  the same randomness and produces the same ledger entries as the default
  path, so it exists purely to make "general" a citizen of the registry.
* :class:`TreeRestrictedProvider` — planar / bounded-genus graphs: Steiner
  climbs on the BFS tree, congestion-capped at the Table 1 envelope
  ``sqrt(g) * D * log n`` derived from a validated BFS layering.
* :class:`TreewidthProvider` — bounded-treewidth families (k-trees,
  series-parallel): cap ``O(t log n)`` with ``t`` the width achieved by
  the tree-decomposition oracle (the validated certificate).
* :class:`PathwidthProvider` — bounded-pathwidth families (ladders,
  caterpillars): cap ``O(p)`` from the path-decomposition certificate.

Substitution note (same spirit as the CoreFast admission tweak documented
in :mod:`repro.core.corefast`): the paper's family constructions prove the
(b, c) pairs exist via structure-specific routing arguments; here a single
mechanism — LCA-pruned Steiner climbs with a per-edge cap set to the
family's congestion envelope — *enforces* c at the envelope and measures
b, with the decomposition oracles supplying the envelope parameter and the
validity certificate.  The benchmarks then check the measured b against
the Table 1 claim rather than assuming it.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from ..congest.engine import Engine
from ..congest.ledger import CostLedger
from ..congest.network import Network
from ..core.corefast import ShortcutBuildResult, build_shortcut_randomized
from ..core.subparts import SubPartDivision
from ..core.trees import RootedForest
from ..graphs.partitions import Partition
from .decompose import bfs_layering, path_decomposition, tree_decomposition
from .steiner import build_steiner_shortcut


def _log2n(n: int) -> int:
    return max(1, math.ceil(math.log2(max(2, n))))


class ShortcutProvider:
    """Strategy interface: build a shortcut for one (partition, tree) pair.

    Implementations must charge every cost to ``ledger`` — engine phases
    via ``ledger.charge``, oracle-side structural steps via
    ``ledger.charge_local`` — and return a fully annotated
    :class:`ShortcutBuildResult` (the PA waves route on the annotations).
    """

    name: str = "abstract"

    def build(
        self,
        engine: Engine,
        net: Network,
        partition: Partition,
        division: SubPartDivision,
        tree: RootedForest,
        diameter: int,
        ledger: CostLedger,
        rng: Optional[random.Random] = None,
        congestion_budget: Optional[int] = None,
        block_target: Optional[int] = None,
    ) -> ShortcutBuildResult:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class GeneralProvider(ShortcutProvider):
    """The general-graph pipeline behind the strategy API (Table 1 row 1).

    ``deterministic=True`` selects Algorithms 7-8 (heavy-path doubling)
    instead of randomized CoreFast.  In either mode the build is the exact
    code path :class:`~repro.core.pa.PASolver` runs by default, so a solver
    handed this provider produces bit-for-bit identical ledgers and
    shortcuts to one handed no provider at all (pinned by tests).
    """

    name = "general"

    def __init__(self, deterministic: bool = False) -> None:
        self.deterministic = deterministic

    def build(
        self,
        engine: Engine,
        net: Network,
        partition: Partition,
        division: SubPartDivision,
        tree: RootedForest,
        diameter: int,
        ledger: CostLedger,
        rng: Optional[random.Random] = None,
        congestion_budget: Optional[int] = None,
        block_target: Optional[int] = None,
    ) -> ShortcutBuildResult:
        if self.deterministic:
            from ..core.det_shortcut import build_shortcut_deterministic

            return build_shortcut_deterministic(
                engine, net, partition, division, tree, diameter, ledger,
                congestion_budget=congestion_budget,
                block_target=block_target,
            )
        return build_shortcut_randomized(
            engine, net, partition, division, tree, diameter, ledger,
            rng if rng is not None else random.Random(0),
            congestion_budget=congestion_budget,
            block_target=block_target,
        )


class TreeRestrictedProvider(ShortcutProvider):
    """Planar / bounded-genus construction (Table 1 rows 2-3).

    Validates the BFS layering of the solver's spanning tree (the
    decomposition the planar analysis climbs), then builds Steiner climbs
    capped at ``gamma * sqrt(max(1, genus)) * D * ceil(log2 n)`` — the
    Table 1 congestion envelope.  ``genus=0`` (or 1) is the planar cap;
    higher genus widens it by ``sqrt(g)``.

    ``claim_small=True`` drops the parts-smaller-than-D exemption so that
    *every* part builds its subtree — benchmarks use it to exhibit the
    congestion envelope on partitions the exemption would silence.
    """

    name = "tree_restricted"

    def __init__(
        self, genus: int = 0, gamma: float = 1.0, claim_small: bool = False
    ) -> None:
        if genus < 0:
            raise ValueError("genus must be non-negative")
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.genus = genus
        self.gamma = gamma
        self.claim_small = claim_small

    def congestion_cap(self, n: int, diameter: int) -> int:
        factor = math.sqrt(max(1, self.genus))
        return max(2, math.ceil(self.gamma * factor * max(1, diameter))
                   * _log2n(n))

    def build(
        self,
        engine: Engine,
        net: Network,
        partition: Partition,
        division: SubPartDivision,
        tree: RootedForest,
        diameter: int,
        ledger: CostLedger,
        rng: Optional[random.Random] = None,
        congestion_budget: Optional[int] = None,
        block_target: Optional[int] = None,
    ) -> ShortcutBuildResult:
        layering = bfs_layering(net, tree.roots[0])
        layering.validate(net)
        # Distributed form of the layering: the BFS wave that built the
        # tree already delivered every node its depth; broadcasting the
        # layer count back down costs one sweep.
        ledger.charge_local(
            "family_layering", rounds=tree.height() + 1, messages=net.n
        )
        cap = self.congestion_cap(net.n, diameter)
        if congestion_budget is not None:
            cap = min(cap, max(2, congestion_budget))
        return build_steiner_shortcut(
            engine, net, partition, tree, diameter, ledger,
            cap=cap, skip_small=not self.claim_small,
            name="planar" if self.genus <= 1 else "genus",
            certificate=layering,
        )


class TreewidthProvider(ShortcutProvider):
    """Bounded-treewidth construction (Table 1 row 4: b=O(t), c=O~(t)).

    Runs the tree-decomposition oracle, validates the certificate, and
    caps Steiner climbs at ``gamma * t * ceil(log2 n)`` where ``t`` is the
    width the oracle achieved.  ``width`` optionally declares the expected
    family parameter; the build raises if the oracle cannot match it
    (catching e.g. a non-series-parallel graph fed to the treewidth-2
    benchmark).
    """

    name = "treewidth"

    def __init__(
        self,
        width: Optional[int] = None,
        gamma: float = 2.0,
        claim_small: bool = False,
    ) -> None:
        if width is not None and width < 1:
            raise ValueError("width must be positive")
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.width = width
        self.gamma = gamma
        self.claim_small = claim_small

    def build(
        self,
        engine: Engine,
        net: Network,
        partition: Partition,
        division: SubPartDivision,
        tree: RootedForest,
        diameter: int,
        ledger: CostLedger,
        rng: Optional[random.Random] = None,
        congestion_budget: Optional[int] = None,
        block_target: Optional[int] = None,
    ) -> ShortcutBuildResult:
        decomposition = tree_decomposition(net)
        decomposition.validate(net)
        if self.width is not None and decomposition.width > self.width:
            raise ValueError(
                f"tree-decomposition oracle achieved width "
                f"{decomposition.width}, above the declared {self.width}"
            )
        t = decomposition.width
        # Structural cost of assembling the decomposition distributively:
        # one elimination sweep exchanging each node's bag with neighbors.
        ledger.charge_local(
            "family_tree_decomposition",
            rounds=tree.height() + max(1, t),
            messages=sum(len(bag) for bag in decomposition.bags),
        )
        cap = max(2, math.ceil(self.gamma * max(1, t)) * _log2n(net.n))
        if congestion_budget is not None:
            cap = min(cap, max(2, congestion_budget))
        return build_steiner_shortcut(
            engine, net, partition, tree, diameter, ledger,
            cap=cap, skip_small=not self.claim_small,
            name="treewidth", certificate=decomposition,
        )


class PathwidthProvider(ShortcutProvider):
    """Bounded-pathwidth construction (Table 1 row 5: b = c = O(p)).

    Runs the path-decomposition oracle (double-BFS linear order) and caps
    Steiner climbs at ``gamma * (p + 1)`` with ``p`` the achieved width —
    the only family whose congestion envelope carries no log factor.
    """

    name = "pathwidth"

    #: Bag-size guard handed to the oracle: a graph whose double-BFS order
    #: produces bags beyond this is not a pathwidth workload.
    WIDTH_GUARD = 64

    def __init__(
        self,
        width: Optional[int] = None,
        gamma: float = 2.0,
        claim_small: bool = False,
    ) -> None:
        if width is not None and width < 1:
            raise ValueError("width must be positive")
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.width = width
        self.gamma = gamma
        self.claim_small = claim_small

    def build(
        self,
        engine: Engine,
        net: Network,
        partition: Partition,
        division: SubPartDivision,
        tree: RootedForest,
        diameter: int,
        ledger: CostLedger,
        rng: Optional[random.Random] = None,
        congestion_budget: Optional[int] = None,
        block_target: Optional[int] = None,
    ) -> ShortcutBuildResult:
        guard = self.WIDTH_GUARD
        if self.width is not None:
            guard = max(guard, 4 * self.width)
        decomposition = path_decomposition(net, width_guard=guard)
        decomposition.validate(net)
        if self.width is not None and decomposition.width > 2 * self.width + 1:
            raise ValueError(
                f"path-decomposition oracle achieved width "
                f"{decomposition.width}, far above the declared {self.width}"
            )
        p = decomposition.width
        ledger.charge_local(
            "family_path_decomposition",
            rounds=tree.height() + max(1, p),
            messages=net.n,
        )
        cap = max(2, math.ceil(self.gamma * (p + 1)))
        if congestion_budget is not None:
            cap = min(cap, max(2, congestion_budget))
        return build_steiner_shortcut(
            engine, net, partition, tree, diameter, ledger,
            cap=cap, skip_small=not self.claim_small,
            name="pathwidth", certificate=decomposition,
        )
