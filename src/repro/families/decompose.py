"""Decomposition oracles for structured graph families (Tables 1-2).

The family-specific shortcut constructions of Appendix C all start from a
*decomposition* of the input graph:

* **BFS layerings** for planar / bounded-genus graphs (the layers of the
  spanning BFS tree are what the tree-restricted construction climbs);
* **tree decompositions** for bounded-treewidth families (k-trees,
  series-parallel graphs);
* **path decompositions** for bounded-pathwidth families (ladders,
  caterpillars).

These are *oracle-side* computations: a real deployment would compute them
distributively (the paper cites standard O~(D)-round constructions), so the
providers charge their structural cost to the ledger via
``CostLedger.charge_local`` rather than running them message-by-message.
What keeps them honest is the **validity certificate**: every decomposition
object carries a ``validate(net)`` method checking the defining invariants
(edges covered, bags connected, widths consistent), and the providers and
tests run it.

Widths computed here are upper bounds produced by deterministic greedy
heuristics — exact for the families the benchmarks use (min-degree
elimination is exact on k-trees and on treewidth-<=2 graphs; the double-BFS
linear order is within a small constant on ladders and caterpillars) but
not in general; ``width`` is always the width actually achieved, and the
certificate guarantees it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..congest.network import Network


class DecompositionError(ValueError):
    """A decomposition violates one of its defining invariants."""


# ----------------------------------------------------------------------
# BFS layerings (planar / genus families)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BFSLayering:
    """Nodes bucketed by BFS depth from ``root``.

    The certificate (checked by :meth:`validate`) is the defining property
    the planar construction relies on: every edge connects nodes whose
    layers differ by at most one, and every non-root node has a neighbor
    one layer up (its BFS parent).
    """

    root: int
    layer: Tuple[int, ...]

    @property
    def num_layers(self) -> int:
        return max(self.layer) + 1

    def validate(self, net: Network) -> None:
        if len(self.layer) != net.n:
            raise DecompositionError("layering must cover all nodes")
        if self.layer[self.root] != 0:
            raise DecompositionError("root must be in layer 0")
        if any(l < 0 for l in self.layer):
            raise DecompositionError("layering requires a connected graph")
        for u, v in net.edges:
            if abs(self.layer[u] - self.layer[v]) > 1:
                raise DecompositionError(
                    f"edge ({u}, {v}) spans layers {self.layer[u]}"
                    f" and {self.layer[v]}"
                )
        for v in range(net.n):
            if v == self.root:
                continue
            if not any(
                self.layer[nb] == self.layer[v] - 1 for nb in net.neighbors[v]
            ):
                raise DecompositionError(f"node {v} has no parent layer neighbor")


def bfs_layering(net: Network, root: int) -> BFSLayering:
    """The BFS layering of ``net`` from ``root`` (O(m))."""
    return BFSLayering(root=root, layer=tuple(net.bfs_depths(root)))


# ----------------------------------------------------------------------
# Tree decompositions (treewidth families)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TreeDecomposition:
    """A tree decomposition: bags plus a parent-pointer tree over them.

    ``bags[i]`` is the i-th bag (a frozenset of nodes); ``parent[i]`` is
    the index of its parent bag (-1 for the root bag).  ``width`` is the
    achieved width, max bag size minus one.
    """

    bags: Tuple[FrozenSet[int], ...]
    parent: Tuple[int, ...]
    width: int

    def validate(self, net: Network) -> None:
        """Check the three tree-decomposition axioms plus width consistency."""
        if self.width != max((len(b) for b in self.bags), default=1) - 1:
            raise DecompositionError("recorded width disagrees with the bags")
        bags_of: List[List[int]] = [[] for _ in range(net.n)]
        for i, bag in enumerate(self.bags):
            for v in bag:
                if not 0 <= v < net.n:
                    raise DecompositionError(f"bag {i} holds unknown node {v}")
                bags_of[v].append(i)
        for v in range(net.n):
            if not bags_of[v]:
                raise DecompositionError(f"node {v} appears in no bag")
        for u, v in net.edges:
            if not any(v in self.bags[i] for i in bags_of[u]):
                raise DecompositionError(f"edge ({u}, {v}) is in no bag")
        # Bags containing v must induce a connected subtree: #bags minus
        # #tree-edges between them equals 1 exactly when connected.
        for v in range(net.n):
            ids = set(bags_of[v])
            links = sum(
                1 for i in ids if self.parent[i] >= 0 and self.parent[i] in ids
            )
            if len(ids) - links != 1:
                raise DecompositionError(
                    f"bags containing node {v} do not form a subtree"
                )


def tree_decomposition(net: Network) -> TreeDecomposition:
    """Greedy min-degree elimination tree decomposition (deterministic).

    Classic elimination-game construction: repeatedly eliminate a node of
    minimum current degree (ties by node id), bag = the node plus its
    current neighbors, fill in the neighbors into a clique, and hang the
    bag off the bag of its earliest-eliminated neighbor.  Exact on k-trees
    (every minimum-degree node of a k-tree is simplicial) and on
    treewidth-<=2 graphs (degree-<=2 reduction); an upper bound elsewhere.
    O(n * w^2 + m) for achieved width w.
    """
    import heapq

    n = net.n
    adj: List[set] = [set(net.neighbors[v]) for v in range(n)]
    heap: List[Tuple[int, int]] = [(len(adj[v]), v) for v in range(n)]
    heapq.heapify(heap)
    eliminated = [False] * n
    elim_index = [-1] * n
    order: List[int] = []
    bag_nbrs: List[List[int]] = []
    bags: List[FrozenSet[int]] = []
    while heap:
        d, v = heapq.heappop(heap)
        if eliminated[v] or d != len(adj[v]):
            continue  # stale heap entry
        eliminated[v] = True
        elim_index[v] = len(order)
        order.append(v)
        nbrs = sorted(adj[v])
        bags.append(frozenset([v, *nbrs]))
        bag_nbrs.append(nbrs)
        for i, a in enumerate(nbrs):
            adj[a].discard(v)
            for b in nbrs[i + 1:]:
                if b not in adj[a]:
                    adj[a].add(b)
                    adj[b].add(a)
        for a in nbrs:
            heapq.heappush(heap, (len(adj[a]), a))
    parent = [
        min((elim_index[u] for u in nbrs), default=-1)
        if nbrs else -1
        for nbrs in bag_nbrs
    ]
    width = max((len(b) for b in bags), default=1) - 1
    return TreeDecomposition(bags=tuple(bags), parent=tuple(parent), width=width)


# ----------------------------------------------------------------------
# Path decompositions (pathwidth families)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PathDecomposition:
    """A path decomposition: one bag per position of a linear node order.

    Built from a linear order via the vertex-separation construction:
    node ``u`` lives in bags ``pos[u] .. last_pos[u]`` where ``last_pos``
    is the last position at which ``u`` or one of its neighbors is placed.
    Each node therefore occupies a *contiguous interval* of bags — the
    path-decomposition connectivity axiom holds by construction — and the
    certificate re-checks it along with edge coverage.
    """

    order: Tuple[int, ...]
    bags: Tuple[FrozenSet[int], ...]
    width: int

    def validate(self, net: Network) -> None:
        if self.width != max((len(b) for b in self.bags), default=1) - 1:
            raise DecompositionError("recorded width disagrees with the bags")
        if sorted(self.order) != list(range(net.n)):
            raise DecompositionError("order must be a permutation of the nodes")
        first = [-1] * net.n
        last = [-1] * net.n
        for i, bag in enumerate(self.bags):
            for v in bag:
                if first[v] < 0:
                    first[v] = i
                last[v] = i
        for v in range(net.n):
            if first[v] < 0:
                raise DecompositionError(f"node {v} appears in no bag")
            for i in range(first[v], last[v] + 1):
                if v not in self.bags[i]:
                    raise DecompositionError(
                        f"bags containing node {v} are not contiguous"
                    )
        for u, v in net.edges:
            if not any(u in bag and v in bag for bag in self.bags):
                raise DecompositionError(f"edge ({u}, {v}) is in no bag")


def _bfs_order(net: Network, root: int) -> List[int]:
    """Deterministic BFS visit order from ``root``."""
    order = [root]
    seen = bytearray(net.n)
    seen[root] = 1
    head = 0
    while head < len(order):
        u = order[head]
        head += 1
        for v in net.neighbors[u]:
            if not seen[v]:
                seen[v] = 1
                order.append(v)
    return order


def path_decomposition(
    net: Network,
    order: Optional[Sequence[int]] = None,
    width_guard: Optional[int] = None,
) -> PathDecomposition:
    """Path decomposition from a linear order (default: double-BFS order).

    Without an explicit ``order`` the classic diameter heuristic is used:
    BFS from node 0 to find a far endpoint, then the BFS visit order from
    that endpoint.  On path-like graphs (ladders, caterpillars) this order
    has vertex separation within a small constant of the pathwidth.

    ``width_guard`` aborts (``DecompositionError``) if any bag exceeds
    ``width_guard + 1`` nodes — protection against accidentally feeding a
    wide graph, where the bag lists grow to Theta(n * width).
    """
    if order is None:
        depths = net.bfs_depths(0)
        endpoint = max(range(net.n), key=lambda v: (depths[v], -v))
        order = _bfs_order(net, endpoint)
    order = list(order)
    if sorted(order) != list(range(net.n)):
        raise DecompositionError("order must be a permutation of the nodes")
    pos = [0] * net.n
    for i, v in enumerate(order):
        pos[v] = i
    last_pos = [
        max(pos[v], max((pos[nb] for nb in net.neighbors[v]), default=pos[v]))
        for v in range(net.n)
    ]
    drop_at: Dict[int, List[int]] = {}
    for v in range(net.n):
        drop_at.setdefault(last_pos[v], []).append(v)
    bags: List[FrozenSet[int]] = []
    active: set = set()
    for i, v in enumerate(order):
        active.add(v)
        if width_guard is not None and len(active) > width_guard + 1:
            raise DecompositionError(
                f"bag {i} exceeds the width guard {width_guard}"
            )
        bags.append(frozenset(active))
        for u in drop_at.get(i, ()):
            active.discard(u)
    width = max((len(b) for b in bags), default=1) - 1
    return PathDecomposition(order=tuple(order), bags=tuple(bags), width=width)


# ----------------------------------------------------------------------
# Planarity sanity
# ----------------------------------------------------------------------
def euler_planar_bound(net: Network) -> bool:
    """Euler-formula sanity check: planar simple graphs have m <= 3n - 6.

    Necessary, not sufficient — the cheap certificate the family tests use
    on generated planar workloads (a full planarity test is out of scope).
    """
    if net.n < 3:
        return True
    return net.m <= 3 * net.n - 6
