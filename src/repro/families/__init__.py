"""Family-aware shortcut construction (Tables 1-2 / Appendix C).

The paper's structural headline is that planar, bounded-genus,
bounded-treewidth and bounded-pathwidth graphs admit low-congestion
shortcuts of quality O~(D) — far below the general (b=1, c=sqrt n)
pipeline.  This package realizes those constructions behind a strategy
API:

* :mod:`~repro.families.provider` — the :class:`ShortcutProvider` API and
  the concrete providers (general, tree-restricted planar/genus,
  treewidth, pathwidth), pluggable into
  ``PASolver.prepare(..., shortcut_provider=...)``;
* :mod:`~repro.families.decompose` — the decomposition oracles (BFS
  layerings, tree/path decompositions) with validity certificates;
* :mod:`~repro.families.steiner` — the shared capped Steiner-climb core;
* :mod:`~repro.families.registry` — one row per family: Table 1/2
  envelopes (single-sourced from :mod:`repro.analysis.theory`), canonical
  parameters and provider factories.
"""

from .decompose import (
    BFSLayering,
    DecompositionError,
    PathDecomposition,
    TreeDecomposition,
    bfs_layering,
    euler_planar_bound,
    path_decomposition,
    tree_decomposition,
)
from .provider import (
    GeneralProvider,
    PathwidthProvider,
    ShortcutProvider,
    TreeRestrictedProvider,
    TreewidthProvider,
)
from .registry import FAMILIES, Family, family_hint, get_family, provider_for
from .steiner import (
    build_steiner_shortcut,
    steiner_edges_of_part,
    steiner_up_parts,
)

__all__ = [
    "BFSLayering",
    "DecompositionError",
    "FAMILIES",
    "Family",
    "GeneralProvider",
    "PathDecomposition",
    "PathwidthProvider",
    "ShortcutProvider",
    "TreeDecomposition",
    "TreeRestrictedProvider",
    "TreewidthProvider",
    "bfs_layering",
    "build_steiner_shortcut",
    "euler_planar_bound",
    "family_hint",
    "get_family",
    "path_decomposition",
    "provider_for",
    "steiner_edges_of_part",
    "steiner_up_parts",
    "tree_decomposition",
]
