"""Capped Steiner-climb shortcuts: the shared core of the family providers.

Every family-specific construction in this package builds the same kind of
object: for each part, the **Steiner subtree** of its members inside the
spanning tree ``T`` (the union of member-to-LCA climbs — the minimal
connected H_i, giving block parameter 1), subject to a per-edge
**congestion cap**.  The families differ only in the cap, which each
provider derives from its decomposition certificate: ``O~(D)`` per BFS
layering for planar/genus graphs, ``O~(t)`` per tree decomposition for
treewidth-t families, ``O(p)`` per path decomposition for pathwidth-p
families.

When an edge is saturated the parts that arrive later simply do not get
it: their Steiner subtree splits into blocks, trading block parameter for
congestion exactly like CoreFast's truncated climbs — except here the cap
is the *family envelope*, so the measured congestion is O~(D) (resp.
O~(t), O(p)) **by construction** and the block parameter is what the
benchmarks measure and check.

Distributed realization and cost accounting: the climbs are the same
messages CoreFast sends (each member forwards its part id one hop up; an
edge admits at most ``cap`` part ids), pipelined in ``height(T) + c``
rounds with one message per admitted or rejected crossing.  We compute the
result oracle-side for speed and charge exactly that structural cost via
``CostLedger.charge_local``; the block annotation wave that follows runs
on the engine and is metered for real, like every other construction here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..congest.engine import Engine
from ..congest.ledger import CostLedger
from ..congest.network import Network
from ..core.blocks import BlockAnnotations, annotate_blocks
from ..core.corefast import ShortcutBuildResult
from ..core.shortcuts import Shortcut
from ..core.trees import RootedForest
from ..graphs.partitions import Partition


def steiner_edges_of_part(
    tree: RootedForest, members: Sequence[int]
) -> List[int]:
    """Edges of the minimal subtree of ``tree`` spanning ``members``.

    Edges are keyed by their child node (the edge is (v, parent(v))),
    returned sorted by decreasing depth then node id — the deterministic
    admission order of the capped construction (deepest edges first keeps
    truncated parts' blocks anchored at their members).
    """
    parent = tree.parent
    marked: Set[int] = set()
    for m in members:
        cur = m
        while parent[cur] >= 0 and cur not in marked:
            marked.add(cur)
            cur = parent[cur]
    if not marked:
        return []
    # The union of root paths overshoots above the members' LCA; peel the
    # chain of single-marked-child non-members from the root down.
    children_marked: Dict[int, List[int]] = {}
    for x in marked:
        children_marked.setdefault(parent[x], []).append(x)
    member_set = set(members)
    cur = tree.roots[0]
    while cur not in member_set:
        kids = children_marked.get(cur, ())
        if len(kids) != 1:
            break
        child = kids[0]
        marked.discard(child)
        cur = child
    depth = tree.depth
    return sorted(marked, key=lambda v: (-depth[v], v))


def steiner_up_parts(
    tree: RootedForest,
    partition: Partition,
    diameter: int,
    cap: Optional[int] = None,
    skip_small: bool = True,
) -> Tuple[List[Set[int]], int, int, int]:
    """Capped Steiner climbs for every part.

    Returns ``(up_parts, congestion, admitted, truncated)``: the per-node
    part sets, the max per-edge load actually reached, and the admitted /
    cap-rejected edge-crossing counts (the message cost of the distributed
    realization).

    ``skip_small`` applies the standard exemption (Section 4): parts of at
    most ``diameter`` members never claim — their waves stay intra-part —
    mirroring the general constructions bit for bit.  Pass ``False`` to
    force every part to build its Steiner subtree (used by benchmarks to
    exhibit the congestion envelope on partitions the exemption would
    otherwise silence).
    """
    n = tree.net.n
    up: List[Set[int]] = [set() for _ in range(n)]
    load = [0] * n
    congestion = 0
    admitted = 0
    truncated = 0
    for pid in range(partition.num_parts):
        members = partition.members[pid]
        if skip_small and len(members) <= diameter:
            continue
        for v in steiner_edges_of_part(tree, members):
            if cap is not None and load[v] >= cap:
                truncated += 1
                continue
            load[v] += 1
            if load[v] > congestion:
                congestion = load[v]
            up[v].add(pid)
            admitted += 1
    return up, congestion, admitted, truncated


def build_steiner_shortcut(
    engine: Engine,
    net: Network,
    partition: Partition,
    tree: RootedForest,
    diameter: int,
    ledger: CostLedger,
    cap: Optional[int] = None,
    skip_small: bool = True,
    annotate: bool = True,
    name: str = "family_steiner",
    certificate: Optional[object] = None,
) -> ShortcutBuildResult:
    """Build a capped Steiner shortcut and (optionally) annotate its blocks.

    With ``annotate=False`` the result carries empty annotations — enough
    to measure (b, c) quality, not enough to run PA waves over it; the
    providers always annotate.
    """
    up, congestion, admitted, truncated = steiner_up_parts(
        tree, partition, diameter, cap=cap, skip_small=skip_small
    )
    shortcut = Shortcut(tree, partition, up)
    # Structural cost of the distributed climbs (see module docstring):
    # pipelined member climbs finish in height + congestion rounds; every
    # admitted or rejected crossing is one message.
    ledger.charge_local(
        f"{name}_claims",
        rounds=tree.height() + congestion,
        messages=admitted + truncated,
    )
    if annotate:
        annotations = annotate_blocks(engine, shortcut, ledger)
        block_counts = annotations.block_counts(partition.num_parts)
    else:
        annotations = BlockAnnotations()
        block_counts = [
            len(shortcut.blocks_of_part(pid))
            for pid in range(partition.num_parts)
        ]
    return ShortcutBuildResult(
        shortcut=shortcut,
        annotations=annotations,
        block_counts=block_counts,
        iterations=1,
        certificate=certificate,
    )
