"""The family registry: one row per Table 1/2 graph family.

Single source of truth for everything per-family: the Table 1 (b, c)
envelope (reusing :data:`repro.analysis.theory.TABLE1` — the formulas live
there and only there), the Table 2 runtime strings, the canonical family
parameter used by the repo's workloads (genus of the torus, treewidth of
the k-tree benchmarks, pathwidth of the ladder) and the provider factory
realizing the construction.

``repro.core.shortcuts.shortcut_hint_for_family`` — historically a second
copy of the Table 1 formulas — now delegates to :func:`family_hint` here,
so envelope changes happen in exactly one place
(:mod:`repro.analysis.theory`) and construction changes in exactly one
place (this registry).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..analysis.theory import (
    TABLE1,
    TABLE2_DETERMINISTIC,
    TABLE2_RANDOMIZED,
    FamilyBounds,
)
from .provider import (
    GeneralProvider,
    PathwidthProvider,
    ShortcutProvider,
    TreeRestrictedProvider,
    TreewidthProvider,
)


@dataclass(frozen=True)
class Family:
    """One graph family: its envelopes, parameter and construction."""

    name: str
    #: Table 1 envelope — the exact object from ``analysis.theory.TABLE1``.
    bounds: FamilyBounds
    #: Table 2 runtime strings (deterministic / randomized).
    det_rounds: str
    rand_rounds: str
    #: Canonical parameter of the repo's workloads for this family
    #: (genus g, treewidth t, pathwidth p; 1 where unused).
    default_param: int
    #: Provider factory: ``make_provider(param, claim_small)`` builds the
    #: construction.  ``claim_small`` drops the parts-below-D exemption on
    #: the family constructions (benchmarks use it to exhibit envelopes on
    #: small instances); the general pipeline's exemption is intrinsic to
    #: Algorithm 4, so its factory documents and ignores the flag.
    make_provider: Callable[[int, bool], ShortcutProvider]
    description: str

    def provider(
        self, param: Optional[int] = None, claim_small: bool = False
    ) -> ShortcutProvider:
        """A fresh provider for this family (``param`` defaults canonical)."""
        return self.make_provider(
            self.default_param if param is None else param, claim_small
        )

    def hint(
        self, n: int, diameter: int, param: Optional[int] = None
    ) -> Tuple[int, int]:
        """The Table 1 (b, c) envelope as integers (ceil of the bounds)."""
        p = self.default_param if param is None else param
        b = max(1, math.ceil(self.bounds.block_parameter(n, diameter, p)))
        c = max(1, math.ceil(self.bounds.congestion(n, diameter, p)))
        return b, c


FAMILIES: Dict[str, Family] = {
    "general": Family(
        name="general",
        bounds=TABLE1["general"],
        det_rounds=TABLE2_DETERMINISTIC["general"],
        rand_rounds=TABLE2_RANDOMIZED["general"],
        default_param=1,
        # claim_small is ignored: Algorithm 4 exempts parts below D
        # structurally (the "active" rule), not as an option.
        make_provider=lambda param, claim_small=False: GeneralProvider(),
        description="arbitrary connected graphs: the randomized CoreFast "
        "pipeline (b=1, c=sqrt n)",
    ),
    "planar": Family(
        name="planar",
        bounds=TABLE1["planar"],
        det_rounds=TABLE2_DETERMINISTIC["planar"],
        rand_rounds=TABLE2_RANDOMIZED["planar"],
        default_param=1,
        make_provider=lambda param, claim_small=False: (
            TreeRestrictedProvider(genus=0, claim_small=claim_small)
        ),
        description="planar graphs (grids, triangulated grids): BFS-layer "
        "Steiner climbs capped at the O~(D) envelope",
    ),
    "genus": Family(
        name="genus",
        bounds=TABLE1["genus"],
        det_rounds=TABLE2_DETERMINISTIC["genus"],
        rand_rounds=TABLE2_RANDOMIZED["genus"],
        default_param=1,
        make_provider=lambda param, claim_small=False: (
            TreeRestrictedProvider(
                genus=max(1, param), claim_small=claim_small
            )
        ),
        description="bounded-genus graphs (tori): the planar construction "
        "with a sqrt(g)-widened congestion cap",
    ),
    "treewidth": Family(
        name="treewidth",
        bounds=TABLE1["treewidth"],
        det_rounds=TABLE2_DETERMINISTIC["treewidth"],
        rand_rounds=TABLE2_RANDOMIZED["treewidth"],
        default_param=3,
        make_provider=lambda param, claim_small=False: (
            TreewidthProvider(width=param, claim_small=claim_small)
        ),
        description="treewidth-t families (k-trees, series-parallel): "
        "tree-decomposition certificate, cap O(t log n)",
    ),
    "pathwidth": Family(
        name="pathwidth",
        bounds=TABLE1["pathwidth"],
        det_rounds=TABLE2_DETERMINISTIC["pathwidth"],
        rand_rounds=TABLE2_RANDOMIZED["pathwidth"],
        default_param=2,
        make_provider=lambda param, claim_small=False: (
            PathwidthProvider(width=param, claim_small=claim_small)
        ),
        description="pathwidth-p families (ladders, caterpillars): "
        "path-decomposition certificate, cap O(p)",
    ),
}


def get_family(name: str) -> Family:
    """Look up a family row; KeyError lists the known names."""
    try:
        return FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown family {name!r}; known: {sorted(FAMILIES)}"
        ) from None


def family_hint(
    name: str, n: int, diameter: int, param: Optional[int] = None
) -> Tuple[int, int]:
    """Table 1's (b, c) envelope for a family, as integers.

    The construction-target hint formerly duplicated in
    ``repro.core.shortcuts.shortcut_hint_for_family``; both entry points
    now evaluate the one ``analysis.theory.TABLE1`` formula set.
    """
    return get_family(name).hint(n, diameter, param=param)


def provider_for(
    name: str, param: Optional[int] = None, claim_small: bool = False
) -> ShortcutProvider:
    """A fresh provider realizing ``name``'s Table 1 construction.

    ``claim_small=True`` drops the parts-below-D exemption on the family
    constructions (no-op for ``general``, whose exemption is structural).
    """
    return get_family(name).provider(param=param, claim_small=claim_small)
