"""The schedule-fuzzing differential harness.

Each :class:`FuzzCase` is fully determined by a ``(graph_seed,
schedule_seed)`` pair plus its explicit parameters, so any failure is
replayable from the one line the harness prints.  A case runs one
workload (PA, MST or connected components) five ways — on the scalar
synchronous engine, on the vectorized (array) synchronous engine, and
on the async engine under the delay-0, seeded-random, adversarial
slow-edge and FIFO schedules — and demands:

* **output equivalence** everywhere: identical per-part aggregates and
  per-node values (PA), identical MST edge sets (also cross-checked
  against Kruskal), identical component labels;
* **delay-0 ledger parity**: the async engine under
  :class:`~repro.congest.schedule.SynchronousSchedule` must reproduce
  the scalar synchronous engine's phase log bit for bit — names,
  rounds, messages and ticks per phase;
* **scalar/array ledger parity**: the array engine must reproduce the
  scalar engine's phase log bit for bit too — the vectorized core is a
  pure implementation change, never a cost-model change.

A third axis injects **faults**: every other PA/MST case derives a
seeded, recoverable :class:`~repro.congest.FaultPlan` (crash/recover
and/or bounded message loss) purely from a ``fault_seed``, runs the
workload through the :class:`~repro.runtime.RecoveryDriver` (heartbeat
detection, Algorithm 9 re-election, recompute-until-clean), and demands
the recovered output equal the fault-free one.  The full case identity
is then the ``(graph_seed, schedule_seed, fault_seed)`` triple.

Failures shrink before being reported: the graph is re-drawn at smaller
sizes (same seeds) while the failure persists, then the failing axis is
isolated — the fault axis is dropped if the failure survives without
it (or the other axes are stripped if it does not), then either a
single schedule kind or the scalar-vs-array engine pair with no delayed
schedules at all — so the replay line names the smallest configuration
the harness could still break.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..algorithms.components import cc_labeling
from ..algorithms.mst import minimum_spanning_tree
from ..analysis.reference import kruskal_mst
from ..congest.faults import FaultPlan
from ..congest.schedule import Schedule, _mix, make_schedule
from ..core.aggregation import SUM
from ..core.pa import DETERMINISTIC, RANDOMIZED, solve_pa
from ..graphs.generators import (
    grid_2d,
    preferential_attachment,
    random_connected,
    random_regular,
)
from ..graphs.partitions import random_connected_partition
from ..graphs.weights import with_distinct_weights

ALGORITHMS = ("pa", "mst", "components")
GRAPH_KINDS = ("grid", "random", "regular", "pref-attach")
#: Non-trivial schedules every case must survive (delay-0 runs always).
DELAYED_KINDS = ("random", "slow-edge", "fifo")
#: Synchronous engine implementations; "scalar" is the reference.
ENGINE_IMPLS = ("scalar", "array")
#: Recoverable fault mixes a case may inject (shrinking may drop them).
FAULT_KINDS = ("crash", "loss", "crash-loss")


@dataclass(frozen=True)
class FuzzCase:
    """One replayable differential check."""

    graph_seed: int
    schedule_seed: int
    n: int = 24
    algorithm: str = "pa"
    mode: str = RANDOMIZED
    graph_kind: str = "random"
    #: Schedule kinds to test beyond delay-0 (shrinking narrows this).
    schedule_kinds: Tuple[str, ...] = DELAYED_KINDS
    #: Sync engine implementations to compare (first one is the baseline;
    #: shrinking may drop the axis to ("scalar",) if it is not at fault).
    engine_impls: Tuple[str, ...] = ENGINE_IMPLS
    #: Fault axis: which recoverable fault mixes to inject (empty = none)
    #: and the seed the FaultPlan is derived from.
    fault_seed: int = 0
    fault_kinds: Tuple[str, ...] = ()

    def replay_command(self) -> str:
        cmd = (
            "python -m repro.fuzz --replay "
            f"{self.graph_seed}:{self.schedule_seed}:{self.fault_seed} "
            f"--n {self.n} "
            f"--algorithm {self.algorithm} --mode {self.mode} "
            f"--graph {self.graph_kind} "
            f"--schedules {','.join(self.schedule_kinds)} "
            f"--engines {','.join(self.engine_impls)}"
        )
        if self.fault_kinds:
            cmd += f" --faults {','.join(self.fault_kinds)}"
        return cmd


@dataclass
class FuzzFailure:
    """A (shrunk) failing case plus what went wrong."""

    case: FuzzCase
    message: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "graph_seed": self.case.graph_seed,
            "schedule_seed": self.case.schedule_seed,
            "n": self.case.n,
            "algorithm": self.case.algorithm,
            "mode": self.case.mode,
            "graph_kind": self.case.graph_kind,
            "schedule_kinds": list(self.case.schedule_kinds),
            "engine_impls": list(self.case.engine_impls),
            "fault_seed": self.case.fault_seed,
            "fault_kinds": list(self.case.fault_kinds),
            "message": self.message,
            "replay": self.case.replay_command(),
        }


def case_for_index(base_seed: int, index: int, max_n: int = 36) -> FuzzCase:
    """The deterministic i-th case of a fuzz run (pure in its inputs)."""
    graph_seed = _mix(base_seed, index, 1) % (1 << 30)
    schedule_seed = _mix(base_seed, index, 2) % (1 << 30)
    algorithm = ALGORITHMS[index % len(ALGORITHMS)]
    # Mode is drawn from an independent hash, NOT from the same modulus
    # as the algorithm rotation — otherwise deterministic mode would only
    # ever pair with one workload and the matrix would have blind cells.
    mode = DETERMINISTIC if _mix(base_seed, index, 5) % 3 == 2 else RANDOMIZED
    graph_kind = GRAPH_KINDS[_mix(base_seed, index, 3) % len(GRAPH_KINDS)]
    low = 10
    n = low + _mix(base_seed, index, 4) % max(1, max_n - low + 1)
    # MST runs three engine pipelines per Boruvka phase; keep it smaller.
    if algorithm == "mst":
        n = min(n, 28)
    # Fault axis: every other PA/MST case injects a seeded recoverable
    # FaultPlan (components has no recovery driver, so it stays clean).
    fault_seed = _mix(base_seed, index, 7) % (1 << 30)
    fault_kinds: Tuple[str, ...] = ()
    if algorithm in ("pa", "mst") and _mix(base_seed, index, 6) % 2 == 0:
        fault_kinds = (FAULT_KINDS[_mix(base_seed, index, 8) % len(FAULT_KINDS)],)
    return FuzzCase(
        graph_seed=graph_seed, schedule_seed=schedule_seed, n=n,
        algorithm=algorithm, mode=mode, graph_kind=graph_kind,
        fault_seed=fault_seed, fault_kinds=fault_kinds,
    )


def build_network(case: FuzzCase):
    """The case's graph (weighted — MST needs it, the others ignore it)."""
    n = max(6, case.n)
    seed = case.graph_seed
    if case.graph_kind == "grid":
        cols = max(2, int(n ** 0.5))
        rows = max(2, n // cols)
        net = grid_2d(rows, cols, uid_seed=seed)
    elif case.graph_kind == "regular":
        degree = 3
        m = n if n * degree % 2 == 0 else n + 1
        net = random_regular(m, degree, seed=seed, uid_seed=seed)
    elif case.graph_kind == "pref-attach":
        net = preferential_attachment(n, attach=2, seed=seed, uid_seed=seed)
    else:
        net = random_connected(n, 0.08, seed=seed, uid_seed=seed)
    return with_distinct_weights(net, seed=seed)


def fault_plan_for(case: FuzzCase, n: int) -> Optional[FaultPlan]:
    """The case's seeded fault plan (None when the fault axis is off).

    Every plan is *recoverable* — crashes recover and losses stop — so
    the RecoveryDriver is always expected to converge; a case that does
    not is a finding, not an impossible ask.
    """
    if not case.fault_kinds:
        return None
    want_crash = any("crash" in kind for kind in case.fault_kinds)
    want_loss = any("loss" in kind for kind in case.fault_kinds)
    return FaultPlan.seeded(
        case.fault_seed, n,
        crashes=(1 + case.fault_seed % 2) if want_crash else 0,
        recover=True, crash_window=(3, 30), outage=(8, 30),
        loss_rate=(0.02 + (case.fault_seed % 5) * 0.02) if want_loss else 0.0,
        loss_window=(1, 40),
    )


def schedules_for(case: FuzzCase) -> List[Schedule]:
    """The delayed schedules of this case, all seeded replayably.

    Each kind's seed is derived from its *canonical* index, not its
    position in ``schedule_kinds`` — so a shrunk case that isolates one
    kind replays the exact same delays that kind drew in the full run.
    """
    out: List[Schedule] = []
    for kind in case.schedule_kinds:
        seed = _mix(case.schedule_seed, DELAYED_KINDS.index(kind)) % (1 << 30)
        out.append(
            make_schedule(
                kind, seed=seed,
                max_delay=1 + seed % 6,
                slow_fraction=0.15 + (seed % 4) * 0.1,
                slow_delay=2 + seed % 8,
            )
        )
    return out


def _phase_log(ledger) -> List[Tuple[str, int, int, int]]:
    return [(p.name, p.rounds, p.messages, p.ticks) for p in ledger.phases()]


def _run_workload(case: FuzzCase, net, partition, values,
                  schedule: Optional[Schedule], async_mode: bool,
                  engine_impl: str = "scalar"):
    """Run the case's algorithm; return (output, ledger)."""
    seed = case.graph_seed % 997
    if case.algorithm == "pa":
        res = solve_pa(
            net, partition, values, SUM, mode=case.mode, seed=seed,
            schedule=schedule, async_mode=async_mode,
            engine_impl=engine_impl,
        )
        return (dict(res.aggregates), list(res.value_at_node)), res.ledger
    if case.algorithm == "mst":
        res = minimum_spanning_tree(
            net, mode=case.mode, seed=seed,
            schedule=schedule, async_mode=async_mode,
            engine_impl=engine_impl,
        )
        return res.output, res.ledger
    if case.algorithm == "components":
        subgraph = [e for i, e in enumerate(net.edges) if i % 3 != 0]
        res = cc_labeling(
            net, subgraph, mode=case.mode, seed=seed,
            schedule=schedule, async_mode=async_mode,
            engine_impl=engine_impl,
        )
        return list(res.output), res.ledger
    raise ValueError(f"unknown algorithm {case.algorithm!r}")


def run_case(case: FuzzCase) -> Optional[str]:
    """Run one differential check; None on success, else what failed."""
    try:
        net = build_network(case)
        partition = random_connected_partition(
            net, max(2, min(6, net.n // 5)), seed=case.graph_seed
        )
        values = [(v * 7 + 3) % 101 for v in range(net.n)]

        base_out, base_ledger = _run_workload(
            case, net, partition, values, schedule=None, async_mode=False
        )
        if case.algorithm == "mst" and base_out != frozenset(kruskal_mst(net)):
            return "sync MST does not match the Kruskal oracle"

        for impl in case.engine_impls:
            if impl == "scalar":
                continue  # the baseline above
            impl_out, impl_ledger = _run_workload(
                case, net, partition, values, schedule=None,
                async_mode=False, engine_impl=impl,
            )
            if impl_out != base_out:
                return f"{impl} engine output differs from the scalar engine"
            if _phase_log(impl_ledger) != _phase_log(base_ledger):
                scalar_log = _phase_log(base_ledger)
                impl_log = _phase_log(impl_ledger)
                diff = next(
                    (p for p in zip(scalar_log, impl_log) if p[0] != p[1]),
                    (("<length>", len(scalar_log)),
                     ("<length>", len(impl_log))),
                )
                return (
                    f"scalar-vs-{impl} ledger parity broken: "
                    f"{diff[0]} != {diff[1]}"
                )

        zero_out, zero_ledger = _run_workload(
            case, net, partition, values, schedule=None, async_mode=True
        )
        if zero_out != base_out:
            return "delay-0 async output differs from the synchronous engine"
        if _phase_log(zero_ledger) != _phase_log(base_ledger):
            sync_log, async_log = _phase_log(base_ledger), _phase_log(zero_ledger)
            diff = next(
                (pair for pair in zip(sync_log, async_log) if pair[0] != pair[1]),
                (("<length>", len(sync_log)), ("<length>", len(async_log))),
            )
            return f"delay-0 ledger parity broken: {diff[0]} != {diff[1]}"

        for schedule in schedules_for(case):
            sched_out, _ = _run_workload(
                case, net, partition, values, schedule=schedule,
                async_mode=False,
            )
            if sched_out != base_out:
                return f"output diverged under schedule {schedule.name}"

        if case.fault_kinds and case.algorithm in ("pa", "mst"):
            from ..runtime.recovery import RecoveryDriver

            plan = fault_plan_for(case, net.n)
            driver = RecoveryDriver(
                net, faults=plan, mode=case.mode,
                seed=case.graph_seed % 997,
                max_attempts=12, max_wait_windows=160,
            )
            if case.algorithm == "pa":
                res = driver.solve_pa(partition, values, SUM)
                fault_out = (dict(res.aggregates), list(res.value_at_node))
            else:
                res = driver.minimum_spanning_tree()
                fault_out = res.output
            if fault_out != base_out:
                return (
                    "recovered output diverged from the fault-free run "
                    f"under faults {','.join(case.fault_kinds)}"
                )
        return None
    except Exception as exc:  # a crash is a finding, not a harness error
        return f"{type(exc).__name__}: {exc}"


def shrink_case(
    case: FuzzCase,
    check: Callable[[FuzzCase], Optional[str]] = run_case,
) -> Tuple[FuzzCase, str]:
    """Minimize a failing case; returns (smallest failing case, message).

    Four shrink axes, all preserving the replay seeds: the graph size
    is walked down while the failure persists; the fault axis is
    dropped if the failure reproduces without it, else the other
    optional axes are stripped so only the seed triple remains; then —
    if the case still fails with the engine axis dropped (scalar only)
    the engine comparison was not at fault and a single failing
    schedule kind is sought; otherwise the divergence is the
    scalar-vs-array engine pair, and the delayed schedules are dropped
    instead if the engine pair alone still reproduces it.
    """
    message = check(case)
    if message is None:
        raise ValueError("shrink_case requires a failing case")
    # Axis 1: graph size (halving, then linear refinement).
    current = case
    n = case.n
    while n > 8:
        candidate = replace(current, n=max(8, n // 2))
        failed = check(candidate)
        if failed is None:
            break
        current, message, n = candidate, failed, candidate.n
    step = max(1, current.n // 4)
    while step and current.n > 8:
        candidate = replace(current, n=max(8, current.n - step))
        failed = check(candidate)
        if failed is not None and candidate.n < current.n:
            current, message = candidate, failed
        else:
            step //= 2
    # Axis 1.5: is the fault axis guilty?  If the failure survives with
    # the faults dropped they were innocent — shed them and let the
    # later axes isolate further.  If it does not, the faults are
    # required: strip the *other* optional axes instead so the replay
    # line is the bare (graph, schedule, fault) seed triple.
    if current.fault_kinds:
        candidate = replace(current, fault_kinds=())
        failed = check(candidate)
        if failed is not None:
            current, message = candidate, failed
        else:
            candidate = replace(
                current, engine_impls=("scalar",), schedule_kinds=()
            )
            failed = check(candidate)
            if failed is not None:
                current, message = candidate, failed
    # Axis 2: which engine diverged?  If the failure survives without the
    # array engine, the engine axis is innocent; otherwise keep the
    # engine pair and try dropping the delayed schedules entirely.
    if len(current.engine_impls) > 1:
        candidate = replace(current, engine_impls=("scalar",))
        failed = check(candidate)
        if failed is not None:
            current, message = candidate, failed
        else:
            candidate = replace(current, schedule_kinds=())
            failed = check(candidate)
            if failed is not None:
                current, message = candidate, failed
    # Axis 3: isolate a single failing schedule kind.
    for kind in current.schedule_kinds:
        candidate = replace(current, schedule_kinds=(kind,))
        failed = check(candidate)
        if failed is not None:
            current, message = candidate, failed
            break
    return current, message


@dataclass
class FuzzReport:
    """Outcome of a fuzz run."""

    runs: int
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def fuzz(
    runs: int = 10,
    base_seed: int = 0,
    max_n: int = 36,
    shrink: bool = True,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run ``runs`` seeded differential cases; shrink and report failures."""
    report = FuzzReport(runs=runs)
    for index in range(runs):
        case = case_for_index(base_seed, index, max_n=max_n)
        message = run_case(case)
        if message is None:
            if log:
                faults = ",".join(case.fault_kinds) or "none"
                log(
                    f"[fuzz] ok   #{index} {case.algorithm}/{case.mode} "
                    f"{case.graph_kind} n={case.n} faults={faults} "
                    f"seeds={case.graph_seed}:{case.schedule_seed}:"
                    f"{case.fault_seed}"
                )
            continue
        if shrink:
            case, message = shrink_case(case)
        report.failures.append(FuzzFailure(case=case, message=message))
        if log:
            log(
                f"[fuzz] FAIL #{index}: {message}\n"
                f"        replay: {case.replay_command()}"
            )
    return report
