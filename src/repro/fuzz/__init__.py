"""Schedule-and-graph differential fuzzing for the asynchronous engine.

The async engine's contract is *semantic transparency*: any program that
runs on the synchronous engine must produce identical outputs under any
delivery schedule, and the delay-0 schedule must be bit-for-bit
ledger-identical.  This package turns that contract into a generator of
randomized counterexample hunts:

* :func:`repro.fuzz.harness.fuzz` draws seeded random graphs, partitions
  and delay schedules, runs PA / MST / connected components under sync
  vs. async execution, and checks output equivalence plus delay-0 ledger
  parity;
* every other PA/MST case also injects a seeded recoverable
  :class:`~repro.congest.FaultPlan` and demands the
  :class:`~repro.runtime.RecoveryDriver` re-converge to the fault-free
  output;
* every failure is *shrunk* (smaller graph, isolated axis) and reported
  as a replayable ``(graph_seed, schedule_seed, fault_seed)`` triple;
* ``python -m repro.fuzz --runs 25`` is the CLI the CI fuzz step runs,
  with ``--replay graph_seed:schedule_seed[:fault_seed]`` to reproduce
  a failure.
"""

from .harness import (
    FuzzCase,
    FuzzFailure,
    case_for_index,
    fault_plan_for,
    fuzz,
    run_case,
    shrink_case,
)

__all__ = [
    "FuzzCase",
    "FuzzFailure",
    "case_for_index",
    "fault_plan_for",
    "fuzz",
    "run_case",
    "shrink_case",
]
