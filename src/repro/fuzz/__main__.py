"""CLI for the schedule fuzzer: ``python -m repro.fuzz --runs 25``.

Exit status 0 when every case passes, 1 when any fails (after
shrinking); ``--out`` writes the failing replay seed triples as JSON —
the CI fuzz step uploads that file as an artifact.  ``--replay
graph_seed:schedule_seed[:fault_seed]`` re-runs one case exactly
(combine with ``--n/--algorithm/--mode/--graph/--faults`` as printed in
the failure's replay line).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .harness import (
    ALGORITHMS,
    DELAYED_KINDS,
    ENGINE_IMPLS,
    FAULT_KINDS,
    GRAPH_KINDS,
    FuzzCase,
    FuzzFailure,
    fuzz,
    run_case,
    shrink_case,
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential fuzzing of sync vs async execution.",
    )
    parser.add_argument("--runs", type=int, default=10,
                        help="number of seeded cases (default 10)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed for case derivation (default 0)")
    parser.add_argument("--max-n", type=int, default=36,
                        help="largest graph size to draw (default 36)")
    parser.add_argument("--out", type=Path, default=None,
                        help="write failing replay seeds to this JSON file")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report failures without minimizing them")
    parser.add_argument("--replay", metavar="GSEED:SSEED[:FSEED]",
                        default=None,
                        help="replay one case from a failure's seed triple")
    parser.add_argument("--n", type=int, default=24,
                        help="graph size for --replay")
    parser.add_argument("--algorithm", choices=ALGORITHMS, default="pa",
                        help="workload for --replay")
    parser.add_argument("--mode", choices=["randomized", "deterministic"],
                        default="randomized", help="PA mode for --replay")
    parser.add_argument("--graph", choices=GRAPH_KINDS, default="random",
                        help="graph family for --replay")
    parser.add_argument("--schedules", default=",".join(DELAYED_KINDS),
                        help="comma-separated schedule kinds for --replay "
                             "(shrunk failures isolate a single kind)")
    parser.add_argument("--engines", default=",".join(ENGINE_IMPLS),
                        help="comma-separated sync engine implementations "
                             "for --replay (scalar is the baseline)")
    parser.add_argument("--faults", default="",
                        help="comma-separated fault kinds for --replay "
                             "(empty = no fault axis)")
    args = parser.parse_args(argv)

    schedule_kinds = tuple(k for k in args.schedules.split(",") if k)
    unknown = [k for k in schedule_kinds if k not in DELAYED_KINDS]
    if unknown:
        parser.error(
            f"unknown schedule kind(s) {unknown}; choose from {DELAYED_KINDS}"
        )
    engine_impls = tuple(k for k in args.engines.split(",") if k)
    unknown = [k for k in engine_impls if k not in ENGINE_IMPLS]
    if unknown:
        parser.error(
            f"unknown engine impl(s) {unknown}; choose from {ENGINE_IMPLS}"
        )
    fault_kinds = tuple(k for k in args.faults.split(",") if k)
    unknown = [k for k in fault_kinds if k not in FAULT_KINDS]
    if unknown:
        parser.error(
            f"unknown fault kind(s) {unknown}; choose from {FAULT_KINDS}"
        )

    if args.replay is not None:
        parts = args.replay.split(":")
        if len(parts) not in (2, 3):
            parser.error("--replay expects GSEED:SSEED or GSEED:SSEED:FSEED")
        graph_seed, schedule_seed = parts[0], parts[1]
        fault_seed = parts[2] if len(parts) == 3 else "0"
        case = FuzzCase(
            graph_seed=int(graph_seed), schedule_seed=int(schedule_seed or 0),
            n=args.n, algorithm=args.algorithm, mode=args.mode,
            graph_kind=args.graph, schedule_kinds=schedule_kinds,
            engine_impls=engine_impls,
            fault_seed=int(fault_seed or 0), fault_kinds=fault_kinds,
        )
        message = run_case(case)
        if message is None:
            print(f"[fuzz] replay passed: {case.replay_command()}")
            return 0
        if not args.no_shrink:
            case, message = shrink_case(case)
        print(f"[fuzz] replay FAILED: {message}")
        print(f"        {case.replay_command()}")
        failures = [FuzzFailure(case=case, message=message)]
    else:
        report = fuzz(
            runs=args.runs, base_seed=args.seed, max_n=args.max_n,
            shrink=not args.no_shrink, log=print,
        )
        if report.ok:
            print(f"[fuzz] {args.runs} cases, all passed")
            return 0
        failures = report.failures
        print(f"[fuzz] {len(failures)}/{args.runs} cases FAILED")

    if args.out is not None:
        args.out.write_text(
            json.dumps([f.as_dict() for f in failures], indent=2) + "\n"
        )
        print(f"[fuzz] replay seeds written to {args.out}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
