"""The tracing API: spans, instant events and counters, off by default.

Every hook point in the engines and the runtime goes through the tracer
installed with :func:`use_tracer` (or :func:`install_tracer`).  The
default is the module-level :data:`NULL_TRACER`, whose ``enabled`` flag
is ``False`` — hook points check that one attribute and skip all event
construction, so the disabled path costs a handful of branches per
*phase* (never per message) and the ledgers are bit-for-bit identical
with tracing on, off, or absent (``benchmarks/bench_obs.py`` gates the
ledger identity; the CI ``--check-against`` gate pins the disabled path
against the committed baseline).

Event model (a subset of the Chrome trace event format, so traces open
directly in Perfetto / ``chrome://tracing``):

``ph == "X"`` (complete span)
    A named duration with ``ts``/``dur`` in microseconds of wall time
    and model-side quantities in ``args``.  Engine phases, session
    prepares and recovery attempts are spans.
``ph == "i"`` (instant)
    A point event: ledger charges (``cat == "ledger"``), timer-wheel
    fast-forward jumps, fault injections.
``ph == "C"`` (counter)
    A numeric sample series: the per-tick message/bit/activation
    counters emitted inside the engine run loops.

The ``cat`` field is the schema discriminator (see
docs/architecture.md, "Observability"):

* ``"ledger"`` — one instant per :class:`~repro.congest.ledger.PhaseStats`
  *first charged* to a :class:`~repro.congest.ledger.CostLedger`
  (re-attributions via ``merge``/``record`` are never re-emitted, so
  summing ledger events never double counts).  ``args`` carries
  ``stream`` (``"main"``, ``"async_overhead"``, ``"recovery"``) plus
  ``rounds``/``messages``/``ticks``/``bits``.
* ``"engine.phase"`` — one span per engine phase run (scalar, array or
  async loop), wall-timed, with the phase's ledger quantities and
  implementation in ``args``.
* ``"engine.tick"`` — per-tick counters (messages delivered, payload
  bits, activations) while a phase runs.
* ``"engine.ff"`` — timer-wheel fast-forward jumps (all three engines).
* ``"fault"`` — fault-plan injections observed by the async engine.
* ``"session"`` / ``"recovery"`` — runtime-layer spans and instants.

Wall timestamps are hardware facts: :mod:`repro.obs.summary` diffs only
the deterministic model-side quantities, never ``ts``/``dur``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional


class NullTracer:
    """The default tracer: every hook is a no-op.

    ``enabled`` is ``False``; hook points are required to check it before
    building any event payload, which is what makes the disabled path
    near-zero cost.  The methods still exist (and do nothing) so code
    that holds a tracer unconditionally cannot crash.
    """

    enabled = False

    def now_us(self) -> int:
        return 0

    def instant(self, name: str, cat: str, args: Optional[Dict] = None) -> None:
        pass

    def counter(self, name: str, values: Dict[str, int]) -> None:
        pass

    def complete(
        self, name: str, cat: str, start_us: int, args: Optional[Dict] = None
    ) -> None:
        pass

    def ledger(self, stream: str, stats) -> None:
        pass

    @contextmanager
    def span(
        self, name: str, cat: str, args: Optional[Dict] = None
    ) -> Iterator[Dict]:
        yield {}


class Tracer(NullTracer):
    """An in-memory recording tracer.

    Events accumulate as Chrome-trace dicts in :attr:`events`; export
    with :meth:`write_chrome` (one ``{"traceEvents": [...]}`` JSON file,
    loadable in Perfetto) or :meth:`write_jsonl` (one event per line —
    streamable, greppable).  ``clock`` is injectable so tests can pin
    timestamps; model-side quantities never come from the clock.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.events: List[Dict] = []
        self._clock = clock
        self._t0 = clock()

    # -- primitive emitters --------------------------------------------
    def now_us(self) -> int:
        return int((self._clock() - self._t0) * 1_000_000)

    def instant(self, name: str, cat: str, args: Optional[Dict] = None) -> None:
        self.events.append(
            {
                "ph": "i",
                "name": name,
                "cat": cat,
                "ts": self.now_us(),
                "pid": 0,
                "tid": 0,
                "s": "g",
                "args": args or {},
            }
        )

    def counter(self, name: str, values: Dict[str, int]) -> None:
        self.events.append(
            {
                "ph": "C",
                "name": name,
                "cat": "engine.tick",
                "ts": self.now_us(),
                "pid": 0,
                "tid": 0,
                "args": values,
            }
        )

    def complete(
        self, name: str, cat: str, start_us: int, args: Optional[Dict] = None
    ) -> None:
        now = self.now_us()
        self.events.append(
            {
                "ph": "X",
                "name": name,
                "cat": cat,
                "ts": start_us,
                "dur": max(0, now - start_us),
                "pid": 0,
                "tid": 0,
                "args": args or {},
            }
        )

    def ledger(self, stream: str, stats) -> None:
        """One instant per PhaseStats first charged to a ledger."""
        self.instant(
            stats.name,
            "ledger",
            {
                "stream": stream,
                "rounds": stats.rounds,
                "messages": stats.messages,
                "ticks": stats.ticks,
                "bits": stats.bits,
            },
        )

    @contextmanager
    def span(
        self, name: str, cat: str, args: Optional[Dict] = None
    ) -> Iterator[Dict]:
        """Wall-timed span; mutate the yielded dict to attach results."""
        out: Dict = dict(args or {})
        start = self.now_us()
        try:
            yield out
        finally:
            self.complete(name, cat, start, out)

    # -- selectors ------------------------------------------------------
    def ledger_events(self, stream: Optional[str] = None) -> List[Dict]:
        """The ``cat == "ledger"`` events (optionally one stream's)."""
        return [
            e
            for e in self.events
            if e["cat"] == "ledger"
            and (stream is None or e["args"]["stream"] == stream)
        ]

    # -- exporters ------------------------------------------------------
    def to_chrome(self) -> Dict:
        return {
            "traceEvents": self.events,
            "displayTimeUnit": "ms",
            "otherData": {"schema": "repro-obs/1"},
        }

    def write_chrome(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh, indent=None, separators=(",", ":"))
            fh.write("\n")

    def write_jsonl(self, path) -> None:
        with open(path, "w") as fh:
            for event in self.events:
                fh.write(json.dumps(event, separators=(",", ":")))
                fh.write("\n")


#: The process-wide default tracer (disabled).  Hook points must check
#: ``.enabled`` before doing any per-event work.
NULL_TRACER = NullTracer()

_CURRENT: NullTracer = NULL_TRACER


def current_tracer() -> NullTracer:
    """The tracer hook points report to (the NullTracer unless installed)."""
    return _CURRENT


def install_tracer(tracer: Optional[NullTracer]) -> NullTracer:
    """Install ``tracer`` process-wide; returns the previous one.

    ``None`` restores the disabled default.  Prefer :func:`use_tracer`
    for scoped installation.
    """
    global _CURRENT
    previous = _CURRENT
    _CURRENT = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer: NullTracer) -> Iterator[NullTracer]:
    """Scoped installation: hooks report to ``tracer`` inside the block."""
    previous = install_tracer(tracer)
    try:
        yield tracer
    finally:
        install_tracer(previous)
