"""Trace-driven profiling: load, summarize and diff recorded traces.

A trace is the event list a :class:`repro.obs.Tracer` wrote — either the
Chrome-trace JSON object (``{"traceEvents": [...]}``) or a JSONL event
log.  Everything here works on the *deterministic* fields (the ledger
events' rounds/messages/ticks/bits and event counts); wall times are
summarized but never diffed — the same hardware-facts-are-not-model-facts
rule the bench runner's ``--check-against`` gate follows.

The per-phase diff is the fine-grained version of that gate: where the
bench gate compares one (rounds, messages) total per experiment, the
trace diff compares every phase of the run, so a regression names the
phase it lives in instead of just the experiment.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

#: Aggregation key for ledger events: (stream, phase name).
PhaseKey = Tuple[str, str]


@dataclass
class PhaseTotals:
    """Aggregated ledger quantities of one (stream, phase-name) series."""

    count: int = 0
    rounds: int = 0
    messages: int = 0
    ticks: int = 0
    bits: int = 0

    def add(self, args: Dict) -> None:
        self.count += 1
        self.rounds += args.get("rounds", 0)
        self.messages += args.get("messages", 0)
        self.ticks += args.get("ticks", 0)
        self.bits += args.get("bits", 0)

    def key_tuple(self) -> Tuple[int, int, int, int, int]:
        return (self.count, self.rounds, self.messages, self.ticks, self.bits)


@dataclass
class TraceSummary:
    """Everything the CLI prints, precomputed from one event list."""

    #: (stream, name) -> aggregated ledger quantities.
    phases: Dict[PhaseKey, PhaseTotals] = field(default_factory=dict)
    #: stream -> (rounds, messages) totals.
    stream_totals: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: phase name -> total wall microseconds (engine.phase spans).
    wall_us: Dict[str, int] = field(default_factory=dict)
    #: async span aggregates (time units / pulses / control traffic).
    async_time_units: int = 0
    async_pulses: int = 0
    async_payloads: int = 0
    async_acks: int = 0
    async_safes: int = 0
    #: instant-event counts by name (fast-forwards, faults, session ops).
    event_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def main_totals(self) -> Tuple[int, int]:
        return self.stream_totals.get("main", (0, 0))


def load_trace(path) -> List[Dict]:
    """Read a trace written by ``Tracer.write_chrome`` or ``write_jsonl``.

    Both formats open with ``{``, so the discriminator is whether the
    whole file parses as one JSON document (chrome trace: one object,
    or a bare event list) — a multi-line JSONL log does not, and falls
    through to line-by-line parsing.
    """
    text = Path(path).read_text()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        return [json.loads(line) for line in text.splitlines() if line.strip()]
    if isinstance(payload, list):
        return payload
    events = payload.get("traceEvents")
    if events is not None:
        return events
    if "ph" in payload:  # a single-event JSONL file parses as one dict
        return [payload]
    raise ValueError(f"{path}: JSON object without 'traceEvents'")


def summarize(events: Sequence[Dict]) -> TraceSummary:
    """Aggregate one event list into a :class:`TraceSummary`."""
    out = TraceSummary()
    totals: Dict[str, List[int]] = {}
    for event in events:
        cat = event.get("cat", "")
        args = event.get("args", {})
        name = event.get("name", "?")
        if cat == "ledger":
            stream = args.get("stream", "main")
            out.phases.setdefault((stream, name), PhaseTotals()).add(args)
            bucket = totals.setdefault(stream, [0, 0])
            bucket[0] += args.get("rounds", 0)
            bucket[1] += args.get("messages", 0)
        elif cat == "engine.phase" and event.get("ph") == "X":
            out.wall_us[name] = out.wall_us.get(name, 0) + event.get("dur", 0)
            if args.get("impl") == "async":
                out.async_time_units += args.get("time_units", 0)
                out.async_pulses += args.get("pulses", 0)
                out.async_payloads += args.get("payload_messages", 0)
                out.async_acks += args.get("ack_messages", 0)
                out.async_safes += args.get("safe_messages", 0)
        elif event.get("ph") == "i" and cat != "ledger":
            out.event_counts[name] = out.event_counts.get(name, 0) + 1
    out.stream_totals = {k: (v[0], v[1]) for k, v in totals.items()}
    return out


def top_phases(
    summary: TraceSummary, by: str, k: int, stream: str = "main"
) -> List[Tuple[str, PhaseTotals]]:
    """The ``k`` costliest phases of one stream, by a ledger column."""
    rows = [
        (name, tot)
        for (s, name), tot in summary.phases.items()
        if s == stream
    ]
    rows.sort(key=lambda item: (-getattr(item[1], by), item[0]))
    return rows[:k]


def top_wall(summary: TraceSummary, k: int) -> List[Tuple[str, int]]:
    """The ``k`` phases with the largest wall time (microseconds)."""
    rows = sorted(summary.wall_us.items(), key=lambda kv: (-kv[1], kv[0]))
    return rows[:k]


def render_summary(summary: TraceSummary, top: int = 10) -> str:
    """Human-readable multi-section report for one trace."""
    lines: List[str] = []
    for stream in sorted(summary.stream_totals):
        rounds, messages = summary.stream_totals[stream]
        lines.append(f"stream {stream}: rounds={rounds} messages={messages}")
    if not summary.stream_totals:
        lines.append("no ledger events in trace")

    def _table(title: str, rows: List[Tuple[str, PhaseTotals]]) -> None:
        if not rows:
            return
        lines.append("")
        lines.append(title)
        width = max(len(name) for name, _ in rows)
        header = (
            f"  {'phase'.ljust(width)}  {'count':>7}  {'rounds':>10}  "
            f"{'messages':>12}  {'bits':>14}"
        )
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for name, tot in rows:
            lines.append(
                f"  {name.ljust(width)}  {tot.count:>7}  {tot.rounds:>10}  "
                f"{tot.messages:>12}  {tot.bits:>14}"
            )

    _table(
        f"top {top} phases by rounds (stream main):",
        top_phases(summary, "rounds", top),
    )
    _table(
        f"top {top} phases by messages (stream main):",
        top_phases(summary, "messages", top),
    )
    wall = top_wall(summary, top)
    if wall:
        lines.append("")
        lines.append(f"top {top} phases by wall time:")
        width = max(len(name) for name, _ in wall)
        for name, us in wall:
            lines.append(f"  {name.ljust(width)}  {us / 1000:>10.3f} ms")
    if summary.async_pulses or summary.async_time_units:
        payloads = max(1, summary.async_payloads)
        control = summary.async_acks + summary.async_safes
        lines.append("")
        lines.append("sync-vs-async overhead:")
        lines.append(
            f"  pulses={summary.async_pulses} "
            f"time_units={summary.async_time_units}"
        )
        lines.append(
            f"  payload_messages={summary.async_payloads} "
            f"ack_messages={summary.async_acks} "
            f"safe_messages={summary.async_safes} "
            f"(control/payload = {control / payloads:.2f}x)"
        )
    if summary.event_counts:
        lines.append("")
        lines.append("events:")
        for name in sorted(summary.event_counts):
            lines.append(f"  {name}: {summary.event_counts[name]}")
    return "\n".join(lines)


def diff_summaries(
    a: TraceSummary, b: TraceSummary
) -> List[Tuple[str, str, Tuple, Tuple]]:
    """Per-phase drift between two traces' deterministic quantities.

    Returns ``(stream, phase, a_quantities, b_quantities)`` rows where
    the aggregated (count, rounds, messages, ticks, bits) differ; a
    phase missing on one side compares against all zeros.  Wall times
    are never compared.  Empty list = zero drift.
    """
    drift: List[Tuple[str, str, Tuple, Tuple]] = []
    zero = PhaseTotals()
    for key in sorted(set(a.phases) | set(b.phases)):
        ta = a.phases.get(key, zero).key_tuple()
        tb = b.phases.get(key, zero).key_tuple()
        if ta != tb:
            drift.append((key[0], key[1], ta, tb))
    return drift


def render_diff(
    drift: List[Tuple[str, str, Tuple, Tuple]],
    label_a: str = "A",
    label_b: str = "B",
) -> str:
    if not drift:
        return "zero drift: every phase's count/rounds/messages/ticks/bits identical"
    lines = [f"{len(drift)} phase(s) drifted ({label_a} -> {label_b}):"]
    columns = ("count", "rounds", "messages", "ticks", "bits")
    for stream, name, ta, tb in drift:
        deltas = ", ".join(
            f"{col} {va} -> {vb}"
            for col, va, vb in zip(columns, ta, tb)
            if va != vb
        )
        lines.append(f"  [{stream}] {name}: {deltas}")
    return "\n".join(lines)
