"""repro.obs — engine-wide tracing, metrics, and trace-driven profiling.

The observability substrate every engine and runtime layer emits into:

* :class:`Tracer` records spans, instant events and counters in the
  Chrome trace event format (open the files in Perfetto) and as JSONL;
* the default :data:`NULL_TRACER` is installed process-wide, and every
  hook point checks its ``enabled`` flag before building any event —
  the zero-cost-when-off rule (ledgers are bit-for-bit identical with
  tracing on or off; gated by ``benchmarks/bench_obs.py`` and the CI
  baseline check);
* :func:`use_tracer` / :func:`install_tracer` scope a recording tracer
  over a workload; the bench runner's ``--trace DIR`` does this per
  experiment;
* :mod:`repro.obs.summary` profiles and diffs recorded traces —
  ``python -m repro.obs summarize TRACE`` / ``python -m repro.obs diff
  A B`` (the per-phase version of the bench runner's ledger gate).

See docs/architecture.md, "Observability", for the trace schema and the
hook-point inventory.
"""

from .summary import (
    PhaseTotals,
    TraceSummary,
    diff_summaries,
    load_trace,
    render_diff,
    render_summary,
    summarize,
    top_phases,
    top_wall,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    current_tracer,
    install_tracer,
    use_tracer,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "PhaseTotals",
    "TraceSummary",
    "Tracer",
    "current_tracer",
    "diff_summaries",
    "install_tracer",
    "load_trace",
    "render_diff",
    "render_summary",
    "summarize",
    "top_phases",
    "top_wall",
    "use_tracer",
]
