"""``python -m repro.obs`` — summarize or diff recorded traces.

Usage::

    python -m repro.obs summarize TRACE [--top K]
    python -m repro.obs diff A B

``summarize`` prints per-stream totals, the top-k phases by rounds /
messages / wall time, the sync-vs-async overhead breakdown and instant
event counts.  ``diff`` compares the deterministic per-phase quantities
of two traces and exits 3 on any drift (mirroring the bench runner's
``--check-against`` exit code) — the per-phase version of that gate.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .summary import (
    diff_summaries,
    load_trace,
    render_diff,
    render_summary,
    summarize,
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize or diff traces recorded by repro.obs.Tracer.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="profile one trace")
    p_sum.add_argument("trace", type=Path)
    p_sum.add_argument("--top", type=int, default=10, metavar="K",
                       help="rows per top-k table (default 10)")

    p_diff = sub.add_parser("diff", help="per-phase drift between two traces")
    p_diff.add_argument("trace_a", type=Path)
    p_diff.add_argument("trace_b", type=Path)

    args = parser.parse_args(argv)

    if args.command == "summarize":
        if not args.trace.is_file():
            print(f"error: trace not found: {args.trace}", file=sys.stderr)
            return 2
        print(render_summary(summarize(load_trace(args.trace)), top=args.top))
        return 0

    for path in (args.trace_a, args.trace_b):
        if not path.is_file():
            print(f"error: trace not found: {path}", file=sys.stderr)
            return 2
    drift = diff_summaries(
        summarize(load_trace(args.trace_a)),
        summarize(load_trace(args.trace_b)),
    )
    print(render_diff(drift, label_a=str(args.trace_a), label_b=str(args.trace_b)))
    return 3 if drift else 0


if __name__ == "__main__":
    sys.exit(main())
