"""PA-as-a-service: serving aggregation query streams over evolving graphs.

The paper's algorithms are *consumers* of Part-Wise Aggregation; this
module turns the machinery into a *provider*: a long-lived
:class:`PAService` owns a :class:`~repro.runtime.PASession` over one
network and answers per-part aggregation queries from multiple tenants
while the graph underneath evolves — parts merge (coarsening), parts
split (refinement), edges come and go (tree-preserving rebind or counted
rebuild).  Every session-layer reuse mechanism is exercised from here,
and every cost remains on the usual CONGEST ledgers: rounds and messages
are ground truth, walls are never gated.

Cross-tenant micro-batching is the service's round-economy: queries
admitted to the queue are packed, across tenants, into one
``solve_many`` wave (k-tuple values, one broadcast/reversal/replay
instead of k) once ``max_batch`` accumulate or on an explicit
:meth:`PAService.flush`.  Attribution is *shared-cost*: each tenant with
a query in a wave is attributed the wave's full ledger on its own
``tenant:<name>`` stream (merged without re-emitting trace events — the
trace-once rule), so per-tenant sums can exceed the service ledger
exactly when waves were shared; the service ledger stays the bit-for-bit
ground truth that CI gates.

Updates are epoch barriers: :meth:`PAService.update_partition` and
:meth:`PAService.update_edges` flush pending queries first, so a query
is always answered against the partition and topology under which it was
admitted or later — never a half-applied mix.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..congest.ledger import CostLedger
from ..congest.network import Network
from ..core.pa import PASetup, RANDOMIZED
from ..graphs.partitions import Partition
from ..obs.tracer import current_tracer
from ..runtime.session import EdgeUpdateReport, PASession
from .queries import AggregateQuery


@dataclass
class ServiceStats:
    """Counters describing how the service served its tenants."""

    queries: int = 0            # queries admitted
    waves: int = 0              # wave passes run (flushes with >= 1 query)
    batched_queries: int = 0    # queries served in shared multi-query waves
    solo_queries: int = 0       # queries served in single-query waves
    partition_updates: int = 0  # update_partition epochs
    edge_updates: int = 0       # update_edges epochs
    tenants: int = 0            # tenants registered

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass(frozen=True)
class QueryResult:
    """One answered query: per-part aggregates plus its wave's costs.

    ``rounds``/``messages`` are the *wave's* totals — shared by every
    query batched into it, mirroring the shared-cost attribution rule.
    """

    query_id: int
    tenant: str
    kind: str
    aggregates: Dict[int, object]
    wave: int
    rounds: int
    messages: int


class PAService:
    """A query-serving layer over one evolving network.

    Parameters
    ----------
    net / partition:
        The initial topology and part structure.  The first setup is a
        full prepare, charged to the service ledger under ``prepare:``.
    mode / seed / engine_impl / backend / workers / shard_min_n /
    max_entries:
        Forwarded to the owned :class:`~repro.runtime.PASession`
        (constructed with ``reuse=True, batch=True`` — the service *is*
        the session's intended consumer).  ``backend="sharded"`` serves
        eligible waves on the multiprocess worker pool unchanged.
    session:
        Adopt an existing session instead (must have ``reuse`` and
        ``batch`` enabled); the remaining session parameters are then
        rejected at their defaults only.
    max_batch:
        Admission-queue depth that triggers an automatic flush.  1
        disables micro-batching (every submit solves immediately);
        larger values trade query latency for shared waves.
    """

    def __init__(
        self,
        net: Optional[Network] = None,
        partition: Optional[Partition] = None,
        mode: str = RANDOMIZED,
        seed: int = 0,
        max_batch: int = 8,
        session: Optional[PASession] = None,
        engine_impl: str = "array",
        backend: str = "local",
        workers: object = "auto",
        shard_min_n: int = 4096,
        max_entries: Optional[int] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if partition is None:
            raise ValueError("PAService needs an initial partition")
        if session is not None:
            if not (session.reuse and session.batch):
                raise ValueError(
                    "an adopted session must have reuse and batch enabled"
                )
            self.session = session
        else:
            if net is None:
                raise ValueError("PAService needs a network (or a session)")
            self.session = PASession(
                net, mode=mode, seed=seed, reuse=True, batch=True,
                engine_impl=engine_impl, backend=backend, workers=workers,
                shard_min_n=shard_min_n, max_entries=max_entries,
            )
        self.max_batch = max_batch
        self.stats = ServiceStats()
        #: Ground-truth service ledger (every wave, prepare and repair).
        self.ledger = CostLedger(stream="service")
        self._tenants: Dict[str, CostLedger] = {}
        self._queue: List[Tuple[int, str, AggregateQuery]] = []
        self._results: Dict[int, QueryResult] = {}
        self._ids = itertools.count()
        self._waves = 0
        self.partition = partition
        self.setup: PASetup = self.session.prepare(partition)
        self.ledger.merge(self.setup.setup_ledger, prefix="prepare:")

    # -- tenants --------------------------------------------------------
    def register_tenant(self, name: str) -> CostLedger:
        """Create (or fetch) a tenant and return its attribution ledger."""
        ledger = self._tenants.get(name)
        if ledger is None:
            ledger = CostLedger(stream=f"tenant:{name}")
            self._tenants[name] = ledger
            self.stats.tenants += 1
        return ledger

    def tenant_ledger(self, name: str) -> CostLedger:
        """The shared-cost attribution ledger of a registered tenant."""
        return self._tenants[name]

    @property
    def tenants(self) -> Tuple[str, ...]:
        return tuple(self._tenants)

    # -- the admission queue --------------------------------------------
    @property
    def pending(self) -> int:
        """Queries admitted but not yet served by a wave."""
        return len(self._queue)

    def submit(self, tenant: str, query: AggregateQuery) -> int:
        """Admit one query; returns its id (see :meth:`result`).

        Auto-registers the tenant.  When the queue reaches ``max_batch``
        the wave runs immediately; otherwise the query waits for more
        tenants to share the wave with (or an explicit :meth:`flush`, or
        the flush any update performs).
        """
        if len(query.values) != len(self.partition.part_of):
            raise ValueError(
                f"query carries {len(query.values)} values for a "
                f"{len(self.partition.part_of)}-node network"
            )
        self.register_tenant(tenant)
        qid = next(self._ids)
        self._queue.append((qid, tenant, query))
        self.stats.queries += 1
        if len(self._queue) >= self.max_batch:
            self.flush()
        return qid

    def flush(self) -> List[QueryResult]:
        """Serve every queued query in one wave; empty queue is a no-op.

        A single queued query runs as a plain solve; two or more pack
        into one batched ``solve_many`` pass across tenants.  Results are
        returned in submission order and also retrievable once by id via
        :meth:`result`.
        """
        if not self._queue:
            return []
        queue, self._queue = self._queue, []
        wave = self._waves
        self._waves += 1
        self.stats.waves += 1
        tracer = current_tracer()

        items = [
            (query.wave_values(), query.aggregation())
            for _qid, _tenant, query in queue
        ]
        if tracer.enabled:
            with tracer.span("service.flush", "service") as args:
                per, ledger = self._run_wave(wave, items)
                args["wave"] = wave
                args["queries"] = len(queue)
                args["tenants"] = len({t for _q, t, _query in queue})
                args["rounds"] = ledger.rounds
                args["messages"] = ledger.messages
        else:
            per, ledger = self._run_wave(wave, items)

        if len(queue) > 1:
            self.stats.batched_queries += len(queue)
        else:
            self.stats.solo_queries += 1
        # Ground truth first; every phase was traced when first charged,
        # so the re-attributions below stay off the trace (trace-once).
        self.ledger.merge(ledger)

        results: List[QueryResult] = []
        per_tenant: Dict[str, int] = {}
        for (qid, tenant, query), answer in zip(queue, per):
            result = QueryResult(
                query_id=qid,
                tenant=tenant,
                kind=query.kind,
                aggregates=dict(answer.aggregates),
                wave=wave,
                rounds=ledger.rounds,
                messages=ledger.messages,
            )
            self._results[qid] = result
            results.append(result)
            per_tenant[tenant] = per_tenant.get(tenant, 0) + 1
        for tenant, count in per_tenant.items():
            # Shared-cost attribution: every tenant in the wave carries
            # the wave's whole cost on its own stream.  Summing tenant
            # ledgers therefore over-counts exactly when waves were
            # shared — that surplus *is* the batching win, and the
            # service ledger above stays the gated ground truth.
            self._tenants[tenant].merge(ledger)
            if tracer.enabled:
                tracer.instant(
                    "service.attribution", "service",
                    {
                        "tenant": tenant, "wave": wave, "queries": count,
                        "rounds": ledger.rounds, "messages": ledger.messages,
                    },
                )
        return results

    def _run_wave(self, wave: int, items) -> Tuple[List[object], CostLedger]:
        """One solve/solve_many pass; returns per-query results + ledger."""
        if len(items) == 1:
            values, agg = items[0]
            result = self.session.solve(
                self.setup, values, agg,
                charge_setup=False, phase_prefix=f"serve{wave}",
            )
            return [result], result.ledger
        batch = self.session.solve_many(
            self.setup, items,
            charge_setup=False, phase_prefix=f"serve{wave}q",
        )
        return list(batch.per_agg), batch.ledger

    def result(self, query_id: int) -> QueryResult:
        """Retrieve (and forget) an answered query's result.

        Raises ``KeyError`` while the query is still queued — flush
        first, or let an update/auto-flush serve it.
        """
        return self._results.pop(query_id)

    # -- the evolving graph ---------------------------------------------
    def update_partition(self, partition: Partition) -> PASetup:
        """Adopt a new part structure (epoch barrier: flushes first).

        Served incrementally whenever the session can: a merge-only
        coarsening or split-only refinement of the current partition
        projects the standing machinery and re-verifies it with PA
        itself (budget misses fall back to a counted full prepare);
        anything else is a full prepare.  Construction cost lands on the
        service ledger under ``update:``.
        """
        self.flush()
        tracer = current_tracer()
        if tracer.enabled:
            with tracer.span("service.update", "service") as args:
                setup = self.session.prepare_incremental(
                    self.setup, partition
                )
                args["parts"] = partition.num_parts
                args["rounds"] = setup.setup_ledger.rounds
                args["messages"] = setup.setup_ledger.messages
        else:
            setup = self.session.prepare_incremental(self.setup, partition)
        self.partition = partition
        self.setup = setup
        self.ledger.merge(setup.setup_ledger, prefix="update:")
        self.stats.partition_updates += 1
        return setup

    def update_edges(
        self,
        add: Sequence[Tuple[int, int]] = (),
        remove: Sequence[Tuple[int, int]] = (),
        weights: Optional[Dict[Tuple[int, int], int]] = None,
    ) -> EdgeUpdateReport:
        """Adopt an edge insert/delete batch (epoch barrier: flushes first).

        Delegates to :meth:`~repro.runtime.PASession.apply_edge_updates`
        — a tree-preserving rebind when possible, a counted rebuild
        otherwise — then re-acquires the current partition's setup (a
        cache hit after a repair; a fresh prepare after a rebuild).  The
        current partition must stay valid on the updated graph; removing
        an edge that disconnects a part raises, so regroup via
        :meth:`update_partition` first in that case.
        """
        self.flush()
        report = self.session.apply_edge_updates(
            add=add, remove=remove, weights=weights
        )
        self.ledger.merge(report.ledger, prefix="edges:")
        setup = self.session.prepare(self.partition)
        self.setup = setup
        self.ledger.merge(setup.setup_ledger, prefix="update:")
        self.stats.edge_updates += 1
        return report

    # -- lifecycle ------------------------------------------------------
    @property
    def net(self) -> Network:
        """The *current* network (changes across :meth:`update_edges`)."""
        return self.session.net

    def session_stats(self) -> Dict[str, int]:
        """The owned session's counters (cache/coarsen/refine/repair)."""
        return self.session.stats.as_dict()

    def close(self) -> None:
        """Drain pending queries, then release the session; idempotent."""
        if self._queue:
            self.flush()
        self.session.close()

    def __enter__(self) -> "PAService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
