"""A bounded pool of PA sessions with close-on-eviction lifecycle.

A service deployment typically serves several independent networks (one
per region, per customer graph, ...), each wanting a long-lived
:class:`~repro.runtime.PASession` for its reuse machinery — but sessions
on the sharded backend own forked worker processes, so "keep them all
forever" leaks pools.  :class:`SessionPool` is the standard fix: an LRU
of sessions built on demand by a caller-supplied factory, where the
evicted session is *closed* (its worker pool reaped), not merely
dropped — the bug class this layer exists to prevent is the orphaned
fork surviving on a garbage-collector technicality.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional

from ..runtime.session import PASession


@dataclass
class PoolStats:
    """Counters describing how the pool served its lookups."""

    hits: int = 0       # sessions served from the pool
    misses: int = 0     # sessions built by the factory
    evictions: int = 0  # sessions closed by the LRU bound

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class SessionPool:
    """Keyed LRU of :class:`PASession` instances; evictions close.

    ``factory(key)`` builds the session for an unseen key; ``max_sessions``
    bounds how many stay open at once.  The pool is a context manager —
    leaving the ``with`` block closes every pooled session.
    """

    def __init__(
        self,
        factory: Callable[[Hashable], PASession],
        max_sessions: int = 4,
    ) -> None:
        if max_sessions < 1:
            raise ValueError(
                f"max_sessions must be >= 1, got {max_sessions}"
            )
        self._factory = factory
        self.max_sessions = max_sessions
        self.stats = PoolStats()
        self._sessions: "OrderedDict[Hashable, PASession]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._sessions

    def get(self, key: Hashable) -> PASession:
        """Fetch the session for ``key``, building and evicting as needed."""
        session = self._sessions.get(key)
        if session is not None:
            self._sessions.move_to_end(key)
            self.stats.hits += 1
            return session
        session = self._factory(key)
        self._sessions[key] = session
        self.stats.misses += 1
        while len(self._sessions) > self.max_sessions:
            _old_key, old = self._sessions.popitem(last=False)
            old.close()
            self.stats.evictions += 1
        return session

    def discard(self, key: Hashable) -> None:
        """Close and drop one session (no-op for unknown keys)."""
        session = self._sessions.pop(key, None)
        if session is not None:
            session.close()

    def close(self) -> None:
        """Close every pooled session; idempotent."""
        while self._sessions:
            _key, session = self._sessions.popitem(last=False)
            session.close()

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
