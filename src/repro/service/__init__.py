"""PA-as-a-service: query serving, multi-tenant batching, session pooling.

The layer above :mod:`repro.runtime`: a :class:`PAService` owns one
session over an evolving graph and serves per-part aggregation query
streams from multiple tenants — micro-batching concurrent queries into
shared ``solve_many`` waves, absorbing partition changes by incremental
coarsening/refinement and edge changes by tree-preserving repair, with
shared-cost per-tenant ledger attribution on ``tenant:<name>`` obs
streams.  :class:`SessionPool` bounds a fleet of sessions with
close-on-eviction lifecycle.  See docs/architecture.md, "Service layer".
"""

from .pool import PoolStats, SessionPool
from .queries import (
    AggregateQuery,
    KINDS,
    max_query,
    min_query,
    sum_query,
    top_k_aggregation,
    top_k_query,
)
from .service import PAService, QueryResult, ServiceStats

__all__ = [
    "AggregateQuery",
    "KINDS",
    "PAService",
    "PoolStats",
    "QueryResult",
    "ServiceStats",
    "SessionPool",
    "max_query",
    "min_query",
    "sum_query",
    "top_k_aggregation",
    "top_k_query",
]
