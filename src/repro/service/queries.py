"""The query vocabulary of the PA service layer.

A tenant asks for one aggregate per part of the service's current
partition: the minimum / maximum / sum of a per-node value vector, or
the top-k values.  Every kind lowers to one :class:`~repro.core.Aggregation`
over one PA wave — min/max/sum are the stock aggregations (picklable by
name, so the sharded backend can serve them), and top-k is a k-tuple
merge built here (in-process only; a batch containing one makes the
sharded backend fall back for that wave, counted as usual).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..core.aggregation import Aggregation, MAX, MIN, SUM

#: Query kinds the service understands.
KINDS = ("min", "max", "sum", "top_k")

#: Kinds lowering to stock aggregations (shardable by name).
STOCK_KINDS = {"min": MIN, "max": MAX, "sum": SUM}


@dataclass(frozen=True)
class AggregateQuery:
    """One per-part aggregation request over a per-node value vector.

    ``values[v]`` is node v's contribution; the answer is one aggregate
    per part of the partition current *when the query's wave runs* (the
    service flushes pending queries before adopting partition or edge
    updates, so a query never straddles two epochs).  ``k`` only applies
    to ``top_k``.
    """

    kind: str
    values: Tuple[object, ...]
    k: int = 1

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown query kind {self.kind!r} (expected one of {KINDS})"
            )
        if self.kind == "top_k" and self.k < 1:
            raise ValueError(f"top_k needs k >= 1, got {self.k}")

    def aggregation(self) -> Aggregation:
        """The single-wave aggregation this query lowers to."""
        stock = STOCK_KINDS.get(self.kind)
        if stock is not None:
            return stock
        return top_k_aggregation(self.k)

    def wave_values(self) -> Tuple[object, ...]:
        """Per-node values as the wave consumes them.

        Top-k wraps each value as a 1-tuple so the merge operates on
        sorted k-prefixes; other kinds pass through.
        """
        if self.kind == "top_k":
            return tuple(
                (v,) if v is not None else None for v in self.values
            )
        return self.values


def min_query(values: Sequence[object]) -> AggregateQuery:
    """Per-part minimum of ``values``."""
    return AggregateQuery("min", tuple(values))


def max_query(values: Sequence[object]) -> AggregateQuery:
    """Per-part maximum of ``values``."""
    return AggregateQuery("max", tuple(values))


def sum_query(values: Sequence[object]) -> AggregateQuery:
    """Per-part sum of ``values``."""
    return AggregateQuery("sum", tuple(values))


def top_k_query(values: Sequence[object], k: int) -> AggregateQuery:
    """Per-part descending top-``k`` of ``values`` (answered as a tuple)."""
    return AggregateQuery("top_k", tuple(values), k=k)


def top_k_aggregation(k: int) -> Aggregation:
    """Commutative/associative top-k merge over sorted value tuples.

    Partial aggregates are descending tuples of at most ``k`` values;
    the combine concatenates and re-truncates, which is associative
    because the global top-k of a multiset is the top-k of the union of
    any per-group top-k's.  Values stay O(k log n) bits — the same
    budget the batched k-tuple solves already use.
    """
    if k < 1:
        raise ValueError(f"top_k needs k >= 1, got {k}")

    def combine(a, b):
        return tuple(sorted(a + b, reverse=True)[:k])

    return Aggregation(f"top{k}", combine)
