"""PA-based super-node communication and leaderless PA (Algorithm 9).

Appendix B shows that the "every part knows a leader" assumption costs
only a logarithmic factor: starting from singletons, parts coarsen by
star joinings — each maintained part keeps an elected leader — until the
coarsening matches the input partition, at which point ordinary PA runs.

The star-joining machinery (Algorithm 5) is shared with the deterministic
sub-part division; here super-nodes are *coarsening parts* whose internal
communication is itself Part-Wise Aggregation.  :class:`PASuperOps`
implements the :class:`~repro.core.star_joining.SuperOps` interface with
PA solves: a push is PA-broadcast inside the source, one round across the
chosen edges, and PA-aggregation inside the target.  Boruvka's
deterministic merging (Corollary 1.3) reuses the same ops.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..congest.engine import Context, Engine, Inbox, Program
from ..congest.ledger import CostLedger
from ..congest.network import Network
from ..graphs.partitions import Partition, partition_from_component_labels
from .aggregation import MIN, MIN_TUPLE, SUM, Aggregation
from .pa import PAResult, PASetup, PASolver
from .star_joining import SuperEdge, SuperOps, compute_star_joining


class _CrossProgram(Program):
    """One round: payloads across explicit directed graph edges."""

    name = "pa_super_cross"

    def __init__(self, sends: List[Tuple[int, int, object]]) -> None:
        self.sends = sends
        self.received: Dict[int, List[Tuple[int, object]]] = {}

    def on_start(self, ctx: Context) -> None:
        for src, dst, payload in self.sends:
            ctx.send(src, dst, payload)

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        self.received.setdefault(node, []).extend(inbox)


class PASuperOps(SuperOps):
    """Super-node pushes implemented with Part-Wise Aggregation.

    Super-node ids are part ids of ``setup.partition``; each push costs two
    PA solves (broadcast within sources, aggregate within targets) plus one
    cross round — the Lemma B.1 accounting of O~(R) rounds and O~(M)
    messages per operation.
    """

    def __init__(
        self,
        solver: PASolver,
        setup: PASetup,
        chosen: Dict[int, SuperEdge],
        ledger: CostLedger,
        phase_prefix: str = "alg9",
    ) -> None:
        self.solver = solver
        self.setup = setup
        self.chosen = chosen
        self.ledger = ledger
        self.prefix = phase_prefix
        self.partition = setup.partition
        self.net = solver.net
        self.in_edges: Dict[int, List[Tuple[int, int, int]]] = {}
        self._announced = False
        self._push_count = 0

    def edges(self) -> Dict[int, SuperEdge]:
        return self.chosen

    def all_supernodes(self) -> Sequence[int]:
        return range(self.partition.num_parts)

    def initial_color(self, sid: int) -> int:
        return self.net.uid[self.setup.leaders[sid]]

    # ------------------------------------------------------------------
    def _pa(self, values: List[object], agg: Aggregation) -> Dict[int, object]:
        self._push_count += 1
        result = self.solver.solve(
            self.setup, values, agg, charge_setup=False,
            phase_prefix=f"{self.prefix}_pa{self._push_count}",
        )
        self.ledger.merge(result.ledger)
        return result.aggregates

    def _broadcast(self, value_of: Dict[int, object]) -> Dict[int, object]:
        """PA-broadcast each super-node's value to all its members.

        Encoded as an aggregation in which only the leader holds a value.
        Returns per-node received values.
        """
        values: List[object] = [None] * self.net.n
        for sid, value in value_of.items():
            values[self.setup.leaders[sid]] = value
        self._push_count += 1
        result = self.solver.solve(
            self.setup, values, MIN, charge_setup=False,
            phase_prefix=f"{self.prefix}_bc{self._push_count}",
        )
        self.ledger.merge(result.ledger)
        return {v: result.value_at_node[v] for v in range(self.net.n)}

    def _cross(self, sends: List[Tuple[int, int, object]], name: str):
        program = _CrossProgram(sends)
        program.name = f"{self.prefix}_{name}"
        stats = self.solver.engine.run(program, max_ticks=2)
        self.ledger.charge(stats)
        return program.received

    def announce_requests(self) -> None:
        sends = [
            (u, v, ("jreq", sid)) for sid, (u, v, _t) in self.chosen.items()
        ]
        received = self._cross(sends, "announce")
        for v, incoming in received.items():
            for u, payload in incoming:
                _tag, sid = payload
                self.in_edges.setdefault(
                    self.partition.part_of[v], []
                ).append((v, u, sid))
        self._announced = True

    def push_up(self, value_of: Dict[int, object], agg: Aggregation) -> Dict[int, object]:
        at_node = self._broadcast(value_of)
        sends = []
        for sid, (u, v, _t) in self.chosen.items():
            if sid in value_of:
                sends.append((u, v, ("up", at_node.get(u))))
        received = self._cross(sends, "cross_up")
        values: List[object] = [None] * self.net.n
        for v, incoming in received.items():
            for _u, payload in incoming:
                values[v] = agg.merge(values[v], payload[1])
        aggregates = self._pa(values, agg)
        return {sid: val for sid, val in aggregates.items() if val is not None}

    def push_down(self, value_of: Dict[int, object]) -> Dict[int, object]:
        if not self._announced:
            self.announce_requests()
        at_node = self._broadcast(value_of)
        sends = []
        for target_sid, holders in self.in_edges.items():
            if target_sid not in value_of:
                continue
            for v, u, _src_sid in holders:
                sends.append((v, u, ("down", at_node.get(v))))
        received = self._cross(sends, "cross_down")
        values: List[object] = [None] * self.net.n
        for u, incoming in received.items():
            for _v, payload in incoming:
                value = payload[1]
                values[u] = value if values[u] is None else min(values[u], value)
        aggregates = self._pa(values, MIN)
        return {sid: val for sid, val in aggregates.items() if val is not None}

    def push_pred(self, value_of: Dict[int, object], agg: Aggregation) -> Dict[int, object]:
        return self.push_up(value_of, agg)


def solve_pa_without_leaders(
    net: Network,
    partition: Partition,
    values: Sequence[object],
    agg: Aggregation,
    mode: str = "randomized",
    seed: int = 0,
    solver: Optional[PASolver] = None,
    engine_impl: str = "array",
) -> PAResult:
    """Algorithm 9: PA with no known leaders, via star-joining coarsening.

    Maintains a coarsening partition (P'_i) refining the input partition,
    each coarsening part with an elected leader.  Each round every
    coarsening part picks an edge into a *different* coarsening part of the
    *same* input part (a PA MIN over boundary edges), a star joining merges
    a constant fraction, and joiners adopt their receiver's leader.  After
    O(log n) rounds the coarsening equals the input partition, and the
    final PA runs with known leaders.  Lemma B.1: O~(log n) PA-cost total.
    """
    solver = solver or PASolver(net, mode=mode, seed=seed, engine_impl=engine_impl)
    total = CostLedger()
    n = net.n

    leader_of: List[int] = list(range(n))  # coarsening leaders, per node
    coarse: List[int] = list(range(n))     # coarsening part representative

    cap = 2 * max(1, math.ceil(math.log2(max(2, n)))) + 6
    for _round in range(cap):
        coarse_partition = partition_from_component_labels(coarse)
        leaders = [
            leader_of[members[0]] for members in coarse_partition.members
        ]
        setup = solver.prepare(coarse_partition, leaders=leaders)
        total.merge(setup.setup_ledger, prefix="alg9_setup:")

        # Pick an exit edge into a sibling coarsening part (same target part).
        pick_values: List[object] = [None] * n
        for v in range(n):
            for nb in net.neighbors[v]:
                if partition.part_of[nb] != partition.part_of[v]:
                    continue
                if coarse[nb] == coarse[v]:
                    continue
                cand = (net.uid[v], net.uid[nb])
                if pick_values[v] is None or cand < pick_values[v]:
                    pick_values[v] = cand
        picked = solver.solve(
            setup, pick_values, MIN_TUPLE, charge_setup=False,
            phase_prefix="alg9_pick",
        )
        total.merge(picked.ledger)

        chosen: Dict[int, SuperEdge] = {}
        for sid, choice in picked.aggregates.items():
            if choice is None:
                continue  # coarsening part already spans its input part
            uid_u, uid_nb = choice
            u = net.node_of_uid(uid_u)
            v_nb = net.node_of_uid(uid_nb)
            chosen[sid] = (u, v_nb, coarse_partition.part_of[v_nb])
        if not chosen:
            break

        ops = PASuperOps(solver, setup, chosen, total)
        ops.announce_requests()
        receivers, joins = compute_star_joining(ops, set(chosen))

        # Joiners adopt their receiver's leader (learned via push_down of
        # leader uids, then PA-broadcast inside the joiner).
        leader_uid_of_target = ops.push_down(
            {
                sid: net.uid[leaders[sid]]
                for sid in range(coarse_partition.num_parts)
            }
        )
        for sid, (_u, _v, target_sid) in joins.items():
            new_leader = net.node_of_uid(leader_uid_of_target[sid])
            target_root = coarse_partition.members[target_sid][0]
            for v in coarse_partition.members[sid]:
                coarse[v] = coarse[target_root]
                leader_of[v] = new_leader

    final_partition = partition_from_component_labels(coarse)
    if final_partition.num_parts != partition.num_parts:
        raise RuntimeError("Algorithm 9 coarsening did not converge")
    for members in final_partition.members:
        pids = {partition.part_of[v] for v in members}
        if len(pids) != 1:
            raise RuntimeError("coarsening crossed an input part boundary")
    leaders = [
        leader_of[members[0]] for members in final_partition.members
    ]
    setup = solver.prepare(final_partition, leaders=leaders)
    total.merge(setup.setup_ledger, prefix="alg9_final_setup:")
    result = solver.solve(setup, values, agg, charge_setup=False)
    total.merge(result.ledger)
    # The coarsening's part ids are in discovery order; report aggregates
    # under the caller's part ids.
    remapped = {
        partition.part_of[members[0]]: result.aggregates[sid]
        for sid, members in enumerate(final_partition.members)
    }
    return PAResult(
        aggregates=remapped,
        value_at_node=result.value_at_node,
        ledger=total,
        setup=setup,
    )
