"""Part-Wise Aggregation, end to end (Theorem 1.2).

:class:`PASolver` assembles the full pipeline:

1. a BFS spanning tree ``T`` with an elected leader (or a given root) —
   built once per network, reused across partitions;
2. a sub-part division of the input partition — randomized (Algorithm 3)
   or deterministic (Algorithm 6);
3. a ``T``-restricted shortcut — randomized (CoreFast / Algorithm 4) or
   deterministic (heavy-path doubling / Algorithms 7-8) — with block
   annotations and verified block parameters;
4. the PA waves of Algorithm 1 (broadcast, reversal, replay).

Every step is executed on the CONGEST engine and charged to the result's
ledger.  Part leaders are the standing assumption of Section 4 (every
member knows its part's leader); by default the minimum-uid member is
used, and :mod:`repro.core.no_leader` (Algorithm 9) discharges the
assumption distributively when needed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..congest.async_engine import AsyncEngine
from ..congest.engine import Engine
from ..congest.ledger import CostLedger, RunResult
from ..congest.network import Network
from ..congest.schedule import Schedule, SynchronousSchedule
from ..graphs.partitions import Partition, validate_partition
from .aggregation import Aggregation
from .blocks import BlockAnnotations, annotate_blocks
from .corefast import ShortcutBuildResult, build_shortcut_randomized
from .shortcuts import Shortcut
from .spanning_tree import SpanningTreeResult, bfs_tree, elect_leader_and_bfs_tree
from .subparts import SubPartDivision, build_subpart_division_randomized
from .trees import RootedForest
from .wave import PAWaveResult, run_pa_waves

RANDOMIZED = "randomized"
DETERMINISTIC = "deterministic"


@dataclass
class PASetup:
    """Partition-specific machinery, reusable across many aggregations."""

    partition: Partition
    leaders: Tuple[int, ...]
    division: SubPartDivision
    shortcut: Shortcut
    annotations: BlockAnnotations
    setup_ledger: CostLedger

    def quality(self) -> Tuple[int, int]:
        """(block parameter, congestion) of the constructed shortcut."""
        return self.shortcut.quality()


@dataclass
class PAResult:
    """Outcome of one Part-Wise Aggregation solve."""

    aggregates: Dict[int, object]
    value_at_node: List[object]
    ledger: CostLedger
    setup: PASetup

    @property
    def rounds(self) -> int:
        return self.ledger.rounds

    @property
    def messages(self) -> int:
        return self.ledger.messages


@dataclass
class PABatchResult:
    """Outcome of a multi-aggregate solve (:meth:`PASolver.solve_many`).

    ``per_agg[k]`` holds the k-th aggregation's per-part aggregates and
    per-node values.  ``ledger`` carries the *whole batch's* metered cost
    exactly once; when the batch ran in one wave pass the per-result
    ledgers are the same object, so merge ``ledger`` once — never each
    ``per_agg[k].ledger``.
    """

    per_agg: List[PAResult]
    ledger: CostLedger
    setup: PASetup
    batched: bool

    @property
    def rounds(self) -> int:
        return self.ledger.rounds

    @property
    def messages(self) -> int:
        return self.ledger.messages


def product_aggregation(aggs: Sequence[Aggregation]) -> Aggregation:
    """Componentwise product of aggregations over equal-length tuples.

    Components may be ``None`` ("no value yet" for that aggregate at that
    node); the product merges each slot with its aggregation's None-aware
    ``merge``.  Commutativity/associativity follow componentwise from the
    factors'.
    """
    agg_tuple = tuple(aggs)

    def combine(a, b):
        return tuple(
            agg.merge(x, y) for agg, x, y in zip(agg_tuple, a, b)
        )

    name = "batch(" + ",".join(agg.name for agg in agg_tuple) + ")"
    return Aggregation(name, combine)


class PASolver:
    """Round- and message-optimal Part-Wise Aggregation (Theorem 1.2).

    Parameters
    ----------
    net:
        The communication graph (must be connected).
    mode:
        ``"randomized"`` for the O~(bD + c)-round variant,
        ``"deterministic"`` for the O~(b(D + c)) variant.
    seed:
        Seed for all randomness (node sampling, claim priorities, delays).
    root:
        Optional known root for the BFS tree; if omitted a leader is
        elected distributively (flood-min).
    schedule / async_mode:
        Opt into asynchronous execution: every engine phase of the
        pipeline (tree, division, shortcut, waves) runs on an
        :class:`~repro.congest.AsyncEngine` under the given
        :class:`~repro.congest.Schedule`.  ``async_mode=True`` alone
        selects the delay-0 :class:`~repro.congest.SynchronousSchedule`.
        The ledgers stay those of the synchronous cost model (delay-0 is
        bit-for-bit the default engine — pinned by the fuzz harness);
        the asynchrony's own cost accrues separately on
        ``solver.engine.overhead``.  Default: off, the synchronous
        engine, same code path bit for bit.
    engine_impl:
        ``"array"`` (default) runs the synchronous pipeline on the
        vectorized engine core — per-phase array kernels over flat
        payload columns, bit-for-bit the same ledger (pinned by the fuzz
        harness's engine axis); ``"scalar"`` forces the per-message
        reference loop.  Asynchronous execution is always scalar.
    engine:
        A pre-built engine to run every phase on (mutually exclusive
        with ``schedule``/``async_mode``; ``strict_bits``/``strict_edges``
        and ``engine_impl`` are then the engine's own).  This is how the
        recovery runtime shares one fault-injecting
        :class:`~repro.congest.AsyncEngine` — with its global pulse
        clock, overhead ledger and fault log — across the fresh solvers
        of successive recovery attempts.
    profile:
        Attach an :class:`~repro.congest.ledger.EngineProfile` to every
        phase's stats (all three engines fill the same fields; parity is
        pinned by ``tests/obs/test_profile_parity.py``).  Ignored when a
        pre-built ``engine`` is passed — the engine's own setting wins.
    """

    def __init__(
        self,
        net: Network,
        mode: str = RANDOMIZED,
        seed: int = 0,
        root: Optional[int] = None,
        strict_bits: bool = True,
        strict_edges: bool = True,
        schedule: Optional[Schedule] = None,
        async_mode: bool = False,
        engine_impl: str = "array",
        engine: Optional[object] = None,
        profile: bool = False,
    ) -> None:
        if mode not in (RANDOMIZED, DETERMINISTIC):
            raise ValueError(f"unknown mode {mode!r}")
        if engine_impl not in ("scalar", "array"):
            raise ValueError(f"unknown engine_impl {engine_impl!r}")
        if engine is not None and (schedule is not None or async_mode):
            raise ValueError(
                "pass either engine or schedule/async_mode, not both "
                "(the engine already owns its schedule)"
            )
        if async_mode and schedule is None:
            schedule = SynchronousSchedule()
        self.net = net
        self.mode = mode
        self.seed = seed
        self.rng = random.Random(seed)
        if engine is not None:
            self.engine = engine
            self.schedule = getattr(engine, "schedule", None)
            self.engine_impl = (
                "array" if getattr(engine, "use_arrays", False) else "scalar"
            )
        elif schedule is not None:
            self.schedule = schedule
            self.engine_impl = engine_impl
            self.engine = AsyncEngine(
                net, schedule=schedule,
                strict_bits=strict_bits, strict_edges=strict_edges,
                profile=profile,
            )
        else:
            self.schedule = schedule
            self.engine_impl = engine_impl
            self.engine = Engine(
                net, strict_bits=strict_bits, strict_edges=strict_edges,
                use_arrays=(engine_impl == "array"),
                profile=profile,
            )

        self.tree_ledger = CostLedger()
        if root is None:
            self.tree_result = elect_leader_and_bfs_tree(
                self.engine, net, self.tree_ledger
            )
        else:
            self.tree_result = bfs_tree(self.engine, net, root, self.tree_ledger)
        self.tree: RootedForest = self.tree_result.tree
        #: The globally-known diameter estimate (2-approximation via BFS).
        self.diameter: int = max(1, 2 * self.tree_result.depth)

    # ------------------------------------------------------------------
    def rebind(self, net: Network) -> None:
        """Adopt an updated edge set that preserves the spanning tree.

        The session layer's edge-insert/delete repair
        (:meth:`repro.runtime.PASession.apply_edge_updates`): when no
        removed edge is a tree edge, the BFS tree — and with it every
        tree-restricted shortcut — survives the update verbatim, so the
        solver only swaps its network and engine.  ``net`` must have the
        same node count and uid seed (uids are a pure function of both,
        so the identity of every node is preserved) and must contain
        every current tree edge; the tree keeps its depth, so the
        ``2 * depth`` diameter estimate remains a valid upper bound even
        when deletions lengthen non-tree distances.

        Only synchronous self-owned engines can be rebound: an
        asynchronous schedule or an adopted engine owns state (virtual
        clocks, fault plans) that a fresh engine would silently drop.
        """
        if self.schedule is not None or isinstance(self.engine, AsyncEngine):
            raise ValueError(
                "cannot rebind an asynchronous solver to an updated "
                "network (the schedule owns per-edge state)"
            )
        if net.n != self.net.n:
            raise ValueError(
                f"rebind must preserve the node set ({self.net.n} -> {net.n})"
            )
        if net.uid != self.net.uid:
            raise ValueError("rebind must preserve the uid assignment")
        # RootedForest validates every parent edge against the new net —
        # a removed tree edge fails loudly here, not mid-wave.
        tree = RootedForest(net, self.tree.parent)
        old = self.engine
        self.net = net
        self.tree = tree
        self.tree_result = SpanningTreeResult(
            tree=tree,
            root=self.tree_result.root,
            depth=self.tree_result.depth,
        )
        self.engine = Engine(
            net,
            strict_bits=old.strict_bits,
            strict_edges=old.strict_edges,
            use_arrays=getattr(old, "use_arrays", False),
            profile=getattr(old, "profile", False),
        )

    def default_leaders(self, partition: Partition) -> Tuple[int, ...]:
        """Minimum-uid member of each part (the Section 4 assumption)."""
        return tuple(
            min(members, key=lambda v: self.net.uid[v])
            for members in partition.members
        )

    def prepare(
        self,
        partition: Partition,
        leaders: Optional[Sequence[int]] = None,
        congestion_budget: Optional[int] = None,
        block_target: Optional[int] = None,
        validate: bool = True,
        shortcut_provider: Optional[object] = None,
    ) -> PASetup:
        """Build division + shortcut + annotations for a partition.

        The returned :class:`PASetup` can be reused for any number of
        aggregations over the same partition; its construction cost is in
        ``setup.setup_ledger`` and is also folded into each solve's ledger
        exactly once by :meth:`solve` (pass ``charge_setup=False`` there to
        opt out when amortizing).

        ``shortcut_provider`` swaps the shortcut-construction strategy: any
        :class:`repro.families.ShortcutProvider` (e.g. the family-aware
        constructions realizing the Tables 1-2 O~(D) bounds).  The default
        ``None`` runs today's mode-selected pipeline unchanged — same code
        path, same randomness, same ledger, bit for bit.
        """
        if validate:
            validate_partition(self.net, partition)
        if leaders is None:
            leaders = self.default_leaders(partition)
        leaders = tuple(leaders)
        for pid, leader in enumerate(leaders):
            if partition.part_of[leader] != pid:
                raise ValueError(f"leader {leader} is not in part {pid}")

        ledger = CostLedger()
        if self.mode == RANDOMIZED:
            division = build_subpart_division_randomized(
                self.engine, self.net, partition, leaders, self.diameter,
                ledger, self.rng,
            )
        else:
            from .subparts_det import build_subpart_division_deterministic

            division = build_subpart_division_deterministic(
                self.engine, self.net, partition, leaders, self.diameter,
                ledger,
            )
        if shortcut_provider is not None:
            build = shortcut_provider.build(
                self.engine, self.net, partition, division, self.tree,
                self.diameter, ledger, rng=self.rng,
                congestion_budget=congestion_budget,
                block_target=block_target,
            )
        elif self.mode == RANDOMIZED:
            build = build_shortcut_randomized(
                self.engine, self.net, partition, division, self.tree,
                self.diameter, ledger, self.rng,
                congestion_budget=congestion_budget,
                block_target=block_target,
            )
        else:
            from .det_shortcut import build_shortcut_deterministic

            build = build_shortcut_deterministic(
                self.engine, self.net, partition, division, self.tree,
                self.diameter, ledger,
                congestion_budget=congestion_budget,
                block_target=block_target,
            )

        return PASetup(
            partition=partition,
            leaders=leaders,
            division=division,
            shortcut=build.shortcut,
            annotations=build.annotations,
            setup_ledger=ledger,
        )

    def solve(
        self,
        setup: PASetup,
        values: Sequence[object],
        agg: Aggregation,
        charge_setup: bool = True,
        phase_prefix: str = "pa",
    ) -> PAResult:
        """Aggregate ``values`` part-wise with ``agg`` (Algorithm 1)."""
        ledger = CostLedger()
        if charge_setup:
            ledger.merge(setup.setup_ledger, prefix="setup:")
        outcome = run_pa_waves(
            self.engine,
            self.net,
            setup.partition,
            setup.division,
            setup.shortcut,
            setup.annotations,
            values,
            agg,
            ledger,
            randomized=(self.mode == RANDOMIZED),
            rng=self.rng,
            phase_prefix=phase_prefix,
        )
        return PAResult(
            aggregates=outcome.aggregates,
            value_at_node=outcome.value_at_node,
            ledger=ledger,
            setup=setup,
        )

    def solve_many(
        self,
        setup: PASetup,
        items: Sequence[Tuple[Sequence[object], Aggregation]],
        charge_setup: bool = True,
        phase_prefix: str = "pa_batch",
        phase_prefixes: Optional[Sequence[str]] = None,
        batched: bool = True,
    ) -> PABatchResult:
        """Solve ``k`` aggregations over one setup.

        ``items`` is a sequence of ``(values, agg)`` pairs.  With
        ``batched=True`` (default) all ``k`` aggregates run in a *single*
        wave pass: node values are packed into k-tuples, merged
        componentwise, and unpacked per aggregation — one broadcast, one
        reversal, one replay, so rounds and messages are those of one
        solve instead of k.  This models messages of ``k`` O(log n)-bit
        words, which stays inside the CONGEST license for constant k (see
        docs/architecture.md, "Runtime sessions", for when that is
        ledger-legitimate).

        With ``batched=False`` the items are solved sequentially — the
        exact calls (same order, same phase names via ``phase_prefixes``)
        a caller would have made by hand, so ledgers are bit-for-bit
        identical to the unbatched code path.  Setup cost is charged at
        most once in either case.
        """
        if phase_prefixes is not None and len(phase_prefixes) != len(items):
            raise ValueError("phase_prefixes must match items in length")
        if not items:
            raise ValueError("solve_many requires at least one aggregation")

        if not batched or len(items) == 1:
            ledger = CostLedger()
            per_agg: List[PAResult] = []
            for k, (values, agg) in enumerate(items):
                prefix = (
                    phase_prefixes[k] if phase_prefixes is not None
                    else f"{phase_prefix}{k}"
                )
                result = self.solve(
                    setup, values, agg,
                    charge_setup=charge_setup and k == 0,
                    phase_prefix=prefix,
                )
                ledger.merge(result.ledger)
                per_agg.append(result)
            return PABatchResult(
                per_agg=per_agg, ledger=ledger, setup=setup, batched=False
            )

        aggs = [agg for _values, agg in items]
        combined_values = list(zip(*(values for values, _agg in items)))
        combined = self.solve(
            setup, combined_values, product_aggregation(aggs),
            charge_setup=charge_setup, phase_prefix=phase_prefix,
        )
        k = len(items)
        per_agg = []
        for idx in range(k):
            aggregates = {
                pid: (value[idx] if value is not None else None)
                for pid, value in combined.aggregates.items()
            }
            value_at_node = [
                (value[idx] if value is not None else None)
                for value in combined.value_at_node
            ]
            per_agg.append(
                PAResult(
                    aggregates=aggregates,
                    value_at_node=value_at_node,
                    ledger=combined.ledger,
                    setup=setup,
                )
            )
        return PABatchResult(
            per_agg=per_agg, ledger=combined.ledger, setup=setup,
            batched=True,
        )


def solve_pa(
    net: Network,
    partition: Partition,
    values: Sequence[object],
    agg: Aggregation,
    mode: str = RANDOMIZED,
    seed: int = 0,
    leaders: Optional[Sequence[int]] = None,
    include_tree_cost: bool = True,
    solver: Optional[PASolver] = None,
    shortcut_provider: Optional[object] = None,
    schedule: Optional[Schedule] = None,
    async_mode: bool = False,
    engine_impl: str = "array",
) -> PAResult:
    """One-call Part-Wise Aggregation (builds the whole pipeline).

    This is the public entry point matching Theorem 1.2: given a connected
    network, a connected partition, per-node values and an
    associative-commutative ``agg``, every node of every part learns
    ``f(P_i)``; the result's ledger meters every round and message of tree
    construction, sub-part division, shortcut construction, verification
    and the PA waves.  ``shortcut_provider`` selects a family-aware
    construction (see :mod:`repro.families`); ``None`` is the general
    pipeline.  ``schedule``/``async_mode`` run the whole pipeline on the
    asynchronous engine (see :class:`PASolver`).
    """
    if solver is not None and (schedule is not None or async_mode):
        raise ValueError(
            "pass either solver or schedule/async_mode, not both "
            "(the solver already owns its engine)"
        )
    solver = solver or PASolver(
        net, mode=mode, seed=seed, schedule=schedule, async_mode=async_mode,
        engine_impl=engine_impl,
    )
    setup = solver.prepare(
        partition, leaders=leaders, shortcut_provider=shortcut_provider
    )
    result = solver.solve(setup, values, agg)
    if include_tree_cost:
        result.ledger.merge(solver.tree_ledger, prefix="tree:")
    return result
