"""Distributed heavy path decomposition (Definition 6.5, [39]).

The deterministic shortcut construction processes the BFS tree ``T`` as a
collection of *heavy paths*: maximal chains in which every node is its
parent's largest-subtree child.  Any leaf-to-root path crosses at most
``log2 n`` light edges, which is what bounds Algorithm 8's bottom-up waves.

We use the argmax convention (each internal node's heavy child is its
largest-subtree child, ties to smaller uid) rather than Definition 6.5's
strict-majority test; both give the log2 n light-edge bound, and argmax
additionally guarantees every internal node lies on a non-trivial chain,
which simplifies the position numbering.

Everything is computed distributively, in five metered phases:

1. subtree sizes convergecast, with parents learning per-child sizes;
2. one round of heavy/light notifications down every tree edge;
3. a bottom-up chain scan numbering path positions (1 = path bottom);
4. a top-down chain scan distributing the path id (the top's uid);
5. a convergecast of *light ranks* — ``lrank(v) = max over children c of
   lrank(c) + [edge (c, v) is light]`` — whose value at a path top is the
   index of the bottom-up wave in which Algorithm 8 activates the path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..congest.engine import Context, Engine, Inbox, Program
from ..congest.ledger import CostLedger
from ..congest.network import Network
from .trees import ROOT, RootedForest


@dataclass
class HeavyPathDecomposition:
    """Node-local heavy path knowledge.

    ``heavy_child[v]`` — v's heavy child (-1 for leaves);
    ``on_heavy_parent_edge[v]`` — True iff v's parent edge is heavy;
    ``position[v]`` — 1-based position from the bottom of v's path;
    ``path_id[v]`` — the uid of v's path top;
    ``path_top[v]`` / ``path_bottom[v]`` — chain end flags;
    ``rank[v]`` — the activation wave index of v's path in Algorithm 8;
    ``path_length[v]`` — number of nodes on v's path.
    """

    heavy_child: List[int]
    on_heavy_parent_edge: List[bool]
    position: List[int]
    path_id: List[int]
    path_top: List[bool]
    path_bottom: List[bool]
    rank: List[int]
    path_length: List[int]

    def paths_by_rank(self) -> Dict[int, List[int]]:
        """Map wave rank -> list of path-top nodes (orchestrator view)."""
        out: Dict[int, List[int]] = {}
        for v, is_top in enumerate(self.path_top):
            if is_top:
                out.setdefault(self.rank[v], []).append(v)
        return out

    def max_rank(self) -> int:
        return max(
            (self.rank[v] for v, t in enumerate(self.path_top) if t), default=0
        )

    def path_parent(self, tree: RootedForest, v: int) -> int:
        """v's upward neighbor on its path, or -1 at the top."""
        if self.path_top[v]:
            return -1
        return tree.parent[v]


class _PerChildConvergecast(Program):
    """Convergecast where each parent records every child's reported value.

    Used twice: subtree sizes (combine = sum) and light ranks
    (combine = max with +1 on light edges).
    """

    name = "per_child_convergecast"

    def __init__(self, tree: RootedForest, kind: str,
                 light_edge: Optional[Sequence[bool]] = None) -> None:
        self.tree = tree
        self.kind = kind
        self.light_edge = light_edge  # only for "lrank": per-node, True if
        # the node's parent edge is light
        n = tree.net.n
        self.child_values: List[Dict[int, int]] = [dict() for _ in range(n)]
        self.value: List[int] = [0] * n
        self._pending: List[int] = [0] * n

    def _combined(self, v: int) -> int:
        if self.kind == "size":
            return 1 + sum(self.child_values[v].values())
        best = 0
        for c, val in self.child_values[v].items():
            bump = 1 if (self.light_edge is not None and self.light_edge[c]) else 0
            best = max(best, val + bump)
        return best

    def _fire(self, ctx: Context, v: int) -> None:
        self.value[v] = self._combined(v)
        parent = self.tree.parent[v]
        if parent >= 0:
            ctx.send(v, parent, ("cv", self.value[v]))

    def on_start(self, ctx: Context) -> None:
        for v in self.tree.members():
            self._pending[v] = len(self.tree.children[v])
            if self._pending[v] == 0:
                self._fire(ctx, v)

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        for sender, payload in inbox:
            _tag, value = payload
            self.child_values[node][sender] = value
            self._pending[node] -= 1
        if self._pending[node] == 0:
            self._pending[node] = -1
            self._fire(ctx, node)


class _HeavyNotifyProgram(Program):
    """One round: every parent tells each child whether its edge is heavy."""

    name = "heavy_notify"

    def __init__(self, tree: RootedForest, heavy_child: Sequence[int]) -> None:
        self.tree = tree
        self.heavy_child = heavy_child
        self.is_heavy: List[bool] = [False] * tree.net.n

    def on_start(self, ctx: Context) -> None:
        for v in self.tree.members():
            for c in self.tree.children[v]:
                ctx.send(v, c, ("hv", c == self.heavy_child[v]))

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        for _sender, payload in inbox:
            self.is_heavy[node] = payload[1]


class _ChainScanProgram(Program):
    """Pipelined scans along heavy chains (positions up, ids down).

    Phase "up": bottoms start with position 1; each node, upon learning its
    position, tells its path parent position + 1.  Tops then switch to
    phase "down": (path id = top uid, path length, rank) travel back down.
    Both directions in one program; O(max chain length) rounds, O(n)
    messages each way.
    """

    name = "heavy_chain_scan"

    def __init__(
        self,
        tree: RootedForest,
        heavy_child: Sequence[int],
        is_heavy: Sequence[bool],
        rank_at_top: Dict[int, int],
    ) -> None:
        self.tree = tree
        self.net = tree.net
        self.heavy_child = heavy_child
        self.is_heavy = is_heavy  # per node: parent edge heavy?
        self.rank_at_top = rank_at_top
        n = tree.net.n
        self.position: List[int] = [0] * n
        self.path_id: List[int] = [0] * n
        self.path_length: List[int] = [0] * n
        self.rank: List[int] = [0] * n

    def _is_top(self, v: int) -> bool:
        return self.tree.parent[v] < 0 or not self.is_heavy[v]

    def _is_bottom(self, v: int) -> bool:
        return self.heavy_child[v] < 0

    def _at_position(self, ctx: Context, v: int, pos: int) -> None:
        self.position[v] = pos
        if self._is_top(v):
            info = (
                "dn", self.net.uid[v], pos, self.rank_at_top.get(v, 0)
            )
            self._descend(ctx, v, info)
        else:
            ctx.send(v, self.tree.parent[v], ("up", pos + 1))

    def _descend(self, ctx: Context, v: int, info: Tuple) -> None:
        _tag, path_uid, length, rank = info
        self.path_id[v] = path_uid
        self.path_length[v] = length
        self.rank[v] = rank
        child = self.heavy_child[v]
        if child >= 0:
            ctx.send(v, child, info)

    def on_start(self, ctx: Context) -> None:
        for v in self.tree.members():
            if self._is_bottom(v):
                self._at_position(ctx, v, 1)

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        for _sender, payload in inbox:
            if payload[0] == "up":
                self._at_position(ctx, node, payload[1])
            else:
                self._descend(ctx, node, payload)


def build_heavy_path_decomposition(
    engine: Engine,
    tree: RootedForest,
    ledger: CostLedger,
) -> HeavyPathDecomposition:
    """Run all five phases; returns the node-local decomposition."""
    net = tree.net
    n = net.n
    depth_budget = tree.height() + 4

    sizes = _PerChildConvergecast(tree, kind="size")
    sizes.name = "heavy_sizes"
    ledger.charge(engine.run(sizes, max_ticks=depth_budget))

    heavy_child = [-1] * n
    for v in tree.members():
        best = None
        for c in tree.children[v]:
            key = (-sizes.child_values[v][c], net.uid[c])
            if best is None or key < best[0]:
                best = (key, c)
        if best is not None:
            heavy_child[v] = best[1]

    notify = _HeavyNotifyProgram(tree, heavy_child)
    ledger.charge(engine.run(notify, max_ticks=3))
    is_heavy = notify.is_heavy

    light_edge = [
        tree.parent[v] >= 0 and not is_heavy[v] for v in range(n)
    ]
    lrank = _PerChildConvergecast(tree, kind="lrank", light_edge=light_edge)
    lrank.name = "heavy_lrank"
    ledger.charge(engine.run(lrank, max_ticks=depth_budget))

    rank_at_top = {
        v: lrank.value[v]
        for v in tree.members()
        if tree.parent[v] < 0 or not is_heavy[v]
    }

    scan = _ChainScanProgram(tree, heavy_child, is_heavy, rank_at_top)
    ledger.charge(engine.run(scan, max_ticks=2 * depth_budget + 4))

    return HeavyPathDecomposition(
        heavy_child=heavy_child,
        on_heavy_parent_edge=list(is_heavy),
        position=scan.position,
        path_id=scan.path_id,
        path_top=[tree.parent[v] < 0 or not is_heavy[v] for v in range(n)],
        path_bottom=[heavy_child[v] < 0 for v in range(n)],
        rank=scan.rank,
        path_length=scan.path_length,
    )
