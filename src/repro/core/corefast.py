"""Randomized message-efficient shortcut construction (Section 5.2).

The construction follows Algorithm 4: repeat CoreFast-style *claiming* on
the parts that do not yet have a good shortcut, verify block parameters
with the PA machinery itself (Algorithm 2 / Lemma 4.5), and freeze the
parts whose block parameter is small enough.

CoreFast claiming, as the paper describes it: a sampled set of vertices
(for us: exactly the sub-part representatives, which is the paper's
message-optimality device) send their part id up the BFS tree ``T``,
*claiming* every edge they cross; an edge admits at most ``theta = 2c``
distinct part ids per run and rejects the rest, truncating those parts'
climbs.  A part's shortcut ``H_i`` is the set of edges its claims crossed —
a union of upward path prefixes, which is what makes every block
identifiable and countable locally (see :mod:`repro.core.blocks`).

Compared to [19]'s original CoreFast we admit the first ``theta`` parts per
edge (in randomized priority order) instead of deleting over-subscribed
edges outright; both cap per-run congestion at ``theta``, ours additionally
preserves the "H_i is a union of climb prefixes" invariant the counting
relies on.  DESIGN.md, substitution 4.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..congest.engine import Context, Engine, Inbox
from ..congest.ledger import CostLedger
from ..congest.network import Network
from ..graphs.partitions import Partition
from .blocks import BlockAnnotations, annotate_blocks
from .queued import QueuedProgram
from .shortcuts import Shortcut
from .subparts import SubPartDivision
from .trees import ROOT, RootedForest


class ClaimProgram(QueuedProgram):
    """One CoreFast run: representatives claim tree edges upward."""

    name = "corefast_claim"

    def __init__(
        self,
        tree: RootedForest,
        claimants: Sequence[Tuple[int, int]],
        theta: int,
        priority_of: Dict[int, int],
    ) -> None:
        """``claimants``: (node, part) pairs; ``theta``: per-edge cap."""
        super().__init__(capacity=1)
        self.tree = tree
        self.claimants = claimants
        self.theta = theta
        self.priority_of = priority_of
        n = tree.net.n
        #: parts admitted onto each node's parent edge this run
        self.claimed_up: List[Set[int]] = [set() for _ in range(n)]
        self._handled: Set[Tuple[int, int]] = set()

    def _try_claim(self, ctx: Context, node: int, pid: int) -> None:
        key = (node, pid)
        if key in self._handled:
            return
        self._handled.add(key)
        if self.tree.parent[node] < 0:
            return  # reached the root of T
        if len(self.claimed_up[node]) >= self.theta:
            return  # saturated: the claim is truncated here
        self.claimed_up[node].add(pid)
        self.enqueue(
            ctx,
            node,
            self.tree.parent[node],
            (self.priority_of.get(pid, pid),),
            ("c", pid),
        )

    def on_start(self, ctx: Context) -> None:
        for node, pid in self.claimants:
            self._try_claim(ctx, node, pid)

    def handle(self, ctx: Context, node: int, inbox: Inbox) -> None:
        for _sender, payload in inbox:
            _tag, pid = payload
            self._try_claim(ctx, node, pid)


@dataclass
class ShortcutBuildResult:
    """A constructed shortcut plus its annotations and quality.

    ``certificate`` is optional extra evidence attached by family-aware
    providers (:mod:`repro.families`): the validated decomposition the
    construction was derived from (BFS layering, tree or path
    decomposition).  The general constructions leave it ``None``.
    """

    shortcut: Shortcut
    annotations: BlockAnnotations
    block_counts: List[int]
    iterations: int
    certificate: Optional[object] = None

    def quality(self) -> Tuple[int, int]:
        return self.shortcut.quality()


def _merge_up_parts(
    n: int, frozen: List[Set[int]], fresh: List[Set[int]], keep: Set[int]
) -> List[Set[int]]:
    """Frozen edges plus the fresh claims of the parts in ``keep``."""
    merged = [set(parts) for parts in frozen]
    for v in range(n):
        for pid in fresh[v]:
            if pid in keep:
                merged[v].add(pid)
    return merged


def verify_block_parameters(
    engine: Engine,
    net: Network,
    partition: Partition,
    division: SubPartDivision,
    shortcut: Shortcut,
    annotations: BlockAnnotations,
    ledger: CostLedger,
    randomized: bool,
    rng: Optional[random.Random],
    phase_prefix: str = "verify",
) -> List[int]:
    """Algorithm 2: every part learns its block parameter, via PA itself.

    Each nontrivial block delivered exactly one counting token to a part
    member during annotation; summing the tokens part-wise with the PA
    waves gives every leader (and then every node) its part's block count.
    Costs the full PA price, as Lemma 4.5 charges.
    """
    from ..core.aggregation import SUM
    from .wave import run_pa_waves

    values: List[Optional[int]] = [None] * net.n
    for node, pids in annotations.count_tokens.items():
        mine = sum(1 for pid in pids if partition.part_of[node] == pid)
        if mine:
            values[node] = mine
    outcome = run_pa_waves(
        engine, net, partition, division, shortcut, annotations,
        values, SUM, ledger, randomized=randomized, rng=rng,
        phase_prefix=phase_prefix,
    )
    counts = [0] * partition.num_parts
    for pid, total in outcome.aggregates.items():
        counts[pid] = total or 0
    return counts


def build_shortcut_randomized(
    engine: Engine,
    net: Network,
    partition: Partition,
    division: SubPartDivision,
    tree: RootedForest,
    diameter: int,
    ledger: CostLedger,
    rng: random.Random,
    congestion_budget: Optional[int] = None,
    block_target: Optional[int] = None,
    max_iterations: Optional[int] = None,
    grow_budget: bool = True,
) -> ShortcutBuildResult:
    """Algorithm 4 with the doubling trick of Section 1.3.

    Parts of at most ``diameter`` nodes never claim (their waves stay
    intra-part).  Remaining parts claim via their representatives under a
    per-edge budget ``theta = 2 * congestion_budget``; parts whose verified
    block parameter is at most ``block_target`` freeze their claims, the
    others retry with fresh random priorities and (if ``grow_budget``) a
    doubled budget.
    """
    n = net.n
    log_n = max(1, math.ceil(math.log2(max(2, n))))
    if block_target is None:
        block_target = max(3, 3 * log_n)
    if max_iterations is None:
        max_iterations = log_n + 3
    budget = congestion_budget if congestion_budget is not None else 2

    part_sizes = [partition.size_of(pid) for pid in range(partition.num_parts)]
    active: Set[int] = {
        pid for pid in range(partition.num_parts) if part_sizes[pid] > diameter
    }
    frozen_up: List[Set[int]] = [set() for _ in range(n)]

    reps_by_part: Dict[int, List[int]] = {}
    for rep in division.forest.roots:
        pid = partition.part_of[rep]
        reps_by_part.setdefault(pid, []).append(rep)

    iterations = 0
    while active and iterations < max_iterations:
        iterations += 1
        claimants = [
            (rep, pid)
            for pid in sorted(active)
            for rep in reps_by_part.get(pid, ())
        ]
        priorities = {pid: rng.randrange(1 << 30) for pid in active}
        theta = max(2, 2 * budget)
        if getattr(engine, "use_arrays", False):
            from .array_queue import ClaimArrayKernel

            claim = ClaimArrayKernel(
                tree, claimants, theta, priorities, partition.num_parts
            )
        else:
            claim = ClaimProgram(tree, claimants, theta, priorities)
        claim.name = f"corefast_claim_{iterations}"
        stats = engine.run(
            claim, max_ticks=32 + 4 * (tree.height() + theta)
        )
        ledger.charge(stats)

        candidate_up = _merge_up_parts(n, frozen_up, claim.claimed_up, active)
        candidate = Shortcut(tree, partition, candidate_up)
        annotations = annotate_blocks(engine, candidate, ledger)
        counts = verify_block_parameters(
            engine, net, partition, division, candidate, annotations,
            ledger, randomized=True, rng=rng,
            phase_prefix=f"verify_{iterations}",
        )

        newly_frozen = {
            pid for pid in active if counts[pid] <= block_target
        }
        if iterations == max_iterations:
            newly_frozen = set(active)
        for v in range(n):
            for pid in claim.claimed_up[v]:
                if pid in newly_frozen:
                    frozen_up[v].add(pid)
        active -= newly_frozen
        if grow_budget:
            budget *= 2

    final = Shortcut(tree, partition, frozen_up)
    annotations = annotate_blocks(engine, final, ledger)
    counts = annotations.block_counts(partition.num_parts)
    return ShortcutBuildResult(
        shortcut=final,
        annotations=annotations,
        block_counts=counts,
        iterations=iterations,
    )
