"""Array-native PA wave kernels: broadcast, reversal, replay.

The scalar :mod:`repro.core.wave` programs are event-driven: every message
arrival mutates per-node flags and may emit flag-gated follow-up sends.
Because *all* wave state is per-node (token/flag bytes) or per-``(node,
part)`` (the ``ku``/``kd`` dedup sets), a tick decomposes into independent
per-node event sequences, which makes the whole tick resolvable with array
passes: each potential action becomes a *request* carrying the position of
the event that raised it, and for every flag (or dedup key) the request
with the smallest position wins — exactly the outcome of processing the
events sequentially.

Event positions interleave the two scalar activation hooks: a leader start
(``on_activate``, which runs before the node's inbox) gets position
``2 * i`` where ``i`` is the node's first inbox row, an arrival row ``i``
gets ``2 * i + 1``.  Within one event, sends are ordered by a fixed rank —
``su`` before ``bd`` before ``ru`` before ``ku`` before ``kd`` — which is
the order the scalar handlers emit them; sorting all emission rows by
``(position, node, rank, fan-out index)`` therefore reproduces the scalar
enqueue sequence, and the shared :class:`~repro.core.array_queue.EdgePool`
turns that sequence into the same wire schedule.

The reversal iterates its recorded ``(node, part)`` keys in canonical
sorted order — the same order the scalar ``ReverseProgram`` uses.  Sorted
order is *restriction-stable*: a conflict-closed subset of parts (a
shard) sees exactly the relative key order it would inside the full run,
and the order survives any order-preserving relabeling of nodes and part
ids, which is what makes the sharded backend's per-shard reversals land
on the serial wire schedule bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..congest.arrays import ColumnArena, int_bits_array
from ..congest.engine import ArrayProgram
from .aggregation import MAX, MIN, SUM, Aggregation
from .array_queue import (
    EdgePool,
    KeySet,
    csr_expand,
    csr_from_pairs,
    first_occurrence_mask,
    in_sorted,
)
from .wave import WaveRecord, compute_wave_boundary

_EMPTY = np.empty(0, dtype=np.int64)
_INT64_MAX = np.iinfo(np.int64).max
_INT64_MIN = np.iinfo(np.int64).min

#: Wire codes for the five wave tags, and the in-event emission rank.
TAG_NAMES = ("ru", "su", "bd", "ku", "kd")
RU, SU, BD, KU, KD = range(5)
_RANK = {SU: 0, BD: 1, RU: 2, KU: 3, KD: 4}


def _node_csr(lists: Sequence[Sequence[int]]) -> Tuple[np.ndarray, ...]:
    """Dense per-node CSR from per-node neighbor lists (order preserved)."""
    counts = np.fromiter((len(x) for x in lists), dtype=np.int64,
                         count=len(lists))
    flat = np.fromiter(
        (c for x in lists for c in x), dtype=np.int64, count=int(counts.sum())
    )
    starts = np.zeros(len(lists), dtype=np.int64)
    if len(lists) > 1:
        starts[1:] = np.cumsum(counts)[:-1]
    return starts, counts, flat


class _KeyTable:
    """Sorted int64-key -> int64-value lookup with a default."""

    __slots__ = ("keys", "vals", "default")

    def __init__(self, keys: np.ndarray, vals: np.ndarray, default: int) -> None:
        order = np.argsort(keys)
        self.keys = keys[order]
        self.vals = vals[order]
        self.default = default

    def get(self, query: np.ndarray) -> np.ndarray:
        out = np.full(query.size, self.default, dtype=np.int64)
        if self.keys.size and query.size:
            pos = np.searchsorted(self.keys, query)
            pos[pos >= self.keys.size] = self.keys.size - 1
            hit = self.keys[pos] == query
            out[hit] = self.vals[pos[hit]]
        return out


class _LazyWaveRecord(WaveRecord):
    """A :class:`WaveRecord` that materializes its dicts on first access.

    Nothing in the fast path reads the record (the array reversal and
    replay consume the kernel's flat arenas directly), so the per-message
    Python tuples are only built if a caller actually asks for them.
    """

    def __init__(self, kernel: "WaveArrayKernel") -> None:
        # Deliberately no super().__init__: the dataclass fields are
        # shadowed by the properties below.
        object.__setattr__(self, "_kernel", kernel)

    def _real(self) -> WaveRecord:
        return self._kernel.materialize_record()

    @property
    def out_edges(self):
        return self._real().out_edges

    @property
    def in_edges(self):
        return self._real().in_edges

    @property
    def parent(self):
        return self._real().parent

    @property
    def reached(self):
        return self._real().reached


class WaveArrayKernel(ArrayProgram):
    """Array twin of :class:`~repro.core.wave.WaveProgram`."""

    name = "pa_wave"

    def __init__(
        self,
        net,
        partition,
        division,
        shortcut,
        annotations,
        leader_tokens: Dict[int, int],
        delays: Optional[Dict[int, int]] = None,
        capacity: int = 1,
    ) -> None:
        delays = delays or {}
        n = net.n
        P = max(1, partition.num_parts)
        self.net = net
        self.partition = partition
        self.division = division
        self.n = n
        self.P = P
        self.part_of = np.asarray(partition.part_of, dtype=np.int64)
        self.rep_of = np.asarray(division.rep_of, dtype=np.int64)
        self.fparent = np.asarray(division.forest.parent, dtype=np.int64)
        self.tparent = np.asarray(shortcut.tree.parent, dtype=np.int64)
        self._fch = _node_csr(division.forest.children)
        self._bd = _node_csr(compute_wave_boundary(net, partition, division))

        self._dkeys, self._dstarts, self._dcounts, self._dchildren = (
            shortcut.down_csr()
        )
        self._up_keys = shortcut.up_key_array()

        entries = getattr(annotations, "priority_entries", None)
        if entries is not None:
            pk, pv = entries()
        else:
            rd = annotations.root_depth
            pk = np.fromiter(
                (v * P + pid for (v, pid) in rd), dtype=np.int64, count=len(rd)
            )
            pv = np.fromiter(rd.values(), dtype=np.int64, count=len(rd))
        self._prio = _KeyTable(pk, pv, 1 << 30)

        self.num_parts = partition.num_parts
        self.leaders = np.asarray(
            [division.part_leader[pid] for pid in range(self.num_parts)],
            dtype=np.int64,
        ).reshape(-1)
        self.delay = np.asarray(
            [delays.get(pid, 0) for pid in range(self.num_parts)],
            dtype=np.int64,
        ).reshape(-1)
        self.token = np.asarray(
            [leader_tokens[pid] for pid in range(self.num_parts)],
            dtype=np.int64,
        ).reshape(-1)
        if self.num_parts:
            pid_bits = int_bits_array(np.arange(self.num_parts, dtype=np.int64))
            self.pbits = 2 + 8 + pid_bits + int_bits_array(self.token)
        else:
            self.pbits = _EMPTY

        self.has_token = np.zeros(n, dtype=bool)
        self.sent_su = np.zeros(n, dtype=bool)
        self.sent_bd = np.zeros(n, dtype=bool)
        self.sent_ru = np.zeros(n, dtype=bool)
        self.injected = np.zeros(n, dtype=bool)
        self.started = np.zeros(max(1, self.num_parts), dtype=bool)
        self._kup = KeySet()
        self._kdown = KeySet()
        self._pool = EdgePool(n, ("tag", "pid"), capacity=capacity)
        self.in_arena = ColumnArena(("key", "src", "tag"))
        self.out_arena = ColumnArena(("key", "dst", "tag"))
        #: (global chrono, key) per executed leader start, chronological.
        self.leader_events: List[Tuple[int, int]] = []
        self._materialized: Optional[WaveRecord] = None

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def array_start(self, actx) -> None:
        timed = self.delay > 1
        for tick in np.unique(self.delay[timed]).tolist():
            actx.wake_at(self.leaders[timed & (self.delay == tick)], tick)
        actx.wake(self.leaders[~timed])

    def array_tick(self, actx, d) -> None:
        n = self.n
        P = self.P
        base = len(self.in_arena)
        m = len(d)
        if m:
            tag = d.cols["tag"]
            pid = d.cols["pid"]
            key = d.dst * np.int64(P) + pid
            self.in_arena.append(key=key, src=d.src, tag=tag)
            self._materialized = None
        else:
            tag = pid = key = _EMPTY

        # Emission requests: parallel lists of row arrays, assembled and
        # position-sorted once at the end of the tick.
        em: List[Tuple[np.ndarray, ...]] = []

        def emit_single(src, dst, pos, tagc, pids, p0, p1):
            if src.size:
                zero = np.zeros(src.size, dtype=np.int64)
                rank = np.full(src.size, _RANK[tagc], dtype=np.int64)
                tcol = np.full(src.size, tagc, dtype=np.int64)
                em.append((src, dst, pos, rank, zero, tcol, pids, p0, p1))

        # -- leader starts (on_activate runs before the inbox) ----------
        pend = np.flatnonzero(~self.started[: self.num_parts])
        su_req: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        bd_req: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        inj_nodes: List[np.ndarray] = []
        inj_pids: List[np.ndarray] = []
        inj_pos: List[np.ndarray] = []
        if pend.size:
            lead = self.leaders[pend]
            act = in_sorted(d.active, lead)
            pend = pend[act]
            lead = lead[act]
        if pend.size:
            early = actx.tick < self.delay[pend]
            if early.any():
                actx.wake(lead[early])
            s_pids = pend[~early]
            s_nodes = lead[~early]
            if s_pids.size:
                self.started[s_pids] = True
                lpos = 2 * np.searchsorted(d.dst, s_nodes)
                for node, p, lp in zip(
                    s_nodes.tolist(), s_pids.tolist(), lpos.tolist()
                ):
                    self.leader_events.append((2 * base + lp, node * P + p))
                self.has_token[s_nodes] = True
                is_rep = self.rep_of[s_nodes] == s_nodes
                nr = ~is_rep
                if nr.any():
                    # A non-rep leader sends ru unconditionally (no flag
                    # check in the scalar _leader_start) and sets the flag.
                    self.sent_ru[s_nodes[nr]] = True
                    emit_single(
                        s_nodes[nr], self.fparent[s_nodes[nr]], lpos[nr],
                        RU, s_pids[nr], 0, 0,
                    )
                if is_rep.any():
                    rn = s_nodes[is_rep]
                    rp = s_pids[is_rep]
                    rpos = lpos[is_rep]
                    su_req.append((rn, rp, rpos))
                    bd_req.append((rn, rp, rpos))
                    fresh_inj = ~self.injected[rn]
                    self.injected[rn[fresh_inj]] = True
                    # via_block is False at a leader start: inject.
                    inj_nodes.append(rn[fresh_inj])
                    inj_pids.append(rp[fresh_inj])
                    inj_pos.append(rpos[fresh_inj])

        # -- arrival classification and the token grant ----------------
        kd_req_nodes: List[np.ndarray] = []
        kd_req_pids: List[np.ndarray] = []
        kd_req_pos: List[np.ndarray] = []
        if m:
            apos = 2 * np.arange(m, dtype=np.int64) + 1
            part_ok = self.part_of[d.dst] == pid
            is_ru = tag == RU
            is_su = tag == SU
            is_bd = tag == BD
            is_ku = tag == KU
            is_kd = tag == KD

            fresh_ku = np.zeros(m, dtype=bool)
            ku_rows = np.flatnonzero(is_ku)
            if ku_rows.size:
                kk = key[ku_rows]
                f = first_occurrence_mask(kk) & ~self._kup.contains(kk)
                fresh_ku[ku_rows[f]] = True

            # Token grant: the first grant-capable arrival per node wins.
            # A fresh ku that will lose its kup claim to an inject this
            # tick is never reachable here: the inject's trigger already
            # set has_token at an earlier position.
            cand = is_ru | is_su | is_bd | ((is_kd | fresh_ku) & part_ok)
            cand &= ~self.has_token[d.dst]
            ci = np.flatnonzero(cand)
            w = ci[first_occurrence_mask(d.dst[ci])]
            wn = d.dst[w]
            wp = pid[w]
            wt = tag[w]
            wpos = apos[w]
            self.has_token[wn] = True

            wrep = self.rep_of[wn] == wn
            ra = wrep & (wt != SU)
            if ra.any():
                su_req.append((wn[ra], wp[ra], wpos[ra]))
                bd_req.append((wn[ra], wp[ra], wpos[ra]))
                inj = ra & ~self.injected[wn]
                self.injected[wn[inj]] = True
                ireq = inj & ((wt == RU) | (wt == BD))
                inj_nodes.append(wn[ireq])
                inj_pids.append(wp[ireq])
                inj_pos.append(wpos[ireq])
            # Non-rep winners of ru/bd/ku/kd route the token up (gated).
            rr = ~wrep & (wt != SU)

            # su arrivals always forward su+bd, gated on the flags.
            si = np.flatnonzero(is_su)
            if si.size:
                su_req.append((d.dst[si], pid[si], apos[si]))
                bd_req.append((d.dst[si], pid[si], apos[si]))
        else:
            w = wn = wp = wt = wpos = _EMPTY
            rr = np.zeros(0, dtype=bool)
            fresh_ku = np.zeros(0, dtype=bool)
            apos = _EMPTY

        # -- sent_su / sent_bd resolution -------------------------------
        for reqs, flag, tagc, csr in (
            (su_req, self.sent_su, SU, self._fch),
            (bd_req, self.sent_bd, BD, self._bd),
        ):
            if not reqs:
                continue
            rn = np.concatenate([r[0] for r in reqs])
            rp = np.concatenate([r[1] for r in reqs])
            rpos = np.concatenate([r[2] for r in reqs])
            keep = ~flag[rn]
            rn, rp, rpos = rn[keep], rp[keep], rpos[keep]
            if rn.size == 0:
                continue
            order = np.lexsort((rpos, rn))
            first = order[first_occurrence_mask(rn[order])]
            rn, rp, rpos = rn[first], rp[first], rpos[first]
            flag[rn] = True
            starts, counts, flat = csr
            origin, member, within = csr_expand(starts, counts, flat, rn)
            if member.size:
                rank = np.full(member.size, _RANK[tagc], dtype=np.int64)
                tcol = np.full(member.size, tagc, dtype=np.int64)
                em.append((
                    rn[origin], member, rpos[origin], rank, within, tcol,
                    rp[origin], np.zeros(member.size, dtype=np.int64),
                    np.zeros(member.size, dtype=np.int64),
                ))

        # -- gated ru from non-rep token winners ------------------------
        if rr.size and rr.any():
            rn = wn[rr]
            keep = ~self.sent_ru[rn]
            rn = rn[keep]
            if rn.size:
                self.sent_ru[rn] = True
                emit_single(
                    rn, self.fparent[rn], wpos[rr][keep], RU, wp[rr][keep],
                    0, 0,
                )

        # -- kup resolution: fresh ku arrivals vs injects ---------------
        cparts: List[Tuple[np.ndarray, np.ndarray, np.ndarray, int]] = []
        fki = np.flatnonzero(fresh_ku)
        if fki.size:
            cparts.append((d.dst[fki], pid[fki], apos[fki], 0))
        if inj_nodes:
            inode = np.concatenate(inj_nodes)
            ipid = np.concatenate(inj_pids)
            ipos = np.concatenate(inj_pos)
            ikey = inode * np.int64(P) + ipid
            iup = in_sorted(self._up_keys, ikey)
            idone = self._kup.contains(ikey)
            # pid not in up_parts, or already claimed: block_down instead.
            side = ~iup | (iup & idone)
            kd_req_nodes.append(inode[side])
            kd_req_pids.append(ipid[side])
            kd_req_pos.append(ipos[side])
            live = iup & ~idone
            cparts.append((inode[live], ipid[live], ipos[live], 1))
        if cparts:
            cn = np.concatenate([c[0] for c in cparts])
            cp = np.concatenate([c[1] for c in cparts])
            cpos = np.concatenate([c[2] for c in cparts])
            cinj = np.concatenate([
                np.full(c[0].size, c[3], dtype=np.int64) for c in cparts
            ])
            ckey = cn * np.int64(P) + cp
            order = np.lexsort((cpos, ckey))
            first = order[first_occurrence_mask(ckey[order])]
            win = np.zeros(cn.size, dtype=bool)
            win[first] = True
            self._kup.add(ckey[win])
            # Losing injects fall through to block_down; losing ku
            # arrivals are skipped entirely (the whole handler branch is
            # guarded by the kup_done test).
            lose_inj = ~win & (cinj == 1)
            kd_req_nodes.append(cn[lose_inj])
            kd_req_pids.append(cp[lose_inj])
            kd_req_pos.append(cpos[lose_inj])
            # Winners: climb if the part still goes up, else turn around.
            wk = np.flatnonzero(win)
            up = in_sorted(self._up_keys, ckey[wk])
            climb = wk[up]
            emit_single(
                cn[climb], self.tparent[cn[climb]], cpos[climb], KU,
                cp[climb], self._prio.get(ckey[climb]), cp[climb],
            )
            root = wk[~up]
            kd_req_nodes.append(cn[root])
            kd_req_pids.append(cp[root])
            kd_req_pos.append(cpos[root])

        # -- kdown resolution ------------------------------------------
        if m:
            ki = np.flatnonzero(is_kd)
            if ki.size:
                kd_req_nodes.append(d.dst[ki])
                kd_req_pids.append(pid[ki])
                kd_req_pos.append(apos[ki])
        if kd_req_nodes:
            qn = np.concatenate(kd_req_nodes)
            qp = np.concatenate(kd_req_pids)
            qpos = np.concatenate(kd_req_pos)
            qkey = qn * np.int64(P) + qp
            keep = ~self._kdown.contains(qkey)
            qn, qp, qpos, qkey = qn[keep], qp[keep], qpos[keep], qkey[keep]
            if qn.size:
                order = np.lexsort((qpos, qkey))
                first = order[first_occurrence_mask(qkey[order])]
                qn, qp, qpos, qkey = (
                    qn[first], qp[first], qpos[first], qkey[first]
                )
                self._kdown.add(qkey)
                pos_tbl = np.searchsorted(self._dkeys, qkey)
                if self._dkeys.size:
                    pos_tbl[pos_tbl >= self._dkeys.size] = self._dkeys.size - 1
                    has = self._dkeys[pos_tbl] == qkey
                else:
                    has = np.zeros(qkey.size, dtype=bool)
                gi = np.flatnonzero(has)
                origin, child, within = csr_expand(
                    self._dstarts, self._dcounts, self._dchildren, pos_tbl[gi]
                )
                if child.size:
                    src = qn[gi][origin]
                    pp = qp[gi][origin]
                    rank = np.full(child.size, _RANK[KD], dtype=np.int64)
                    tcol = np.full(child.size, KD, dtype=np.int64)
                    em.append((
                        src, child, qpos[gi][origin], rank, within, tcol,
                        pp, self._prio.get(src * np.int64(P) + pp), pp,
                    ))

        # -- assemble, order, and flush --------------------------------
        if em:
            src = np.concatenate([e[0] for e in em])
            dst = np.concatenate([e[1] for e in em])
            pos = np.concatenate([e[2] for e in em])
            rank = np.concatenate([e[3] for e in em])
            idx = np.concatenate([e[4] for e in em])
            tcol = np.concatenate([e[5] for e in em])
            pcol = np.concatenate([e[6] for e in em])
            p0 = np.concatenate([
                np.broadcast_to(np.asarray(e[7], dtype=np.int64), e[0].shape)
                for e in em
            ])
            p1 = np.concatenate([
                np.broadcast_to(np.asarray(e[8], dtype=np.int64), e[0].shape)
                for e in em
            ])
            order = np.lexsort((idx, rank, src, pos))
            self._pool.push(
                src[order], dst[order], p0[order], p1[order],
                tag=tcol[order], pid=pcol[order],
            )

        emitted, wake = self._pool.select()
        if emitted is not None:
            bits = self.pbits[emitted["pid"]] if actx.strict_bits else None
            actx.emit(
                emitted["src"],
                emitted["dst"],
                cols={"tag": emitted["tag"], "pid": emitted["pid"]},
                bits=bits,
            )
            self.out_arena.append(
                key=emitted["src"] * np.int64(P) + emitted["pid"],
                dst=emitted["dst"],
                tag=emitted["tag"],
            )
            self._materialized = None
        actx.wake(wake)

    # ------------------------------------------------------------------
    # Record access
    # ------------------------------------------------------------------
    @property
    def record(self) -> WaveRecord:
        return _LazyWaveRecord(self)

    def parent_entries(self) -> Tuple[np.ndarray, np.ndarray]:
        """The wave-parent dict as (keys in insertion order, values).

        A value of -1 encodes ``None`` (leader keys: the scalar leader
        start overwrites any earlier arrival's value in place, so the
        *position* is the first touch but the value is always ``None``).
        """
        ik = self.in_arena.column("key")
        isrc = self.in_arena.column("src")
        ukeys, idx = np.unique(ik, return_index=True)
        chrono = 2 * idx.astype(np.int64) + 1
        vals = isrc[idx].astype(np.int64)
        if self.leader_events:
            lc = np.fromiter(
                (c for c, _k in self.leader_events), dtype=np.int64,
                count=len(self.leader_events),
            )
            lk = np.fromiter(
                (k for _c, k in self.leader_events), dtype=np.int64,
                count=len(self.leader_events),
            )
            pos = np.searchsorted(ukeys, lk)
            if ukeys.size:
                posc = np.minimum(pos, ukeys.size - 1)
                hit = ukeys[posc] == lk
            else:
                hit = np.zeros(lk.size, dtype=bool)
            if hit.any():
                hidx = posc[hit]
                chrono[hidx] = np.minimum(chrono[hidx], lc[hit])
                vals[hidx] = -1
            miss = ~hit
            ukeys = np.concatenate([ukeys, lk[miss]])
            chrono = np.concatenate([chrono, lc[miss]])
            vals = np.concatenate([vals, np.full(int(miss.sum()), -1,
                                                 dtype=np.int64)])
        order = np.argsort(chrono, kind="stable")
        return ukeys[order], vals[order]

    def materialize_record(self) -> WaveRecord:
        if self._materialized is not None:
            return self._materialized
        P = self.P
        out_edges: Dict[Tuple[int, int], List[Tuple[int, str]]] = {}
        for k, dstv, t in zip(
            self.out_arena.column("key").tolist(),
            self.out_arena.column("dst").tolist(),
            self.out_arena.column("tag").tolist(),
        ):
            out_edges.setdefault((k // P, k % P), []).append(
                (dstv, TAG_NAMES[t])
            )
        in_edges: Dict[Tuple[int, int], List[Tuple[int, str]]] = {}
        for k, srcv, t in zip(
            self.in_arena.column("key").tolist(),
            self.in_arena.column("src").tolist(),
            self.in_arena.column("tag").tolist(),
        ):
            in_edges.setdefault((k // P, k % P), []).append(
                (srcv, TAG_NAMES[t])
            )
        pkeys, pvals = self.parent_entries()
        parent: Dict[Tuple[int, int], Optional[int]] = {}
        for k, v in zip(pkeys.tolist(), pvals.tolist()):
            parent[(k // P, k % P)] = None if v < 0 else v
        reached = {
            pid: set() for pid in range(self.partition.num_parts)
        }
        for v in np.flatnonzero(self.has_token).tolist():
            reached[int(self.part_of[v])].add(v)
        self._materialized = WaveRecord(
            out_edges=out_edges, in_edges=in_edges, parent=parent,
            reached=reached,
        )
        return self._materialized


class ReverseArrayKernel(ArrayProgram):
    """Array twin of :class:`~repro.core.wave.ReverseProgram`."""

    name = "pa_reverse"

    def __init__(
        self,
        wave: WaveArrayKernel,
        agg: Aggregation,
        values: Sequence[object],
        capacity: int = 1,
    ) -> None:
        self.wave = wave
        self.agg = agg
        n = wave.n
        P = wave.P
        self.P = P
        if agg is SUM:
            self._op, identity = np.add, 0
        elif agg is MIN:
            self._op, identity = np.minimum, _INT64_MAX
        elif agg is MAX:
            self._op, identity = np.maximum, _INT64_MIN
        else:
            raise ValueError(f"unsupported array aggregation {agg!r}")

        all_out = wave.out_arena.column("key")
        all_in = wave.in_arena.column("key")
        pkeys, pvals = wave.parent_entries()

        # Canonical iteration order: sorted packed keys v * P + pid, which
        # is sorted (v, pid) — the order the scalar ReverseProgram iterates
        # (restriction-stable; see the module docstring).
        key_parts = [a for a in (all_out, all_in, pkeys) if a.size]
        if key_parts:
            key64 = np.unique(np.concatenate(key_parts))
        else:
            key64 = _EMPTY
        self.num_keys = key64.size
        self.kv = key64 // P
        self.kp = key64 % P
        self._sorted_keys = key64

        # parent value per iter key (-1 = None / absent).
        self.par_val = np.full(self.num_keys, -1, dtype=np.int64)
        if pkeys.size:
            self.par_val[self._kid(pkeys)] = pvals

        # expected = number of recorded out-edges per key.
        self.expected = np.zeros(self.num_keys, dtype=np.int64)
        if all_out.size:
            np.add.at(self.expected, self._kid(all_out), 1)

        # acc as (value, has); the op identity stands in for None.
        values_np = np.zeros(n, dtype=np.int64)
        values_has = np.zeros(n, dtype=bool)
        for v, val in enumerate(values):
            if type(val) is int:
                values_np[v] = val
                values_has[v] = True
        member = (wave.part_of[self.kv] == self.kp) & wave.has_token[self.kv]
        self.acc_has = member & values_has[self.kv]
        self.acc_val = np.full(self.num_keys, identity, dtype=np.int64)
        self.acc_val[self.acc_has] = values_np[self.kv[self.acc_has]]

        self._pool = EdgePool(n, ("pid", "val", "has"), capacity=capacity)
        #: results in scalar dict chronological order.
        self.res_pids: List[int] = []
        self.res_vals: List[Optional[int]] = []

    def _kid(self, keys: np.ndarray) -> np.ndarray:
        return np.searchsorted(self._sorted_keys, keys)

    def _fire(self, kids: np.ndarray) -> None:
        pv = self.par_val[kids]
        root = pv < 0
        for kid in kids[root].tolist():
            self.res_pids.append(int(self.kp[kid]))
            self.res_vals.append(
                int(self.acc_val[kid]) if self.acc_has[kid] else None
            )
        up = kids[~root]
        if up.size:
            has = self.acc_has[up]
            self._pool.push(
                self.kv[up], pv[~root], 0, 0,
                pid=self.kp[up],
                val=np.where(has, self.acc_val[up], 0),
                has=has.astype(np.int64),
            )

    def results_dict(self) -> Dict[int, Optional[int]]:
        out: Dict[int, Optional[int]] = {}
        for pid, val in zip(self.res_pids, self.res_vals):
            out[pid] = val
        return out

    def array_start(self, actx) -> None:
        # None answers for every non-parent recorded in-edge, in keys-set
        # iteration order, preserving per-key arrival order.
        ik = self.wave.in_arena.column("key")
        isrc = self.wave.in_arena.column("src")
        if ik.size:
            kid = self._kid(ik)
            order = np.argsort(kid, kind="stable")
            kid_s = kid[order]
            src_s = isrc[order]
            par_s = self.par_val[kid_s]
            match = src_s == par_s
            csum = np.cumsum(match.astype(np.int64))
            starts = np.ones(kid_s.size, dtype=bool)
            starts[1:] = kid_s[1:] != kid_s[:-1]
            start_idx = np.flatnonzero(starts)
            counts = np.diff(np.append(start_idx, kid_s.size))
            bases = csum[start_idx] - match[start_idx]
            within = csum - np.repeat(bases, counts)
            keep = ~(match & (within == 1))
            kk = kid_s[keep]
            self._pool.push(
                self.kv[kk], src_s[keep], 0, 0,
                pid=self.kp[kk],
                val=0,
                has=0,
            )
        fires = np.flatnonzero(self.expected == 0)
        self._fire(fires)
        actx.wake(self._pool.pending_sources())

    def array_tick(self, actx, d) -> None:
        m = len(d)
        if m:
            key = d.dst * np.int64(self.P) + d.cols["pid"]
            kid = self._kid(key)
            has = d.cols["has"].astype(bool)
            hv = np.flatnonzero(has)
            if hv.size:
                self._op.at(self.acc_val, kid[hv], d.cols["val"][hv])
                self.acc_has[kid[hv]] = True
            np.add.at(self.expected, kid, -1)
            rev = kid[::-1]
            u, ridx = np.unique(rev, return_index=True)
            last = m - 1 - ridx
            zero = self.expected[u] == 0
            fk = u[zero]
            if fk.size:
                order = np.argsort(last[zero])
                self._fire(fk[order])
        emitted, wake = self._pool.select()
        if emitted is not None:
            bits = None
            if actx.strict_bits:
                vb = np.where(
                    emitted["has"] == 1, int_bits_array(emitted["val"]), 1
                )
                bits = 2 + 8 + int_bits_array(emitted["pid"]) + vb
            actx.emit(
                emitted["src"],
                emitted["dst"],
                cols={
                    "pid": emitted["pid"],
                    "val": emitted["val"],
                    "has": emitted["has"],
                },
                bits=bits,
            )
        actx.wake(wake)


class ReplayArrayKernel(ArrayProgram):
    """Array twin of :class:`~repro.core.wave.ReplayProgram`."""

    name = "pa_replay"

    def __init__(
        self,
        wave: WaveArrayKernel,
        reverse: ReverseArrayKernel,
        capacity: int = 1,
    ) -> None:
        self.wave = wave
        n = wave.n
        self.P = wave.P
        ok = wave.out_arena.column("key")
        od = wave.out_arena.column("dst")
        order = np.argsort(ok, kind="stable")
        sk = ok[order]
        self._okeys, starts = np.unique(sk, return_index=True)
        self._ostarts = starts
        self._ocounts = np.diff(np.append(starts, sk.size))
        self._oflat = od[order]
        self._done = KeySet()
        self.del_seen = np.zeros(n, dtype=bool)
        self.del_has = np.zeros(n, dtype=bool)
        self.del_val = np.zeros(n, dtype=np.int64)
        self.res_pids = np.asarray(reverse.res_pids, dtype=np.int64).reshape(-1)
        self.res_has = np.asarray(
            [v is not None for v in reverse.res_vals], dtype=bool
        ).reshape(-1)
        self.res_val = np.asarray(
            [v if v is not None else 0 for v in reverse.res_vals],
            dtype=np.int64,
        ).reshape(-1)
        self._pool = EdgePool(n, ("pid", "val", "has"), capacity=capacity)

    def _forward(
        self,
        nodes: np.ndarray,
        pids: np.ndarray,
        vals: np.ndarray,
        has: np.ndarray,
    ) -> None:
        keys = nodes * np.int64(self.P) + pids
        fresh = first_occurrence_mask(keys) & ~self._done.contains(keys)
        self._done.add(keys)
        fi = np.flatnonzero(fresh)
        if fi.size == 0:
            return
        nodes, pids, vals, has, keys = (
            nodes[fi], pids[fi], vals[fi], has[fi], keys[fi]
        )
        member = self.wave.part_of[nodes] == pids
        self.del_seen[nodes[member]] = True
        self.del_has[nodes[member]] = has[member] != 0
        self.del_val[nodes[member]] = vals[member]
        pos = np.searchsorted(self._okeys, keys)
        if self._okeys.size:
            pos[pos >= self._okeys.size] = self._okeys.size - 1
            hit = self._okeys[pos] == keys
        else:
            hit = np.zeros(keys.size, dtype=bool)
        gi = np.flatnonzero(hit)
        if gi.size == 0:
            return
        origin, dsts, _within = csr_expand(
            self._ostarts, self._ocounts, self._oflat, pos[gi]
        )
        self._pool.push(
            nodes[gi][origin], dsts, 0, 0,
            pid=pids[gi][origin],
            val=vals[gi][origin],
            has=has[gi][origin],
        )

    def value_at_node(self) -> List[Optional[int]]:
        out: List[Optional[int]] = [None] * self.wave.n
        for v in np.flatnonzero(self.del_seen & self.del_has).tolist():
            out[v] = int(self.del_val[v])
        return out

    def array_start(self, actx) -> None:
        if self.res_pids.size:
            self._forward(
                self.wave.leaders[self.res_pids],
                self.res_pids,
                self.res_val,
                self.res_has.astype(np.int64),
            )
        actx.wake(self._pool.pending_sources())

    def array_tick(self, actx, d) -> None:
        if len(d):
            self._forward(d.dst, d.cols["pid"], d.cols["val"], d.cols["has"])
        emitted, wake = self._pool.select()
        if emitted is not None:
            bits = None
            if actx.strict_bits:
                vb = np.where(
                    emitted["has"] == 1, int_bits_array(emitted["val"]), 1
                )
                bits = 2 + 8 + int_bits_array(emitted["pid"]) + vb
            actx.emit(
                emitted["src"],
                emitted["dst"],
                cols={
                    "pid": emitted["pid"],
                    "val": emitted["val"],
                    "has": emitted["has"],
                },
                bits=bits,
            )
        actx.wake(wake)


def array_wave_supported(
    engine, values: Sequence[object], agg: Aggregation,
    leader_tokens: Dict[int, object],
) -> bool:
    """Whether the array wave path applies (else: scalar programs).

    Requires the array engine, a SUM/MIN/MAX aggregation over plain-int
    (or None) values with int64-safe magnitudes, and int leader tokens —
    the representable subset of the wave's payload space.  Everything else
    (tuple-packed batches, MST composite keys, custom merges) falls back
    to the scalar programs, which run unchanged under the array engine.
    """
    if not getattr(engine, "use_arrays", False):
        return False
    if agg is not SUM and agg is not MIN and agg is not MAX:
        return False
    for token in leader_tokens.values():
        if type(token) is not int or abs(token) >= 1 << 62:
            return False
    total = 0
    for val in values:
        if val is None:
            continue
        if type(val) is not int:
            return False
        total += abs(val)
    return total < 1 << 62
