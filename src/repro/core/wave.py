"""The PA wave: Algorithm 1 in event-driven form.

Algorithm 1 broadcasts a token ``m_i`` from each part leader to every node
of the part, alternating BlockRoute steps over shortcut blocks with
intra-sub-part broadcasts and boundary crossings, then computes ``f(P_i)``
"symmetrically" and broadcasts the result.  We implement it as three
phases, each a single engine program over *all parts concurrently*:

1. :class:`WaveProgram` — the token broadcast.  Five message kinds:

   * ``ru`` — route up a sub-part tree toward its representative
     (Algorithm 1 lines 8 and 18);
   * ``su`` — broadcast down a sub-part tree (line 14);
   * ``bd`` — cross sub-part boundary edges inside the part (line 15);
   * ``ku`` — climb shortcut-block edges toward the block root;
   * ``kd`` — flood down all block edges (``ku`` + ``kd`` = the
     BlockRoute of Lemma 4.2, with packets prioritized by
     (block-root depth, part id) and queued per directed tree edge).

   Only representatives inject into blocks (Observation 4.3's message
   bound); every node forwards each kind at most once per part, so the
   wave uses O(n) sub-part messages, O(2 m) boundary messages and
   O(sum_i |H_i|) block messages.  Unlike the paper's phrasing there is no
   global barrier between the ``b`` iterations: each block/sub-part
   activates once, when the token first reaches it, which is the same
   schedule without idle waiting.  The randomized variant (Section 4.2)
   delays each part's start uniformly in [0, c) and runs with per-edge
   capacity Theta(log n), each engine tick costing that many CONGEST
   rounds — exactly the paper's meta-round accounting.

2. :class:`ReverseProgram` — the aggregation.  The broadcast recorded, per
   (node, part), every wave message sent and received and the *wave
   parent* (first token source).  Reversal answers every recorded wave
   edge with exactly one value-or-None message: non-parent edges are
   answered ``None`` immediately; the parent edge is answered with the
   node's contribution merged with all received answers, once every
   outgoing wave edge has been answered.  Because wave parents form a
   forest rooted at the leaders, this convergecast is deadlock-free and
   costs exactly one message per wave message.  The recorded keys are
   iterated in canonical sorted ``(node, part)`` order — a *restriction-
   stable* order: any conflict-closed subset of parts sees the same
   relative key order it would inside the full run, which is what lets
   the sharded backend replay shard-local reversals bit-for-bit.

3. :class:`ReplayProgram` — the result broadcast: the leader's aggregate
   retraces the recorded wave edges.

Together: 3x the wave's rounds and messages, matching Lemma 4.4.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..congest.engine import Context, Engine, Inbox
from ..congest.ledger import CostLedger
from ..congest.network import Network
from ..graphs.partitions import Partition
from .aggregation import Aggregation
from .blocks import BlockAnnotations
from .queued import QueuedProgram
from .shortcuts import Shortcut
from .subparts import SubPartDivision
from .trees import ROOT


def compute_wave_boundary(
    net: Network, partition: Partition, division: SubPartDivision
) -> List[Tuple[int, ...]]:
    """Per node: in-part neighbors that are not sub-part tree neighbors.

    These are the candidate boundary edges of Algorithm 1 line 15.  The
    structure depends only on (network, partition, division), so it is
    computed once per division and cached on it
    (``division._wave_boundary_cache``); every wave over the division —
    the verify and solve waves, and any number of session-level solves —
    shares the one list.  The runtime session's coarsening path
    (:mod:`repro.runtime`) updates the cache *incrementally* when parts
    merge instead of re-running this O(n + m) pass.
    """
    cached = getattr(division, "_wave_boundary_cache", None)
    if cached is not None:
        return cached
    import numpy as np

    arrays = net.array_views
    src = arrays.src_of_slot
    adj = arrays.adj
    part_np = np.asarray(partition.part_of, dtype=np.int64)
    fparent = np.asarray(division.forest.parent, dtype=np.int64)
    # A slot is a tree edge iff one endpoint is the other's forest parent
    # (ROOT/ABSENT are negative, never equal to a node id).
    keep = (part_np[src] == part_np[adj]) & (fparent[src] != adj) & (
        fparent[adj] != src
    )
    kept_adj = adj[keep].tolist()
    counts = np.bincount(src[keep], minlength=net.n)
    starts = np.zeros(net.n, dtype=np.int64)
    if net.n > 1:
        starts[1:] = np.cumsum(counts)[:-1]
    boundary = [
        tuple(kept_adj[s:s + c])
        for s, c in zip(starts.tolist(), counts.tolist())
    ]
    division._wave_boundary_cache = boundary
    return boundary


@dataclass
class WaveRecord:
    """What the broadcast learned, for reversal and replay.

    ``out_edges[(v, pid)]`` — (dst, tag) wave messages v physically sent
    for part pid; ``in_edges[(v, pid)]`` — (src, tag) received;
    ``parent[(v, pid)]`` — the first token source (None for the leader);
    ``reached[pid]`` — part members that received the token.
    """

    out_edges: Dict[Tuple[int, int], List[Tuple[int, str]]]
    in_edges: Dict[Tuple[int, int], List[Tuple[int, str]]]
    parent: Dict[Tuple[int, int], Optional[int]]
    reached: Dict[int, Set[int]]


class WaveProgram(QueuedProgram):
    """Token broadcast from every part leader (Algorithm 1 lines 1-20)."""

    name = "pa_wave"

    def __init__(
        self,
        net: Network,
        partition: Partition,
        division: SubPartDivision,
        shortcut: Shortcut,
        annotations: BlockAnnotations,
        leader_tokens: Dict[int, object],
        delays: Optional[Dict[int, int]] = None,
        capacity: int = 1,
    ) -> None:
        super().__init__(capacity=capacity)
        self.net = net
        self.partition = partition
        self.division = division
        self.shortcut = shortcut
        self.ann = annotations
        self.leader_tokens = leader_tokens
        self.delays = delays or {}
        self._started: Set[int] = set()

        self.forest = division.forest
        self.part_of = partition.part_of
        self.rep_of = division.rep_of
        self.down = shortcut.down_parts()

        n = net.n
        self.has_token = bytearray(n)
        self.sent_su = bytearray(n)
        self.sent_bd = bytearray(n)
        self.sent_ru = bytearray(n)
        self.injected = bytearray(n)
        self.kup_done: Set[Tuple[int, int]] = set()
        self.kdown_done: Set[Tuple[int, int]] = set()

        self.record = WaveRecord(
            out_edges={}, in_edges={}, parent={},
            reached={pid: set() for pid in range(partition.num_parts)},
        )
        # A part's token is fixed, so the (tag, pid, token) payload for a
        # given (tag, pid) is one value: intern it.  Reusing one tuple per
        # (tag, pid) avoids an allocation per send and lets the engine's
        # identity-keyed bit-budget cache hit on every hop.
        self._payload_memo: Dict[Tuple[str, int], Tuple[str, int, object]] = {}
        self._prio_memo: Dict[Tuple[int, int], Tuple[int, int]] = {}
        # The candidate boundary edges of line 15, cached per division
        # (see compute_wave_boundary).
        self._boundary: List[Tuple[int, ...]] = compute_wave_boundary(
            net, partition, division
        )

    # ------------------------------------------------------------------
    # Recording helpers
    # ------------------------------------------------------------------
    def _record_out(self, src: int, pid: int, dst: int, tag: str) -> None:
        self.record.out_edges.setdefault((src, pid), []).append((dst, tag))

    def _record_in(self, dst: int, pid: int, src: int, tag: str) -> None:
        self.record.in_edges.setdefault((dst, pid), []).append((src, tag))
        if (dst, pid) not in self.record.parent:
            self.record.parent[(dst, pid)] = src

    def on_dequeue(self, src: int, dst: int, payload: object) -> None:
        # Inlined _record_out: this runs once per physically sent packet.
        out_edges = self.record.out_edges
        key = (src, payload[1])
        lst = out_edges.get(key)
        if lst is None:
            out_edges[key] = [(dst, payload[0])]
        else:
            lst.append((dst, payload[0]))

    def _send(self, ctx: Context, src: int, dst: int, tag: str, pid: int,
              token: object, priority: Tuple = (0, 0)) -> None:
        key = (tag, pid)
        payload = self._payload_memo.get(key)
        if payload is None:
            payload = self._payload_memo[key] = (tag, pid, token)
        # Every _send happens while ``src`` is the node being activated
        # (handlers, rep actions, and the leader start all run inside
        # src's own activation), so the enqueue fast path is inlined: the
        # packet goes straight to the activation batch.
        self._seq += 1
        self._batch.append((dst, priority, self._seq, payload))

    def _prio(self, v: int, pid: int) -> Tuple[int, int]:
        key = (v, pid)
        prio = self._prio_memo.get(key)
        if prio is None:
            prio = self._prio_memo[key] = (self.ann.priority_depth(v, pid), pid)
        return prio

    # ------------------------------------------------------------------
    # Protocol actions
    # ------------------------------------------------------------------
    def _gain_token(self, ctx: Context, v: int, pid: int, token: object) -> None:
        """First token receipt at part member ``v``."""
        self.has_token[v] = 1
        self.record.reached[pid].add(v)

    def _rep_actions(self, ctx: Context, v: int, pid: int, token: object,
                     via_block: bool) -> None:
        """A representative holding the token activates its sub-part."""
        if not self.sent_su[v]:
            self.sent_su[v] = 1
            for child in self.forest.children[v]:
                self._send(ctx, v, child, "su", pid, token)
        if not self.sent_bd[v]:
            self.sent_bd[v] = 1
            for nb in self._boundary[v]:
                self._send(ctx, v, nb, "bd", pid, token)
        if not self.injected[v]:
            self.injected[v] = 1
            if not via_block:
                self._inject_block(ctx, v, pid, token)

    def _inject_block(self, ctx: Context, v: int, pid: int, token: object) -> None:
        """Send the token into v's shortcut block (Observation 4.3: reps only)."""
        if pid in self.shortcut.up_parts[v] and (v, pid) not in self.kup_done:
            self.kup_done.add((v, pid))
            parent = self.shortcut.tree.parent[v]
            prio = self._prio(v, pid)
            self._send(ctx, v, parent, "ku", pid, token, priority=prio)
        else:
            self._block_down(ctx, v, pid, token)

    def _block_down(self, ctx: Context, v: int, pid: int, token: object) -> None:
        """Flood the token down all of v's H_pid child edges."""
        if (v, pid) in self.kdown_done:
            return
        self.kdown_done.add((v, pid))
        prio = self._prio(v, pid)
        for child, parts in self.down[v].items():
            if pid in parts:
                self._send(ctx, v, child, "kd", pid, token, priority=prio)

    def _member_receive(self, ctx: Context, v: int, pid: int, token: object,
                        via: str) -> None:
        """Token delivery logic for a part member."""
        if self.has_token[v]:
            return
        self._gain_token(ctx, v, pid, token)
        if self.rep_of[v] == v:
            self._rep_actions(ctx, v, pid, token, via_block=via in ("ku", "kd"))
        elif via == "su":
            pass  # fall through: forwarding handled by caller
        elif via in ("bd", "ku", "kd"):
            # Route the token up to the representative (lines 16-18).
            if not self.sent_ru[v]:
                self.sent_ru[v] = 1
                self._send(ctx, v, self.forest.parent[v], "ru", pid, token)

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def on_start(self, ctx: Context) -> None:
        for pid in range(self.partition.num_parts):
            leader = self.division.part_leader[pid]
            delay = self.delays.get(pid, 0)
            if delay > 1:
                # Timer wheel: one activation exactly at the delay tick,
                # instead of re-waking (and re-activating) every tick.
                ctx.wake_at(leader, delay)
            else:
                ctx.wake(leader)

    def _leader_start(self, ctx: Context, leader: int) -> None:
        pid = self.part_of[leader]
        delay = self.delays.get(pid, 0)
        if ctx.tick < delay:
            # Defensive: with wake_at-based scheduling the leader is first
            # activated at its delay tick, so this cannot trigger unless a
            # message reaches it earlier (in which case it re-arms).
            ctx.wake(leader)
            return
        self._started.add(pid)
        token = self.leader_tokens[pid]
        self.record.parent[(leader, pid)] = None
        self._gain_token(ctx, leader, pid, token)
        if self.rep_of[leader] == leader:
            self._rep_actions(ctx, leader, pid, token, via_block=False)
        else:
            self.sent_ru[leader] = 1
            self._send(ctx, leader, self.forest.parent[leader], "ru", pid, token)

    def handle(self, ctx: Context, node: int, inbox: Inbox) -> None:
        in_edges = self.record.in_edges
        wave_parent = self.record.parent
        for sender, payload in inbox:
            tag, pid, token = payload
            # Inlined _record_in: once per received packet.
            key = (node, pid)
            lst = in_edges.get(key)
            if lst is None:
                in_edges[key] = [(sender, tag)]
            else:
                lst.append((sender, tag))
            if key not in wave_parent:
                wave_parent[key] = sender
            if tag == "ru":
                if self.has_token[node]:
                    continue
                self._gain_token(ctx, node, pid, token)
                if self.rep_of[node] == node:
                    self._rep_actions(ctx, node, pid, token, via_block=False)
                elif not self.sent_ru[node]:
                    self.sent_ru[node] = 1
                    self._send(
                        ctx, node, self.forest.parent[node], "ru", pid, token
                    )
            elif tag == "su":
                if not self.has_token[node]:
                    self._gain_token(ctx, node, pid, token)
                if not self.sent_su[node]:
                    self.sent_su[node] = 1
                    for child in self.forest.children[node]:
                        self._send(ctx, node, child, "su", pid, token)
                if not self.sent_bd[node]:
                    self.sent_bd[node] = 1
                    for nb in self._boundary[node]:
                        self._send(ctx, node, nb, "bd", pid, token)
            elif tag == "bd":
                self._member_receive(ctx, node, pid, token, via="bd")
            elif tag == "ku":
                if (node, pid) not in self.kup_done:
                    self.kup_done.add((node, pid))
                    if self.part_of[node] == pid:
                        self._member_receive(ctx, node, pid, token, via="ku")
                    if pid in self.shortcut.up_parts[node]:
                        parent = self.shortcut.tree.parent[node]
                        prio = self._prio(node, pid)
                        self._send(ctx, node, parent, "ku", pid, token,
                                   priority=prio)
                    else:
                        # node is the block root: turn around and flood down.
                        self._block_down(ctx, node, pid, token)
            elif tag == "kd":
                if self.part_of[node] == pid:
                    self._member_receive(ctx, node, pid, token, via="kd")
                self._block_down(ctx, node, pid, token)

    def on_activate(self, ctx: Context, node: int) -> None:
        pid = self.part_of[node]
        if node == self.division.part_leader[pid] and pid not in self._started:
            # The leader's own sends go through the activation batch (the
            # flush at the end of this activation ships them this tick).
            self._leader_start(ctx, node)


class ReverseProgram(QueuedProgram):
    """Aggregation by exact time-reversal of a recorded wave."""

    name = "pa_reverse"

    def __init__(
        self,
        net: Network,
        partition: Partition,
        record: WaveRecord,
        agg: Aggregation,
        values: Sequence[object],
        capacity: int = 1,
    ) -> None:
        super().__init__(capacity=capacity)
        self.net = net
        self.partition = partition
        self.record = record
        self.agg = agg
        self.values = values
        self.expected: Dict[Tuple[int, int], int] = {}
        self.acc: Dict[Tuple[int, int], object] = {}
        self.results: Dict[int, object] = {}
        # The None answer for part pid is one value: intern it (identity
        # bit-budget cache + no per-send allocation).
        self._none_answer: Dict[int, Tuple[str, int, None]] = {}

    def _fire(self, ctx: Context, v: int, pid: int) -> None:
        parent = self.record.parent.get((v, pid))
        if parent is None:
            self.results[pid] = self.acc.get((v, pid))
        else:
            self.enqueue(
                ctx, v, parent, (0,), ("a", pid, self.acc.get((v, pid)))
            )

    def on_start(self, ctx: Context) -> None:
        part_of = self.partition.part_of
        out_edges = self.record.out_edges
        in_edges = self.record.in_edges
        parent_of = self.record.parent
        reached = self.record.reached
        values = self.values
        expected = self.expected
        acc = self.acc
        # Canonical iteration order: sorted (node, pid).  Sorting is
        # restriction-stable (a shard sees the same relative order as the
        # full run) and relabel-invariant under order-preserving node/part
        # relabelings — the property the sharded backend's bit-for-bit
        # parity rests on.
        key_set = set(out_edges)
        key_set.update(in_edges)
        key_set.update(parent_of)
        keys = sorted(key_set)
        for key in keys:
            v, pid = key
            out = out_edges.get(key)
            expected[key] = len(out) if out is not None else 0
            if part_of[v] == pid and v in reached[pid]:
                acc[key] = values[v]
            else:
                acc[key] = None
        # Answer every non-parent in-edge immediately with None.
        none_answer = self._none_answer
        enqueue = self.enqueue
        for key in keys:
            edges = in_edges.get(key)
            if not edges:
                continue
            v, pid = key
            parent = parent_of.get(key)
            answered_parent = False
            payload = none_answer.get(pid)
            if payload is None:
                payload = none_answer[pid] = ("a", pid, None)
            for src, _tag in edges:
                if src == parent and not answered_parent:
                    answered_parent = True  # reserved for the value answer
                    continue
                enqueue(ctx, v, src, (0,), payload)
        for key in keys:
            if expected[key] == 0:
                v, pid = key
                self._fire(ctx, v, pid)

    def handle(self, ctx: Context, node: int, inbox: Inbox) -> None:
        for _sender, payload in inbox:
            _tag, pid, value = payload
            key = (node, pid)
            self.acc[key] = self.agg.merge(self.acc.get(key), value)
            self.expected[key] -= 1
            if self.expected[key] == 0:
                self._fire(ctx, node, pid)


class ReplayProgram(QueuedProgram):
    """Broadcast each part's aggregate along the recorded wave edges."""

    name = "pa_replay"

    def __init__(
        self,
        net: Network,
        partition: Partition,
        division: SubPartDivision,
        record: WaveRecord,
        results: Dict[int, object],
        capacity: int = 1,
    ) -> None:
        super().__init__(capacity=capacity)
        self.net = net
        self.partition = partition
        self.division = division
        self.record = record
        self.results = results
        self.delivered: Dict[int, object] = {}
        self._done: Set[Tuple[int, int]] = set()
        # One interned (tag, pid, result) payload per part, as in the wave.
        self._payload_memo: Dict[int, Tuple[str, int, object]] = {}

    def _forward(self, ctx: Context, v: int, pid: int, value: object) -> None:
        key = (v, pid)
        if key in self._done:
            return
        self._done.add(key)
        if self.partition.part_of[v] == pid:
            self.delivered[v] = value
        out = self.record.out_edges.get(key)
        if not out:
            return
        payload = self._payload_memo.get(pid)
        if payload is None:
            payload = self._payload_memo[pid] = ("r", pid, value)
        for dst, _tag in out:
            self.enqueue(ctx, v, dst, (0,), payload)

    def on_start(self, ctx: Context) -> None:
        for pid, value in self.results.items():
            leader = self.division.part_leader[pid]
            self._forward(ctx, leader, pid, value)

    def handle(self, ctx: Context, node: int, inbox: Inbox) -> None:
        for _sender, payload in inbox:
            _tag, pid, value = payload
            self._forward(ctx, node, pid, value)


@dataclass
class PAWaveResult:
    """Outcome of one full PA solve over a given shortcut and division."""

    aggregates: Dict[int, object]
    value_at_node: List[object]
    record: WaveRecord
    wave_rounds: int
    wave_messages: int


@dataclass
class WavePlan:
    """Globally computed parameters of one PA wave pass.

    Everything a wave pass needs beyond the setup structures, fixed
    *before* the first tick: capacity/meta-round accounting, the random
    per-part delays (drawn from the solver rng in pid order, so planning
    advances the rng exactly as running used to), the round budget
    (computed from the *global* n/b/c/depth), the leader tokens, and the
    array-vs-scalar dispatch decision (evaluated on the global values —
    a restriction of the values could pass the int64-overflow check where
    the full set does not).  The sharded backend ships one plan to every
    worker, restricted per shard, so all shards run under the exact
    parameters the serial pass would have used.
    """

    capacity: int
    rounds_per_tick: int
    delays: Dict[int, int]
    max_ticks: int
    leader_tokens: Dict[int, object]
    use_array: bool


def plan_pa_waves(
    engine: Engine,
    net: Network,
    partition: Partition,
    division: SubPartDivision,
    shortcut: Shortcut,
    values: Sequence[object],
    agg: Aggregation,
    randomized: bool = False,
    rng: Optional[random.Random] = None,
    max_ticks: Optional[int] = None,
) -> WavePlan:
    """Compute the :class:`WavePlan` for one wave pass.

    ``randomized`` switches on the Section 4.2 mode: random per-part delays
    uniform in [0, c) and per-edge capacity ceil(2 log2 n), each engine tick
    charged that many CONGEST rounds.
    """
    n = net.n
    b, c = shortcut.quality()
    depth = shortcut.tree.height()

    capacity = 1
    rounds_per_tick = 1
    delays: Dict[int, int] = {}
    if randomized:
        rng = rng or random.Random(0)
        log_n = max(1, (max(2, n) - 1).bit_length())
        # Meta-rounds carry Theta(log n) messages per edge (Section 4.2),
        # but per-edge load never exceeds the shortcut congestion c, so a
        # smaller capacity suffices when c is small — same guarantees,
        # fewer charged rounds.
        capacity = max(1, min(2 * log_n, c))
        rounds_per_tick = capacity
        # Delays are drawn over [0, c) CONGEST rounds; one engine tick in
        # this mode represents ``capacity`` rounds, so scale accordingly.
        tick_span = max(1, c // capacity + 1)
        delays = {
            pid: rng.randrange(tick_span)
            for pid in range(partition.num_parts)
        }

    if max_ticks is None:
        max_ticks = 64 + 8 * (b * (depth + 1) + c + depth + n // max(1, depth))

    leader_tokens = {
        pid: net.uid[division.part_leader[pid]]
        for pid in range(partition.num_parts)
    }

    from .array_wave import array_wave_supported

    return WavePlan(
        capacity=capacity,
        rounds_per_tick=rounds_per_tick,
        delays=delays,
        max_ticks=max_ticks,
        leader_tokens=leader_tokens,
        use_array=array_wave_supported(engine, values, agg, leader_tokens),
    )


def run_pa_waves(
    engine: Engine,
    net: Network,
    partition: Partition,
    division: SubPartDivision,
    shortcut: Shortcut,
    annotations: BlockAnnotations,
    values: Sequence[object],
    agg: Aggregation,
    ledger: CostLedger,
    randomized: bool = False,
    rng: Optional[random.Random] = None,
    max_ticks: Optional[int] = None,
    phase_prefix: str = "pa",
) -> PAWaveResult:
    """Run broadcast + reversal + replay; returns per-part aggregates.

    Exactly ``plan_pa_waves`` followed by ``run_planned_waves`` — the
    historical one-call form, bit-for-bit unchanged.
    """
    plan = plan_pa_waves(
        engine, net, partition, division, shortcut, values, agg,
        randomized=randomized, rng=rng, max_ticks=max_ticks,
    )
    return run_planned_waves(
        engine, net, partition, division, shortcut, annotations,
        values, agg, ledger, plan, phase_prefix=phase_prefix,
    )


def run_planned_waves(
    engine: Engine,
    net: Network,
    partition: Partition,
    division: SubPartDivision,
    shortcut: Shortcut,
    annotations: BlockAnnotations,
    values: Sequence[object],
    agg: Aggregation,
    ledger: CostLedger,
    plan: WavePlan,
    phase_prefix: str = "pa",
) -> PAWaveResult:
    """Run broadcast + reversal + replay under a precomputed plan.

    The plan's parameters (including the array-dispatch decision) are
    honored as given: this is the entry point sharded workers use, with a
    plan computed once on the orchestrator from the global structures and
    restricted per shard.
    """
    capacity = plan.capacity
    rounds_per_tick = plan.rounds_per_tick
    delays = plan.delays
    max_ticks = plan.max_ticks
    leader_tokens = plan.leader_tokens

    if plan.use_array:
        return _run_pa_waves_array(
            engine, net, partition, division, shortcut, annotations,
            values, agg, ledger, leader_tokens, delays, capacity,
            rounds_per_tick, max_ticks, phase_prefix,
        )

    wave = WaveProgram(
        net, partition, division, shortcut, annotations, leader_tokens,
        delays=delays, capacity=capacity,
    )
    wave.name = f"{phase_prefix}_wave"
    stats = engine.run(
        wave, max_ticks=max_ticks, capacity=capacity,
        rounds_per_tick=rounds_per_tick,
    )
    ledger.charge(stats)
    wave_rounds, wave_messages = stats.rounds, stats.messages

    for pid in range(partition.num_parts):
        missing = set(partition.members[pid]) - wave.record.reached[pid]
        if missing:
            raise RuntimeError(
                f"wave failed to cover part {pid}: missing {sorted(missing)[:5]}"
            )

    reverse = ReverseProgram(
        net, partition, wave.record, agg, values, capacity=capacity
    )
    reverse.name = f"{phase_prefix}_reverse"
    stats = engine.run(
        reverse, max_ticks=4 * max_ticks, capacity=capacity,
        rounds_per_tick=rounds_per_tick,
    )
    ledger.charge(stats)

    replay = ReplayProgram(
        net, partition, division, wave.record, reverse.results,
        capacity=capacity,
    )
    replay.name = f"{phase_prefix}_replay"
    stats = engine.run(
        replay, max_ticks=4 * max_ticks, capacity=capacity,
        rounds_per_tick=rounds_per_tick,
    )
    ledger.charge(stats)

    value_at_node: List[object] = [None] * net.n
    for v in range(net.n):
        value_at_node[v] = replay.delivered.get(v)

    return PAWaveResult(
        aggregates=dict(reverse.results),
        value_at_node=value_at_node,
        record=wave.record,
        wave_rounds=wave_rounds,
        wave_messages=wave_messages,
    )


def _run_pa_waves_array(
    engine: Engine,
    net: Network,
    partition: Partition,
    division: SubPartDivision,
    shortcut: Shortcut,
    annotations: BlockAnnotations,
    values: Sequence[object],
    agg: Aggregation,
    ledger: CostLedger,
    leader_tokens: Dict[int, int],
    delays: Dict[int, int],
    capacity: int,
    rounds_per_tick: int,
    max_ticks: int,
    phase_prefix: str,
) -> PAWaveResult:
    """Array-native PA: same three phases, flat-column kernels."""
    from .array_wave import (
        ReplayArrayKernel,
        ReverseArrayKernel,
        WaveArrayKernel,
    )

    wave = WaveArrayKernel(
        net, partition, division, shortcut, annotations, leader_tokens,
        delays=delays, capacity=capacity,
    )
    wave.name = f"{phase_prefix}_wave"
    stats = engine.run(
        wave, max_ticks=max_ticks, capacity=capacity,
        rounds_per_tick=rounds_per_tick,
    )
    ledger.charge(stats)
    wave_rounds, wave_messages = stats.rounds, stats.messages

    part_of = partition.part_of
    for pid in range(partition.num_parts):
        missing = {
            v for v in partition.members[pid]
            if not wave.has_token[v] or part_of[v] != pid
        }
        if missing:
            raise RuntimeError(
                f"wave failed to cover part {pid}: missing {sorted(missing)[:5]}"
            )

    reverse = ReverseArrayKernel(wave, agg, values, capacity=capacity)
    reverse.name = f"{phase_prefix}_reverse"
    stats = engine.run(
        reverse, max_ticks=4 * max_ticks, capacity=capacity,
        rounds_per_tick=rounds_per_tick,
    )
    ledger.charge(stats)

    replay = ReplayArrayKernel(wave, reverse, capacity=capacity)
    replay.name = f"{phase_prefix}_replay"
    stats = engine.run(
        replay, max_ticks=4 * max_ticks, capacity=capacity,
        rounds_per_tick=rounds_per_tick,
    )
    ledger.charge(stats)

    return PAWaveResult(
        aggregates=reverse.results_dict(),
        value_at_node=replay.value_at_node(),
        record=wave.record,
        wave_rounds=wave_rounds,
        wave_messages=wave_messages,
    )
