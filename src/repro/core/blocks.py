"""Distributed block identification and annotation.

After shortcut construction every node knows, per incident tree edge,
which parts' ``H_i`` contain it.  That makes block membership local, but
two further pieces of knowledge are required:

1. **Root depth per (node, part)** — the BlockRoute scheduling of
   Lemma 4.2 prioritizes packets by the depth of their block's root, so
   every block participant must learn it.
2. **One counting token per block** — the block-parameter verification of
   Algorithm 2 has each part count its blocks; we let each block deliver
   exactly one "+1" to a part member, who contributes it to a PA sum.

Both are established by a single broadcast wave per block: each block root
(a node with an ``H_i`` child edge but no ``H_i`` parent edge — locally
checkable) floods ``(root_depth, root_uid)`` down its block's edges.  The
counting token additionally follows the minimum-child chain downward until
it reaches a node with no further ``H_i`` child edge; for shortcuts built
by claiming (both our constructions), such terminal nodes are exactly the
claim origins, i.e. part members.

Cost: one message in each direction... strictly, one annotation message per
``H_i`` edge plus one counting token per block-path, queued with the
Lemma 4.2 discipline — O(D + c) rounds, O(sum_i |H_i|) messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..congest.engine import Context, Engine, Inbox
from ..congest.ledger import CostLedger
from .queued import QueuedProgram
from .shortcuts import Shortcut


@dataclass
class BlockAnnotations:
    """Node-local block knowledge produced by :func:`annotate_blocks`.

    ``root_depth[(v, pid)]`` — depth (in T) of the root of v's part-``pid``
    block, for every node v on that block.
    ``block_id[(v, pid)]`` — the root's uid, identifying the block.
    ``count_tokens[v]`` — list of part ids for which v terminates a
    counting token (v contributes +1 to that part's block count).
    """

    root_depth: Dict[Tuple[int, int], int] = field(default_factory=dict)
    block_id: Dict[Tuple[int, int], int] = field(default_factory=dict)
    count_tokens: Dict[int, List[int]] = field(default_factory=dict)

    def priority_depth(self, node: int, pid: int) -> int:
        """Root depth used for BlockRoute priority; large if unknown."""
        return self.root_depth.get((node, pid), 1 << 30)

    def block_counts(self, partition_size: int) -> List[int]:
        """Per-part number of counting tokens delivered (= nontrivial blocks)."""
        counts = [0] * partition_size
        for _node, pids in self.count_tokens.items():
            for pid in pids:
                counts[pid] += 1
        return counts


class _AnnotateProgram(QueuedProgram):
    """Flood (root_depth, root_uid) down every block; route count tokens."""

    name = "annotate_blocks"

    def __init__(self, shortcut: Shortcut, capacity: int = 1) -> None:
        super().__init__(capacity=capacity)
        self.shortcut = shortcut
        self.tree = shortcut.tree
        self.net = shortcut.tree.net
        self.down = shortcut.down_parts()
        self.out = BlockAnnotations()
        self._seen: set = set()

    def _children_for(self, node: int, pid: int) -> List[int]:
        return [c for c, parts in self.down[node].items() if pid in parts]

    def _emit(self, ctx: Context, node: int, pid: int, depth: int, uid: int,
              counting: bool) -> None:
        """Record annotation at ``node`` and propagate downward."""
        key = (node, pid)
        if key in self._seen:
            return
        self._seen.add(key)
        self.out.root_depth[key] = depth
        self.out.block_id[key] = uid
        children = self._children_for(node, pid)
        if counting and not children:
            self.out.count_tokens.setdefault(node, []).append(pid)
        count_child = min(children) if (counting and children) else None
        for child in children:
            payload = ("ann", pid, depth, uid, child == count_child)
            self.enqueue(ctx, node, child, (depth, pid), payload)

    def on_start(self, ctx: Context) -> None:
        for v in range(self.net.n):
            down_parts = set()
            for parts in self.down[v].values():
                down_parts.update(parts)
            for pid in sorted(down_parts):
                if pid not in self.shortcut.up_parts[v]:
                    # v is the root of its part-pid block: no H_i parent
                    # edge but at least one H_i child edge.
                    self._emit(
                        ctx, v, pid, self.tree.depth[v], self.net.uid[v], True
                    )

    def handle(self, ctx: Context, node: int, inbox: Inbox) -> None:
        for _sender, payload in inbox:
            _tag, pid, depth, uid, counting = payload
            self._emit(ctx, node, pid, depth, uid, counting)


def annotate_blocks(
    engine: Engine,
    shortcut: Shortcut,
    ledger: CostLedger,
    capacity: int = 1,
    rounds_per_tick: int = 1,
) -> BlockAnnotations:
    """Run the annotation wave; returns node-local block knowledge.

    Must be re-run whenever the shortcut changes (each CoreFast repetition,
    each Algorithm 8 outer iteration).
    """
    if getattr(engine, "use_arrays", False):
        from .array_queue import AnnotateArrayKernel

        program = AnnotateArrayKernel(shortcut, capacity=capacity)
    else:
        program = _AnnotateProgram(shortcut, capacity=capacity)
    depth = shortcut.tree.height()
    congestion = shortcut.congestion()
    budget = 16 + 4 * (depth + congestion)
    stats = engine.run(
        program,
        max_ticks=budget,
        capacity=capacity,
        rounds_per_tick=rounds_per_tick,
    )
    ledger.charge(stats)
    return program.out
