"""Distributed BFS spanning tree construction and leader election.

The paper's pipeline needs a rooted BFS spanning tree ``T`` of the whole
network (Definition 2.2 restricts shortcuts to ``T``'s edges) and a leader.
The paper invokes the deterministic leader election of Kutten et al. [27]
(O~(D) rounds, O~(m) messages); per DESIGN.md substitution 3 we implement
flood-min-ID election, which has the same round complexity and whose
message cost we meter honestly rather than assume.

Two entry points:

* :func:`bfs_tree` — a BFS tree from a *given* root: exactly O(depth)
  rounds and <= 2m + n messages.
* :func:`elect_leader_and_bfs_tree` — no a-priori root: flood-min election
  followed by a child-ack round; the elected leader is the minimum-uid
  node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..congest.engine import Context, Engine, Inbox, Program
from ..congest.ledger import CostLedger
from ..congest.network import Network
from .treeops import ClaimBfsProgram, FloodMinProgram, claim_bfs
from .trees import ABSENT, ROOT, RootedForest


@dataclass
class SpanningTreeResult:
    """A rooted spanning tree plus the identity of its root/leader."""

    tree: RootedForest
    root: int
    depth: int


def bfs_tree(
    engine: Engine,
    net: Network,
    root: int,
    ledger: CostLedger,
    name: str = "bfs_tree",
) -> SpanningTreeResult:
    """Build a BFS spanning tree from a known root.

    Rounds: tree depth + O(1).  Messages: every node announces its claim on
    each incident edge once (<= 2m) plus one parent ack each (<= n).
    """
    program = claim_bfs(
        engine, net, tokens={root: net.uid[root]}, ledger=ledger, name=name
    )
    if any(program.parent_of[v] == ABSENT for v in range(net.n)):
        raise ValueError("network is disconnected; BFS tree does not span it")
    tree = program.forest()
    return SpanningTreeResult(tree=tree, root=root, depth=tree.height())


class _ChildAckProgram(Program):
    """One round in which every non-root node acks its chosen parent."""

    name = "child_ack"

    def __init__(self, parent_of: Dict[int, int]) -> None:
        self.parent_of = parent_of

    def on_start(self, ctx: Context) -> None:
        for node, parent in self.parent_of.items():
            if parent >= 0:
                ctx.send(node, parent, ("child",))

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        # Receipt is the whole point; parents learn their children from the
        # engine's delivery, recorded by the orchestrator via parent_of.
        return


def elect_leader_and_bfs_tree(
    engine: Engine,
    net: Network,
    ledger: CostLedger,
    name: str = "leader_election",
) -> SpanningTreeResult:
    """Elect the min-uid node as leader and build a BFS-like tree at it.

    Flood-min runs to quiescence (O(D) rounds); parent pointers then form a
    tree rooted at the leader along which the minimum uid first arrived.
    A final one-round ack phase informs each parent of its children, after
    which the tree is full node-local knowledge.
    """
    if getattr(engine, "use_arrays", False):
        import numpy as np

        from .array_kernels import ChildAckArrayKernel, FloodMinArrayKernel

        arrays = net.array_views
        flood_k = FloodMinArrayKernel(
            net, np.arange(net.n, dtype=np.int64), arrays.uid
        )
        flood_k.name = name
        stats = engine.run(flood_k, max_ticks=net.n + 2)
        ledger.charge(stats)

        leader_uid = min(net.uid)
        leader = net.node_of_uid(leader_uid)
        if not (flood_k.best_array == leader_uid).all():
            raise ValueError("network is disconnected; election did not span it")
        parent = flood_k.parent_array.tolist()

        ack_k = ChildAckArrayKernel(flood_k.parent_array)
        stats = engine.run(ack_k, max_ticks=2)
        ledger.charge(stats)

        tree = RootedForest(net, parent)
        return SpanningTreeResult(tree=tree, root=leader, depth=tree.height())

    flood = FloodMinProgram(net, tokens={v: net.uid[v] for v in range(net.n)})
    flood.name = name
    stats = engine.run(flood, max_ticks=net.n + 2)
    ledger.charge(stats)

    leader_uid = min(net.uid)
    leader = net.node_of_uid(leader_uid)
    parent = [ABSENT] * net.n
    for v in range(net.n):
        if flood.best.get(v) != leader_uid:
            raise ValueError("network is disconnected; election did not span it")
        parent[v] = flood.parent_of[v]

    ack = _ChildAckProgram({v: parent[v] for v in range(net.n)})
    stats = engine.run(ack, max_ticks=2)
    ledger.charge(stats)

    tree = RootedForest(net, parent)
    return SpanningTreeResult(tree=tree, root=leader, depth=tree.height())


def diameter_upper_bound(tree: SpanningTreeResult) -> int:
    """The 2-approximation of D every algorithm uses as its ``D``.

    A BFS tree of depth ``h`` certifies D in [h, 2h]; all the paper's
    thresholds (|P_i| < D, sub-part radius D, ...) tolerate a constant
    factor, so algorithms use ``2 * depth`` as their globally known D.
    """
    return max(1, 2 * tree.depth)
