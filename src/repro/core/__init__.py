"""The paper's primary contribution: Part-Wise Aggregation machinery.

Layering (bottom to top): trees/treeops (forest primitives), spanning_tree
(BFS + leader election), shortcuts (Definitions 2.1-2.3), subparts /
subparts_det (Definition 4.1 constructions), blocks (annotation),
corefast / det_shortcut (constructions), wave (Algorithm 1), pa
(Theorem 1.2 facade), no_leader (Algorithm 9).
"""

from .aggregation import (
    AND,
    Aggregation,
    MAX,
    MAX_TUPLE,
    MIN,
    MIN_TUPLE,
    OR,
    SUM,
    XOR,
    validate_aggregation,
)
from .blocks import BlockAnnotations, annotate_blocks
from .corefast import (
    ClaimProgram,
    ShortcutBuildResult,
    build_shortcut_randomized,
    verify_block_parameters,
)
from .pa import (
    DETERMINISTIC,
    PABatchResult,
    PAResult,
    PASetup,
    PASolver,
    RANDOMIZED,
    product_aggregation,
    solve_pa,
)
from .shortcuts import (
    Shortcut,
    coarsen_shortcut,
    empty_shortcut,
    full_tree_shortcut,
    refine_shortcut,
    shortcut_hint_for_family,
    star_shortcut_for_parts,
    validate_shortcut,
)
from .spanning_tree import (
    SpanningTreeResult,
    bfs_tree,
    diameter_upper_bound,
    elect_leader_and_bfs_tree,
)
from .subparts import (
    SubPartDivision,
    build_subpart_division_randomized,
    division_from_groups,
)
from .treeops import broadcast, claim_bfs, convergecast
from .trees import (
    ABSENT,
    ROOT,
    RootedForest,
    forest_from_parent_map,
    spanning_forest_of_subsets,
)
from .wave import PAWaveResult, compute_wave_boundary, run_pa_waves

__all__ = [
    "ABSENT",
    "AND",
    "Aggregation",
    "BlockAnnotations",
    "ClaimProgram",
    "DETERMINISTIC",
    "MAX",
    "MAX_TUPLE",
    "MIN",
    "MIN_TUPLE",
    "OR",
    "PABatchResult",
    "PAResult",
    "PASetup",
    "PASolver",
    "PAWaveResult",
    "RANDOMIZED",
    "ROOT",
    "RootedForest",
    "SUM",
    "Shortcut",
    "ShortcutBuildResult",
    "SpanningTreeResult",
    "SubPartDivision",
    "XOR",
    "annotate_blocks",
    "bfs_tree",
    "broadcast",
    "build_shortcut_randomized",
    "build_subpart_division_randomized",
    "claim_bfs",
    "coarsen_shortcut",
    "compute_wave_boundary",
    "convergecast",
    "diameter_upper_bound",
    "division_from_groups",
    "elect_leader_and_bfs_tree",
    "empty_shortcut",
    "forest_from_parent_map",
    "full_tree_shortcut",
    "product_aggregation",
    "refine_shortcut",
    "run_pa_waves",
    "shortcut_hint_for_family",
    "solve_pa",
    "spanning_forest_of_subsets",
    "star_shortcut_for_parts",
    "validate_aggregation",
    "validate_shortcut",
    "verify_block_parameters",
]
