"""Deterministic sub-part divisions (Algorithm 6, Section 6.2).

Every node starts as its own sub-part; sub-parts repeatedly merge in star
patterns (Algorithm 5) until they are *complete* — at least ``D`` nodes, or
spanning their whole part.  Star joinings keep merged spanning trees
shallow: incomplete sub-parts have fewer than ``D`` nodes (hence depth
< D), and each star attachment adds at most one joiner-tree depth, so
completed trees stay O~(D) deep (Lemma 6.4's diameter argument).

Each iteration runs, all on the engine:

1. a neighbor announce round (every node tells in-part neighbors its
   sub-part id and completeness — the node-local knowledge lines 6-9 of
   Algorithm 6 presuppose);
2. a convergecast per incomplete sub-part choosing an outgoing edge,
   preferring edges to incomplete sub-parts (line 6) over complete ones
   (line 9); a sub-part with no outgoing in-part edge spans its whole part
   and completes immediately;
3. a broadcast delivering the chosen edge to its endpoint;
4. Algorithm 5 (star joining) over the chosen edges, with Cole-Vishkin
   color exchanges routed through the sub-part trees;
5. a merge flood: each joiner re-roots its tree at the chosen endpoint by
   re-orienting along the flood, attaches under the receiver, and adopts
   the receiver's identity and completeness;
6. a size convergecast + completeness broadcast (line 15).

O(log n) iterations suffice (a constant fraction of incomplete sub-parts
merge per iteration, Lemma 6.3); the loop enforces a 3 log2 n + 8 cap and
fails loudly rather than silently looping.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..congest.engine import Context, Engine, Inbox, Program
from ..congest.ledger import CostLedger
from ..congest.network import Network
from ..graphs.partitions import Partition
from .aggregation import MIN_TUPLE, SUM
from .star_joining import SuperEdge, TreeSuperOps, compute_star_joining
from .subparts import SubPartDivision
from .treeops import broadcast as tree_broadcast
from .treeops import convergecast as tree_convergecast
from .trees import ABSENT, ROOT, RootedForest


class _AnnounceProgram(Program):
    """One round: every node tells in-part neighbors (subpart uid, complete)."""

    name = "det_announce"

    def __init__(self, net: Network, part_of: Sequence[int],
                 rep_uid_of: Sequence[int], complete_of: Sequence[bool]) -> None:
        self.net = net
        self.part_of = part_of
        self.rep_uid_of = rep_uid_of
        self.complete_of = complete_of
        #: per node: neighbor -> (rep_uid, complete)
        self.view: Dict[int, Dict[int, Tuple[int, bool]]] = {}

    def on_start(self, ctx: Context) -> None:
        for v in range(self.net.n):
            payload = ("nb", self.rep_uid_of[v], self.complete_of[v])
            for nb in self.net.neighbors[v]:
                if self.part_of[nb] == self.part_of[v]:
                    ctx.send(v, nb, payload)

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        view = self.view.setdefault(node, {})
        for sender, payload in inbox:
            _tag, rep_uid, complete = payload
            view[sender] = (rep_uid, complete)


class _MergeProgram(Program):
    """Joiners re-root at their chosen endpoint and adopt receiver identity.

    A single flooded message per joiner tree does all three jobs: the flood
    predecessor becomes the node's new parent (re-rooting), the payload
    carries the receiver's (rep uid, completeness) for relabeling, and the
    initial hop attaches the endpoint under the receiver-side endpoint.
    """

    name = "det_merge"

    def __init__(
        self,
        net: Network,
        tree_neighbors: Sequence[Sequence[int]],
        joins: Dict[int, Tuple[int, int, int, bool]],
    ) -> None:
        """``joins``: joiner sid -> (u, v, new_rep_uid, new_complete)."""
        self.net = net
        self.tree_neighbors = tree_neighbors
        self.joins = joins
        self.new_parent: Dict[int, int] = {}
        self.new_label: Dict[int, Tuple[int, bool]] = {}
        self._visited: Set[int] = set()

    def _flood(self, ctx: Context, node: int, sender: int,
               rep_uid: int, complete: bool) -> None:
        if node in self._visited:
            return
        self._visited.add(node)
        self.new_parent[node] = sender
        self.new_label[node] = (rep_uid, complete)
        for nb in self.tree_neighbors[node]:
            if nb != sender:
                ctx.send(node, nb, ("mg", rep_uid, complete))

    def on_start(self, ctx: Context) -> None:
        for _sid, (u, v, rep_uid, complete) in self.joins.items():
            # The receiver-side endpoint must learn it gained a child.
            ctx.send(u, v, ("att",))
            self._flood(ctx, u, v, rep_uid, complete)

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        for sender, payload in inbox:
            if payload[0] == "att":
                continue  # receipt itself establishes the child link
            _tag, rep_uid, complete = payload
            self._flood(ctx, node, sender, rep_uid, complete)


def build_subpart_division_deterministic(
    engine: Engine,
    net: Network,
    partition: Partition,
    leaders: Sequence[int],
    diameter: int,
    ledger: CostLedger,
) -> SubPartDivision:
    """Algorithm 6: deterministic sub-part division via star joinings."""
    n = net.n
    part_of = partition.part_of
    threshold = max(1, diameter)

    parent: List[int] = [ROOT] * n
    rep_of: List[int] = list(range(n))
    complete: List[bool] = [False] * n
    #: roots of sub-parts that span their entire part: complete regardless
    #: of size, and permanently (their root survives all later merges
    #: because spanning sub-parts never join anyone).
    spans_part: Set[int] = set()

    max_iterations = 3 * max(1, math.ceil(math.log2(max(2, n)))) + 8
    iteration = 0
    while True:
        iteration += 1
        if iteration > max_iterations:
            raise RuntimeError(
                "deterministic sub-part division failed to converge"
            )
        forest = RootedForest(net, parent)

        # Completeness by size (line 15) -- convergecast sizes, then
        # broadcast the verdict so every member knows its flag.
        sizes, _ = tree_convergecast(
            engine, forest, SUM, [1] * n, ledger, name="det_sizes"
        )
        changed = {}
        for sid, size in sizes.items():
            verdict = bool(size >= threshold) or sid in spans_part
            changed[sid] = verdict
        flags = tree_broadcast(
            engine, forest, {sid: ("cpl", flag) for sid, flag in changed.items()},
            ledger, name="det_complete_flags",
        )
        for v, payload in flags.items():
            complete[v] = payload[1]

        if all(complete[v] for v in range(n)):
            break

        # 1. Announce (sub-part id, completeness) to in-part neighbors.
        announce = _AnnounceProgram(
            net, part_of, [net.uid[rep_of[v]] for v in range(n)], complete
        )
        stats = engine.run(announce, max_ticks=2)
        ledger.charge(stats)

        # 2. Choose outgoing edges: prefer incomplete targets (lines 6-9).
        values: List[Optional[Tuple[int, int, int]]] = [None] * n
        for v in range(n):
            if complete[v]:
                continue
            my_rep_uid = net.uid[rep_of[v]]
            best = None
            for nb, (nb_rep_uid, nb_complete) in announce.view.get(v, {}).items():
                if nb_rep_uid == my_rep_uid:
                    continue
                cand = (1 if nb_complete else 0, net.uid[v], net.uid[nb])
                if best is None or cand < best:
                    best = cand
            values[v] = best
        chosen_at_rep, _ = tree_convergecast(
            engine, forest, MIN_TUPLE, values, ledger, name="det_choose"
        )

        # Sub-parts with no outgoing in-part edge span their part: complete.
        isolated = {
            sid for sid in forest.roots
            if not complete[sid] and chosen_at_rep.get(sid) is None
        }
        if isolated:
            spans_part.update(isolated)
            flags = tree_broadcast(
                engine, forest, {sid: ("cpl", True) for sid in isolated},
                ledger, name="det_isolated_complete",
            )
            for v in flags:
                complete[v] = True

        participants_edges: Dict[int, SuperEdge] = {}
        bcast_values = {}
        for sid in forest.roots:
            if complete[sid] or sid in isolated:
                continue
            choice = chosen_at_rep.get(sid)
            if choice is None:
                continue
            _pref, uid_u, uid_nb = choice
            u = net.node_of_uid(uid_u)
            v_nb = net.node_of_uid(uid_nb)
            participants_edges[sid] = (u, v_nb, rep_of[v_nb])
            bcast_values[sid] = ("edge", uid_u, uid_nb)
        if not participants_edges:
            continue

        # 3. Deliver the chosen edge to its endpoint (the broadcast also
        # realizes "all v in P_i know some common edge" of Definition 6.1).
        tree_broadcast(
            engine, forest, bcast_values, ledger, name="det_edge_bcast"
        )

        # 4. Star joining (Algorithm 5).
        ops = TreeSuperOps(
            engine, net, forest, participants_edges, ledger,
            phase_prefix=f"det_star_{iteration}",
        )
        ops.announce_requests()
        receivers, joins = compute_star_joining(
            ops, set(participants_edges)
        )

        # 5. Merge joiners into receivers.
        tree_neighbors: List[List[int]] = [list(forest.children[v]) for v in range(n)]
        for v in range(n):
            if forest.parent[v] >= 0:
                tree_neighbors[v].append(forest.parent[v])
        merge_input = {}
        for sid, (u, v_nb, target_sid) in joins.items():
            merge_input[sid] = (
                u, v_nb, net.uid[rep_of[v_nb]], complete[v_nb]
            )
        merger = _MergeProgram(net, tree_neighbors, merge_input)
        stats = engine.run(merger, max_ticks=4 * threshold + 8)
        ledger.charge(stats)
        for node, new_parent in merger.new_parent.items():
            parent[node] = new_parent
        for node, (rep_uid, cflag) in merger.new_label.items():
            rep_of[node] = net.node_of_uid(rep_uid)
            complete[node] = cflag
        # Roots of joined trees are no longer roots; recompute rep ids for
        # consistency (receiver identity propagated via labels).
        for v in range(n):
            if parent[v] == ROOT:
                rep_of[v] = v

    forest = RootedForest(net, parent)
    rep_final = [forest.root_of(v) for v in range(n)]
    division = SubPartDivision(
        partition=partition,
        forest=forest,
        rep_of=tuple(rep_final),
        part_leader=tuple(leaders),
    )
    division.validate()
    return division
