"""Rooted forests: the structural backbone of every algorithm here.

Spanning BFS trees (the ``T`` of tree-restricted shortcuts), sub-part
spanning trees, part spanning trees and Boruvka fragments are all instances
of :class:`RootedForest`: a parent-pointer forest over (a subset of) the
network's nodes, where every parent edge is a real network edge.

The forest is *node-local knowledge*: node ``v`` knows its parent, its
children and its depth — exactly what the distributed constructions below
establish — so engine programs may read ``forest.parent[v]`` inside
``on_node`` without cheating.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..congest.network import Network

#: ``parent`` value for a root node.
ROOT = -1
#: ``parent`` value for a node not in the forest.
ABSENT = -2


class RootedForest:
    """A forest of rooted trees whose edges are network edges.

    Attributes
    ----------
    parent:
        ``parent[v]`` is v's parent node, :data:`ROOT` for roots, and
        :data:`ABSENT` for nodes outside the forest.
    children:
        ``children[v]`` is the tuple of v's children (empty for absent
        nodes).
    depth:
        Hop distance to the tree root (0 for roots, -1 for absent nodes).
    roots:
        Tuple of root nodes, sorted.
    """

    def __init__(self, net: Network, parent: Sequence[int]) -> None:
        if len(parent) != net.n:
            raise ValueError("parent array must cover all nodes")
        self.net = net
        self.parent: Tuple[int, ...] = tuple(parent)

        n = net.n
        parr = np.asarray(self.parent, dtype=np.int64)
        child_nodes = np.flatnonzero(parr >= 0)
        for v in child_nodes.tolist():
            p = self.parent[v]
            if not net.has_edge(v, p):
                raise ValueError(
                    f"forest parent edge ({v}, {p}) is not a network edge"
                )
        self.roots: Tuple[int, ...] = tuple(np.flatnonzero(parr == ROOT).tolist())

        # Children grouped by parent: child_nodes is ascending, so a stable
        # sort by parent keeps each group ascending — the per-node sorted()
        # of the scalar construction.
        cparents = parr[child_nodes]
        grouped = child_nodes[np.argsort(cparents, kind="stable")]
        counts = (
            np.bincount(cparents, minlength=n)
            if child_nodes.size
            else np.zeros(n, dtype=np.int64)
        )
        starts = np.zeros(n, dtype=np.int64)
        if n > 1:
            starts[1:] = np.cumsum(counts)[:-1]
        grouped_list = grouped.tolist()
        self.children: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(grouped_list[s:s + c])
            for s, c in zip(starts.tolist(), counts.tolist())
        )

        # Level-synchronous BFS from the roots; each level expands in parent
        # order with children ascending, matching the scalar FIFO order.
        depth = np.full(n, -1, dtype=np.int64)
        order_parts: List[np.ndarray] = []
        cur = np.asarray(self.roots, dtype=np.int64)
        level = 0
        while cur.size:
            depth[cur] = level
            order_parts.append(cur)
            cc = counts[cur]
            total = int(cc.sum())
            if total == 0:
                break
            offsets = np.concatenate(
                ([0], np.cumsum(cc)[:-1])
            )
            within = np.arange(total, dtype=np.int64) - np.repeat(offsets, cc)
            cur = grouped[np.repeat(starts[cur], cc) + within]
            level += 1
        order = (
            np.concatenate(order_parts).tolist() if order_parts else []
        )
        self.depth: Tuple[int, ...] = tuple(depth.tolist())
        #: Topological (BFS) order from the roots: parents precede children.
        self.order: Tuple[int, ...] = tuple(order)
        # The forest is immutable, so its height is fixed at construction
        # (the BFS order visits deepest nodes last).
        self._height: int = self.depth[order[-1]] if order else 0

        in_forest = int((parr != ABSENT).sum())
        if len(order) != in_forest:
            raise ValueError("parent pointers contain a cycle")

    # ------------------------------------------------------------------
    def member(self, v: int) -> bool:
        """True iff ``v`` belongs to the forest."""
        return self.parent[v] != ABSENT

    def members(self) -> Iterable[int]:
        """All forest nodes, parents before children."""
        return self.order

    def size(self) -> int:
        """Number of nodes in the forest."""
        return len(self.order)

    def height(self) -> int:
        """Maximum depth over all forest nodes (0 for a single root)."""
        return self._height

    def root_of(self, v: int) -> int:
        """Root of the tree containing ``v`` (walks parent pointers)."""
        while self.parent[v] >= 0:
            v = self.parent[v]
        return v

    def path_to_root(self, v: int) -> List[int]:
        """Nodes on the path v -> root, inclusive."""
        path = [v]
        while self.parent[v] >= 0:
            v = self.parent[v]
            path.append(v)
        return path

    def subtree_sizes(self) -> List[int]:
        """Size of each node's subtree (oracle-side; O(n))."""
        size = [0] * self.net.n
        for v in reversed(self.order):
            size[v] = 1 + sum(size[c] for c in self.children[v])
        return size

    def subtree_nodes(self, v: int) -> List[int]:
        """All nodes in v's subtree (oracle-side)."""
        out = [v]
        head = 0
        while head < len(out):
            u = out[head]
            head += 1
            out.extend(self.children[u])
        return out

    def tree_edges(self) -> List[Tuple[int, int]]:
        """All (child, parent) edges of the forest."""
        return [
            (v, p) for v, p in enumerate(self.parent) if p >= 0
        ]

    def restrict_roots(self) -> Dict[int, List[int]]:
        """Map each root to the members of its tree (oracle-side)."""
        by_root: Dict[int, List[int]] = {r: [] for r in self.roots}
        root_of = [-1] * self.net.n
        for v in self.order:
            p = self.parent[v]
            root_of[v] = v if p == ROOT else root_of[p]
            by_root[root_of[v]].append(v)
        return by_root

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RootedForest(trees={len(self.roots)}, nodes={self.size()},"
            f" height={self.height()})"
        )


def forest_from_parent_map(
    net: Network, parent_map: Dict[int, int], roots: Iterable[int]
) -> RootedForest:
    """Build a forest from a sparse child->parent map plus explicit roots."""
    parent = [ABSENT] * net.n
    for r in roots:
        parent[r] = ROOT
    for child, par in parent_map.items():
        if parent[child] == ROOT:
            raise ValueError(f"root {child} cannot also have a parent")
        parent[child] = par
    return RootedForest(net, parent)


def spanning_forest_of_subsets(
    net: Network, groups: Iterable[Iterable[int]]
) -> RootedForest:
    """Oracle-side spanning forest: one BFS tree per node group.

    Used by tests to fabricate sub-part divisions with known structure; the
    distributed constructions in :mod:`repro.core.subparts` produce the same
    type of object via messages.
    """
    parent = [ABSENT] * net.n
    for group in groups:
        group_set = set(group)
        root = min(group_set)
        parent[root] = ROOT
        frontier = [root]
        seen = {root}
        while frontier:
            nxt = []
            for u in frontier:
                for v in net.neighbors[u]:
                    if v in group_set and v not in seen:
                        seen.add(v)
                        parent[v] = u
                        nxt.append(v)
            frontier = nxt
        if seen != group_set:
            raise ValueError("group does not induce a connected subgraph")
    return RootedForest(net, parent)
