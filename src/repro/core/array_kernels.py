"""Array-native kernels for the tree workhorses of :mod:`repro.core.treeops`.

Each kernel is the :class:`~repro.congest.engine.ArrayProgram` twin of one
scalar program — same name, same wire traffic, same ledger, same outputs —
with the per-message Python loop replaced by whole-tick numpy passes.  The
scalar programs remain the semantic reference; the differential parity
suite runs both and diffs ledgers and outputs.

A note on emission order: the scalar programs interleave sends per node
(e.g. a claim-BFS node acks its parent, then spreads).  All programs in
this module send at most one message per directed edge per tick, and the
engine's delivery sort is keyed on ``(dst, src)`` — so any batch emission
order is delivered identically, and the kernels are free to emit "all
acks, then all claims".  Kernels for the multi-packet-per-edge queue
discipline live in :mod:`repro.core.array_queue`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..congest.arrays import ArrayContext, ColumnArena, Delivered, int_bits_array
from ..congest.engine import ArrayProgram
from ..congest.message import TAG_BITS, TUPLE_OVERHEAD_BITS
from ..congest.network import Network
from .trees import ABSENT, ROOT, RootedForest

#: ``best`` sentinel larger than any token the kernels carry (uids < 2n).
_NO_TOKEN = np.int64(1) << np.int64(62)


def expand_neighbors(
    arrays, nodes: np.ndarray, slot_mask: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR fan-out: one row per (node, neighbor) pair, node order preserved.

    Returns ``(src, dst, slot)`` where ``slot`` indexes the CSR slot of
    each row; rows follow ``nodes`` order with each node's neighbors
    ascending — exactly the scalar programs' send order.  ``slot_mask``
    (a per-CSR-slot bool array) filters rows without reordering.
    """
    counts = arrays.degrees[nodes]
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    starts = arrays.offsets[nodes]
    cum = np.cumsum(counts)
    slot = (
        np.arange(total, dtype=np.int64)
        - np.repeat(cum - counts, counts)
        + np.repeat(starts, counts)
    )
    src = np.repeat(nodes, counts)
    dst = arrays.adj[slot]
    if slot_mask is not None:
        keep = slot_mask[slot]
        return src[keep], dst[keep], slot[keep]
    return src, dst, slot


class FloodMinArrayKernel(ArrayProgram):
    """Array twin of :class:`~repro.core.treeops.FloodMinProgram`.

    Tokens must be ints.  Adoption is strict improvement; the parent is
    the smallest sender among those carrying the tick's minimal token —
    which is what the scalar inbox scan (sender-ascending, update on
    strict improvement) converges to.
    """

    name = "flood_min"

    def __init__(
        self,
        net: Network,
        nodes: np.ndarray,
        tokens: np.ndarray,
        slot_mask: Optional[np.ndarray] = None,
    ) -> None:
        self.net = net
        self._nodes = np.asarray(nodes, dtype=np.int64)
        self._tokens = np.asarray(tokens, dtype=np.int64)
        self._mask = slot_mask
        self.best_array = np.full(net.n, _NO_TOKEN, dtype=np.int64)
        self.parent_array = np.full(net.n, ABSENT, dtype=np.int64)

    def _announce(self, actx: ArrayContext, nodes: np.ndarray) -> None:
        src, dst, _ = expand_neighbors(actx.arrays, nodes, self._mask)
        if src.size == 0:
            return
        tok = self.best_array[src]
        bits = int_bits_array(tok) if actx.strict_bits else None
        actx.emit(src, dst, cols={"tok": tok}, bits=bits)

    def array_start(self, actx: ArrayContext) -> None:
        self.best_array[self._nodes] = self._tokens
        self.parent_array[self._nodes] = ROOT
        self._announce(actx, self._nodes)

    def array_tick(self, actx: ArrayContext, d: Delivered) -> None:
        if len(d) == 0:
            return
        tok = d.cols["tok"]
        # Per-destination winner: minimal (token, sender).
        order = np.lexsort((d.src, tok, d.dst))
        dst_sorted = d.dst[order]
        head = np.ones(dst_sorted.size, dtype=bool)
        head[1:] = dst_sorted[1:] != dst_sorted[:-1]
        win = order[head]
        w_dst = d.dst[win]
        w_tok = tok[win]
        improved = w_tok < self.best_array[w_dst]
        if not improved.any():
            return
        w_dst = w_dst[improved]
        self.best_array[w_dst] = w_tok[improved]
        self.parent_array[w_dst] = d.src[win][improved]
        # w_dst is ascending (head rows of a dst-sorted order), matching
        # the scalar activation order of the re-announcing nodes.
        self._announce(actx, w_dst)

    @property
    def best(self) -> Dict[int, int]:
        """Scalar-compatible ``best`` dict (nodes that hold a token)."""
        held = np.flatnonzero(self.best_array != _NO_TOKEN)
        return dict(zip(held.tolist(), self.best_array[held].tolist()))

    @property
    def parent_of(self) -> Dict[int, int]:
        held = np.flatnonzero(self.parent_array != ABSENT)
        return dict(zip(held.tolist(), self.parent_array[held].tolist()))


class ChildAckArrayKernel(ArrayProgram):
    """Array twin of the one-round parent-ack used after leader election."""

    name = "child_ack"

    def __init__(self, parent: np.ndarray) -> None:
        self._parent = np.asarray(parent, dtype=np.int64)

    def array_start(self, actx: ArrayContext) -> None:
        src = np.flatnonzero(self._parent >= 0)
        if src.size == 0:
            return
        bits = TUPLE_OVERHEAD_BITS + TAG_BITS if actx.strict_bits else None
        actx.emit(src, self._parent[src], cols={}, bits=bits)

    def array_tick(self, actx: ArrayContext, d: Delivered) -> None:
        return  # receipt is the whole point


class ClaimBfsArrayKernel(ArrayProgram):
    """Array twin of :class:`~repro.core.treeops.ClaimBfsProgram`.

    ``sources``/``tokens`` are parallel arrays in the scalar program's
    token-dict insertion order; tokens must be ints.  The edge restriction
    is a static per-CSR-slot mask (the scalar ``allowed`` callables used
    by the pipeline — same-part, claimable — are all static predicates).
    """

    name = "claim_bfs"

    def __init__(
        self,
        net: Network,
        sources: np.ndarray,
        tokens: np.ndarray,
        slot_mask: Optional[np.ndarray] = None,
        max_depth: Optional[int] = None,
    ) -> None:
        self.net = net
        self._sources = np.asarray(sources, dtype=np.int64)
        self._tokens = np.asarray(tokens, dtype=np.int64)
        self._mask = slot_mask
        self.max_depth = max_depth
        n = net.n
        self.claimed = np.zeros(n, dtype=bool)
        self.token_array = np.full(n, _NO_TOKEN, dtype=np.int64)
        self.parent_array = np.full(n, ABSENT, dtype=np.int64)
        self.depth_array = np.full(n, -1, dtype=np.int64)
        self._child_rows = ColumnArena(("parent", "child"), capacity=256)
        self._lists: Optional[List[List[int]]] = None
        # Scalar-compatible list views, memoized: consumers index them per
        # node (O(n) accesses), so rebuilding on every property read would
        # be quadratic.  Invalidated whenever a tick mutates claim state.
        self._token_list: Optional[List[Optional[int]]] = None
        self._parent_list: Optional[List[int]] = None
        self._depth_list: Optional[List[int]] = None

    # -- emission helpers ------------------------------------------------
    def _spread(self, actx: ArrayContext, nodes: np.ndarray) -> None:
        """Claims from ``nodes`` (in order) to allowed non-parent neighbors."""
        if self.max_depth is not None:
            nodes = nodes[self.depth_array[nodes] < self.max_depth]
        src, dst, _ = expand_neighbors(actx.arrays, nodes, self._mask)
        if src.size == 0:
            return
        keep = dst != self.parent_array[src]
        src, dst = src[keep], dst[keep]
        if src.size == 0:
            return
        tok = self.token_array[src]
        dep = self.depth_array[src] + 1
        bits = None
        if actx.strict_bits:
            bits = (
                TUPLE_OVERHEAD_BITS
                + TAG_BITS
                + int_bits_array(tok)
                + int_bits_array(dep)
            )
        actx.emit(src, dst, cols={"kind": 0, "tok": tok, "dep": dep}, bits=bits)

    def array_start(self, actx: ArrayContext) -> None:
        self.claimed[self._sources] = True
        self.token_array[self._sources] = self._tokens
        self.parent_array[self._sources] = ROOT
        self.depth_array[self._sources] = 0
        self._spread(actx, self._sources)

    def array_tick(self, actx: ArrayContext, d: Delivered) -> None:
        if len(d) == 0:
            return
        kind = d.cols["kind"]
        acks = kind == 1
        if acks.any():
            # Delivered order is (dst asc, src asc): exactly the order the
            # scalar program appends to children_of.
            self._child_rows.append(parent=d.dst[acks], child=d.src[acks])
            self._lists = None
        claims = np.flatnonzero((kind == 0) & ~self.claimed[d.dst])
        if claims.size == 0:
            return
        c_src = d.src[claims]
        c_dst = d.dst[claims]
        c_tok = d.cols["tok"][claims]
        c_dep = d.cols["dep"][claims]
        # Winner per destination: minimal (token, depth, sender) — the
        # scalar node's best-candidate scan.
        order = np.lexsort((c_src, c_dep, c_tok, c_dst))
        dst_sorted = c_dst[order]
        head = np.ones(dst_sorted.size, dtype=bool)
        head[1:] = dst_sorted[1:] != dst_sorted[:-1]
        win = order[head]
        nodes = c_dst[win]
        parents = c_src[win]
        self.claimed[nodes] = True
        self.token_array[nodes] = c_tok[win]
        self.parent_array[nodes] = parents
        self.depth_array[nodes] = c_dep[win]
        self._token_list = self._parent_list = self._depth_list = None
        # Ack the chosen parent (("child", token)), then spread claims.
        bits = None
        if actx.strict_bits:
            bits = (
                TUPLE_OVERHEAD_BITS + TAG_BITS + int_bits_array(c_tok[win])
            )
        actx.emit(
            nodes, parents, cols={"kind": 1, "tok": c_tok[win], "dep": 0},
            bits=bits,
        )
        self._spread(actx, nodes)

    # -- scalar-compatible outputs --------------------------------------
    @property
    def token_of(self) -> List[Optional[int]]:
        if self._token_list is None:
            tokens = self.token_array.tolist()
            self._token_list = [
                tokens[v] if claimed else None
                for v, claimed in enumerate(self.claimed.tolist())
            ]
        return self._token_list

    @property
    def parent_of(self) -> List[int]:
        if self._parent_list is None:
            self._parent_list = self.parent_array.tolist()
        return self._parent_list

    @property
    def depth_of(self) -> List[int]:
        if self._depth_list is None:
            self._depth_list = self.depth_array.tolist()
        return self._depth_list

    @property
    def children_of(self) -> List[List[int]]:
        if self._lists is None:
            lists: List[List[int]] = [[] for _ in range(self.net.n)]
            parents = self._child_rows.column("parent").tolist()
            children = self._child_rows.column("child").tolist()
            for p, c in zip(parents, children):
                lists[p].append(c)
            self._lists = lists
        return self._lists

    def forest(self) -> RootedForest:
        """The claimed BFS forest (scalar-identical parent pointers)."""
        return RootedForest(self.net, self.parent_of)


class ConvergecastArrayKernel(ArrayProgram):
    """Array twin of :class:`~repro.core.treeops.ConvergecastProgram`.

    Restricted to int values present at *every* forest member, combined by
    an order-independent ufunc (sum/min/max) — which covers every
    convergecast on the PA pipeline's hot path.  Multi-column values model
    tuple payloads (the coverage check's componentwise ``(count, flag)``
    pair-sum).

    The convergecast schedule is data-independent, so the kernel
    precomputes everything: node ``v`` fires at tick ``s(v)`` = height of
    its subtree (leaves at tick 0, i.e. inside ``array_start``), carrying
    the already-folded subtree aggregate.  The resulting wire traffic is
    message-for-message the scalar program's.
    """

    name = "tree_convergecast"

    def __init__(
        self,
        forest: RootedForest,
        value_cols: Sequence[np.ndarray],
        op: str = "sum",
        tuple_payload: bool = False,
    ) -> None:
        self.forest = forest
        self.tuple_payload = tuple_payload
        ufunc = {"sum": np.add, "min": np.minimum, "max": np.maximum}[op]
        parent = np.asarray(forest.parent, dtype=np.int64)
        depth = np.asarray(forest.depth, dtype=np.int64)
        members = np.flatnonzero(parent != ABSENT)
        # Fold values up the tree level by level (deepest first), and
        # compute each node's send tick s(v) = its subtree height.
        acc = [np.array(col, dtype=np.int64, copy=True) for col in value_cols]
        send_tick = np.zeros(parent.shape, dtype=np.int64)
        by_depth = members[np.argsort(depth[members], kind="stable")]
        height = int(depth[members].max()) if members.size else 0
        level_starts = np.searchsorted(depth[by_depth], np.arange(height + 2))
        for level in range(height, 0, -1):
            nodes = by_depth[level_starts[level]:level_starts[level + 1]]
            if nodes.size == 0:
                continue
            p = parent[nodes]
            for col in acc:
                ufunc.at(col, p, col[nodes])
            np.maximum.at(send_tick, p, send_tick[nodes] + 1)
        self._acc = acc
        self._senders = members[parent[members] >= 0]
        self._parent = parent
        # Fire order within a tick is node-ascending; members is ascending
        # already, so a stable sort by send tick groups it correctly.
        s = send_tick[self._senders]
        order = np.argsort(s, kind="stable")
        self._senders = self._senders[order]
        self._send_ticks = s[order]
        self._group_starts = np.searchsorted(
            self._send_ticks, np.arange(int(s.max()) + 2 if s.size else 1)
        )
        roots = np.asarray(forest.roots, dtype=np.int64)
        root_fire = send_tick[roots]
        root_order = np.lexsort((roots, root_fire))
        self.at_root: Dict[int, object] = {
            int(r): self._value_at(int(r)) for r in roots[root_order]
        }

    def _value_at(self, v: int):
        if self.tuple_payload:
            return tuple(int(col[v]) for col in self._acc)
        return int(self._acc[0][v])

    def _emit_group(self, actx: ArrayContext, tick: int) -> None:
        starts = self._group_starts
        if tick + 1 >= starts.size:
            return
        lo, hi = starts[tick], starts[tick + 1]
        if lo == hi:
            return
        src = self._senders[lo:hi]
        cols = {f"v{i}": col[src] for i, col in enumerate(self._acc)}
        bits = None
        if actx.strict_bits:
            if self.tuple_payload:
                total = np.full(src.shape, TUPLE_OVERHEAD_BITS, dtype=np.int64)
                for col in cols.values():
                    total += int_bits_array(col)
                bits = total
            else:
                bits = int_bits_array(cols["v0"])
        actx.emit(src, self._parent[src], cols=cols, bits=bits)

    def array_start(self, actx: ArrayContext) -> None:
        self._emit_group(actx, 0)

    def array_tick(self, actx: ArrayContext, d: Delivered) -> None:
        self._emit_group(actx, actx.tick)

    @property
    def partial(self) -> Dict[int, object]:
        """Scalar-compatible per-member subtree aggregates."""
        return {
            int(v): self._value_at(int(v))
            for v in np.flatnonzero(self._parent != ABSENT)
        }


class UncoveredAnnounceArrayKernel(ArrayProgram):
    """Array twin of the one-round uncovered-neighbor announcement."""

    name = "uncovered_announce"

    def __init__(self, net: Network, covered: np.ndarray, same_part_mask: np.ndarray) -> None:
        self.net = net
        self._covered = np.asarray(covered, dtype=bool)
        self._mask = same_part_mask
        self.heard_uncovered: set = set()

    def array_start(self, actx: ArrayContext) -> None:
        uncovered = np.flatnonzero(~self._covered)
        src, dst, _ = expand_neighbors(actx.arrays, uncovered, self._mask)
        if src.size == 0:
            return
        bits = TUPLE_OVERHEAD_BITS + TAG_BITS if actx.strict_bits else None
        actx.emit(src, dst, cols={}, bits=bits)

    def array_tick(self, actx: ArrayContext, d: Delivered) -> None:
        if len(d):
            self.heard_uncovered.update(np.unique(d.dst).tolist())
