"""Array-native per-edge queues and the queued kernels built on them.

:class:`EdgePool` is the vectorized twin of
:class:`~repro.core.queued.QueuedProgram`'s per-edge heaps: a tick's
enqueues are staged as flat int64 columns, and one :meth:`EdgePool.select`
pass per tick picks, for every directed edge, the ``capacity`` packets of
least ``(priority, seq)`` — the Lemma 4.2 discipline — as whole-array
sorts.  Parity with the scalar flush is exact because both paths reduce to
one rule: per tick, per source, edges drain in ascending *birth* order
(the seq of the packet that created the edge's backlog entry), and within
an edge packets drain in ``(priority, seq)`` order.  The scalar fast path
(fresh distinct-destination batch) is the special case where every edge
holds one packet and births coincide with seqs; the slow path's dict
iteration *is* birth order, because ``dict`` preserves insertion and a
drained destination's key is deleted (so a later re-add gets a fresh,
larger birth).  Births must be tracked explicitly: the minimum *remaining*
seq of an edge can reorder arbitrarily relative to insertion once older
packets drain.

On top of the pool live the array kernels for the queued programs of the
shortcut pipeline — CoreFast claiming (:class:`ClaimArrayKernel`) and
block annotation (:class:`AnnotateArrayKernel`); the PA wave kernels share
the pool from :mod:`repro.core.array_wave`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..congest.arrays import ColumnArena, int_bits_array, tuple_bits
from ..congest.engine import ArrayProgram
from ..congest.message import TAG_BITS
from .blocks import BlockAnnotations

_EMPTY = np.empty(0, dtype=np.int64)


def first_occurrence_mask(keys: np.ndarray) -> np.ndarray:
    """Boolean mask selecting the first row of each distinct key value."""
    mask = np.zeros(keys.size, dtype=bool)
    if keys.size:
        _, idx = np.unique(keys, return_index=True)
        mask[idx] = True
    return mask


def in_sorted(table: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Membership of ``values`` in the sorted array ``table``."""
    if table.size == 0:
        return np.zeros(values.size, dtype=bool)
    pos = np.searchsorted(table, values)
    pos[pos >= table.size] = table.size - 1
    return table[pos] == values


def group_ranks(sorted_keys: np.ndarray) -> np.ndarray:
    """Rank of each row within its run of equal keys (keys pre-sorted)."""
    m = sorted_keys.size
    if m == 0:
        return _EMPTY
    starts = np.ones(m, dtype=bool)
    starts[1:] = sorted_keys[1:] != sorted_keys[:-1]
    start_idx = np.flatnonzero(starts)
    counts = np.diff(np.append(start_idx, m))
    return np.arange(m, dtype=np.int64) - np.repeat(start_idx, counts)


class KeySet:
    """A set of int64 keys as a sorted array (vectorized dedup tables)."""

    __slots__ = ("_keys",)

    def __init__(self) -> None:
        self._keys = _EMPTY

    def __len__(self) -> int:
        return self._keys.size

    def contains(self, keys: np.ndarray) -> np.ndarray:
        return in_sorted(self._keys, keys)

    def add(self, keys: np.ndarray) -> None:
        # Merge-by-insertion instead of np.union1d: the set only grows,
        # so re-hashing the whole table per add would cost O(ticks * |set|).
        if not keys.size:
            return
        fresh = np.sort(keys)
        if fresh.size > 1:
            keep = np.ones(fresh.size, dtype=bool)
            keep[1:] = fresh[1:] != fresh[:-1]
            fresh = fresh[keep]
        if self._keys.size:
            fresh = fresh[~in_sorted(self._keys, fresh)]
            if not fresh.size:
                return
            pos = np.searchsorted(self._keys, fresh)
            self._keys = np.insert(self._keys, pos, fresh)
        else:
            self._keys = fresh


class EdgePool:
    """Per-directed-edge priority queues over flat columns.

    Packets are pushed in the scalar program's enqueue order (the pool's
    running ``seq`` counter mirrors ``QueuedProgram._seq``); ``select``
    then performs one tick's flush for *every* backlogged source at once —
    sound because a scalar node with backlog is always re-woken, hence
    always flushes every tick.  Priorities are two int64 columns
    ``(p0, p1)`` compared lexicographically; 1-tuple scalar priorities map
    to ``p1 = 0``.
    """

    def __init__(
        self, n: int, payload_names: Sequence[str], capacity: int = 1
    ) -> None:
        self.n = n
        self.capacity = capacity
        self._names = ("src", "dst", "p0", "p1", "seq") + tuple(payload_names)
        self._staged: List[Dict[str, np.ndarray]] = []
        self._pending: Optional[Dict[str, np.ndarray]] = None
        self._edge_keys = _EMPTY
        self._edge_birth = _EMPTY
        self._seq_next = 0

    def __len__(self) -> int:
        total = 0 if self._pending is None else self._pending["src"].size
        for part in self._staged:
            total += part["src"].size
        return total

    def push(self, src, dst, p0, p1, **payload) -> None:
        """Stage a batch of packets (rows in scalar enqueue order)."""
        values = {"src": src, "dst": dst, "p0": p0, "p1": p1}
        values.update(payload)
        arrays = {k: np.asarray(v, dtype=np.int64) for k, v in values.items()}
        count = max((a.size for a in arrays.values() if a.ndim), default=1)
        if count == 0:
            return
        row = {
            k: (np.broadcast_to(a, (count,)) if a.ndim == 0 else a)
            for k, a in arrays.items()
        }
        row["seq"] = np.arange(
            self._seq_next, self._seq_next + count, dtype=np.int64
        )
        self._seq_next += count
        self._staged.append(row)

    def pending_sources(self) -> np.ndarray:
        """Distinct sources with queued packets (the nodes to wake)."""
        parts = [] if self._pending is None else [self._pending["src"]]
        parts.extend(part["src"] for part in self._staged)
        if not parts:
            return _EMPTY
        return np.unique(np.concatenate(parts))

    def select(self) -> Tuple[Optional[Dict[str, np.ndarray]], np.ndarray]:
        """One tick's flush: (emitted columns in wire order, re-wake set)."""
        parts = [] if self._pending is None else [self._pending]
        staged = self._staged
        if staged:
            parts = parts + staged
            self._staged = []
        self._pending = None
        if not parts:
            return None, _EMPTY
        if len(parts) == 1:
            rows = parts[0]
        else:
            rows = {
                name: np.concatenate([part[name] for part in parts])
                for name in self._names
            }
        src = rows["src"]
        dst = rows["dst"]
        seq = rows["seq"]
        key = src * np.int64(self.n) + dst

        # Register births for edges backlogged for the first time.  New
        # keys can only come from this tick's staged rows, which are
        # seq-ascending, so np.unique's first index is the creating packet.
        fresh = ~in_sorted(self._edge_keys, key)
        if fresh.any():
            new_keys, first = np.unique(key[fresh], return_index=True)
            new_birth = seq[fresh][first]
            keys2 = np.concatenate([self._edge_keys, new_keys])
            birth2 = np.concatenate([self._edge_birth, new_birth])
            order = np.argsort(keys2)
            self._edge_keys = keys2[order]
            self._edge_birth = birth2[order]
        birth = self._edge_birth[np.searchsorted(self._edge_keys, key)]

        # Per-edge selection: the capacity least-(p0, p1, seq) packets.
        order = np.lexsort((seq, rows["p1"], rows["p0"], key))
        rank = group_ranks(key[order])
        send = np.zeros(key.size, dtype=bool)
        send[order[rank < self.capacity]] = True

        sel = {name: col[send] for name, col in rows.items()}
        emit_order = np.lexsort(
            (sel["seq"], sel["p1"], sel["p0"], birth[send], sel["src"])
        )
        emitted = {name: col[emit_order] for name, col in sel.items()}

        keep = ~send
        if keep.any():
            self._pending = {name: col[keep] for name, col in rows.items()}
            remaining_keys = np.unique(key[keep])
            wake = np.unique(self._pending["src"])
        else:
            remaining_keys = _EMPTY
            wake = _EMPTY
        self._edge_birth = self._edge_birth[
            np.searchsorted(self._edge_keys, remaining_keys)
        ] if remaining_keys.size else _EMPTY
        self._edge_keys = remaining_keys
        return emitted, wake


def csr_from_pairs(
    keys: np.ndarray, values: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Group ``values`` by key: (unique keys, starts, counts, sorted values).

    Values within a group come out ascending (they are the secondary sort
    key), matching the scalar programs' ascending-children iteration.
    """
    if keys.size == 0:
        return _EMPTY, _EMPTY, _EMPTY, _EMPTY
    order = np.lexsort((values, keys))
    skeys = keys[order]
    svals = values[order]
    ukeys, starts = np.unique(skeys, return_index=True)
    counts = np.diff(np.append(starts, skeys.size))
    return ukeys, starts, counts, svals


def csr_expand(
    starts: np.ndarray, counts: np.ndarray, flat: np.ndarray, idx: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fan group ``idx`` out to its member rows.

    Returns ``(origin, members, within)``: ``origin[j]`` is the position in
    ``idx`` whose group produced ``members[j]``, ``within[j]`` its rank
    inside the group; groups appear in ``idx`` order, members in flat
    order — the scalar nested-loop order.
    """
    cc = counts[idx]
    total = int(cc.sum())
    if total == 0:
        return _EMPTY, _EMPTY, _EMPTY
    origin = np.repeat(np.arange(idx.size, dtype=np.int64), cc)
    offsets = np.concatenate(([0], np.cumsum(cc)[:-1]))
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, cc)
    members = flat[np.repeat(starts[idx], cc) + within]
    return origin, members, within


class ClaimArrayKernel(ArrayProgram):
    """Array twin of :class:`~repro.core.corefast.ClaimProgram`.

    Representatives climb the BFS tree claiming parent edges; each node
    admits at most ``theta`` distinct parts.  The in-order saturation rule
    vectorizes exactly: within a tick the i-th fresh eligible claim at a
    node succeeds iff ``admitted_before + i < theta``.
    """

    name = "corefast_claim"

    def __init__(
        self,
        tree,
        claimants: Sequence[Tuple[int, int]],
        theta: int,
        priority_of: Dict[int, int],
        num_parts: int,
    ) -> None:
        self.tree = tree
        self.n = tree.net.n
        self.P = max(1, num_parts)
        self.theta = theta
        self.claimants = claimants
        self.parent = np.asarray(tree.parent, dtype=np.int64)
        prio = np.arange(self.P, dtype=np.int64)
        for pid, pr in priority_of.items():
            if 0 <= pid < self.P:
                prio[pid] = pr
        self.prio = prio
        self._handled = KeySet()
        self._count = np.zeros(self.n, dtype=np.int64)
        self._claims = ColumnArena(("node", "pid"))
        self._pool = EdgePool(self.n, ("pid",), capacity=1)
        self._claimed_up: Optional[List[Set[int]]] = None

    def _try_claim(self, nodes: np.ndarray, pids: np.ndarray) -> None:
        keys = nodes * np.int64(self.P) + pids
        fresh = first_occurrence_mask(keys) & ~self._handled.contains(keys)
        self._handled.add(keys)
        idx = np.flatnonzero(fresh & (self.parent[nodes] >= 0))
        if idx.size == 0:
            return
        sub = nodes[idx]
        order = np.argsort(sub, kind="stable")
        rank = np.empty(idx.size, dtype=np.int64)
        rank[order] = group_ranks(sub[order])
        adm = idx[rank < (self.theta - self._count[sub])]
        if adm.size == 0:
            return
        v = nodes[adm]
        p = pids[adm]
        np.add.at(self._count, v, 1)
        self._claims.append(node=v, pid=p)
        self._claimed_up = None
        self._pool.push(v, self.parent[v], self.prio[p], 0, pid=p)

    @property
    def claimed_up(self) -> List[Set[int]]:
        if self._claimed_up is None:
            out: List[Set[int]] = [set() for _ in range(self.n)]
            nodes = self._claims.column("node").tolist()
            pids = self._claims.column("pid").tolist()
            for v, pid in zip(nodes, pids):
                out[v].add(pid)
            self._claimed_up = out
        return self._claimed_up

    def array_start(self, actx) -> None:
        if self.claimants:
            nodes = np.fromiter(
                (c[0] for c in self.claimants),
                dtype=np.int64,
                count=len(self.claimants),
            )
            pids = np.fromiter(
                (c[1] for c in self.claimants),
                dtype=np.int64,
                count=len(self.claimants),
            )
            self._try_claim(nodes, pids)
        actx.wake(self._pool.pending_sources())

    def array_tick(self, actx, d) -> None:
        if len(d):
            self._try_claim(d.dst, d.cols["pid"])
        emitted, wake = self._pool.select()
        if emitted is not None:
            bits = None
            if actx.strict_bits:
                bits = tuple_bits(TAG_BITS, int_bits_array(emitted["pid"]))
            actx.emit(
                emitted["src"],
                emitted["dst"],
                cols={"pid": emitted["pid"]},
                bits=bits,
            )
        actx.wake(wake)


class LazyBlockAnnotations(BlockAnnotations):
    """:class:`BlockAnnotations` whose dicts materialize on first access.

    The array PA wave reads root depths straight from the annotate
    kernel's flat columns (:meth:`AnnotateArrayKernel.priority_entries`),
    so the per-(node, part) Python dicts — one entry per shortcut edge —
    are only built for callers that actually index them (the scalar wave,
    block-count verification).
    """

    def __init__(self, kernel: "AnnotateArrayKernel") -> None:
        # Deliberately no super().__init__: the dataclass fields are
        # shadowed by the properties below.
        object.__setattr__(self, "_kernel", kernel)
        object.__setattr__(self, "_ann_dicts", None)
        object.__setattr__(self, "_token_dict", None)

    @property
    def root_depth(self) -> Dict[Tuple[int, int], int]:
        return self._materialize_ann()[0]

    @property
    def block_id(self) -> Dict[Tuple[int, int], int]:
        return self._materialize_ann()[1]

    @property
    def count_tokens(self) -> Dict[int, List[int]]:
        cached = self._token_dict
        if cached is None:
            kernel = self._kernel
            cached = {}
            tok_nodes = kernel._tokens.column("node").tolist()
            tok_pids = kernel._tokens.column("pid").tolist()
            for node, pid in zip(tok_nodes, tok_pids):
                cached.setdefault(node, []).append(pid)
            object.__setattr__(self, "_token_dict", cached)
        return cached

    def _materialize_ann(self):
        cached = self._ann_dicts
        if cached is None:
            kernel = self._kernel
            keys = kernel._ann.column("key").tolist()
            depths = kernel._ann.column("depth").tolist()
            uids = kernel._ann.column("uid").tolist()
            P = kernel.P
            root_depth: Dict[Tuple[int, int], int] = {}
            block_id: Dict[Tuple[int, int], int] = {}
            for key, depth, uid in zip(keys, depths, uids):
                nk = (key // P, key % P)
                root_depth[nk] = depth
                block_id[nk] = uid
            cached = (root_depth, block_id)
            object.__setattr__(self, "_ann_dicts", cached)
        return cached

    def priority_entries(self) -> Tuple[np.ndarray, np.ndarray]:
        """Flat ``(node * P + pid, root_depth)`` columns, dict-free."""
        return self._kernel.priority_entries()


class AnnotateArrayKernel(ArrayProgram):
    """Array twin of :mod:`repro.core.blocks`'s ``_AnnotateProgram``.

    Floods ``(root_depth, root_uid)`` down every block over the shortcut's
    down-edges (a static CSR keyed by ``node * P + pid``) and routes one
    counting token per block along the minimum-child chain.  Produces a
    real :class:`~repro.core.blocks.BlockAnnotations` with dicts built in
    the scalar program's chronological insertion order.
    """

    name = "annotate_blocks"

    def __init__(self, shortcut, capacity: int = 1) -> None:
        self.shortcut = shortcut
        self.tree = shortcut.tree
        self.net = shortcut.tree.net
        self.n = self.net.n
        self.P = max(1, shortcut.partition.num_parts)
        self._keys, self._starts, self._counts, self._children = (
            shortcut.down_csr()
        )
        self._seen = KeySet()
        self._ann = ColumnArena(("key", "depth", "uid"))
        self._tokens = ColumnArena(("node", "pid"))
        self._pool = EdgePool(
            self.n, ("pid", "depth", "uid", "cnt"), capacity=capacity
        )
        self._out: Optional[BlockAnnotations] = None

    def _emit(
        self,
        nodes: np.ndarray,
        pids: np.ndarray,
        depths: np.ndarray,
        uids: np.ndarray,
        counting: np.ndarray,
    ) -> None:
        keys = nodes * np.int64(self.P) + pids
        fresh = first_occurrence_mask(keys) & ~self._seen.contains(keys)
        self._seen.add(keys)
        idx = np.flatnonzero(fresh)
        if idx.size == 0:
            return
        keys = keys[idx]
        nodes = nodes[idx]
        pids = pids[idx]
        depths = depths[idx]
        uids = uids[idx]
        counting = counting[idx]
        self._ann.append(key=keys, depth=depths, uid=uids)
        self._out = None

        pos = np.searchsorted(self._keys, keys)
        if self._keys.size:
            pos[pos >= self._keys.size] = self._keys.size - 1
            has = self._keys[pos] == keys
        else:
            has = np.zeros(keys.size, dtype=bool)
        terminal = np.flatnonzero(counting.astype(bool) & ~has)
        if terminal.size:
            self._tokens.append(node=nodes[terminal], pid=pids[terminal])

        group = np.flatnonzero(has)
        if group.size == 0:
            return
        origin, child, _within = csr_expand(
            self._starts, self._counts, self._children, pos[group]
        )
        src = nodes[group][origin]
        pid = pids[group][origin]
        depth = depths[group][origin]
        uid = uids[group][origin]
        first_child = self._children[self._starts[pos[group]]][origin]
        cnt = (counting[group][origin].astype(bool) & (child == first_child))
        self._pool.push(
            src, child, depth, pid,
            pid=pid, depth=depth, uid=uid, cnt=cnt.astype(np.int64),
        )

    def priority_entries(self) -> Tuple[np.ndarray, np.ndarray]:
        """Flat ``(node * P + pid, root_depth)`` annotation columns."""
        return self._ann.column("key"), self._ann.column("depth")

    @property
    def out(self) -> BlockAnnotations:
        if self._out is None:
            self._out = LazyBlockAnnotations(self)
        return self._out

    def array_start(self, actx) -> None:
        # Block roots: (v, pid) with an H_pid child edge but no H_pid
        # parent edge.  ``_keys`` is unique-sorted ``v * P + pid``, which
        # is exactly the scalar program's (v ascending, pid ascending)
        # start order.
        if self._keys.size:
            root_keys = self._keys[
                ~in_sorted(self.shortcut.up_key_array(), self._keys)
            ]
            nodes = root_keys // self.P
            pids = root_keys % self.P
            self._emit(
                nodes,
                pids,
                np.asarray(self.tree.depth, dtype=np.int64)[nodes],
                np.asarray(self.net.uid, dtype=np.int64)[nodes],
                np.ones(nodes.size, dtype=np.int64),
            )
        actx.wake(self._pool.pending_sources())

    def array_tick(self, actx, d) -> None:
        if len(d):
            self._emit(
                d.dst,
                d.cols["pid"],
                d.cols["depth"],
                d.cols["uid"],
                d.cols["cnt"],
            )
        emitted, wake = self._pool.select()
        if emitted is not None:
            bits = None
            if actx.strict_bits:
                bits = tuple_bits(
                    TAG_BITS,
                    int_bits_array(emitted["pid"]),
                    int_bits_array(emitted["depth"]),
                    int_bits_array(emitted["uid"]),
                    1,
                )
            actx.emit(
                emitted["src"],
                emitted["dst"],
                cols={
                    "pid": emitted["pid"],
                    "depth": emitted["depth"],
                    "uid": emitted["uid"],
                    "cnt": emitted["cnt"],
                },
                bits=bits,
            )
        actx.wake(wake)
