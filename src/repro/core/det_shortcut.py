"""Algorithm 8: deterministic shortcut construction (Section 6.3).

Bottom-up over the heavy path decomposition: paths are processed in waves
by *rank* (a path activates once every path feeding claims into it over a
light edge has finished — at most log2 n waves).  Each wave runs
Algorithm 7 (:mod:`repro.core.path_shortcut`) on its paths, then ships the
finished tops' claim sets across their light parent edges.

The outer loop repeats the bottom-up sweep O(log n) times: after each
sweep the block parameters are verified with the PA machinery itself
(Lemma 4.5, deterministic variant), parts whose block parameter is within
the target freeze their claimed edges, and the remaining parts retry under
a doubled congestion budget.  The analysis of Lemma 6.7 shows at least
half the active parts go good per sweep; we additionally force-freeze at
the iteration cap so construction always terminates (with measured, not
assumed, quality).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..congest.engine import Engine
from ..congest.ledger import CostLedger
from ..congest.network import Network
from ..graphs.partitions import Partition
from .blocks import annotate_blocks
from .corefast import ShortcutBuildResult, _merge_up_parts
from .heavy_path import HeavyPathDecomposition, build_heavy_path_decomposition
from .path_shortcut import run_path_doubling_wave
from .shortcuts import Shortcut
from .subparts import SubPartDivision
from .trees import RootedForest


def _bottom_up_sweep(
    engine: Engine,
    tree: RootedForest,
    hpd: HeavyPathDecomposition,
    seeds: Dict[int, Set[int]],
    threshold: int,
    ledger: CostLedger,
    sweep_name: str,
) -> List[Set[int]]:
    """One full bottom-up pass of Algorithm 7 waves; returns fresh claims."""
    store: Dict[int, Set[int]] = {v: set(pids) for v, pids in seeds.items()}
    claims: List[Set[int]] = [set() for _ in range(tree.net.n)]
    by_rank = hpd.paths_by_rank()
    for rank in sorted(by_rank):
        tops = by_rank[rank]
        wave_claims = run_path_doubling_wave(
            engine, tree, hpd, tops, store, threshold, ledger,
            wave_name=f"{sweep_name}_rank{rank}",
        )
        for v, pids in wave_claims.items():
            claims[v].update(pids)
    return claims


def build_shortcut_deterministic(
    engine: Engine,
    net: Network,
    partition: Partition,
    division: SubPartDivision,
    tree: RootedForest,
    diameter: int,
    ledger: CostLedger,
    congestion_budget: Optional[int] = None,
    block_target: Optional[int] = None,
    max_iterations: Optional[int] = None,
    hpd: Optional[HeavyPathDecomposition] = None,
    grow_budget: bool = True,
) -> ShortcutBuildResult:
    """Algorithm 8 end to end, returning a verified shortcut.

    Mirrors :func:`repro.core.corefast.build_shortcut_randomized` exactly in
    interface; the only differences are the construction mechanics (heavy
    path doubling instead of claim flooding) and that verification runs the
    deterministic PA variant.
    """
    from .corefast import verify_block_parameters

    n = net.n
    log_n = max(1, math.ceil(math.log2(max(2, n))))
    if block_target is None:
        block_target = max(3, 3 * log_n)
    if max_iterations is None:
        max_iterations = log_n + 3
    budget = congestion_budget if congestion_budget is not None else 2

    if hpd is None:
        hpd = build_heavy_path_decomposition(engine, tree, ledger)

    part_sizes = [partition.size_of(pid) for pid in range(partition.num_parts)]
    active: Set[int] = {
        pid for pid in range(partition.num_parts) if part_sizes[pid] > diameter
    }
    frozen_up: List[Set[int]] = [set() for _ in range(n)]

    reps_by_part: Dict[int, List[int]] = {}
    for rep in division.forest.roots:
        pid = partition.part_of[rep]
        reps_by_part.setdefault(pid, []).append(rep)

    iterations = 0
    while active and iterations < max_iterations:
        iterations += 1
        seeds: Dict[int, Set[int]] = {}
        for pid in sorted(active):
            for rep in reps_by_part.get(pid, ()):
                seeds.setdefault(rep, set()).add(pid)

        fresh = _bottom_up_sweep(
            engine, tree, hpd, seeds, max(1, budget), ledger,
            sweep_name=f"alg8_{iterations}",
        )

        candidate_up = _merge_up_parts(n, frozen_up, fresh, active)
        candidate = Shortcut(tree, partition, candidate_up)
        annotations = annotate_blocks(engine, candidate, ledger)
        counts = verify_block_parameters(
            engine, net, partition, division, candidate, annotations,
            ledger, randomized=False, rng=None,
            phase_prefix=f"det_verify_{iterations}",
        )

        newly_frozen = {pid for pid in active if counts[pid] <= block_target}
        if iterations == max_iterations:
            newly_frozen = set(active)
        for v in range(n):
            for pid in fresh[v]:
                if pid in newly_frozen:
                    frozen_up[v].add(pid)
        active -= newly_frozen
        if grow_budget:
            budget *= 2

    final = Shortcut(tree, partition, frozen_up)
    annotations = annotate_blocks(engine, final, ledger)
    counts = annotations.block_counts(partition.num_parts)
    return ShortcutBuildResult(
        shortcut=final,
        annotations=annotations,
        block_counts=counts,
        iterations=iterations,
    )
