"""Cole-Vishkin deterministic coin tossing (3-coloring of oriented chains).

Section 6.1 uses the Cole-Vishkin [4] algorithm to 3-color the super-graph
of sub-parts (a union of directed paths and cycles, max out-degree 1) in
O(log* n) communication steps.  This module holds the *logic* — the color
transition functions — as pure functions, so the same code drives both the
direct CONGEST program (on networks that literally are paths/cycles, used
in tests) and the simulated version where each "node" is a whole sub-part
or part whose leader computes the transition (Algorithms 5, 6 and 9).

The classic reduction: starting from O(log n)-bit distinct colors, each
step a node compares its color with its successor's, finds the lowest
differing bit index ``k``, and re-colors itself ``2k + bit_k``.  After
O(log* n) steps colors fit in {0..5}; three shift-down steps then remove
colors 5, 4, 3, using knowledge of both neighbors' colors.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def cv_step(own: int, successor: Optional[int]) -> int:
    """One Cole-Vishkin color transition.

    ``successor`` is the color of the node's out-neighbor, or ``None`` for
    chain ends; ends use a pseudo-successor that provably differs from
    their own color, preserving the invariant that adjacent colors differ.
    """
    if successor is None:
        successor = own + 1  # differs from own in bit 0 at least
    if own == successor:
        raise ValueError("Cole-Vishkin requires adjacent colors to differ")
    diff = own ^ successor
    k = (diff & -diff).bit_length() - 1  # lowest differing bit index
    bit = (own >> k) & 1
    return 2 * k + bit


def cv_iterations_needed(max_color: int) -> int:
    """Number of cv_step iterations to reach colors < 6 from ``max_color``.

    Each step maps colors bounded by ``2^L`` to colors bounded by ``2L``;
    a small fixed-point loop computes when the bound stops shrinking.
    """
    bound = max(max_color, 1)
    steps = 0
    while bound >= 6:
        bits = bound.bit_length()
        new_bound = 2 * bits - 1
        steps += 1
        if new_bound >= bound:
            break
        bound = new_bound
    return steps + 2  # two extra steps to be safe at the fixed point


def shift_down_step(
    own: int, predecessor: Optional[int], successor: Optional[int], high: int
) -> int:
    """One color-elimination step: nodes colored ``high`` pick a free color.

    With colors already < 6 and proper along the chain, a node colored
    ``high`` re-colors itself the smallest color in {0, 1, 2} unused by its
    two chain neighbors; all other nodes keep their color.  Applying this
    for high = 5, 4, 3 yields a proper 3-coloring.
    """
    if own != high:
        return own
    forbidden = {predecessor, successor}
    for candidate in (0, 1, 2):
        if candidate not in forbidden:
            return candidate
    raise AssertionError("two neighbors cannot forbid three colors")


def three_color_chain(
    successor_of: Dict[int, Optional[int]], initial_colors: Dict[int, int]
) -> Dict[int, int]:
    """Reference (sequential) Cole-Vishkin over a functional chain graph.

    ``successor_of`` maps each node to its out-neighbor (or None); in-degree
    must be at most 1.  Returns a proper 3-coloring with respect to the
    chain edges.  This is the oracle the distributed implementations are
    tested against, and the local computation each leader performs.
    """
    nodes = list(successor_of)
    colors = dict(initial_colors)
    predecessor_of: Dict[int, Optional[int]] = {v: None for v in nodes}
    for v, s in successor_of.items():
        if s is not None:
            if predecessor_of.get(s) is not None:
                raise ValueError("chain graph has in-degree > 1")
            predecessor_of[s] = v

    steps = cv_iterations_needed(max(colors.values(), default=1))
    for _ in range(steps):
        new_colors = {}
        for v in nodes:
            succ = successor_of[v]
            new_colors[v] = cv_step(
                colors[v], colors[succ] if succ is not None else None
            )
        colors = new_colors
    for high in (5, 4, 3):
        new_colors = {}
        for v in nodes:
            succ = successor_of[v]
            pred = predecessor_of[v]
            new_colors[v] = shift_down_step(
                colors[v],
                colors[pred] if pred is not None else None,
                colors[succ] if succ is not None else None,
                high,
            )
        colors = new_colors
    return colors


def validate_coloring(
    successor_of: Dict[int, Optional[int]], colors: Dict[int, int]
) -> None:
    """Assert that ``colors`` is a proper coloring of the chain edges."""
    for v, s in successor_of.items():
        if s is not None and colors[v] == colors[s]:
            raise AssertionError(f"edge ({v}, {s}) is monochromatic")
        if colors[v] not in (0, 1, 2):
            raise AssertionError(f"color {colors[v]} out of range at {v}")
