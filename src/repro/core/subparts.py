"""Sub-part divisions (Definition 4.1) and their randomized construction.

A sub-part division refines the PA partition: every part with more than
``D`` nodes is split into ``O~(|P_i| / D)`` *sub-parts*, each with a
spanning tree of diameter ``O(D)`` rooted at a *representative*.  Only
representatives inject messages into shortcut blocks, which is the paper's
key device for message-optimality (Section 3.2).

This module holds the :class:`SubPartDivision` structure plus the
randomized construction (Algorithm 3): representatives self-sample with
probability ``Theta(log n / D)`` and claim BFS balls of radius ``O(D)``
around themselves.  The deterministic construction (Algorithm 6) lives in
:mod:`repro.core.subparts_det`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..congest.engine import Context, Engine, Inbox, Program
from ..congest.ledger import CostLedger
from ..congest.network import Network
from ..graphs.partitions import Partition
from .aggregation import SUM
from .treeops import claim_bfs, convergecast
from .trees import ABSENT, ROOT, RootedForest


@dataclass
class SubPartDivision:
    """A sub-part division of a partition.

    Attributes
    ----------
    forest:
        Spanning forest of all nodes; each tree is one sub-part, rooted at
        the sub-part's representative.
    rep_of:
        ``rep_of[v]`` is the representative (tree root) of v's sub-part.
    part_leader:
        ``part_leader[pid]`` is the part's leader node; every member knows
        it (the standing assumption of Section 4, discharged by Algorithm 9
        when absent).
    """

    partition: Partition
    forest: RootedForest
    rep_of: Tuple[int, ...]
    part_leader: Tuple[int, ...]

    def subparts_of_part(self, pid: int) -> List[int]:
        """Representatives of the sub-parts refining part ``pid``."""
        return sorted(
            {self.rep_of[v] for v in self.partition.members[pid]}
        )

    def num_subparts(self) -> int:
        """Total number of sub-parts."""
        return len(self.forest.roots)

    def max_subpart_depth(self) -> int:
        """Max sub-part tree depth (diameter is at most twice this)."""
        return self.forest.height()

    def validate(self, diameter_bound: Optional[int] = None) -> None:
        """Check Definition 4.1: sub-parts nest in parts; trees span them."""
        part_of = self.partition.part_of
        for v in range(len(part_of)):
            rep = self.rep_of[v]
            if part_of[rep] != part_of[v]:
                raise ValueError(
                    f"node {v} (part {part_of[v]}) has representative {rep}"
                    f" in part {part_of[rep]}"
                )
            if self.forest.root_of(v) != rep:
                raise ValueError(f"rep_of[{v}] disagrees with the forest")
        if diameter_bound is not None:
            if self.forest.height() > diameter_bound:
                raise ValueError(
                    f"sub-part tree depth {self.forest.height()} exceeds"
                    f" bound {diameter_bound}"
                )


class _UncoveredAnnounceProgram(Program):
    """One round: nodes not claimed by the BFS tell their in-part neighbors.

    The coverage check of Algorithm 3 / the small-part test: a leader can
    only be sure its BFS spanned the part if no claimed node is adjacent to
    an unclaimed in-part node.
    """

    name = "uncovered_announce"

    def __init__(
        self,
        net: Network,
        part_of: Sequence[int],
        covered: Sequence[bool],
    ) -> None:
        self.net = net
        self.part_of = part_of
        self.covered = covered
        self.heard_uncovered: Set[int] = set()

    def on_start(self, ctx: Context) -> None:
        for v in range(self.net.n):
            if not self.covered[v]:
                for nb in self.net.neighbors[v]:
                    if self.part_of[nb] == self.part_of[v]:
                        ctx.send(v, nb, ("uncov",))

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        if inbox:
            self.heard_uncovered.add(node)


def _coverage_check(
    engine: Engine,
    net: Network,
    part_of: Sequence[int],
    forest: RootedForest,
    covered: Sequence[bool],
    ledger: CostLedger,
    name: str,
    same_part_mask=None,
) -> Dict[int, object]:
    """Convergecast (count, any-uncovered-neighbor) to each claim root.

    ``same_part_mask`` (per-CSR-slot, from the array engine's views) makes
    both the announcement and the pair convergecast run array-natively;
    wire traffic and ledger are identical to the scalar programs.
    """
    if same_part_mask is not None and getattr(engine, "use_arrays", False):
        import numpy as np

        from .array_kernels import (
            ConvergecastArrayKernel,
            UncoveredAnnounceArrayKernel,
        )

        covered_np = np.asarray(covered, dtype=bool)
        announce_k = UncoveredAnnounceArrayKernel(
            net, covered_np, same_part_mask
        )
        announce_k.name = f"{name}_announce"
        stats = engine.run(announce_k, max_ticks=2)
        ledger.charge(stats)

        count_col = covered_np.astype(np.int64)
        flag_col = np.zeros(net.n, dtype=np.int64)
        if announce_k.heard_uncovered:
            heard = np.fromiter(
                announce_k.heard_uncovered,
                dtype=np.int64,
                count=len(announce_k.heard_uncovered),
            )
            flag_col[heard[covered_np[heard]]] = 1
        cast = ConvergecastArrayKernel(
            forest, [count_col, flag_col], op="sum", tuple_payload=True
        )
        cast.name = f"{name}_convergecast"
        stats = engine.run(cast, max_ticks=forest.height() + 2)
        ledger.charge(stats)
        return cast.at_root

    announce = _UncoveredAnnounceProgram(net, part_of, covered)
    announce.name = f"{name}_announce"
    stats = engine.run(announce, max_ticks=2)
    ledger.charge(stats)

    values: List[Optional[Tuple[int, int]]] = [None] * net.n
    for v in range(net.n):
        if covered[v]:
            flag = 1 if v in announce.heard_uncovered else 0
            values[v] = (1, flag)

    # Tuple-wise sum aggregation: (count, flags) + (count, flags).
    from .aggregation import Aggregation

    tup_sum = Aggregation("pair_sum", lambda a, b: (a[0] + b[0], a[1] + b[1]))
    at_root, _ = convergecast(
        engine, forest, tup_sum, values, ledger, name=f"{name}_convergecast"
    )
    return at_root


def build_subpart_division_randomized(
    engine: Engine,
    net: Network,
    partition: Partition,
    leaders: Sequence[int],
    diameter: int,
    ledger: CostLedger,
    rng: random.Random,
) -> SubPartDivision:
    """Algorithm 3: randomized sub-part division.

    Phases (all metered):

    1. *Small-part probe*: every leader BFS-claims its part to depth ``D``;
       a coverage check tells the leader whether the part was spanned with
       at most ``D`` nodes.  Such parts become a single sub-part rooted at
       the leader.
    2. *Representative sampling*: in large parts, every node self-elects
       with probability ``min(1, 8 ln n / D)``; representatives BFS-claim
       balls of radius ``2D`` inside the part.
    3. *Fallback sweep*: any node left unclaimed (probability 1/poly(n))
       elects itself and claims; repeats until covered.  This replaces a
       w.h.p. argument with a certain loop whose extra cost is metered.

    Returns a validated :class:`SubPartDivision`.
    """
    n = net.n
    depth_limit = max(1, diameter)
    part_of = partition.part_of

    def same_part(u: int, v: int) -> bool:
        return part_of[u] == part_of[v]

    # On an array engine the edge restrictions run as static CSR slot
    # masks instead of per-send Python predicates.
    same_part_mask = None
    part_np = None
    if getattr(engine, "use_arrays", False):
        import numpy as np

        arrays = net.array_views
        part_np = np.asarray(part_of, dtype=np.int64)
        same_part_mask = part_np[arrays.src_of_slot] == part_np[arrays.adj]

    # Phase 1: leaders probe their parts to depth D.
    leader_tokens = {leader: net.uid[leader] for leader in leaders}
    probe = claim_bfs(
        engine,
        net,
        leader_tokens,
        ledger,
        allowed=same_part,
        max_depth=depth_limit,
        name="subpart_probe",
        slot_mask=same_part_mask,
    )
    covered = [probe.token_of[v] is not None for v in range(n)]
    at_root = _coverage_check(
        engine, net, part_of, probe.forest(), covered, ledger, "subpart_probe",
        same_part_mask=same_part_mask,
    )

    small_parts: Set[int] = set()
    for pid, leader in enumerate(leaders):
        info = at_root.get(leader)
        if info is not None:
            count, uncovered_flags = info
            if count <= depth_limit and uncovered_flags == 0:
                small_parts.add(pid)

    parent: List[int] = [ABSENT] * n
    rep_of: List[int] = [-1] * n
    for v in range(n):
        pid = part_of[v]
        if pid in small_parts:
            parent[v] = probe.parent_of[v]
            rep_of[v] = leaders[pid]

    # Phase 2 + 3: sample representatives in large parts; sweep until
    # every large-part node is claimed.  The paper samples at
    # Theta(log n / D); the constant matters at simulation scales (too
    # high and every node elects itself, degenerating the division), and
    # the fallback sweep below makes coverage certain regardless.
    prob = min(1.0, 2.0 * math.log(max(2, n)) / depth_limit)
    unclaimed = [
        v for v in range(n) if part_of[v] not in small_parts
    ]
    sweep = 0
    while unclaimed:
        sweep += 1
        tokens: Dict[int, object] = {}
        for v in unclaimed:
            if rng.random() < prob or sweep > 1 and rng.random() < 0.5:
                tokens[v] = net.uid[v]
        if not tokens:
            # Degenerate sample; force the minimum-uid unclaimed node.
            forced = min(unclaimed, key=lambda v: net.uid[v])
            tokens[forced] = net.uid[forced]

        def claimable(u: int, v: int) -> bool:
            return same_part(u, v) and rep_of[v] == -1 and rep_of[u] == -1

        claim_mask = None
        if same_part_mask is not None:
            import numpy as np

            arrays = net.array_views
            rep_np = np.asarray(rep_of, dtype=np.int64)
            claim_mask = (
                same_part_mask
                & (rep_np[arrays.src_of_slot] == -1)
                & (rep_np[arrays.adj] == -1)
            )

        claim = claim_bfs(
            engine,
            net,
            tokens,
            ledger,
            allowed=claimable,
            max_depth=2 * depth_limit,
            name=f"subpart_claim_{sweep}",
            slot_mask=claim_mask,
        )
        for v in unclaimed:
            token = claim.token_of[v]
            if token is not None:
                parent[v] = claim.parent_of[v]
                rep_of[v] = net.node_of_uid(token)
        unclaimed = [v for v in unclaimed if rep_of[v] == -1]
        if sweep > 2 * math.ceil(math.log2(max(2, n))) + 4:
            raise RuntimeError("sub-part sweep failed to converge")

    forest = RootedForest(net, parent)
    division = SubPartDivision(
        partition=partition,
        forest=forest,
        rep_of=tuple(rep_of),
        part_leader=tuple(leaders),
    )
    division.validate(diameter_bound=2 * depth_limit)
    return division


def division_from_groups(
    net: Network,
    partition: Partition,
    leaders: Sequence[int],
    groups: Sequence[Sequence[int]],
    reps: Optional[Sequence[int]] = None,
) -> SubPartDivision:
    """Oracle-side division from explicit sub-part member lists (tests)."""
    from .trees import spanning_forest_of_subsets

    forest = spanning_forest_of_subsets(net, groups)
    rep_of = [-1] * net.n
    for idx, group in enumerate(groups):
        root = forest.root_of(group[0])
        for v in group:
            rep_of[v] = root
    division = SubPartDivision(
        partition=partition,
        forest=forest,
        rep_of=tuple(rep_of),
        part_leader=tuple(leaders),
    )
    division.validate()
    return division
