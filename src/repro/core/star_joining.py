"""Star joinings (Definition 6.1, Algorithm 5).

A star joining designates a constant fraction of participating super-nodes
as *receivers* and the rest (those whose chosen edge points at a receiver)
as *joiners*, so that joiners can merge into receivers in a star pattern —
bounding the diameter growth of merged structures.  Algorithm 5 computes
one deterministically: super-nodes with in-degree >= 2 become receivers
immediately; the residual functional graph (paths and cycles) is 3-colored
with Cole-Vishkin, and the three color classes are resolved in turn.

The algorithm is generic over *how* super-nodes communicate: in
Algorithm 6 a super-node is a sub-part (communication via its O(D)-depth
spanning tree), in Algorithm 9 a super-node is a coarsening part
(communication via full PA).  :class:`SuperOps` is that interface; the
tree-based implementation lives here, the PA-based one in
:mod:`repro.core.no_leader`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..congest.engine import Context, Engine, Inbox, Program
from ..congest.ledger import CostLedger
from ..congest.network import Network
from .aggregation import Aggregation, MIN, SUM
from .cole_vishkin import cv_iterations_needed, cv_step, shift_down_step
from .treeops import broadcast as tree_broadcast
from .treeops import convergecast as tree_convergecast
from .trees import RootedForest

#: A chosen super-edge: (u, v) with u in the source super-node, v in the
#: target super-node, plus the target's super-node id.
SuperEdge = Tuple[int, int, int]


class SuperOps:
    """Communication primitives over a super-graph of node groups.

    Implementations must provide, for the super-nodes with chosen edges:

    * :meth:`push_up` — each source sends a value over its chosen edge; the
      *target* super-node's leader receives the aggregate of incoming
      values (used for in-degree counting);
    * :meth:`push_down` — each target super-node publishes a value; each
      *source* super-node's leader learns its target's value (used for
      receiver notification and successor colors in Cole-Vishkin);
    * :meth:`push_pred` — symmetric to push_down: each source publishes,
      each target's leader learns the aggregate of its predecessors'
      values (used for predecessor colors in the shift-down steps).
    """

    def edges(self) -> Dict[int, SuperEdge]:
        """Chosen edge per participating super-node id."""
        raise NotImplementedError

    def all_supernodes(self) -> Sequence[int]:
        raise NotImplementedError

    def push_up(self, value_of: Dict[int, object], agg: Aggregation) -> Dict[int, object]:
        raise NotImplementedError

    def push_down(self, value_of: Dict[int, object]) -> Dict[int, object]:
        raise NotImplementedError

    def push_pred(self, value_of: Dict[int, object], agg: Aggregation) -> Dict[int, object]:
        raise NotImplementedError

    def initial_color(self, sid: int) -> int:
        """Distinct O(log n)-bit starting color (the leader's uid)."""
        raise NotImplementedError


def compute_star_joining(
    ops: SuperOps, participants: Set[int]
) -> Tuple[Set[int], Dict[int, SuperEdge]]:
    """Algorithm 5: returns (receivers, join edge per joiner).

    ``participants`` are the super-nodes that want to merge; each must have
    a chosen edge in ``ops.edges()``.  Targets outside ``participants``
    (e.g. already-complete sub-parts) are receivers by default.  Every
    participant ends up either a receiver or a joiner.
    """
    edges = ops.edges()
    target_of = {sid: edges[sid][2] for sid in participants}

    # Line 3: in-degree >= 2 (among participants) makes a receiver; any
    # non-participant target is a receiver outright.
    indeg = ops.push_up({sid: 1 for sid in participants}, SUM)
    receivers: Set[int] = {
        sid for sid, count in indeg.items() if count is not None and count >= 2
    }
    receivers.update(
        target for target in target_of.values() if target not in participants
    )

    joins: Dict[int, SuperEdge] = {}

    def absorb_joiners(residual: Set[int]) -> Set[int]:
        """Participants pointing at a receiver become joiners (line 4/9)."""
        status = ops.push_down(
            {sid: (1 if sid in receivers else 0) for sid in ops.all_supernodes()}
        )
        new_joiners = {
            sid
            for sid in residual
            if sid not in receivers and status.get(sid) == 1
        }
        for sid in new_joiners:
            joins[sid] = edges[sid]
        return residual - new_joiners - receivers

    residual = absorb_joiners(set(participants))

    # Lines 6-9: the residual functional graph has in/out degree <= 1;
    # 3-color it with Cole-Vishkin and resolve the color classes in turn.
    if residual:
        colors = {sid: ops.initial_color(sid) for sid in residual}

        def live_successor(sid: int) -> Optional[int]:
            target = target_of[sid]
            return target if target in residual else None

        steps = cv_iterations_needed(max(colors.values()))
        for _ in range(steps):
            succ_colors = ops.push_down(
                {sid: colors.get(sid, -1) for sid in ops.all_supernodes()}
            )
            colors = {
                sid: cv_step(
                    colors[sid],
                    succ_colors.get(sid)
                    if live_successor(sid) is not None
                    else None,
                )
                for sid in residual
            }
        for high in (5, 4, 3):
            succ_colors = ops.push_down(
                {sid: colors.get(sid, -1) for sid in ops.all_supernodes()}
            )
            pred_colors = ops.push_pred(
                {sid: colors[sid] for sid in residual}, MIN
            )
            colors = {
                sid: shift_down_step(
                    colors[sid],
                    pred_colors.get(sid),
                    succ_colors.get(sid)
                    if live_successor(sid) is not None
                    else None,
                    high,
                )
                for sid in residual
            }

        for k in (0, 1, 2):
            receivers.update(sid for sid in residual if colors[sid] == k)
            residual = absorb_joiners(residual)
            if not residual:
                break

    if residual:
        raise AssertionError("star joining left unresolved super-nodes")
    return receivers, joins


class _CrossEdgeProgram(Program):
    """One round: send a payload across each given directed graph edge."""

    name = "super_cross"

    def __init__(self, sends: List[Tuple[int, int, object]]) -> None:
        self.sends = sends
        self.received: Dict[int, List[Tuple[int, object]]] = {}

    def on_start(self, ctx: Context) -> None:
        for src, dst, payload in self.sends:
            ctx.send(src, dst, payload)

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        self.received.setdefault(node, []).extend(inbox)


class TreeSuperOps(SuperOps):
    """Super-node communication over sub-part spanning trees (Algorithm 6).

    Super-nodes are tree roots of ``forest``; every push is implemented as
    broadcast-down / one cross round / convergecast-up, all metered.  The
    in-edge knowledge required by push_down/push_pred (which member holds
    an edge from a predecessor) is recorded when the caller runs
    :meth:`announce_requests`.
    """

    def __init__(
        self,
        engine: Engine,
        net: Network,
        forest: RootedForest,
        chosen: Dict[int, SuperEdge],
        ledger: CostLedger,
        phase_prefix: str = "star",
    ) -> None:
        self.engine = engine
        self.net = net
        self.forest = forest
        self.chosen = chosen
        self.ledger = ledger
        self.prefix = phase_prefix
        #: (member v, source endpoint u, source sid) per target sid
        self.in_edges: Dict[int, List[Tuple[int, int, int]]] = {}
        self._announced = False

    # -- plumbing ------------------------------------------------------
    def _root_of(self, v: int) -> int:
        return self.forest.root_of(v)

    def edges(self) -> Dict[int, SuperEdge]:
        return self.chosen

    def all_supernodes(self) -> Sequence[int]:
        return self.forest.roots

    def initial_color(self, sid: int) -> int:
        return self.net.uid[sid]

    def announce_requests(self) -> None:
        """Record in-edge knowledge: targets learn who points at them."""
        sends = [
            (u, v, ("jreq", sid)) for sid, (u, v, _t) in self.chosen.items()
        ]
        program = _CrossEdgeProgram(sends)
        program.name = f"{self.prefix}_announce"
        stats = self.engine.run(program, max_ticks=2)
        self.ledger.charge(stats)
        for v, incoming in program.received.items():
            for u, payload in incoming:
                _tag, sid = payload
                self.in_edges.setdefault(self._root_of(v), []).append((v, u, sid))
        self._announced = True

    # -- pushes --------------------------------------------------------
    def _broadcast_values(self, value_of: Dict[int, object]) -> Dict[int, object]:
        root_values = {
            sid: value_of[sid] for sid in self.forest.roots if sid in value_of
        }
        return tree_broadcast(
            self.engine, self.forest, root_values, self.ledger,
            name=f"{self.prefix}_broadcast",
        )

    def _convergecast(self, values: List[object], agg: Aggregation) -> Dict[int, object]:
        at_root, _ = tree_convergecast(
            self.engine, self.forest, agg, values, self.ledger,
            name=f"{self.prefix}_convergecast",
        )
        return at_root

    def push_up(self, value_of: Dict[int, object], agg: Aggregation) -> Dict[int, object]:
        received = self._broadcast_values(value_of)
        sends = []
        for sid, (u, v, _t) in self.chosen.items():
            if sid in value_of:
                sends.append((u, v, ("up", received.get(u, value_of[sid]))))
        program = _CrossEdgeProgram(sends)
        program.name = f"{self.prefix}_cross_up"
        stats = self.engine.run(program, max_ticks=2)
        self.ledger.charge(stats)
        values: List[object] = [None] * self.net.n
        for v, incoming in program.received.items():
            for _u, payload in incoming:
                _tag, value = payload
                values[v] = agg.merge(values[v], value)
        at_root = self._convergecast(values, agg)
        return {sid: val for sid, val in at_root.items() if val is not None}

    def push_down(self, value_of: Dict[int, object]) -> Dict[int, object]:
        if not self._announced:
            self.announce_requests()
        received = self._broadcast_values(value_of)
        sends = []
        for target_sid, holders in self.in_edges.items():
            for v, u, _src_sid in holders:
                if target_sid in value_of:
                    sends.append((v, u, ("down", received.get(v))))
        program = _CrossEdgeProgram(sends)
        program.name = f"{self.prefix}_cross_down"
        stats = self.engine.run(program, max_ticks=2)
        self.ledger.charge(stats)
        values: List[object] = [None] * self.net.n
        for u, incoming in program.received.items():
            for _v, payload in incoming:
                _tag, value = payload
                values[u] = value if values[u] is None else min(values[u], value)
        at_root = self._convergecast(values, MIN)
        return {sid: val for sid, val in at_root.items() if val is not None}

    def push_pred(self, value_of: Dict[int, object], agg: Aggregation) -> Dict[int, object]:
        return self.push_up(value_of, agg)
