"""Algorithm 7: deterministic shortcut construction on heavy paths.

Each active heavy path runs ``ceil(log2 L)`` doubling iterations.  In
iteration ``i`` the nodes at positions ``2^i (mod 2^{i+1})`` stream their
accumulated claim sets ``S(v)`` up the path over ``2^i`` hops (one part id
per edge per round — a convoy); a node whose set has reached ``2c`` part
ids instead *breaks* the edge above it and clears its set.  Convoys of the
same iteration are edge-disjoint (senders sit ``2^{i+1}`` apart), so no
queuing is needed; iteration boundaries are globally scheduled ticks, and
iteration ``i`` lasts ``2c + 2^i + 1`` ticks — O(c log L + L) rounds in
total (Lemma 6.6).

Every part id that crosses an edge *claims* it: the edge joins that part's
``H_i``.  A convoy that runs into a broken edge is absorbed there (the
paper skips such transmissions entirely; absorbing keeps strictly fewer
claims in flight and preserves the union-of-upward-prefixes invariant —
see DESIGN.md).  Convoys that reach the path top are absorbed into the
top's set ``Sf(top)``, which Algorithm 8 later ships across the top's
light parent edge (:class:`LightCrossProgram`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..congest.engine import Context, Engine, Inbox, Program
from ..congest.ledger import CostLedger
from ..congest.network import Network
from .heavy_path import HeavyPathDecomposition
from .trees import RootedForest


def doubling_schedule(max_length: int, threshold: int) -> List[Tuple[int, int]]:
    """(start_tick, span) per iteration i; iteration i covers 2^i hops."""
    schedule = []
    tick = 1
    i = 0
    while (1 << i) < max(2, max_length):
        span = 2 * threshold + (1 << i) + 1
        schedule.append((tick, span))
        tick += span
        i += 1
    return schedule


class PathDoublingProgram(Program):
    """One Algorithm 7 wave over all active paths simultaneously."""

    name = "alg7_path_doubling"

    def __init__(
        self,
        tree: RootedForest,
        hpd: HeavyPathDecomposition,
        active_tops: Sequence[int],
        store: Dict[int, Set[int]],
        threshold: int,
    ) -> None:
        """``store``: node -> accumulated claim set (mutated in place);
        ``threshold``: the ``2c`` break limit is ``2 * threshold``."""
        self.tree = tree
        self.net = tree.net
        self.hpd = hpd
        self.store = store
        self.break_at = 2 * max(1, threshold)

        active_ids = {self.net.uid[t] for t in active_tops}
        self._on_active_path = [
            hpd.path_id[v] in active_ids for v in range(self.net.n)
        ]
        self.max_length = max(
            (hpd.path_length[t] for t in active_tops), default=1
        )
        self.schedule = doubling_schedule(self.max_length, max(1, threshold))
        self.end_tick = (
            self.schedule[-1][0] + self.schedule[-1][1] + 1
            if self.schedule
            else 2
        )
        #: claims recorded this wave: node -> parts that crossed its parent edge
        self.claimed_up: Dict[int, Set[int]] = {}
        self.broken: Set[int] = set()
        #: per-node outgoing convoy (list of (pid, hops_left)), emitted 1/tick
        self._emit: Dict[int, List[Tuple[int, int]]] = {}
        self._iter_started: Set[int] = set()

    # ------------------------------------------------------------------
    def _path_parent(self, v: int) -> int:
        return -1 if self.hpd.path_top[v] else self.tree.parent[v]

    def _start_iteration(self, ctx: Context, i: int) -> None:
        period = 1 << (i + 1)
        offset = 1 << i
        for v in range(self.net.n):
            if not self._on_active_path[v] or self.hpd.path_top[v]:
                continue
            if self.hpd.position[v] % period != offset:
                continue
            pending = self.store.get(v)
            if not pending:
                continue
            if len(pending) >= self.break_at:
                self.broken.add(v)
                pending.clear()
                continue
            convoy = [(pid, offset) for pid in sorted(pending)]
            pending.clear()
            self._emit.setdefault(v, []).extend(convoy)
            ctx.wake(v)

    def _emit_one(self, ctx: Context, v: int) -> None:
        queue = self._emit.get(v)
        if not queue:
            return
        pid, hops = queue.pop(0)
        parent = self._path_parent(v)
        if parent < 0 or v in self.broken:
            # Absorb: the top of the path (or a broken node) keeps the id.
            self.store.setdefault(v, set()).add(pid)
        else:
            self.claimed_up.setdefault(v, set()).add(pid)
            ctx.send(v, parent, ("s", pid, hops - 1))
        if queue:
            ctx.wake(v)

    def on_start(self, ctx: Context) -> None:
        # A coordinator node drives the global schedule by waking itself;
        # every node knows the schedule (it is a function of c and L only),
        # so this costs no messages.
        for v in range(self.net.n):
            if self._on_active_path[v]:
                ctx.wake(v)

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        # Global schedule: start iteration i exactly at its tick.
        for i, (start, _span) in enumerate(self.schedule):
            if ctx.tick == start and i not in self._iter_started:
                self._iter_started.add(i)
                self._start_iteration(ctx, i)
        for _sender, payload in inbox:
            _tag, pid, hops = payload
            if hops == 0 or self.hpd.path_top[node] or node in self.broken:
                self.store.setdefault(node, set()).add(pid)
            else:
                self._emit.setdefault(node, []).append((pid, hops))
                ctx.wake(node)
        self._emit_one(ctx, node)
        # Keep the schedule alive until the last iteration has started.
        if ctx.tick < self.end_tick and node == self._clock_node(ctx):
            ctx.wake(node)

    def _clock_node(self, ctx: Context) -> int:
        # The minimum active node acts as the (message-free) clock.
        return self._clock

    def prepare_clock(self) -> None:
        active = [v for v in range(self.net.n) if self._on_active_path[v]]
        self._clock = min(active) if active else 0


class LightCrossProgram(Program):
    """Ship each finished path top's claim set across its light parent edge.

    One part id per round per edge (a pipelined stream); each crossing
    claims the light edge for that part and deposits the id in the
    receiving node's store for its own path's later wave.
    """

    name = "alg8_light_cross"

    def __init__(
        self,
        tree: RootedForest,
        tops: Sequence[int],
        store: Dict[int, Set[int]],
    ) -> None:
        self.tree = tree
        self.tops = tops
        self.store = store
        self.claimed_up: Dict[int, Set[int]] = {}
        self._queues: Dict[int, List[int]] = {}

    def on_start(self, ctx: Context) -> None:
        for top in self.tops:
            if self.tree.parent[top] < 0:
                continue  # the root path's claims end at the root
            pending = sorted(self.store.get(top, ()))
            if pending:
                self.store[top].clear()
                self._queues[top] = list(pending)
                ctx.wake(top)

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        for _sender, payload in inbox:
            _tag, pid = payload
            self.store.setdefault(node, set()).add(pid)
        queue = self._queues.get(node)
        if queue:
            pid = queue.pop(0)
            parent = self.tree.parent[node]
            self.claimed_up.setdefault(node, set()).add(pid)
            ctx.send(node, parent, ("x", pid))
            if queue:
                ctx.wake(node)


def run_path_doubling_wave(
    engine: Engine,
    tree: RootedForest,
    hpd: HeavyPathDecomposition,
    active_tops: Sequence[int],
    store: Dict[int, Set[int]],
    threshold: int,
    ledger: CostLedger,
    wave_name: str,
) -> Dict[int, Set[int]]:
    """Run Algorithm 7 on the given paths, then cross their light edges.

    Returns the union of claims recorded (node -> part ids that crossed the
    node's parent edge).  ``store`` is mutated: consumed at senders,
    deposited at absorbers and across light edges.
    """
    program = PathDoublingProgram(tree, hpd, active_tops, store, threshold)
    program.prepare_clock()
    program.name = f"{wave_name}_doubling"
    stats = engine.run(program, max_ticks=program.end_tick + 4)
    ledger.charge(stats)

    longest_stream = max(
        (len(store.get(top, ())) for top in active_tops), default=1
    )
    cross = LightCrossProgram(tree, active_tops, store)
    cross.name = f"{wave_name}_cross"
    stats = engine.run(cross, max_ticks=8 + longest_stream)
    ledger.charge(stats)

    claims: Dict[int, Set[int]] = {}
    for source in (program.claimed_up, cross.claimed_up):
        for v, pids in source.items():
            claims.setdefault(v, set()).update(pids)
    return claims
