"""Aggregation functions for Part-Wise Aggregation.

Definition 1.1 requires ``f`` to be commutative and associative over
O(log n)-bit values.  An :class:`Aggregation` bundles the combine function
with an explicit identity (``None`` is reserved by the PA machinery for
"no value yet" and is never passed to ``combine``).

The stock aggregations cover every use in the paper: MIN/MAX (leader
election, minimum outgoing edge), SUM/COUNT (part sizes, block counts,
cut weights), OR/AND (predicate verification), XOR (sketches), and
MIN_TUPLE / MAX_TUPLE for lexicographic tuple values such as
``(weight, uid_u, uid_v)`` in Boruvka's algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional


@dataclass(frozen=True)
class Aggregation:
    """A commutative, associative combine over O(log n)-bit values."""

    name: str
    combine: Callable[[Any, Any], Any]

    def fold(self, values) -> Any:
        """Combine an iterable of values; ``None`` entries are skipped.

        Returns ``None`` when no value is present, mirroring how the
        distributed machinery treats parts with no contributing node.
        """
        acc = None
        for value in values:
            if value is None:
                continue
            acc = value if acc is None else self.combine(acc, value)
        return acc

    def merge(self, a: Any, b: Any) -> Any:
        """Combine two possibly-``None`` partial aggregates."""
        if a is None:
            return b
        if b is None:
            return a
        return self.combine(a, b)


MIN = Aggregation("min", min)
MAX = Aggregation("max", max)
SUM = Aggregation("sum", lambda a, b: a + b)
#: Boolean OR/AND normalised to {0, 1} so the combine is commutative over
#: arbitrary truthy values (``a or b`` alone would return whichever operand
#: came first).
OR = Aggregation("or", lambda a, b: 1 if (a or b) else 0)
AND = Aggregation("and", lambda a, b: 1 if (a and b) else 0)
XOR = Aggregation("xor", lambda a, b: a ^ b)

#: Lexicographic minimum over equal-length tuples (e.g. minimum-weight
#: outgoing edge represented as (weight, uid_u, uid_v)).
MIN_TUPLE = Aggregation("min_tuple", min)
MAX_TUPLE = Aggregation("max_tuple", max)


def count_aggregation() -> Aggregation:
    """SUM specialised for counting: combine adds, callers feed 1s."""
    return SUM


def validate_aggregation(agg: Aggregation, samples) -> None:
    """Spot-check commutativity and associativity on sample values.

    Used by tests and by :func:`repro.core.pa.solve_pa` in paranoid mode to
    catch user-supplied combine functions that are not actually
    commutative/associative (a silent correctness hazard in PA).
    """
    samples = list(samples)
    for a in samples:
        for b in samples:
            ab = agg.combine(a, b)
            ba = agg.combine(b, a)
            if ab != ba:
                raise ValueError(
                    f"{agg.name} is not commutative on ({a!r}, {b!r})"
                )
    for a in samples:
        for b in samples:
            for c in samples:
                left = agg.combine(agg.combine(a, b), c)
                right = agg.combine(a, agg.combine(b, c))
                if left != right:
                    raise ValueError(
                        f"{agg.name} is not associative on ({a!r}, {b!r}, {c!r})"
                    )
