"""Per-edge message queues with priority scheduling (Lemma 4.2 discipline).

Several phases route many parts' packets over shared spanning-tree edges.
CONGEST permits one message per directed edge per round, so contending
packets must queue.  Lemma 4.2's BlockRoute resolves contention by
forwarding the packet whose block root is shallowest, breaking ties by
block id; the randomized variant instead allows a capacity of
``Theta(log n)`` per meta-round (Section 4.2).

:class:`QueuedProgram` factors this discipline out: subclasses call
:meth:`enqueue` instead of ``ctx.send``; the base class flushes up to
``capacity`` packets per directed edge per tick in priority order, waking
itself while queues are nonempty, and reports every dequeue to
:meth:`on_dequeue` so subclasses can record which edges physically carried
which packets (the wave reversal depends on this record).

Two internal representations, chosen per flush:

* **batch fast path** — packets a node enqueues while it is being
  activated go to a plain per-activation list.  If the node has no edge
  backlog and the batch has no duplicate destinations, every packet is
  simply the head of its (empty) edge queue, so the flush sends them
  directly: no heaps, no per-edge dicts.  This is the steady state of
  every forwarding wave.
* **per-edge heaps** — any backlog, any duplicate destination, or any
  enqueue from outside the owner's activation (``on_start`` injections)
  falls back to ``{src: {dst: heap of (priority, seq, payload)}}``, the
  faithful Lemma 4.2 discipline.  Selection order is identical in both
  representations; only the bookkeeping cost differs.

:class:`QueuedProgram` is a :class:`~repro.congest.engine.BulkProgram`:
the engine delivers each tick's whole activation batch in one call, and
the per-node loop here keeps the handler, queue table and flush logic in
local variables.  Subclasses that need a hook on *every* activation —
mail or not — override :meth:`on_activate` (e.g. the PA wave's lazy
leader start) rather than ``on_node``.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from ..congest.engine import BulkProgram, Context, Inbox

Priority = Tuple  # lexicographically ordered


class QueuedProgram(BulkProgram):
    """Engine program with per-directed-edge priority queues."""

    def __init__(self, capacity: int = 1) -> None:
        self.capacity = capacity
        #: src -> dst -> heap of (priority, seq, payload).  A dst key is
        #: removed as soon as its heap drains, so ``_queues[v]`` holds
        #: exactly v's backlogged edges.
        self._queues: Dict[int, Dict[int, List[Tuple[Priority, int, object]]]] = {}
        #: Packets enqueued during the current activation of
        #: ``_active_node``: (dst, priority, seq, payload).
        self._batch: List[Tuple[int, Priority, int, object]] = []
        #: Scratch (dst, payload) list reused by the slow-path flush.
        self._outgoing: List[Tuple[int, object]] = []
        self._active_node = -1
        self._seq = 0
        # Skip the per-packet on_dequeue dispatch when the subclass never
        # overrode the hook (most programs don't record dequeues); same
        # for the per-activation on_activate hook.
        self._notify_dequeue = (
            type(self).on_dequeue is not QueuedProgram.on_dequeue
        )
        self._notify_activate = (
            type(self).on_activate is not QueuedProgram.on_activate
        )
        # A subclass that still overrides on_node keeps its semantics:
        # the bulk path falls back to dispatching through it per node.
        self._bulk_via_on_node = (
            type(self).on_node is not QueuedProgram.on_node
        )

    # ------------------------------------------------------------------
    # Subclass API
    # ------------------------------------------------------------------
    def enqueue(
        self, ctx: Context, src: int, dst: int, priority: Priority, payload: object
    ) -> None:
        """Queue ``payload`` for directed edge (src, dst).

        A packet enqueued while ``src`` itself is being activated needs no
        wakeup: the flush at the end of this very activation either sends
        it this tick (and a sent message keeps the engine ticking) or
        leaves a backlog (and the flush re-wakes the node itself).
        Packets injected from outside — ``on_start``, or on behalf of
        another node — do wake their sender, which is what drives the
        first flush.
        """
        self._seq += 1
        if src == self._active_node:
            self._batch.append((dst, priority, self._seq, payload))
        else:
            by_dst = self._queues.get(src)
            if by_dst is None:
                by_dst = self._queues[src] = {}
            queue = by_dst.get(dst)
            if queue is None:
                queue = by_dst[dst] = []
            heappush(queue, (priority, self._seq, payload))
            ctx.wake(src)

    def on_dequeue(self, src: int, dst: int, payload: object) -> None:
        """Hook: called when a queued packet is physically sent."""

    def on_activate(self, ctx: Context, node: int) -> None:
        """Hook: called at the start of every activation (mail or not)."""

    def handle(self, ctx: Context, node: int, inbox: Inbox) -> None:
        """Subclass message handler (replaces ``on_node``)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Engine plumbing
    # ------------------------------------------------------------------
    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        self._active_node = node
        if self._notify_activate:
            self.on_activate(ctx, node)
        if inbox:
            self.handle(ctx, node, inbox)
        self._active_node = -1
        self._flush(ctx, node)

    def on_bulk(self, ctx: Context, batch: List[Tuple[int, Inbox]]) -> None:
        if self._bulk_via_on_node:
            on_node = self.on_node
            for node, inbox in batch:
                on_node(ctx, node, inbox)
            return
        handle = self.handle
        flush = self._flush
        notify_activate = self._notify_activate
        notify_dequeue = self._notify_dequeue
        queues = self._queues
        my_batch = self._batch
        send = ctx.send
        send_batch = ctx.send_batch
        for node, inbox in batch:
            self._active_node = node
            if notify_activate:
                self.on_activate(ctx, node)
            if inbox:
                handle(ctx, node, inbox)
            self._active_node = -1
            # Inlined head of _flush: the overwhelmingly common outcomes
            # of an activation are "nothing to send", "one packet, no
            # backlog", and "a few packets to distinct destinations, no
            # backlog" — handle all three without a call.
            if node not in queues:
                k = len(my_batch)
                if k == 0:
                    continue
                if k == 1:
                    dst, _priority, _seq, payload = my_batch[0]
                    send(node, dst, payload)
                    if notify_dequeue:
                        self.on_dequeue(node, dst, payload)
                    my_batch.clear()
                    continue
                if k == 2:
                    distinct = my_batch[0][0] != my_batch[1][0]
                else:
                    distinct = len({entry[0] for entry in my_batch}) == k
                if distinct:
                    send_batch(node, my_batch)
                    if notify_dequeue:
                        on_dequeue = self.on_dequeue
                        for dst, _priority, _seq, payload in my_batch:
                            on_dequeue(node, dst, payload)
                    my_batch.clear()
                    continue
            flush(ctx, node)

    def _flush(self, ctx: Context, node: int) -> None:
        """Ship this activation's batch / backlog (up to capacity per edge)."""
        batch = self._batch
        by_dst = self._queues.get(node)
        if by_dst is None:
            if not batch:
                return
            # Fast path: no backlog.  With all-distinct destinations each
            # packet heads its own empty queue, so send directly.
            k = len(batch)
            if k == 1:
                dst, _priority, _seq, payload = batch[0]
                ctx.send(node, dst, payload)
                if self._notify_dequeue:
                    self.on_dequeue(node, dst, payload)
                batch.clear()
                return
            if k == 2:
                distinct = batch[0][0] != batch[1][0]
            else:
                distinct = len({entry[0] for entry in batch}) == k
            if distinct:
                ctx.send_batch(node, batch)
                if self._notify_dequeue:
                    on_dequeue = self.on_dequeue
                    for dst, _priority, _seq, payload in batch:
                        on_dequeue(node, dst, payload)
                batch.clear()
                return
        # Slow path: merge the batch into the per-edge heaps, then flush
        # up to ``capacity`` packets per edge in (priority, seq) order.
        if batch:
            if by_dst is None:
                by_dst = self._queues[node] = {}
            for dst, priority, seq, payload in batch:
                queue = by_dst.get(dst)
                if queue is None:
                    queue = by_dst[dst] = []
                heappush(queue, (priority, seq, payload))
            batch.clear()
        elif not by_dst:
            return
        capacity = self.capacity
        outgoing = self._outgoing
        exhausted: Optional[List[int]] = None
        for dst, queue in by_dst.items():
            if capacity == 1 or len(queue) == 1:
                outgoing.append((dst, heappop(queue)[2]))
            else:
                sent = 0
                while queue and sent < capacity:
                    outgoing.append((dst, heappop(queue)[2]))
                    sent += 1
            if not queue:
                if exhausted is None:
                    exhausted = [dst]
                else:
                    exhausted.append(dst)
        ctx.send_batch(node, outgoing)
        if self._notify_dequeue:
            on_dequeue = self.on_dequeue
            for dst, payload in outgoing:
                on_dequeue(node, dst, payload)
        outgoing.clear()
        if exhausted is not None:
            for dst in exhausted:
                del by_dst[dst]
        if by_dst:
            ctx.wake(node)
        else:
            del self._queues[node]
