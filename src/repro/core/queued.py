"""Per-edge message queues with priority scheduling (Lemma 4.2 discipline).

Several phases route many parts' packets over shared spanning-tree edges.
CONGEST permits one message per directed edge per round, so contending
packets must queue.  Lemma 4.2's BlockRoute resolves contention by
forwarding the packet whose block root is shallowest, breaking ties by
block id; the randomized variant instead allows a capacity of
``Theta(log n)`` per meta-round (Section 4.2).

:class:`QueuedProgram` factors this discipline out: subclasses call
:meth:`enqueue` instead of ``ctx.send``; the base class flushes up to
``capacity`` packets per directed edge per tick in priority order, waking
itself while queues are nonempty, and reports every dequeue to
:meth:`on_dequeue` so subclasses can record which edges physically carried
which packets (the wave reversal depends on this record).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from ..congest.engine import Context, Inbox, Program

Priority = Tuple  # lexicographically ordered


class QueuedProgram(Program):
    """Engine program with per-directed-edge priority queues."""

    def __init__(self, capacity: int = 1) -> None:
        self.capacity = capacity
        self._queues: Dict[Tuple[int, int], List[Tuple[Priority, int, object]]] = {}
        self._pending_by_node: Dict[int, Set[int]] = {}
        self._seq = 0

    # ------------------------------------------------------------------
    # Subclass API
    # ------------------------------------------------------------------
    def enqueue(
        self, ctx: Context, src: int, dst: int, priority: Priority, payload: object
    ) -> None:
        """Queue ``payload`` for directed edge (src, dst)."""
        queue = self._queues.get((src, dst))
        if queue is None:
            queue = []
            self._queues[(src, dst)] = queue
        self._seq += 1
        heapq.heappush(queue, (priority, self._seq, payload))
        self._pending_by_node.setdefault(src, set()).add(dst)
        ctx.wake(src)

    def on_dequeue(self, src: int, dst: int, payload: object) -> None:
        """Hook: called when a queued packet is physically sent."""

    def handle(self, ctx: Context, node: int, inbox: Inbox) -> None:
        """Subclass message handler (replaces ``on_node``)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Engine plumbing
    # ------------------------------------------------------------------
    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        if inbox:
            self.handle(ctx, node, inbox)
        self._flush(ctx, node)

    def _flush(self, ctx: Context, node: int) -> None:
        dsts = self._pending_by_node.get(node)
        if not dsts:
            return
        exhausted = []
        for dst in dsts:
            queue = self._queues[(node, dst)]
            sent = 0
            while queue and sent < self.capacity:
                _priority, _seq, payload = heapq.heappop(queue)
                ctx.send(node, dst, payload)
                self.on_dequeue(node, dst, payload)
                sent += 1
            if not queue:
                exhausted.append(dst)
        for dst in exhausted:
            dsts.discard(dst)
        if dsts:
            ctx.wake(node)
