"""Tree-restricted low-congestion shortcuts (Definitions 2.1-2.3).

A shortcut assigns to each part ``P_i`` a set of spanning-tree edges
``H_i ⊆ E[T]`` that the part may use for routing.  We represent the
assignment node-locally, as the distributed constructions produce it:

* ``up_parts[v]`` — the set of part ids whose ``H_i`` contains the tree
  edge (v, parent(v)).  Node ``v`` knows this for its own parent edge, and
  (because claims physically crossed the edge) the parent knows it for each
  child edge.  This is exactly the knowledge the PA wave needs to route
  block messages up and down.

Quality measures:

* **congestion** ``c`` — max over tree edges of how many parts use it
  (Definition 2.1, condition 1);
* **block parameter** ``b`` — max over parts of the number of *nontrivial*
  blocks: connected components of ``(P_i ∪ V(H_i), H_i)`` containing at
  least one edge (Definition 2.3).  Components that are isolated vertices
  are not counted: counting them would make ``b = Θ(|P_i|)`` for every
  shortcut and trivialize the measure, whereas the paper's own Figure 1
  example has ``b = 2`` for multi-node parts, and the role of ``b`` in the
  analysis (Lemma 4.4: "b iterations suffice", one new block activated per
  wave) concerns edge-bearing blocks only.

Block annotations (root id and root depth per (node, part)) are what the
BlockRoute scheduling of Lemma 4.2 prioritizes on; they are established by
a distributed annotation phase in :mod:`repro.core.blocks`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..congest.errors import ShortcutValidationError
from ..congest.network import Network
from ..graphs.partitions import Partition
from .trees import ROOT, RootedForest


class Shortcut:
    """A ``T``-restricted shortcut: per-node sets of parts using the parent edge.

    ``up_parts[v]`` may be any iterable of part ids; the root's entry must
    be empty (the root has no parent edge).
    """

    def __init__(
        self,
        tree: RootedForest,
        partition: Partition,
        up_parts: Sequence[Iterable[int]],
    ) -> None:
        if len(tree.roots) != 1:
            raise ShortcutValidationError(
                "tree-restricted shortcuts require a single spanning tree"
            )
        if len(up_parts) != tree.net.n:
            raise ShortcutValidationError("up_parts must cover all nodes")
        self.tree = tree
        self.partition = partition
        self.up_parts: Tuple[FrozenSet[int], ...] = tuple(
            frozenset(parts) for parts in up_parts
        )
        root = tree.roots[0]
        if self.up_parts[root]:
            raise ShortcutValidationError("the tree root has no parent edge")
        for v, parts in enumerate(self.up_parts):
            if parts and tree.parent[v] < 0:
                raise ShortcutValidationError(
                    f"node {v} has shortcut parts but no parent edge"
                )
            for pid in parts:
                if not 0 <= pid < partition.num_parts:
                    raise ShortcutValidationError(f"unknown part id {pid}")

    # ------------------------------------------------------------------
    # Quality measures (orchestrator-side; the distributed counterparts
    # are the verification phases in repro.core.verify)
    #
    # ``up_parts`` is immutable after construction, so everything derived
    # from it is computed once and cached: the per-part edge grouping is a
    # single O(sum_i |H_i|) pass instead of an O(n) scan per part, which
    # is the difference between O(m) and O(n * num_parts) for the quality
    # queries issued by every PA wave.
    # ------------------------------------------------------------------
    def congestion(self) -> int:
        """Max number of parts sharing one tree edge (>= 1 by convention)."""
        cached = self.__dict__.get("_congestion")
        if cached is None:
            cached = max((len(parts) for parts in self.up_parts), default=0) or 1
            self._congestion = cached
        return cached

    def _edges_by_part(self) -> Dict[int, List[Tuple[int, int]]]:
        """Cached {pid: [(child, parent), ...]} with edges in node order."""
        cached = self.__dict__.get("_edges_by_part_cache")
        if cached is None:
            cached = {}
            parent = self.tree.parent
            for v, parts in enumerate(self.up_parts):
                if parts:
                    edge = (v, parent[v])
                    for pid in parts:
                        bucket = cached.get(pid)
                        if bucket is None:
                            cached[pid] = [edge]
                        else:
                            bucket.append(edge)
            self._edges_by_part_cache = cached
        return cached

    def edges_of_part(self, pid: int) -> List[Tuple[int, int]]:
        """The (child, parent) tree edges of ``H_pid`` (a fresh list)."""
        return list(self._edges_by_part().get(pid, ()))

    def total_shortcut_edges(self) -> int:
        """Sum over parts of |H_i| (each edge counted with multiplicity)."""
        return sum(len(parts) for parts in self.up_parts)

    def blocks_of_part(self, pid: int) -> List[Set[int]]:
        """Nontrivial blocks of part ``pid``: edge-bearing H_i components."""
        edges = self._edges_by_part().get(pid, ())
        if not edges:
            return []
        parent: Dict[int, int] = {}

        def find(x: int) -> int:
            root = x
            while parent.get(root, root) != root:
                root = parent[root]
            while parent.get(x, x) != x:
                parent[x], x = root, parent[x]
            return root

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for u, v in edges:
            parent.setdefault(u, u)
            parent.setdefault(v, v)
            union(u, v)
        groups: Dict[int, Set[int]] = defaultdict(set)
        for node in parent:
            groups[find(node)].add(node)
        return list(groups.values())

    def block_parameter(self, pid: int) -> int:
        """Number of nontrivial blocks of part ``pid`` (>= 1 by convention).

        A part with no shortcut edges behaves like a single block in the
        wave analysis (its nodes communicate through part edges only).
        """
        return max(1, len(self.blocks_of_part(pid)))

    def block_parameters(self) -> List[int]:
        """Block parameter of every part.

        Computed for all parts in one vectorized pass: ``H_i`` is a
        subforest of ``T`` (edges are distinct parent edges), so its
        edge-bearing component count is ``#distinct endpoints - #edges``
        — every counted endpoint has an incident edge, and a forest with
        ``V`` vertices and ``E`` edges has ``V - E`` components.
        """
        cached = self.__dict__.get("_block_parameters")
        if cached is None:
            num_parts = self.partition.num_parts
            up_keys = self.up_key_array()
            if not up_keys.size:
                cached = [1] * num_parts
            else:
                P = max(1, num_parts)
                child = up_keys // P
                pid_arr = up_keys % P
                par = np.asarray(self.tree.parent, dtype=np.int64)[child]
                stride = self.tree.net.n + 1
                endpoints = np.unique(
                    np.concatenate(
                        [pid_arr * stride + child, pid_arr * stride + par]
                    )
                )
                vertex_counts = np.bincount(
                    endpoints // stride, minlength=num_parts
                )
                edge_counts = np.bincount(pid_arr, minlength=num_parts)
                cached = np.maximum(
                    1, vertex_counts - edge_counts
                ).tolist()
            self._block_parameters = cached
        return list(cached)

    def max_block_parameter(self) -> int:
        """The shortcut's block parameter ``b`` (max over parts)."""
        return max(self.block_parameters())

    def quality(self) -> Tuple[int, int]:
        """(block parameter b, congestion c) of this shortcut (cached)."""
        cached = self.__dict__.get("_quality")
        if cached is None:
            cached = self._quality = (
                self.max_block_parameter(), self.congestion()
            )
        return cached

    # ------------------------------------------------------------------
    def down_parts(self) -> List[Dict[int, FrozenSet[int]]]:
        """Per node: map child -> parts using the (child, node) edge.

        This is the "which child edges belong to H_i" knowledge a node needs
        to forward block messages downward; physically it was learned when
        the claims crossed the edge during construction.  The returned
        structure is cached (the shortcut is immutable) and shared between
        callers — treat it as read-only.
        """
        cached = self.__dict__.get("_down_parts")
        if cached is None:
            down: List[Dict[int, FrozenSet[int]]] = [
                dict() for _ in range(self.tree.net.n)
            ]
            for v, parts in enumerate(self.up_parts):
                if parts:
                    down[self.tree.parent[v]][v] = parts
            cached = self._down_parts = down
        return cached

    def down_csr(self) -> Tuple["np.ndarray", ...]:
        """Cached down-edge CSR for the array kernels.

        Returns ``(keys, starts, counts, children)``: unique sorted keys
        ``parent * P + pid`` (``P = num_parts``), and for each key the
        ascending child nodes whose parent edge belongs to ``H_pid`` —
        the flat-array form of :meth:`down_parts`, shared by every array
        kernel built on this (immutable) shortcut.
        """
        cached = self.__dict__.get("_down_csr")
        if cached is None:
            P = max(1, self.partition.num_parts)
            up_keys = self.up_key_array()
            children = up_keys // P
            keys = (
                np.asarray(self.tree.parent, dtype=np.int64)[children] * P
                + up_keys % P
            )
            if keys.size:
                order = np.lexsort((children, keys))
                skeys = keys[order]
                schildren = children[order]
                ukeys, starts = np.unique(skeys, return_index=True)
                counts = np.diff(np.append(starts, skeys.size))
            else:
                ukeys = starts = counts = schildren = keys
            cached = self._down_csr = (ukeys, starts, counts, schildren)
        return cached

    def up_key_array(self) -> "np.ndarray":
        """Cached sorted int64 keys ``v * P + pid`` over all up-edges."""
        cached = self.__dict__.get("_up_key_array")
        if cached is None:
            P = max(1, self.partition.num_parts)
            key_list: List[int] = []
            for v, parts in enumerate(self.up_parts):
                if parts:
                    base = v * P
                    key_list.extend(base + pid for pid in parts)
            cached = self._up_key_array = np.sort(
                np.asarray(key_list, dtype=np.int64)
            )
        return cached

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        b, c = self.quality()
        return f"Shortcut(parts={self.partition.num_parts}, b={b}, c={c})"


def empty_shortcut(tree: RootedForest, partition: Partition) -> Shortcut:
    """The trivial shortcut H_i = {} for all parts.

    PA remains correct with it (waves flood through part edges alone); it
    is the degenerate baseline for ablations.
    """
    return Shortcut(tree, partition, [frozenset() for _ in range(tree.net.n)])


def full_tree_shortcut(tree: RootedForest, partition: Partition) -> Shortcut:
    """H_i = all of E[T] for every part: block parameter 1, congestion N.

    The classic "just use the BFS tree for everyone" shortcut; round-poor
    (congestion = number of parts) but structurally simple.  Used by tests
    and by the naive baseline of Section 3.1.
    """
    n = tree.net.n
    all_parts = frozenset(range(partition.num_parts))
    up = [all_parts if tree.parent[v] >= 0 else frozenset() for v in range(n)]
    return Shortcut(tree, partition, up)


def star_shortcut_for_parts(
    tree: RootedForest, partition: Partition, pids: Iterable[int]
) -> Shortcut:
    """H_i = union of root paths of all members, for the selected parts.

    Gives each selected part a single block (rooted at the tree root) at
    the price of high congestion; handy for constructing known-(b, c)
    fixtures in tests.
    """
    n = tree.net.n
    up: List[Set[int]] = [set() for _ in range(n)]
    for pid in pids:
        for v in partition.members[pid]:
            node = v
            while tree.parent[node] >= 0:
                up[node].add(pid)
                node = tree.parent[node]
    return Shortcut(tree, partition, up)


def coarsen_shortcut(
    shortcut: Shortcut,
    new_partition: Partition,
    pid_map: Sequence[int],
) -> Shortcut:
    """Project a shortcut onto a coarsening of its partition.

    ``pid_map[old_pid] = new_pid`` must describe a merge-only coarsening
    (every old part maps into exactly one new part).  The coarsened
    shortcut is ``H'_j = union of H_i over old parts i mapping to j`` —
    node-locally this is just relabeling each ``up_parts`` entry, which is
    how the distributed counterpart works too: a node relabels the part
    ids on its parent edge when its part learns its new identity, at no
    extra communication (the relabel broadcast carries the id anyway).

    Congestion can only shrink (relabeled sets dedupe); the block
    parameter of a merged part can grow up to the sum of its
    constituents', which is why the runtime session *re-verifies* the
    coarsened quality with PA itself before adopting it (Algorithm 2, the
    paper's own device) and falls back to a fresh construction when the
    verified block count exceeds the budget.
    """
    up = [
        frozenset(pid_map[pid] for pid in parts) if parts else frozenset()
        for parts in shortcut.up_parts
    ]
    return Shortcut(shortcut.tree, new_partition, up)


def refine_shortcut(
    shortcut: Shortcut,
    new_partition: Partition,
    new_to_old: Sequence[int],
) -> Shortcut:
    """Project a shortcut onto a split-only refinement of its partition.

    ``new_to_old[new_pid] = old_pid`` must describe a refinement (every
    new part's members lie inside exactly one old part).  Each fragment
    inherits its ancestor's whole edge set: ``H'_j = H_i`` for every new
    part ``j`` refining old part ``i``.  Node-locally this is again a
    relabeling — when a part learns it split, the split broadcast carries
    the fragment ids, and every node holding ``i`` in an ``up_parts``
    entry substitutes the fragment id list; no extra communication.

    Unlike coarsening, *both* quality measures can degrade: a tree edge
    carried by a part that split into ``f`` fragments is now carried by
    all ``f`` (congestion multiplies by the split factor), and a fragment
    keeps blocks its members never touch (the block parameter can only
    shrink per part, but the verified count is what matters).  The
    runtime session therefore re-verifies the block parameter with PA
    itself *and* re-checks congestion against the general envelope,
    falling back to a fresh construction when either exceeds its budget
    (:meth:`repro.runtime.PASession.refine`).
    """
    fragments: List[List[int]] = [[] for _ in range(shortcut.partition.num_parts)]
    for new_pid, old_pid in enumerate(new_to_old):
        fragments[old_pid].append(new_pid)
    up = [
        frozenset(f for pid in parts for f in fragments[pid])
        if parts
        else frozenset()
        for parts in shortcut.up_parts
    ]
    return Shortcut(shortcut.tree, new_partition, up)


def validate_shortcut(shortcut: Shortcut) -> None:
    """Check Definition 2.2 invariants; raise on violation.

    Constructor checks already enforce H_i ⊆ E[T]; this validates the
    derived structures used by routing: every nontrivial block is a
    connected subtree of T, and block roots are unique per block.
    """
    tree = shortcut.tree
    for pid in range(shortcut.partition.num_parts):
        for block in shortcut.blocks_of_part(pid):
            roots_in_block = [
                v
                for v in block
                if tree.parent[v] < 0 or pid not in shortcut.up_parts[v]
            ]
            if len(roots_in_block) != 1:
                raise ShortcutValidationError(
                    f"part {pid} has a block with {len(roots_in_block)} roots"
                )


def shortcut_hint_for_family(
    family: str, n: int, diameter: int, param: Optional[int] = None
) -> Tuple[int, int]:
    """Paper Table 1: the (b, c) a family is known to admit.

    Used as construction targets by benchmarks; the construction verifies
    and adapts via doubling regardless, so a wrong hint costs rounds, not
    correctness.

    Delegates to the family registry (:mod:`repro.families.registry`),
    which evaluates the one set of Table 1 formulas kept in
    :mod:`repro.analysis.theory` — the envelopes have a single source of
    truth.  ``param`` is the family parameter (genus g, treewidth t,
    pathwidth p); omitted, each family's canonical workload parameter is
    used.  Raises ``KeyError`` listing the known families for an unknown
    name.
    """
    from ..families.registry import family_hint

    return family_hint(family, n, diameter, param=param)
