"""Engine programs over rooted forests: broadcast, convergecast, BFS.

These are the communication workhorses every higher-level algorithm calls.
All of them operate on *forests* — many trees in parallel in a single
phase — because the paper's algorithms always run all parts / sub-parts /
fragments concurrently, relying on the trees being edge-disjoint.

Costs (metered, but also the design targets):

* :func:`broadcast` — rounds = max tree height, messages = #non-root nodes
  reached.
* :func:`convergecast` — rounds = max tree height + 1, messages =
  #non-root nodes.
* :func:`claim_bfs` — rounds <= depth limit + 2, messages <= 2m + n
  (each node announces its claim once per incident edge, plus one
  parent-ack).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..congest.engine import BulkProgram, Context, Engine, Inbox, Program
from ..congest.ledger import CostLedger, PhaseStats
from ..congest.network import Network
from .aggregation import Aggregation
from .trees import ABSENT, ROOT, RootedForest


class BroadcastProgram(BulkProgram):
    """Broadcast a value from each tree root down its tree.

    ``root_values[r]`` is the value injected at root ``r``; after the phase
    ``received[v]`` holds the value of v's tree for every forest node.
    """

    name = "tree_broadcast"

    def __init__(self, forest: RootedForest, root_values: Dict[int, object]) -> None:
        self.forest = forest
        self.root_values = root_values
        self.received: Dict[int, object] = {}

    def on_start(self, ctx: Context) -> None:
        for root, value in self.root_values.items():
            if self.forest.parent[root] != ROOT:
                raise ValueError(f"{root} is not a root of the forest")
            self.received[root] = value
            for child in self.forest.children[root]:
                ctx.send(root, child, value)

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        for _sender, value in inbox:
            self.received[node] = value
            for child in self.forest.children[node]:
                ctx.send(node, child, value)

    def on_bulk(self, ctx: Context, batch) -> None:
        # One call per tick: the whole broadcast frontier at once.
        received = self.received
        children = self.forest.children
        send = ctx.send
        for node, inbox in batch:
            for _sender, value in inbox:
                received[node] = value
                for child in children[node]:
                    send(node, child, value)


class ConvergecastProgram(BulkProgram):
    """Aggregate per-node values up to each tree root.

    After the phase, ``at_root[r]`` is the aggregate over r's tree and
    ``partial[v]`` is the aggregate over v's subtree (useful for subtree
    statistics).  ``values[v]`` may be ``None`` (contributes nothing).
    """

    name = "tree_convergecast"

    def __init__(
        self,
        forest: RootedForest,
        agg: Aggregation,
        values: Sequence[object],
    ) -> None:
        self.forest = forest
        self.agg = agg
        self.values = values
        self.at_root: Dict[int, object] = {}
        self.partial: Dict[int, object] = {}
        self._pending: Dict[int, int] = {}

    def on_start(self, ctx: Context) -> None:
        for v in self.forest.members():
            self._pending[v] = len(self.forest.children[v])
            self.partial[v] = self.values[v]
        for v in self.forest.members():
            if self._pending[v] == 0:
                self._fire(ctx, v)

    def _fire(self, ctx: Context, v: int) -> None:
        parent = self.forest.parent[v]
        if parent == ROOT:
            self.at_root[v] = self.partial[v]
        else:
            ctx.send(v, parent, self.partial[v])

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        for _sender, value in inbox:
            self.partial[node] = self.agg.merge(self.partial[node], value)
            self._pending[node] -= 1
        if self._pending[node] == 0:
            self._pending[node] = -1  # fire exactly once
            self._fire(ctx, node)

    def on_bulk(self, ctx: Context, batch) -> None:
        partial = self.partial
        pending = self._pending
        merge = self.agg.merge
        fire = self._fire
        for node, inbox in batch:
            acc = partial[node]
            left = pending[node]
            for _sender, value in inbox:
                acc = merge(acc, value)
                left -= 1
            partial[node] = acc
            if left == 0:
                left = -1  # fire exactly once
                fire(ctx, node)
            pending[node] = left


class ClaimBfsProgram(Program):
    """Parallel BFS claiming from multiple sources.

    Each source ``s`` starts with token ``tokens[s]``; tokens propagate one
    hop per round and every unclaimed node adopts the smallest token it
    hears first (ties by token order, which callers arrange to be uid
    order).  ``allowed(u, v)`` restricts which edges the BFS may cross —
    e.g. "stay inside part P_i".  ``max_depth`` bounds the claim radius.

    Outputs: ``token_of[v]`` (claim token or None), ``parent_of[v]``,
    ``depth_of[v]``, and ``children_of[v]`` (filled by explicit acks).
    """

    name = "claim_bfs"

    def __init__(
        self,
        net: Network,
        tokens: Dict[int, object],
        allowed: Optional[Callable[[int, int], bool]] = None,
        max_depth: Optional[int] = None,
    ) -> None:
        self.net = net
        self.tokens = tokens
        self.allowed = allowed
        self.max_depth = max_depth
        self.token_of: List[Optional[object]] = [None] * net.n
        self.parent_of: List[int] = [ABSENT] * net.n
        self.depth_of: List[int] = [-1] * net.n
        self.children_of: List[List[int]] = [[] for _ in range(net.n)]

    def _spread(self, ctx: Context, node: int, depth: int, exclude: int = -1) -> None:
        if self.max_depth is not None and depth >= self.max_depth:
            return
        token = self.token_of[node]
        for nb in self.net.neighbors[node]:
            if nb == exclude:
                continue  # the parent gets the token inside the child ack
            if self.allowed is None or self.allowed(node, nb):
                ctx.send(node, nb, ("claim", token, depth + 1))

    def on_start(self, ctx: Context) -> None:
        for source, token in self.tokens.items():
            self.token_of[source] = token
            self.parent_of[source] = ROOT
            self.depth_of[source] = 0
        for source in self.tokens:
            self._spread(ctx, source, 0)

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        best: Optional[Tuple[object, int, int]] = None
        for sender, payload in inbox:
            kind = payload[0]
            if kind == "claim":
                _tag, token, depth = payload
                candidate = (token, depth, sender)
                if best is None or candidate < best:
                    best = candidate
            elif kind == "child":
                self.children_of[node].append(sender)
        if best is None or self.token_of[node] is not None:
            return
        token, depth, sender = best
        self.token_of[node] = token
        self.parent_of[node] = sender
        self.depth_of[node] = depth
        ctx.send(node, sender, ("child", token))
        self._spread(ctx, node, depth, exclude=sender)

    def forest(self) -> RootedForest:
        """The claimed BFS forest (roots = sources that claimed anyone)."""
        return RootedForest(self.net, self.parent_of)


class FloodMinProgram(BulkProgram):
    """Flood the minimum token through a (restricted) graph.

    Every participating node starts with its own token; whenever a node
    hears a smaller token it adopts it, re-points its parent at the sender,
    and re-announces.  At quiescence every connected region agrees on its
    minimum token and the parent pointers form a BFS-like tree rooted at
    the minimum's holder.

    This is the substitute for Kutten et al.'s leader election (see
    DESIGN.md, substitution 3): same O(D) rounds; messages are metered.
    """

    name = "flood_min"

    def __init__(
        self,
        net: Network,
        tokens: Dict[int, object],
        allowed: Optional[Callable[[int, int], bool]] = None,
    ) -> None:
        self.net = net
        self.initial = tokens
        self.allowed = allowed
        self.best: Dict[int, object] = {}
        self.parent_of: Dict[int, int] = {}

    def _announce(self, ctx: Context, node: int) -> None:
        token = self.best[node]
        for nb in self.net.neighbors[node]:
            if self.allowed is None or self.allowed(node, nb):
                ctx.send(node, nb, token)

    def on_start(self, ctx: Context) -> None:
        for node, token in self.initial.items():
            self.best[node] = token
            self.parent_of[node] = ROOT
        for node in self.initial:
            self._announce(ctx, node)

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        improved = False
        for sender, token in inbox:
            if node not in self.best or token < self.best[node]:
                self.best[node] = token
                self.parent_of[node] = sender
                improved = True
        if improved:
            self._announce(ctx, node)

    def on_bulk(self, ctx: Context, batch) -> None:
        best = self.best
        parent_of = self.parent_of
        neighbors = self.net.neighbors
        allowed = self.allowed
        send = ctx.send
        missing = object()
        for node, inbox in batch:
            mine = best.get(node, missing)
            improved = False
            for sender, token in inbox:
                if mine is missing or token < mine:
                    mine = token
                    parent_of[node] = sender
                    improved = True
            if improved:
                best[node] = mine
                if allowed is None:
                    for nb in neighbors[node]:
                        send(node, nb, mine)
                else:
                    for nb in neighbors[node]:
                        if allowed(node, nb):
                            send(node, nb, mine)


def broadcast(
    engine: Engine,
    forest: RootedForest,
    root_values: Dict[int, object],
    ledger: CostLedger,
    name: str = "tree_broadcast",
) -> Dict[int, object]:
    """Run a forest broadcast phase; returns per-node received values."""
    program = BroadcastProgram(forest, root_values)
    program.name = name
    stats = engine.run(program, max_ticks=forest.height() + 2)
    ledger.charge(stats)
    return program.received


def _array_convergecast(
    engine: Engine,
    forest: RootedForest,
    agg: Aggregation,
    values: Sequence[object],
):
    """Build the array kernel for this convergecast, or None if the scalar
    program must run (non-int values, unsupported combine, overflow risk).
    """
    if not getattr(engine, "use_arrays", False):
        return None
    from .aggregation import MAX, MIN, SUM

    if agg is SUM:
        op = "sum"
    elif agg is MIN:
        op = "min"
    elif agg is MAX:
        op = "max"
    else:
        return None
    import numpy as np

    col = np.zeros(forest.net.n, dtype=np.int64)
    total = 0
    for v in forest.members():
        value = values[v]
        if type(value) is not int:
            return None
        total += value if value >= 0 else -value
        col[v] = value
    if total >= 1 << 62:  # folded sums must stay exact in int64
        return None
    from .array_kernels import ConvergecastArrayKernel

    return ConvergecastArrayKernel(forest, [col], op=op)


def convergecast(
    engine: Engine,
    forest: RootedForest,
    agg: Aggregation,
    values: Sequence[object],
    ledger: CostLedger,
    name: str = "tree_convergecast",
) -> Tuple[Dict[int, object], Dict[int, object]]:
    """Run a forest convergecast; returns (aggregate at roots, subtree partials)."""
    program = _array_convergecast(engine, forest, agg, values)
    if program is None:
        program = ConvergecastProgram(forest, agg, values)
    program.name = name
    stats = engine.run(program, max_ticks=forest.height() + 2)
    ledger.charge(stats)
    return program.at_root, program.partial


def claim_bfs(
    engine: Engine,
    net: Network,
    tokens: Dict[int, object],
    ledger: CostLedger,
    allowed: Optional[Callable[[int, int], bool]] = None,
    max_depth: Optional[int] = None,
    name: str = "claim_bfs",
    slot_mask=None,
) -> ClaimBfsProgram:
    """Run a parallel claiming BFS; returns the finished program object.

    On an array engine the BFS runs as
    :class:`~repro.core.array_kernels.ClaimBfsArrayKernel` when the edge
    restriction is expressible as a static mask: ``slot_mask`` is the
    per-CSR-slot bool array equivalent to ``allowed`` (callers that pass
    an ``allowed`` callable must supply the matching mask to opt in; with
    ``allowed=None`` no mask is needed).  Outputs and ledger are identical
    either way.
    """
    use_kernel = (
        getattr(engine, "use_arrays", False)
        and (allowed is None or slot_mask is not None)
        and all(type(t) is int for t in tokens.values())
    )
    if use_kernel:
        import numpy as np

        from .array_kernels import ClaimBfsArrayKernel

        program = ClaimBfsArrayKernel(
            net,
            np.fromiter(tokens.keys(), dtype=np.int64, count=len(tokens)),
            np.fromiter(tokens.values(), dtype=np.int64, count=len(tokens)),
            slot_mask=slot_mask,
            max_depth=max_depth,
        )
    else:
        program = ClaimBfsProgram(
            net, tokens, allowed=allowed, max_depth=max_depth
        )
    program.name = name
    limit = (max_depth or net.n) + 3
    stats = engine.run(program, max_ticks=limit)
    ledger.charge(stats)
    return program
