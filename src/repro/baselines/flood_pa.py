"""Intra-part flooding PA: message-frugal but round-suboptimal baseline.

The obvious shortcut-free PA: each part elects a leader by flood-min over
its own edges, builds the election tree, convergecasts ``f`` and
broadcasts the result.  Messages are near-optimal (O(sum_i m_i) = O(m)),
but rounds are Theta(max part diameter), which can be Theta(n) even on
graphs of diameter 2 — the round-suboptimality low-congestion shortcuts
exist to fix (Section 2.2).  Benchmarks use it as the "no shortcuts" arm.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..congest.engine import Engine
from ..congest.ledger import CostLedger, RunResult
from ..congest.network import Network
from ..graphs.partitions import Partition
from ..core.aggregation import Aggregation
from ..core.treeops import (
    BroadcastProgram,
    ConvergecastProgram,
    FloodMinProgram,
)
from ..core.trees import ABSENT, ROOT, RootedForest


def flood_pa(
    net: Network,
    partition: Partition,
    values: Sequence[object],
    agg: Aggregation,
    seed: int = 0,
) -> RunResult:
    """Flood-based PA; returns per-part aggregates (and per-node values)."""
    ledger = CostLedger()
    engine = Engine(net)
    part_of = partition.part_of

    def same_part(u: int, v: int) -> bool:
        return part_of[u] == part_of[v]

    flood = FloodMinProgram(
        net, tokens={v: net.uid[v] for v in range(net.n)}, allowed=same_part
    )
    flood.name = "flood_pa_election"
    ledger.charge(engine.run(flood, max_ticks=net.n + 2))

    parent = [ABSENT] * net.n
    leader_of_part: Dict[int, int] = {}
    for v in range(net.n):
        parent[v] = flood.parent_of[v]
        pid = part_of[v]
        if parent[v] == ROOT:
            leader_of_part[pid] = v
    # One ack round so parents know their children (as in leader election).
    ledger.charge_local("flood_pa_child_ack", rounds=1, messages=net.n - len(leader_of_part))
    forest = RootedForest(net, parent)

    up = ConvergecastProgram(forest, agg, values)
    up.name = "flood_pa_convergecast"
    ledger.charge(engine.run(up, max_ticks=forest.height() + 3))

    down = BroadcastProgram(
        forest, {leader: up.at_root[leader] for leader in forest.roots}
    )
    down.name = "flood_pa_broadcast"
    ledger.charge(engine.run(down, max_ticks=forest.height() + 3))

    aggregates = {
        part_of[leader]: up.at_root[leader] for leader in forest.roots
    }
    value_at_node = [down.received.get(v) for v in range(net.n)]
    return RunResult(
        output=aggregates,
        ledger=ledger,
        meta={
            "value_at_node": value_at_node,
            "max_part_tree_depth": forest.height(),
        },
    )
