"""Prior-work comparators: block-aggregation PA, flood PA, GHS-style MST."""

from .flood_pa import flood_pa
from .ghs_mst import ghs_mst
from .naive_block_pa import block_aggregation_pa

__all__ = ["block_aggregation_pa", "flood_pa", "ghs_mst"]
