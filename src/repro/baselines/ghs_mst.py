"""GHS-style MST baseline: message-optimal, round-suboptimal.

A synchronous Boruvka in the lineage of Gallager-Humblet-Spira [12]:
fragments maintain spanning trees of their own edges and find minimum
outgoing edges by convergecast *over the fragment tree* — no shortcuts.
Messages stay at O((m + n) log n), but a fragment's tree can reach depth
Theta(n), so rounds degrade to Theta(n log n) on high-diameter fragments.
This is the classic message-frugal point in the tradeoff space that
Corollary 1.3's algorithm dominates (experiment E5).

Merging uses the same coin-flip discipline as our PA-based MST so the
comparison isolates exactly one variable: fragment communication via
fragment trees vs. via Part-Wise Aggregation.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..congest.engine import Context, Engine, Inbox, Program
from ..congest.ledger import CostLedger, RunResult
from ..congest.network import Network, canonical_edge
from ..core.aggregation import MIN_TUPLE
from ..core.spanning_tree import elect_leader_and_bfs_tree
from ..core.treeops import BroadcastProgram, ConvergecastProgram
from ..core.trees import ABSENT, ROOT, RootedForest


class _FragmentMergeProgram(Program):
    """Flood-merge joining fragments into their targets (re-root + relabel)."""

    name = "ghs_merge"

    def __init__(
        self,
        net: Network,
        tree_neighbors: Sequence[Sequence[int]],
        joins: Dict[int, Tuple[int, int, int]],
    ) -> None:
        """``joins``: fragment sid -> (u, v, new_comp_uid)."""
        self.net = net
        self.tree_neighbors = tree_neighbors
        self.joins = joins
        self.new_parent: Dict[int, int] = {}
        self.new_comp_uid: Dict[int, int] = {}
        self._visited: Set[int] = set()

    def _flood(self, ctx: Context, node: int, sender: int, comp_uid: int) -> None:
        if node in self._visited:
            return
        self._visited.add(node)
        self.new_parent[node] = sender
        self.new_comp_uid[node] = comp_uid
        for nb in self.tree_neighbors[node]:
            if nb != sender:
                ctx.send(node, nb, ("mg", comp_uid))

    def on_start(self, ctx: Context) -> None:
        for _sid, (u, v, comp_uid) in self.joins.items():
            ctx.send(u, v, ("att",))
            self._flood(ctx, u, v, comp_uid)

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        for sender, payload in inbox:
            if payload[0] == "att":
                continue
            self._flood(ctx, node, sender, payload[1])


def ghs_mst(net: Network, seed: int = 0) -> RunResult:
    """Synchronous GHS-style MST; returns the edge set, fully metered."""
    if net.weights is None:
        raise ValueError("MST requires a weighted network")
    rng = random.Random(seed ^ 0x6E5)
    ledger = CostLedger()
    engine = Engine(net)
    n = net.n

    comp: List[int] = list(range(n))         # fragment id = root node
    parent: List[int] = [ROOT] * n            # fragment tree parents
    mst_edges: Set[Tuple[int, int]] = set()

    max_phases = 4 * max(1, math.ceil(math.log2(max(2, n)))) + 8
    for phase in range(1, max_phases + 1):
        if len(set(comp)) == 1:
            break
        forest = RootedForest(net, parent)

        # Node-local neighbor knowledge refresh.
        ledger.charge_local("ghs_neighbor_exchange", rounds=1, messages=2 * net.m)

        # MOE search by convergecast over each fragment tree.
        values: List[Optional[Tuple[int, int, int]]] = [None] * n
        for v in range(n):
            best = None
            for nb in net.neighbors[v]:
                if comp[nb] == comp[v]:
                    continue
                cand = (net.weight(v, nb), net.uid[v], net.uid[nb])
                if best is None or cand < best:
                    best = cand
            values[v] = best
        up = ConvergecastProgram(forest, MIN_TUPLE, values)
        up.name = "ghs_moe_convergecast"
        ledger.charge(engine.run(up, max_ticks=forest.height() + 3))

        # Coin + MOE broadcast down each fragment tree.
        coins = {root: rng.random() < 0.5 for root in forest.roots}
        down_values = {}
        for root in forest.roots:
            moe = up.at_root.get(root)
            down_values[root] = ("ctl", 1 if coins[root] else 0, moe)
        down = BroadcastProgram(forest, down_values)
        down.name = "ghs_control_broadcast"
        ledger.charge(engine.run(down, max_ticks=forest.height() + 3))

        # Coin exchange across MOE edges; tails pointing at heads merge.
        chosen: Dict[int, Tuple[int, int, int]] = {}
        for root in forest.roots:
            moe = up.at_root.get(root)
            if moe is None:
                continue
            _w, uid_u, uid_nb = moe
            u = net.node_of_uid(uid_u)
            v_nb = net.node_of_uid(uid_nb)
            chosen[root] = (u, v_nb, comp[v_nb])
        sends = {}
        for root, (u, v_nb, _t) in chosen.items():
            sends[(u, v_nb)] = ("coin", 1 if coins[root] else 0)
            target_root = comp[v_nb]
            sends.setdefault(
                (v_nb, u), ("coin", 1 if coins[target_root] else 0)
            )
        from ..core.no_leader import _CrossProgram

        cross = _CrossProgram([(s, d, p) for (s, d), p in sends.items()])
        cross.name = "ghs_coin_exchange"
        ledger.charge(engine.run(cross, max_ticks=2))

        joins: Dict[int, Tuple[int, int, int]] = {}
        for root, (u, v_nb, target_root) in chosen.items():
            if not coins[root] and coins.get(target_root, False):
                joins[root] = (u, v_nb, net.uid[target_root])
                mst_edges.add(canonical_edge(u, v_nb))
        if not joins:
            continue

        tree_neighbors: List[List[int]] = [
            list(forest.children[v]) for v in range(n)
        ]
        for v in range(n):
            if forest.parent[v] >= 0:
                tree_neighbors[v].append(forest.parent[v])
        merger = _FragmentMergeProgram(net, tree_neighbors, joins)
        ledger.charge(engine.run(merger, max_ticks=n + 4))
        for node, new_parent in merger.new_parent.items():
            parent[node] = new_parent
        for node, comp_uid in merger.new_comp_uid.items():
            comp[node] = net.node_of_uid(comp_uid)

    if len(set(comp)) != 1:
        raise RuntimeError("GHS baseline did not converge")
    if len(mst_edges) != n - 1:
        raise RuntimeError(f"GHS produced {len(mst_edges)} edges")
    return RunResult(
        output=frozenset(mst_edges),
        ledger=ledger,
        meta={"phases": phase},
    )
