"""The prior shortcut-based PA algorithm (Section 3.1's bad example).

Round-optimal randomized PA algorithms before this paper [19, 20]
aggregate *within blocks*: every node transmits its value up the block
(along tree edges); values of the same part merge when they meet, and the
block root computes and rebroadcasts the result.  Section 3.1 shows this
needs Omega(nD) messages on the apex-grid (Figure 2a), because values of
the same part sit in different columns and cannot combine before reaching
the apex.

This module implements that algorithm faithfully: every node (not just a
representative — there are no sub-part divisions here) injects its value
into the BFS tree; each node forwards one (part, value) packet per round
per edge, merging same-part packets that meet in its buffer; the root's
per-part aggregates retrace the recorded traffic downward.  Benchmarks
compare its message count against the paper's sub-part PA (experiment E1 /
E14 in DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..congest.engine import Context, Engine, Inbox, Program
from ..congest.ledger import CostLedger, RunResult
from ..congest.network import Network
from ..graphs.partitions import Partition
from ..core.aggregation import Aggregation
from ..core.spanning_tree import bfs_tree, elect_leader_and_bfs_tree
from ..core.trees import ROOT, RootedForest


class _BlockUpProgram(Program):
    """Everyone climbs: one (part, value) per edge per round, merging."""

    name = "naive_block_up"

    def __init__(
        self,
        tree: RootedForest,
        partition: Partition,
        values: Sequence[object],
        agg: Aggregation,
    ) -> None:
        self.tree = tree
        self.partition = partition
        self.agg = agg
        n = tree.net.n
        #: per node: part -> pending merged value waiting for the up edge
        self.pending: List[Dict[int, object]] = [dict() for _ in range(n)]
        #: per node: parts whose traffic crossed the node's parent edge
        self.sent_parts: List[Set[int]] = [set() for _ in range(n)]
        self.at_root: Dict[int, object] = {}
        self._values = values

    def _absorb(self, node: int, pid: int, value: object) -> None:
        root_here = self.tree.parent[node] == ROOT
        if root_here:
            self.at_root[pid] = self.agg.merge(self.at_root.get(pid), value)
        else:
            store = self.pending[node]
            store[pid] = self.agg.merge(store.get(pid), value)

    def _pump(self, ctx: Context, node: int) -> None:
        store = self.pending[node]
        if not store:
            return
        pid = min(store)
        value = store.pop(pid)
        parent = self.tree.parent[node]
        self.sent_parts[node].add(pid)
        ctx.send(node, parent, (pid, value))
        if store:
            ctx.wake(node)

    def on_start(self, ctx: Context) -> None:
        for v in range(self.tree.net.n):
            value = self._values[v]
            if value is not None:
                self._absorb(v, self.partition.part_of[v], value)
            if self.pending[v]:
                ctx.wake(v)

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        for _sender, payload in inbox:
            pid, value = payload
            self._absorb(node, pid, value)
        self._pump(ctx, node)


class _BlockDownProgram(Program):
    """Retrace recorded per-part traffic downward with the results."""

    name = "naive_block_down"

    def __init__(
        self,
        tree: RootedForest,
        sent_parts: Sequence[Set[int]],
        results: Dict[int, object],
    ) -> None:
        self.tree = tree
        self.results = results
        n = tree.net.n
        #: per node: child -> parts to deliver down that edge
        self.down_parts: List[Dict[int, List[int]]] = [dict() for _ in range(n)]
        for v in range(n):
            parent = tree.parent[v]
            if parent >= 0 and sent_parts[v]:
                self.down_parts[parent][v] = sorted(sent_parts[v])
        self.delivered: List[Dict[int, object]] = [dict() for _ in range(n)]
        #: per (node, child): send queue
        self._queues: Dict[Tuple[int, int], List[int]] = {}

    def _load(self, ctx: Context, node: int) -> None:
        for child, pids in self.down_parts[node].items():
            self._queues[(node, child)] = list(pids)
        if self.down_parts[node]:
            ctx.wake(node)

    def _pump(self, ctx: Context, node: int) -> None:
        more = False
        for child in self.down_parts[node]:
            queue = self._queues.get((node, child))
            if queue:
                pid = queue.pop(0)
                ctx.send(node, child, (pid, self.results[pid]))
                if queue:
                    more = True
        if more:
            ctx.wake(node)

    def on_start(self, ctx: Context) -> None:
        for root in self.tree.roots:
            self._load(ctx, root)

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        for _sender, payload in inbox:
            pid, value = payload
            if pid not in self.delivered[node]:
                self.delivered[node][pid] = value
                self._load_child_parts(ctx, node, pid)
        self._pump(ctx, node)

    def _load_child_parts(self, ctx: Context, node: int, pid: int) -> None:
        for child, pids in self.down_parts[node].items():
            if pid in pids:
                queue = self._queues.setdefault((node, child), [])
                if pid not in queue:
                    queue.append(pid)
                    ctx.wake(node)


def block_aggregation_pa(
    net: Network,
    partition: Partition,
    values: Sequence[object],
    agg: Aggregation,
    root: Optional[int] = None,
    seed: int = 0,
) -> RunResult:
    """Run the prior block-aggregation PA; returns per-part aggregates.

    The ledger meters BFS-tree construction, the all-nodes up phase and the
    retraced down phase.  Per-node results land in
    ``result.meta["value_at_node"]``.
    """
    ledger = CostLedger()
    engine = Engine(net)
    if root is None:
        tree_result = elect_leader_and_bfs_tree(engine, net, ledger)
    else:
        tree_result = bfs_tree(engine, net, root, ledger)
    tree = tree_result.tree

    up = _BlockUpProgram(tree, partition, values, agg)
    budget = 16 + 4 * (tree.height() + partition.num_parts) + net.n
    ledger.charge(engine.run(up, max_ticks=budget))

    down = _BlockDownProgram(tree, up.sent_parts, up.at_root)
    ledger.charge(engine.run(down, max_ticks=budget))

    value_at_node: List[object] = [None] * net.n
    for v in range(net.n):
        pid = partition.part_of[v]
        if pid in down.delivered[v]:
            value_at_node[v] = down.delivered[v][pid]
        elif pid in up.at_root and v == tree.roots[0]:
            value_at_node[v] = up.at_root[pid]
    return RunResult(
        output=dict(up.at_root),
        ledger=ledger,
        meta={"value_at_node": value_at_node, "tree_depth": tree.height()},
    )
