"""Deterministic merge of per-shard phase logs.

Shards run the same three wave phases over edge-disjoint, state-disjoint
subsystems of one synchronous execution: every message of the serial run
happens in exactly one shard, at the same absolute tick it would have in
the serial engine.  The serial phase therefore decomposes exactly:

* ``rounds`` / ``ticks`` — the serial phase runs until *global*
  quiescence, i.e. the max over shards of their quiescence ticks
  (idle gaps are fast-forwarded but charged identically either way);
* ``messages`` — a disjoint union: the sum over shards;
* ``bits`` — summed, but *not* bit-for-bit with the serial run: part
  ids relabel to a smaller local range, so per-message pid widths can
  shrink.  Bits are a diagnostic and are never part of the drift gate
  (see :class:`~repro.congest.ledger.PhaseStats`).
* ``profile`` — best-effort: ticks/idle max (wall-clock-like),
  peak-in-flight/activations summed (work-like).  Populated only when
  every shard profiled.

Shards are merged in shard-index order; since max and sum are
order-insensitive this only fixes the (deterministic) trace order.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..congest.ledger import EngineProfile, PhaseStats

#: The picklable wire form of one phase: (name, rounds, messages, ticks,
#: bits, profile-or-None) with profile as (ticks, peak, activations, idle).
WirePhase = Tuple[str, int, int, int, int, Optional[Tuple[int, int, int, int]]]


def phases_to_wire(phases: Sequence[PhaseStats]) -> List[WirePhase]:
    """Flatten a worker ledger's phase log for the pipe."""
    out: List[WirePhase] = []
    for s in phases:
        profile = None
        if s.profile is not None:
            profile = (
                s.profile.ticks, s.profile.peak_in_flight,
                s.profile.activations, s.profile.idle_ticks,
            )
        out.append((s.name, s.rounds, s.messages, s.ticks, s.bits, profile))
    return out


def merge_shard_phases(
    shard_phases: Sequence[Sequence[WirePhase]],
) -> List[PhaseStats]:
    """Merge per-shard phase logs into one serial-equivalent log.

    All shards run the same phase sequence (same names, same order);
    position ``k`` of every log is the same phase restricted to that
    shard.  Raises if the logs disagree structurally — that would mean
    the shards did not run one common plan.
    """
    if not shard_phases:
        return []
    reference = [p[0] for p in shard_phases[0]]
    for log in shard_phases[1:]:
        if [p[0] for p in log] != reference:
            raise RuntimeError(
                f"shard phase logs diverge: {reference} vs {[p[0] for p in log]}"
            )
    merged: List[PhaseStats] = []
    for k, name in enumerate(reference):
        rows = [log[k] for log in shard_phases]
        profiles = [r[5] for r in rows]
        profile = None
        if all(p is not None for p in profiles):
            profile = EngineProfile(
                ticks=max(p[0] for p in profiles),
                peak_in_flight=sum(p[1] for p in profiles),
                activations=sum(p[2] for p in profiles),
                idle_ticks=max(p[3] for p in profiles),
            )
        merged.append(
            PhaseStats(
                name=name,
                rounds=max(r[1] for r in rows),
                messages=sum(r[2] for r in rows),
                ticks=max(r[3] for r in rows),
                bits=sum(r[4] for r in rows),
                profile=profile,
            )
        )
    return merged
