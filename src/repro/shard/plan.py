"""Shard plans: conflict components of a PA setup, binned into shards.

A wave pass places traffic on three kinds of edges:

* sub-part forest edges and wave-boundary edges — always *in-part*;
* spanning-tree edges ``(c, tparent[c])`` with ``up_parts[c]`` nonempty
  — used by exactly the parts in ``up_parts[c]`` (``ku``/``kd``), and
  *additionally* by ``part_of[c]`` when the tree edge is itself an
  in-part edge (it can then carry that part's ``ru``/``su``/``bd``
  traffic too).

Two parts conflict when some tree edge serves both.  Union-finding the
per-edge user sets yields the *conflict components*: part groups whose
wave traffic is edge-disjoint and state-disjoint from every other
group's, which is what makes a component's phases replay bit-for-bit in
isolation (see docs/architecture.md, "Sharded backend").

Components are binned into at most ``workers`` shards deterministically:
sorted by (node count desc, min part id), each assigned to the currently
least-loaded bin with ties broken by bin index.  The binning depends
only on the setup, never on timing, so shard composition — and therefore
the merged ledger — is reproducible run to run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.pa import PASetup


@dataclass(frozen=True)
class ShardPlan:
    """Deterministic assignment of parts to worker shards.

    ``shard_parts[s]`` lists the global part ids of shard ``s``, sorted
    ascending; every part appears in exactly one shard.
    ``num_components`` is the number of conflict components before
    binning (the parallelism ceiling of this setup).
    """

    shard_parts: Tuple[Tuple[int, ...], ...]
    num_components: int

    @property
    def num_shards(self) -> int:
        return len(self.shard_parts)


class _UnionFind:
    __slots__ = ("parent",)

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        parent = self.parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Smaller root id wins: keeps component labels deterministic.
            if rb < ra:
                ra, rb = rb, ra
            self.parent[rb] = ra


def conflict_components(setup: PASetup) -> List[List[int]]:
    """Group the setup's parts into conflict components.

    Returns the components as sorted part-id lists, ordered by their
    minimum part id.  Parts that touch no used tree edge form singleton
    components.
    """
    partition = setup.partition
    part_of = partition.part_of
    tparent = setup.shortcut.tree.parent
    uf = _UnionFind(partition.num_parts)
    for c, parts in enumerate(setup.shortcut.up_parts):
        if not parts:
            continue
        users = list(parts)
        p = tparent[c]
        if p >= 0 and part_of[c] == part_of[p]:
            users.append(part_of[c])
        first = users[0]
        for pid in users[1:]:
            uf.union(first, pid)
    groups: dict = {}
    for pid in range(partition.num_parts):
        groups.setdefault(uf.find(pid), []).append(pid)
    return [groups[root] for root in sorted(groups)]


def build_shard_plan(setup: PASetup, workers: int) -> ShardPlan:
    """Bin the setup's conflict components into ``workers`` shards.

    Longest-processing-time binning over component node counts: sort by
    (size desc, min pid asc), assign each to the least-loaded bin (ties:
    lowest bin index).  With fewer components than workers, each
    component gets its own shard.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    components = conflict_components(setup)
    sizes = [
        sum(setup.partition.size_of(pid) for pid in comp)
        for comp in components
    ]
    num_shards = min(workers, len(components))
    order = sorted(
        range(len(components)), key=lambda i: (-sizes[i], components[i][0])
    )
    load = [0] * num_shards
    bins: List[List[int]] = [[] for _ in range(num_shards)]
    for i in order:
        target = min(range(num_shards), key=lambda s: (load[s], s))
        bins[target].extend(components[i])
        load[target] += sizes[i]
    return ShardPlan(
        shard_parts=tuple(tuple(sorted(b)) for b in bins),
        num_components=len(components),
    )
