"""The rank-0 shard orchestrator: ship, solve, barrier, merge.

:class:`ShardOrchestrator` owns a pool of persistent forked workers
(one pipe each, sized by :func:`repro.procpool.resolve_workers` — the
same sizing the bench runner uses).  Per setup it computes the shard
plan once, restricts the setup per shard and ships each payload to its
worker (``shard.ship`` spans); per solve it restricts the wave plan and
values, dispatches to all shard workers, waits on the reply barrier
(``shard.solve`` / ``shard.barrier`` spans) and merges the per-shard
phase logs deterministically in shard-index order (``shard.merge``
span; see :mod:`repro.shard.ledger_merge` for the exact rule).

Aggregations cross the pipe *by name*: the stock aggregations are
registered here, and batch products encode as their component names
(lambda-closing aggregations cannot pickle).  An aggregation outside
the registry is the session's cue to fall back in-process.

The orchestrator keeps a :attr:`last_report` (worker count, per-shard
wall seconds, ship/merge overhead) that benchmarks surface into the
BENCH json scaling records.
"""

from __future__ import annotations

import itertools
import multiprocessing
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..congest.ledger import CostLedger
from ..core import aggregation as _aggmod
from ..core.aggregation import Aggregation
from ..core.pa import PASetup, product_aggregation
from ..core.wave import WavePlan
from ..obs.tracer import current_tracer
from .ledger_merge import merge_shard_phases
from .plan import ShardPlan, build_shard_plan
from .views import build_shard_payload, restrict_plan, restrict_values

#: The picklable-by-name aggregation registry (stock aggregations only;
#: SUM/OR/AND/XOR close over lambdas and cannot pickle directly).
_STOCK = ("SUM", "MIN", "MAX", "OR", "AND", "XOR", "MIN_TUPLE", "MAX_TUPLE")
_BY_IDENTITY = {
    id(getattr(_aggmod, name)): name for name in _STOCK
}


def encode_aggregation(agg: Aggregation) -> Optional[object]:
    """Encode a stock (or stock-product) aggregation for the pipe.

    Returns ``("stock", name)`` / ``("product", [names...])``, or
    ``None`` when the aggregation is not expressible — the caller then
    falls back to the in-process solver.
    """
    name = _BY_IDENTITY.get(id(agg))
    if name is not None:
        return ("stock", name)
    return None


def encode_batch(aggs: Sequence[Aggregation]) -> Optional[object]:
    """Encode a product of stock aggregations (the batched solve path)."""
    names = []
    for agg in aggs:
        name = _BY_IDENTITY.get(id(agg))
        if name is None:
            return None
        names.append(name)
    return ("product", names)


def decode_aggregation(encoded: object) -> Aggregation:
    """Worker-side inverse of :func:`encode_aggregation`/``encode_batch``."""
    kind, arg = encoded
    if kind == "stock":
        return getattr(_aggmod, arg)
    if kind == "product":
        return product_aggregation([getattr(_aggmod, n) for n in arg])
    raise RuntimeError(f"unknown aggregation encoding {encoded!r}")


class ShardSolveOutcome:
    """What one orchestrated wave pass produced (PAResult ingredients)."""

    __slots__ = ("aggregates", "value_at_node")

    def __init__(self, aggregates, value_at_node) -> None:
        self.aggregates = aggregates
        self.value_at_node = value_at_node


class _ShardHandle:
    """Orchestrator-side record of one shipped shard."""

    __slots__ = ("worker_index", "pids", "nodes", "is_member")

    def __init__(self, worker_index, pids, nodes, is_member) -> None:
        self.worker_index = worker_index
        self.pids = pids
        self.nodes = nodes
        self.is_member = is_member


class ShardOrchestrator:
    """Rank-0 driver of the sharded backend for one engine configuration."""

    def __init__(
        self,
        workers: int,
        strict_bits: bool = True,
        strict_edges: bool = True,
        use_arrays: bool = True,
        profile: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._engine_flags = {
            "strict_bits": strict_bits,
            "strict_edges": strict_edges,
            "use_arrays": use_arrays,
            "profile": profile,
        }
        self._procs: List[multiprocessing.Process] = []
        self._pipes: List = []
        #: id(setup) -> (setup ref, setup_id, [_ShardHandle, ...]).  The
        #: strong setup reference keeps the id stable while cached.
        self._shipped: Dict[int, Tuple[PASetup, str, List[_ShardHandle]]] = {}
        self._ids = itertools.count()
        self._closed = False
        #: Scaling diagnostics of the most recent solve (for BENCH json).
        self.last_report: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    def _ensure_workers(self) -> None:
        if self._procs:
            return
        ctx = multiprocessing.get_context("fork")
        from .worker import worker_main

        for _ in range(self.workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=worker_main, args=(child,), daemon=True)
            proc.start()
            child.close()
            self._procs.append(proc)
            self._pipes.append(parent)

    def _recv(self, worker_index: int):
        reply = self._pipes[worker_index].recv()
        if reply[0] == "error":
            raise RuntimeError(
                f"shard worker {worker_index} failed:\n{reply[1]}"
            )
        return reply

    # ------------------------------------------------------------------
    def ship(self, setup: PASetup) -> List[_ShardHandle]:
        """Shard ``setup`` and ship each shard to its worker (memoized)."""
        cached = self._shipped.get(id(setup))
        if cached is not None and cached[0] is setup:
            return cached[2]
        self._ensure_workers()
        plan = build_shard_plan(setup, self.workers)
        setup_id = f"setup-{next(self._ids)}"
        tracer = current_tracer()
        handles: List[_ShardHandle] = []
        ship_start = time.perf_counter()
        for s, pids in enumerate(plan.shard_parts):
            if tracer.enabled:
                with tracer.span("shard.ship", "shard") as args:
                    payload = build_shard_payload(setup, pids)
                    payload.update(self._engine_flags)
                    self._pipes[s].send(("load", setup_id, payload))
                    args["shard"] = s
                    args["parts"] = len(pids)
                    args["nodes"] = int(payload["nodes"].size)
            else:
                payload = build_shard_payload(setup, pids)
                payload.update(self._engine_flags)
                self._pipes[s].send(("load", setup_id, payload))
            handles.append(
                _ShardHandle(
                    worker_index=s,
                    pids=pids,
                    nodes=payload["nodes"],
                    is_member=payload["is_member"],
                )
            )
        for handle in handles:
            self._recv(handle.worker_index)
        self._ship_seconds = time.perf_counter() - ship_start
        self._shipped[id(setup)] = (setup, setup_id, handles)
        # Retire records whose setup object has been replaced at that id.
        if len(self._shipped) > 16:
            self._shipped.pop(next(iter(self._shipped)))
        return handles

    def solve(
        self,
        setup: PASetup,
        plan: WavePlan,
        values: Sequence[object],
        agg_encoded: object,
        ledger: CostLedger,
        phase_prefix: str = "pa",
    ) -> ShardSolveOutcome:
        """One orchestrated wave pass; charges merged phases to ``ledger``."""
        handles = self.ship(setup)
        setup_id = self._shipped[id(setup)][1]
        tracer = current_tracer()
        n = len(setup.partition.part_of)

        solve_start = time.perf_counter()
        for handle in handles:
            if tracer.enabled:
                tracer.instant(
                    "shard.solve", "shard", {"shard": handle.worker_index}
                )
            self._pipes[handle.worker_index].send((
                "solve",
                setup_id,
                {
                    "plan": restrict_plan(plan, handle.pids),
                    "values": restrict_values(
                        values, handle.nodes, handle.is_member
                    ),
                    "agg": agg_encoded,
                    "phase_prefix": phase_prefix,
                },
            ))

        replies = []
        if tracer.enabled:
            with tracer.span("shard.barrier", "shard") as args:
                for handle in handles:
                    replies.append(self._recv(handle.worker_index)[1])
                args["shards"] = len(handles)
        else:
            for handle in handles:
                replies.append(self._recv(handle.worker_index)[1])
        barrier_seconds = time.perf_counter() - solve_start

        merge_start = time.perf_counter()
        if tracer.enabled:
            with tracer.span("shard.merge", "shard") as args:
                outcome = self._merge(handles, replies, ledger, n)
                args["shards"] = len(handles)
        else:
            outcome = self._merge(handles, replies, ledger, n)
        merge_seconds = time.perf_counter() - merge_start

        self.last_report = {
            "workers": self.workers,
            "shards": len(handles),
            "shard_wall_seconds": [r["wall_seconds"] for r in replies],
            "barrier_seconds": barrier_seconds,
            "merge_seconds": merge_seconds,
            "ship_seconds": getattr(self, "_ship_seconds", 0.0),
        }
        return outcome

    def _merge(
        self,
        handles: List[_ShardHandle],
        replies: List[Dict[str, object]],
        ledger: CostLedger,
        n: int,
    ) -> ShardSolveOutcome:
        """Merge shard replies in shard-index order (the handles' order)."""
        for stats in merge_shard_phases([r["phases"] for r in replies]):
            ledger.charge(stats)
        aggregates: Dict[int, object] = {}
        value_at_node: List[object] = [None] * n
        for handle, reply in zip(handles, replies):
            for lp, value in reply["aggregates"].items():
                aggregates[int(handle.pids[lp])] = value
            members = handle.nodes[handle.is_member]
            for g, value in zip(members.tolist(), reply["member_values"]):
                value_at_node[g] = value
        return ShardSolveOutcome(
            aggregates=aggregates, value_at_node=value_at_node
        )

    # ------------------------------------------------------------------
    def release(self, setup: PASetup) -> None:
        """Drop a shipped setup's pins, rank-0 and worker side (idempotent).

        Called by the session when its setup cache evicts an entry or an
        edge update invalidates it: without this the strong reference in
        :attr:`_shipped` — and the rebuilt shard in every worker's LRU —
        would keep the whole setup resident until enough further ships
        aged it out.  Unknown (never-shipped or already-released) setups
        are a no-op.
        """
        cached = self._shipped.get(id(setup))
        if cached is None or cached[0] is not setup:
            return
        _setup, setup_id, handles = cached
        del self._shipped[id(setup)]
        if self._closed or not self._pipes:
            return
        workers_used = sorted({h.worker_index for h in handles})
        for w in workers_used:
            try:
                self._pipes[w].send(("unload", setup_id))
            except (BrokenPipeError, OSError):  # pragma: no cover - dying pool
                continue
        for w in workers_used:
            try:
                self._recv(w)
            except (EOFError, OSError, RuntimeError):  # pragma: no cover
                pass

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for pipe in self._pipes:
            try:
                pipe.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for pipe in self._pipes:
            try:
                pipe.recv()
            except (EOFError, OSError):
                pass
            pipe.close()
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        self._procs.clear()
        self._pipes.clear()
        self._shipped.clear()

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
