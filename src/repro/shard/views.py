"""Shard views: restrict a global PA setup to one shard, and rebuild it.

The orchestrator side (:func:`build_shard_payload`) produces a picklable
payload: flat int64 columns for the topology and structure arrays, plus
the restricted annotation dicts.  The worker side
(:func:`rebuild_shard`) turns a payload back into the live objects the
wave phases consume — a real :class:`~repro.congest.network.Network`
over the induced sub-graph and duck-typed partition/division/shortcut
views.

Relabelings are *order-isomorphic*: local node ids are the ranks of the
sorted global ids, local part ids the ranks of the sorted global part
ids.  Every order the wave machinery relies on — ascending neighbor
lists, ascending forest children, sorted ``(node, part)`` reversal keys,
the engine's (src, dst)-sorted delivery, the ``(block depth, pid)``
packet priorities — is therefore preserved verbatim under restriction,
which is the structural half of the bit-for-bit parity argument.

Two fix-ups keep the restricted run on the global cost model:

* ``message_bits`` is forced to the *global* budget (a sub-network would
  compute a smaller O(log n') limit and could reject messages the serial
  run accepts);
* node ``uid``\\ s are the global ones (leader tokens and block ids are
  global uids; a shard must compare against the same values).

Nodes that serve a shard only as interior points of used tree edges
(*Steiner nodes*) are carried with sentinel part ids ``>= num_parts``
(one distinct id each, so no two Steiner nodes ever compare as
part-mates), an ``ABSENT`` forest parent and no representative; they
can relay ``ku``/``kd`` block traffic but never gain a token, never
aggregate and never appear in results.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..congest.network import Network
from ..core.blocks import BlockAnnotations
from ..core.shortcuts import Shortcut
from ..core.subparts import SubPartDivision
from ..core.trees import ABSENT, ROOT, RootedForest
from ..core.wave import WavePlan
from ..core.pa import PASetup


class ShardPartition:
    """Duck-typed partition view over a shard's local node ids.

    ``num_parts`` counts only the shard's real parts; Steiner nodes
    carry sentinel ids ``num_parts + k`` which never appear in
    ``members``.  Matches the :class:`~repro.graphs.partitions.Partition`
    surface the wave programs read (``part_of``/``num_parts``/
    ``members``) without its contiguity validation.
    """

    __slots__ = ("part_of", "num_parts", "members")

    def __init__(self, part_of: Sequence[int], num_parts: int) -> None:
        self.part_of: Tuple[int, ...] = tuple(part_of)
        self.num_parts = num_parts
        members: List[List[int]] = [[] for _ in range(num_parts)]
        for node, pid in enumerate(self.part_of):
            if pid < num_parts:
                members[pid].append(node)
        self.members: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(part) for part in members
        )


class ShardShortcut(Shortcut):
    """A shard-restricted shortcut view.

    Reuses every :class:`~repro.core.shortcuts.Shortcut` derivation
    (``down_parts``/``down_csr``/``up_key_array``) but skips the
    constructor's single-spanning-tree validation: a shard's restricted
    tree is a *forest* (one root per node whose parent edge the shard
    does not use).
    """

    def __init__(self, tree, partition, up_parts) -> None:
        self.tree = tree
        self.partition = partition
        self.up_parts = tuple(frozenset(parts) for parts in up_parts)


def build_shard_payload(
    setup: PASetup, shard_pids: Sequence[int]
) -> Dict[str, object]:
    """Restrict ``setup`` to the given (conflict-closed) part ids.

    Returns a picklable payload dict; the shard's member nodes in global
    ids are under ``"nodes"``/``"is_member"`` (the orchestrator keeps
    them to route values in and results out).
    """
    network = setup.division.forest.net
    partition = setup.partition
    part_of = np.asarray(partition.part_of, dtype=np.int64)
    tparent = np.asarray(setup.shortcut.tree.parent, dtype=np.int64)
    fparent = np.asarray(setup.division.forest.parent, dtype=np.int64)
    rep_of = np.asarray(setup.division.rep_of, dtype=np.int64)

    shard_pids = np.asarray(sorted(shard_pids), dtype=np.int64)
    num_parts = int(shard_pids.size)
    # part id -> local rank (or -1).
    pid_local = np.full(partition.num_parts, -1, dtype=np.int64)
    pid_local[shard_pids] = np.arange(num_parts, dtype=np.int64)

    in_shard_part = np.zeros(partition.num_parts + 1, dtype=bool)
    in_shard_part[shard_pids] = True
    member_mask = in_shard_part[part_of]

    # Used tree edges: conflict closure guarantees up_parts[c] is either
    # entirely inside the shard or entirely outside, so one witness pid
    # per node suffices to classify the edge.
    up_parts = setup.shortcut.up_parts
    used = np.zeros(network.n, dtype=bool)
    for c, parts in enumerate(up_parts):
        if parts and in_shard_part[next(iter(parts))]:
            used[c] = True
    used_children = np.flatnonzero(used)
    endpoints = np.concatenate([used_children, tparent[used_children]])

    node_mask = member_mask.copy()
    node_mask[endpoints] = True
    nodes = np.flatnonzero(node_mask)  # sorted global ids
    local_n = int(nodes.size)
    node_local = np.full(network.n, -1, dtype=np.int64)
    node_local[nodes] = np.arange(local_n, dtype=np.int64)

    # Induced edges, from the global CSR (src < adj keeps each edge once).
    arrays = network.array_views
    keep = node_mask[arrays.src_of_slot] & node_mask[arrays.adj] & (
        arrays.src_of_slot < arrays.adj
    )
    edges_src = node_local[arrays.src_of_slot[keep]]
    edges_dst = node_local[arrays.adj[keep]]

    # Local part ids; Steiner nodes get distinct sentinels >= num_parts.
    local_part = pid_local[part_of[nodes]]
    steiner = ~member_mask[nodes]
    num_steiner = int(steiner.sum())
    local_part[steiner] = num_parts + np.arange(num_steiner, dtype=np.int64)

    # Forest: members keep their (in-part, hence in-shard) parent edges;
    # Steiner nodes are outside the forest.
    local_fparent = np.full(local_n, ABSENT, dtype=np.int64)
    g_fp = fparent[nodes]
    has_fp = (g_fp >= 0) & ~steiner
    local_fparent[has_fp] = node_local[g_fp[has_fp]]
    local_fparent[(g_fp == ROOT) & ~steiner] = ROOT

    local_rep = np.full(local_n, -1, dtype=np.int64)
    local_rep[~steiner] = node_local[rep_of[nodes[~steiner]]]

    # Restricted tree: parent edge kept iff the shard uses it.
    local_tparent = np.full(local_n, ROOT, dtype=np.int64)
    used_local = used[nodes]
    local_tparent[used_local] = node_local[tparent[nodes[used_local]]]

    local_up: List[Tuple[int, ...]] = [()] * local_n
    for lv in np.flatnonzero(used_local).tolist():
        local_up[lv] = tuple(
            sorted(int(pid_local[pid]) for pid in up_parts[int(nodes[lv])])
        )

    leaders = [
        int(node_local[setup.division.part_leader[int(gpid)]])
        for gpid in shard_pids.tolist()
    ]

    ann = setup.annotations
    root_depth: Dict[Tuple[int, int], int] = {}
    block_id: Dict[Tuple[int, int], int] = {}
    for (v, pid), depth in ann.root_depth.items():
        lp = int(pid_local[pid])
        if lp >= 0:
            key = (int(node_local[v]), lp)
            root_depth[key] = depth
            block_id[key] = ann.block_id[(v, pid)]
    count_tokens: Dict[int, List[int]] = {}
    for v, pids in ann.count_tokens.items():
        kept = [int(pid_local[pid]) for pid in pids if pid_local[pid] >= 0]
        if kept:
            count_tokens[int(node_local[v])] = kept

    return {
        "nodes": nodes,
        "is_member": ~steiner,
        "shard_pids": shard_pids,
        "num_parts": num_parts,
        "num_steiner": num_steiner,
        "uid": np.asarray(network.uid, dtype=np.int64)[nodes],
        "message_bits": network.message_bits,
        "edges_src": edges_src,
        "edges_dst": edges_dst,
        "part_of": local_part,
        "fparent": local_fparent,
        "rep_of": local_rep,
        "tparent": local_tparent,
        "up_parts": local_up,
        "part_leader": leaders,
        "ann_root_depth": root_depth,
        "ann_block_id": block_id,
        "ann_count_tokens": count_tokens,
    }


def restrict_plan(plan: WavePlan, shard_pids: Sequence[int]) -> WavePlan:
    """Project a global :class:`WavePlan` onto a shard's local part ids.

    Capacity, meta-round accounting and the round budget stay *global*
    (they were computed from the global n/b/c/depth and must not be
    recomputed from the restriction); only the per-part dicts relabel.
    """
    mapping = {
        int(gpid): lp for lp, gpid in enumerate(sorted(shard_pids))
    }
    return WavePlan(
        capacity=plan.capacity,
        rounds_per_tick=plan.rounds_per_tick,
        delays={
            lp: plan.delays[gpid]
            for gpid, lp in mapping.items()
            if gpid in plan.delays
        },
        max_ticks=plan.max_ticks,
        leader_tokens={
            lp: plan.leader_tokens[gpid] for gpid, lp in mapping.items()
        },
        use_array=plan.use_array,
    )


def restrict_values(
    values: Sequence[object],
    nodes: np.ndarray,
    is_member: np.ndarray,
) -> List[object]:
    """Per-local-node values: the global value for members, None otherwise."""
    out: List[object] = [None] * nodes.size
    for lv in np.flatnonzero(is_member).tolist():
        out[lv] = values[int(nodes[lv])]
    return out


class ShardSetup:
    """The live (worker-side) machinery rebuilt from one shard payload."""

    __slots__ = (
        "net", "partition", "division", "shortcut", "annotations",
        "num_parts", "member_locals",
    )

    def __init__(self, net, partition, division, shortcut, annotations,
                 num_parts, member_locals) -> None:
        self.net = net
        self.partition = partition
        self.division = division
        self.shortcut = shortcut
        self.annotations = annotations
        self.num_parts = num_parts
        self.member_locals = member_locals


def rebuild_shard(payload: Dict[str, object]) -> ShardSetup:
    """Worker-side: turn a payload back into live wave-phase structures."""
    local_n = int(payload["nodes"].size)
    subnet = Network(
        zip(payload["edges_src"].tolist(), payload["edges_dst"].tolist()),
        n=local_n,
    )
    # Global identities: uids before any cached_property materializes
    # them, and the global bit budget (see module docstring).
    subnet.__dict__["uid"] = tuple(payload["uid"].tolist())
    subnet.message_bits = payload["message_bits"]

    num_parts = int(payload["num_parts"])
    partition = ShardPartition(payload["part_of"].tolist(), num_parts)
    forest = RootedForest(subnet, payload["fparent"].tolist())
    # part_leader is indexed by Steiner sentinel ids in the scalar
    # activation hook; pad with -1 (matches no node).
    part_leader = tuple(payload["part_leader"]) + (
        (-1,) * int(payload["num_steiner"])
    )
    division = SubPartDivision(
        partition=partition,
        forest=forest,
        rep_of=tuple(payload["rep_of"].tolist()),
        part_leader=part_leader,
    )
    tree = RootedForest(subnet, payload["tparent"].tolist())
    shortcut = ShardShortcut(tree, partition, payload["up_parts"])
    annotations = BlockAnnotations(
        root_depth=payload["ann_root_depth"],
        block_id=payload["ann_block_id"],
        count_tokens=payload["ann_count_tokens"],
    )
    member_locals = np.flatnonzero(payload["is_member"])
    return ShardSetup(
        net=subnet,
        partition=partition,
        division=division,
        shortcut=shortcut,
        annotations=annotations,
        num_parts=num_parts,
        member_locals=member_locals,
    )
