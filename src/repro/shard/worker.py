"""The shard worker: a forked process running wave phases on one shard.

Each worker owns one end of a pipe and loops over three requests:

* ``("load", setup_id, payload)`` — rebuild the shard structures
  (:func:`~repro.shard.views.rebuild_shard`) and construct the engine;
  cached by ``setup_id`` (small LRU — phase loops retire old setups);
* ``("solve", setup_id, solve)`` — run the planned wave phases on the
  cached shard and reply with the phase log, local aggregates, member
  values and per-phase wall seconds;
* ``("unload", setup_id)`` — drop a cached shard (the session evicted
  the setup; don't keep its memory until the LRU ages it out);
* ``("close",)`` — exit.

Workers are forked, so they inherit the parent's loaded modules and
never re-import; payloads travel pickled through the pipe (flat int64
columns plus the annotation dicts).  Any exception is caught and
shipped back as ``("error", traceback)`` — the orchestrator re-raises
it rank-0 side instead of hanging on a dead barrier.
"""

from __future__ import annotations

import time
import traceback
from collections import OrderedDict
from typing import Dict, Tuple

from ..congest.engine import Engine
from ..congest.ledger import CostLedger
from ..core.wave import run_planned_waves
from .ledger_merge import phases_to_wire
from .views import ShardSetup, rebuild_shard

#: How many rebuilt setups a worker keeps (phase loops use one at a time;
#: a small window covers interleaved setups without unbounded growth).
_SETUP_CACHE = 8


class _LoadedShard:
    __slots__ = ("setup", "engine")

    def __init__(self, setup: ShardSetup, engine: Engine) -> None:
        self.setup = setup
        self.engine = engine


def _load(payload: Dict[str, object]) -> _LoadedShard:
    setup = rebuild_shard(payload)
    engine = Engine(
        setup.net,
        strict_bits=payload["strict_bits"],
        strict_edges=payload["strict_edges"],
        use_arrays=payload["use_arrays"],
        profile=payload["profile"],
    )
    return _LoadedShard(setup, engine)


def _solve(shard: _LoadedShard, solve: Dict[str, object]) -> Dict[str, object]:
    from .orchestrator import decode_aggregation  # fork-safe, no cycle at import

    setup = shard.setup
    agg = decode_aggregation(solve["agg"])
    ledger = CostLedger()
    start = time.perf_counter()
    outcome = run_planned_waves(
        shard.engine,
        setup.net,
        setup.partition,
        setup.division,
        setup.shortcut,
        setup.annotations,
        solve["values"],
        agg,
        ledger,
        solve["plan"],
        phase_prefix=solve["phase_prefix"],
    )
    wall = time.perf_counter() - start
    member_values = [
        outcome.value_at_node[int(lv)] for lv in setup.member_locals
    ]
    return {
        "phases": phases_to_wire(ledger.phases()),
        "aggregates": dict(outcome.aggregates),
        "member_values": member_values,
        "wall_seconds": wall,
    }


def worker_main(conn) -> None:
    """Run the worker loop on ``conn`` until ``close`` or EOF."""
    shards: "OrderedDict[object, _LoadedShard]" = OrderedDict()
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            break
        kind = msg[0]
        try:
            if kind == "load":
                _kind, setup_id, payload = msg
                shards[setup_id] = _load(payload)
                shards.move_to_end(setup_id)
                while len(shards) > _SETUP_CACHE:
                    shards.popitem(last=False)
                conn.send(("ok", setup_id))
            elif kind == "solve":
                _kind, setup_id, solve = msg
                shard = shards.get(setup_id)
                if shard is None:
                    raise RuntimeError(f"setup {setup_id!r} not loaded")
                shards.move_to_end(setup_id)
                conn.send(("result", _solve(shard, solve)))
            elif kind == "unload":
                _kind, setup_id = msg
                shards.pop(setup_id, None)
                conn.send(("ok", setup_id))
            elif kind == "close":
                conn.send(("ok", "close"))
                break
            else:
                raise RuntimeError(f"unknown request {kind!r}")
        except Exception:  # noqa: BLE001 - ship to orchestrator, don't hang
            conn.send(("error", traceback.format_exc()))
    conn.close()
