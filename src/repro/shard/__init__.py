"""repro.shard — the multiprocess sharded backend behind :class:`PASession`.

The PA waves are embarrassingly parallel across *conflict components*:
groups of parts that share spanning-tree edges (directly via their
``H_i`` sets, or indirectly through an in-part tree edge).  Two parts in
different components never place a message on the same directed edge
during a wave pass, and the per-part wave state is disjoint, so each
component's three phases replay bit-for-bit inside an isolated engine
over the induced sub-network.

The backend splits into three layers:

* :mod:`repro.shard.plan` — orchestrator-side shard plan: union-find
  the conflict components, bin them deterministically into worker
  shards;
* :mod:`repro.shard.views` — restrict the global setup (network,
  partition, division, shortcut, annotations, wave plan) to one shard,
  as a picklable payload plus the worker-side rebuild;
* :mod:`repro.shard.orchestrator` / :mod:`repro.shard.worker` — the
  rank-0 driver that ships shards to persistent forked workers, runs
  the wave phases between barriers, and merges the per-shard ledgers
  deterministically in shard-index order (rounds/ticks max, messages/
  bits sum — the parallel-composition rule the ledger module already
  states).

See docs/architecture.md, "Sharded backend", for the parity argument
and its exact boundary (rounds/messages are bit-for-bit; ``bits`` and
profiles are not gated).
"""

from .ledger_merge import merge_shard_phases
from .orchestrator import ShardOrchestrator, encode_aggregation, encode_batch
from .plan import ShardPlan, build_shard_plan

__all__ = [
    "ShardOrchestrator",
    "ShardPlan",
    "build_shard_plan",
    "encode_aggregation",
    "encode_batch",
    "merge_shard_phases",
]
