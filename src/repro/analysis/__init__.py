"""Sequential reference oracles and the paper's theoretical envelopes."""

from .reference import (
    dijkstra,
    exact_min_dominating_set_size,
    greedy_dominating_set_size,
    kruskal_mst,
    mst_weight,
    stoer_wagner_min_cut,
)
from .theory import (
    TABLE1,
    TABLE2_DETERMINISTIC,
    TABLE2_RANDOMIZED,
    FamilyBounds,
    general_round_envelope,
    polylog,
)

__all__ = [
    "FamilyBounds",
    "TABLE1",
    "TABLE2_DETERMINISTIC",
    "TABLE2_RANDOMIZED",
    "dijkstra",
    "exact_min_dominating_set_size",
    "general_round_envelope",
    "greedy_dominating_set_size",
    "kruskal_mst",
    "mst_weight",
    "polylog",
    "stoer_wagner_min_cut",
]
