"""Sequential reference implementations (correctness oracles).

Every distributed algorithm in this repository is checked against a plain
sequential counterpart on the same inputs.  These run orchestrator-side
and are deliberately straightforward.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..congest.network import Network, canonical_edge


def kruskal_mst(net: Network) -> Set[Tuple[int, int]]:
    """The minimum spanning tree under (weight, uid, uid) tie-breaking.

    Uses the same lexicographic tie-break as the distributed Boruvka, so
    on any weights the outputs are comparable edge sets.
    """
    if net.weights is None:
        raise ValueError("MST requires weights")
    parent = list(range(net.n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def ordered(e: Tuple[int, int]) -> Tuple[int, int, int]:
        u, v = e
        a, b = sorted((net.uid[u], net.uid[v]))
        return (net.weight(u, v), a, b)

    tree: Set[Tuple[int, int]] = set()
    for u, v in sorted(net.edges, key=ordered):
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            tree.add(canonical_edge(u, v))
    return tree


def mst_weight(net: Network, edges: Set[Tuple[int, int]]) -> int:
    """Total weight of an edge set."""
    return sum(net.weight(u, v) for u, v in edges)


def dijkstra(net: Network, source: int) -> List[int]:
    """Exact single-source shortest path distances."""
    dist = [None] * net.n
    dist[source] = 0
    heap = [(0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d != dist[u]:
            continue
        for v in net.neighbors[u]:
            nd = d + net.weight(u, v)
            if dist[v] is None or nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def stoer_wagner_min_cut(net: Network) -> int:
    """Exact global minimum cut value (Stoer-Wagner)."""
    if net.n < 2:
        raise ValueError("min cut needs at least two nodes")
    # Work on a contractible weighted adjacency structure.
    nodes: List[List[int]] = [[v] for v in range(net.n)]
    weight: List[Dict[int, int]] = [dict() for _ in range(net.n)]
    for u, v in net.edges:
        w = net.weight(u, v)
        weight[u][v] = weight[u].get(v, 0) + w
        weight[v][u] = weight[v].get(u, 0) + w
    active = set(range(net.n))
    best = None

    while len(active) > 1:
        # Maximum adjacency order from an arbitrary start.
        start = next(iter(active))
        order = [start]
        added = {start}
        conn = {v: weight[start].get(v, 0) for v in active if v != start}
        while len(order) < len(active):
            nxt = max(conn, key=lambda v: (conn[v], -v))
            order.append(nxt)
            added.add(nxt)
            del conn[nxt]
            for v, w in weight[nxt].items():
                if v in active and v not in added:
                    conn[v] = conn.get(v, 0) + w
        s, t = order[-2], order[-1]
        cut_of_phase = sum(
            w for v, w in weight[t].items() if v in active
        )
        if best is None or cut_of_phase < best:
            best = cut_of_phase
        # Contract t into s.
        for v, w in list(weight[t].items()):
            if v == s or v not in active:
                continue
            weight[s][v] = weight[s].get(v, 0) + w
            weight[v][s] = weight[v].get(s, 0) + w
        for v in list(weight[t]):
            weight[v].pop(t, None)
        weight[t].clear()
        nodes[s].extend(nodes[t])
        active.discard(t)
    return best


def greedy_dominating_set_size(net: Network) -> int:
    """Size of the sequential greedy dominating set (approx-ratio anchor)."""
    dominated = [False] * net.n
    chosen = 0
    while not all(dominated):
        best_v, best_span = -1, -1
        for v in range(net.n):
            span = (0 if dominated[v] else 1) + sum(
                1 for nb in net.neighbors[v] if not dominated[nb]
            )
            if span > best_span:
                best_span, best_v = span, v
        chosen += 1
        dominated[best_v] = True
        for nb in net.neighbors[best_v]:
            dominated[nb] = True
    return chosen


def exact_min_dominating_set_size(net: Network, limit: int = 20) -> Optional[int]:
    """Brute-force minimum dominating set size for tiny graphs (tests)."""
    if net.n > limit:
        return None
    from itertools import combinations

    universe = set(range(net.n))
    for size in range(1, net.n + 1):
        for combo in combinations(range(net.n), size):
            covered = set(combo)
            for v in combo:
                covered.update(net.neighbors[v])
            if covered == universe:
                return size
    return net.n
