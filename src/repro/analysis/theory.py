"""The paper's Tables 1 and 2 as data (Appendix C).

Benchmarks print the measured shortcut quality and PA round counts next to
these theoretical envelopes; EXPERIMENTS.md records both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict


@dataclass(frozen=True)
class FamilyBounds:
    """One column of Table 1/2: a graph family's known (b, c) and runtimes.

    ``b`` and ``c`` are functions of (n, D, parameter); runtimes follow
    Theorem 1.2: deterministic O~(b(D + c)), randomized O~(bD + c).
    """

    name: str
    block_parameter: Callable[[int, int, int], float]
    congestion: Callable[[int, int, int], float]

    def deterministic_rounds(self, n: int, diameter: int, param: int = 1) -> float:
        b = self.block_parameter(n, diameter, param)
        c = self.congestion(n, diameter, param)
        return b * (diameter + c)

    def randomized_rounds(self, n: int, diameter: int, param: int = 1) -> float:
        b = self.block_parameter(n, diameter, param)
        c = self.congestion(n, diameter, param)
        return b * diameter + c


def _log(n: int) -> float:
    return max(1.0, math.log2(max(2, n)))


#: Table 1, column by column.  ``param`` is the family parameter (genus g,
#: treewidth t, pathwidth p); unused for general/planar.
TABLE1: Dict[str, FamilyBounds] = {
    "general": FamilyBounds(
        "general",
        block_parameter=lambda n, d, p: 1.0,
        congestion=lambda n, d, p: math.sqrt(n),
    ),
    "planar": FamilyBounds(
        "planar",
        block_parameter=lambda n, d, p: _log(d),
        congestion=lambda n, d, p: d * _log(n),
    ),
    "genus": FamilyBounds(
        "genus",
        block_parameter=lambda n, d, p: math.sqrt(max(1, p)),
        congestion=lambda n, d, p: math.sqrt(max(1, p)) * d * _log(n),
    ),
    "treewidth": FamilyBounds(
        "treewidth",
        block_parameter=lambda n, d, p: max(1, p),
        congestion=lambda n, d, p: max(1, p) * _log(n),
    ),
    "pathwidth": FamilyBounds(
        "pathwidth",
        block_parameter=lambda n, d, p: max(1, p),
        congestion=lambda n, d, p: max(1, p),
    ),
}


#: Table 2: asymptotic runtimes, as printable strings for the reports.
TABLE2_DETERMINISTIC: Dict[str, str] = {
    "general": "O~(D + sqrt n)",
    "planar": "O~(D)",
    "genus": "O~(g D)",
    "treewidth": "O~(t D + t^2)",
    "pathwidth": "O~(p D + p^2)",
    "minor_free": "O~(D^2)",
}

TABLE2_RANDOMIZED: Dict[str, str] = {
    "general": "O~(D + sqrt n)",
    "planar": "O~(D)",
    "genus": "O~(sqrt(g) D)",
    "treewidth": "O~(t D)",
    "pathwidth": "O~(p D)",
    "minor_free": "O~(D^2)",
}


def general_round_envelope(n: int, diameter: int) -> float:
    """The worst-case optimal O~(D + sqrt n) envelope (no polylog)."""
    return diameter + math.sqrt(n)


def polylog(n: int, power: int = 2) -> float:
    """A concrete polylog factor for envelope assertions in tests."""
    return _log(n) ** power
