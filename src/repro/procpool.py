"""Shared process-pool sizing for parallel sweeps and the shard backend.

Two subsystems fan work out over worker processes: the bench runner
(``--jobs``, one bench file per task) and the sharded PA backend
(``PASession(backend="sharded", workers=...)``, one shard per worker).
Both size their pools identically — this module is the single
implementation, so ``"auto"`` means the same thing everywhere and the
validation rules cannot drift apart.

Wall-clock discipline travels with the pool: work that shares cores
cannot be held to wall-ratio assertions, so pool initializers call
:func:`lift_wall_gate` (deterministic ledger assertions always run; an
explicit ``REPRO_SESSION_WALL_GATE`` from the caller still wins).
"""

from __future__ import annotations

import os
from typing import Type, Union

WorkerSpec = Union[int, str, None]


def available_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the machine, not the process: inside a
    cgroup-limited container (CI runners, ``docker --cpus``, batch
    schedulers) it counts cores the scheduler will never grant, so sizing
    a pool by it oversubscribes every worker onto a fraction of a core.
    The scheduler affinity mask (``os.sched_getaffinity``) is the honest
    figure where the platform exposes it (Linux); elsewhere fall back to
    ``os.cpu_count() or 1``.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or 1
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


def resolve_workers(
    spec: WorkerSpec, *, error: Type[BaseException] = ValueError
) -> int:
    """Turn a worker-count spec into a positive worker count.

    ``"auto"`` (or ``None``) resolves to :func:`available_cpus` — the
    scheduler-affinity CPU count where available, so cgroup-limited
    containers get pools they can actually run; anything else must parse
    as an integer >= 1.  Invalid specs raise ``error`` (``ValueError`` by
    default; the bench CLI passes ``SystemExit`` so bad ``--jobs``
    arguments exit with a message instead of a traceback).
    """
    if spec is None or spec == "auto":
        return available_cpus()
    try:
        count = int(spec)
    except (TypeError, ValueError):
        raise error(
            f"error: worker count must be an integer or 'auto', got {spec!r}"
        )
    if count < 1:
        raise error(f"error: worker count must be >= 1, got {count}")
    return count


def lift_wall_gate() -> None:
    """Disable wall-ratio assertions in a pool worker (pool initializer).

    Parallel workers contend for cores, so wall times measured in them are
    as untrustworthy as CI's — the same rule applies: deterministic ledger
    assertions always run, wall-ratio gates do not.  An explicit
    ``REPRO_SESSION_WALL_GATE`` from the caller still wins.
    """
    os.environ.setdefault("REPRO_SESSION_WALL_GATE", "0")
