"""repro: reproduction of "Round- and Message-Optimal Distributed Graph
Algorithms" (Haeupler, Hershkowitz, Wajc; PODC 2018).

Public API tour:

* ``repro.congest`` — the metered CONGEST simulator (Network, Engine,
  CostLedger).
* ``repro.graphs`` — workload generators, partitions, weights.
* ``repro.core`` — Part-Wise Aggregation: shortcuts, sub-part divisions,
  the Algorithm 1 waves, randomized and deterministic constructions
  (Theorem 1.2; entry point :func:`repro.solve_pa`).
* ``repro.algorithms`` — applications: MST, approximate min-cut,
  approximate SSSP, graph verification, CDS, k-dominating sets
  (Corollaries 1.3-1.5, A.1-A.3).
* ``repro.baselines`` — prior-work comparators (block-aggregation PA,
  flood PA, GHS-style MST).
* ``repro.analysis`` — sequential reference oracles and the paper's
  Table 1/2 bounds.
* ``repro.families`` — family-aware shortcut construction: the
  ``ShortcutProvider`` strategy API, decomposition oracles with validity
  certificates, and the registry realizing the Tables 1-2 O~(D) bounds
  (pluggable via ``PASolver.prepare(..., shortcut_provider=...)``).
* ``repro.runtime`` — :class:`PASession`: the long-lived PA acquisition
  point every algorithm routes through, with opt-in setup caching,
  incremental coarsening across merge phases, and batched
  multi-aggregate solves.
* ``repro.service`` — PA-as-a-service: :class:`PAService` serves
  multi-tenant aggregation query streams over evolving graphs
  (micro-batched waves, incremental partition/edge updates, per-tenant
  ledger attribution); :class:`SessionPool` bounds session fleets with
  close-on-eviction lifecycle.
* ``repro.fuzz`` — the schedule-and-graph differential fuzzer that pins
  sync/async equivalence (``python -m repro.fuzz``).
"""

from .congest import (
    AsyncEngine,
    CostLedger,
    Engine,
    FaultPlan,
    Network,
    PhaseStats,
    Schedule,
    make_schedule,
)
from .core import (
    MAX,
    MIN,
    MIN_TUPLE,
    PAResult,
    PASolver,
    SUM,
    Aggregation,
    Shortcut,
    solve_pa,
)
from .families import ShortcutProvider, provider_for
from .graphs import Partition
from .runtime import PASession, RecoveryDriver
from .service import PAService, SessionPool

__version__ = "1.0.0"

__all__ = [
    "Aggregation",
    "AsyncEngine",
    "CostLedger",
    "Engine",
    "FaultPlan",
    "MAX",
    "MIN",
    "MIN_TUPLE",
    "Network",
    "PAResult",
    "PAService",
    "PASession",
    "PASolver",
    "Partition",
    "PhaseStats",
    "RecoveryDriver",
    "Schedule",
    "SessionPool",
    "ShortcutProvider",
    "SUM",
    "Shortcut",
    "make_schedule",
    "provider_for",
    "solve_pa",
    "__version__",
]
