"""Vertex partitions for Part-Wise Aggregation instances.

A :class:`Partition` assigns every node to exactly one part; Definition 1.1
additionally requires every part to induce a connected subgraph, which
:func:`validate_partition` checks.  Generators here produce the workload
partitions used throughout the tests and benchmarks:

* :func:`row_partition` — each grid row is a part (the Figure 2a workload);
* :func:`bfs_ball_partition` — random connected clusters of a target size;
* :func:`random_connected_partition` — random forest-grown parts;
* :func:`singleton_partition` / :func:`whole_graph_partition` — extremes.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..congest.errors import InvalidPartitionError
from ..congest.network import Network


class Partition:
    """An assignment of the n nodes into parts ``0..num_parts-1``.

    The canonical representation is ``part_of``: a list mapping node ->
    part id.  Part ids are always contiguous starting at zero.
    """

    def __init__(self, part_of: Sequence[int]) -> None:
        if len(part_of) == 0:
            raise InvalidPartitionError("partition of an empty node set")
        ids = sorted(set(part_of))
        if ids != list(range(len(ids))):
            raise InvalidPartitionError(
                "part ids must be contiguous integers starting at 0"
            )
        self.part_of: Tuple[int, ...] = tuple(part_of)
        self.num_parts: int = len(ids)
        members: List[List[int]] = [[] for _ in range(self.num_parts)]
        for node, pid in enumerate(self.part_of):
            members[pid].append(node)
        self.members: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(part) for part in members
        )

    @classmethod
    def from_groups(cls, groups: Iterable[Iterable[int]], n: int) -> "Partition":
        """Build a partition from explicit member groups covering 0..n-1."""
        part_of = [-1] * n
        for pid, group in enumerate(groups):
            for node in group:
                if part_of[node] != -1:
                    raise InvalidPartitionError(
                        f"node {node} appears in two parts"
                    )
                part_of[node] = pid
        if any(pid == -1 for pid in part_of):
            missing = [v for v, pid in enumerate(part_of) if pid == -1]
            raise InvalidPartitionError(f"nodes not covered: {missing[:5]}")
        return cls(part_of)

    def size_of(self, pid: int) -> int:
        """Number of nodes in part ``pid``."""
        return len(self.members[pid])

    def __len__(self) -> int:
        return self.num_parts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Partition(num_parts={self.num_parts}, n={len(self.part_of)})"


def validate_partition(net: Network, partition: Partition) -> None:
    """Check the Definition 1.1 preconditions; raise if violated.

    Every part must induce a connected subgraph of ``net`` and the
    partition must cover exactly the network's node set.
    """
    if len(partition.part_of) != net.n:
        raise InvalidPartitionError(
            f"partition covers {len(partition.part_of)} nodes, network has {net.n}"
        )
    for pid, members in enumerate(partition.members):
        if not members:
            raise InvalidPartitionError(f"part {pid} is empty")
        member_set = set(members)
        seen = {members[0]}
        stack = [members[0]]
        while stack:
            u = stack.pop()
            for v in net.neighbors[u]:
                if v in member_set and v not in seen:
                    seen.add(v)
                    stack.append(v)
        if len(seen) != len(member_set):
            raise InvalidPartitionError(
                f"part {pid} does not induce a connected subgraph"
            )


def singleton_partition(net: Network) -> Partition:
    """Every node is its own part."""
    return Partition(list(range(net.n)))


def whole_graph_partition(net: Network) -> Partition:
    """All nodes in one part (requires a connected network)."""
    return Partition([0] * net.n)


def row_partition(rows: int, cols: int, include_apex: bool = False) -> Partition:
    """Each grid row is one part; Figure 2a's workload.

    If ``include_apex`` the apex node (index rows*cols) joins row 0's part,
    keeping the part connected through the apex edges.
    """
    part_of = [r for r in range(rows) for _ in range(cols)]
    if include_apex:
        part_of.append(0)
    return Partition(part_of)


def bfs_ball_partition(
    net: Network, target_size: int, seed: int = 7
) -> Partition:
    """Connected parts grown as BFS balls of roughly ``target_size`` nodes.

    Seeds are chosen at random; each seed claims unclaimed nodes in BFS
    order until it reaches the target size, then the next seed starts.
    Leftover unclaimed nodes are attached to an adjacent part, keeping all
    parts connected.
    """
    if target_size < 1:
        raise ValueError("target size must be positive")
    rng = random.Random(seed)
    order = list(range(net.n))
    rng.shuffle(order)
    part_of = [-1] * net.n
    next_pid = 0
    for seed_node in order:
        if part_of[seed_node] != -1:
            continue
        pid = next_pid
        next_pid += 1
        part_of[seed_node] = pid
        frontier = [seed_node]
        size = 1
        while frontier and size < target_size:
            nxt = []
            for u in frontier:
                for v in net.neighbors[u]:
                    if part_of[v] == -1:
                        part_of[v] = pid
                        nxt.append(v)
                        size += 1
                        if size >= target_size:
                            break
                if size >= target_size:
                    break
            frontier = nxt
    return Partition(part_of)


def random_connected_partition(
    net: Network, num_parts: int, seed: int = 7
) -> Partition:
    """Exactly ``num_parts`` connected parts grown by competitive BFS.

    ``num_parts`` random seeds expand simultaneously, claiming unclaimed
    neighbors in random order, so the parts tile the graph and each part is
    connected by construction.
    """
    if not 1 <= num_parts <= net.n:
        raise ValueError("num_parts must be in [1, n]")
    rng = random.Random(seed)
    seeds = rng.sample(range(net.n), num_parts)
    part_of = [-1] * net.n
    frontiers: List[List[int]] = []
    for pid, s in enumerate(seeds):
        part_of[s] = pid
        frontiers.append([s])
    remaining = net.n - num_parts
    while remaining > 0:
        progressed = False
        for pid in range(num_parts):
            new_frontier = []
            for u in frontiers[pid]:
                for v in net.neighbors[u]:
                    if part_of[v] == -1:
                        part_of[v] = pid
                        new_frontier.append(v)
                        remaining -= 1
                        progressed = True
            if new_frontier:
                frontiers[pid] = new_frontier
        if not progressed:
            raise InvalidPartitionError(
                "network is disconnected; cannot tile with connected parts"
            )
    return Partition(part_of)


def partition_from_component_labels(labels: Sequence[int]) -> Partition:
    """Compress arbitrary component labels into a contiguous Partition."""
    remap: Dict[int, int] = {}
    part_of = []
    for label in labels:
        if label not in remap:
            remap[label] = len(remap)
        part_of.append(remap[label])
    return Partition(part_of)


def boundary_edges(net: Network, partition: Partition) -> List[Tuple[int, int]]:
    """All edges whose endpoints lie in different parts."""
    out = []
    for u, v in net.edges:
        if partition.part_of[u] != partition.part_of[v]:
            out.append((u, v))
    return out


def part_diameters(net: Network, partition: Partition) -> List[int]:
    """Hop diameter of each part's induced subgraph (test oracle)."""
    diameters = []
    for members in partition.members:
        member_set = set(members)
        best = 0
        for src in members:
            dist = {src: 0}
            frontier = [src]
            while frontier:
                nxt = []
                for u in frontier:
                    for v in net.neighbors[u]:
                        if v in member_set and v not in dist:
                            dist[v] = dist[u] + 1
                            nxt.append(v)
                frontier = nxt
            best = max(best, max(dist.values()))
        diameters.append(best)
    return diameters
