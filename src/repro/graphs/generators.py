"""Workload graph generators.

Every generator returns a :class:`~repro.congest.network.Network` over nodes
``0..n-1``.  The families mirror the paper's evaluation surface:

* :func:`grid_with_apex` — the Figure 2a counterexample: a D x W grid plus
  an apex node adjacent to the whole top row.  Prior shortcut PA uses
  Theta(nD) messages here; the paper's sub-part PA uses O~(n).
* :func:`grid_2d` / :func:`random_planar` — planar workhorses (Table 1
  "Planar" row; the latter is a triangulated grid with random holes).
* :func:`torus_2d` — genus-1 family (Table 1 "Genus g" row).
* :func:`k_tree` / :func:`series_parallel` — treewidth-bounded families
  (Table 1 "Treewidth t" row).
* :func:`ladder` / :func:`caterpillar` — pathwidth-bounded families
  (Table 1 "Pathwidth p" row).
* :func:`random_connected` / :func:`random_regular_ish` — "General" row.
* paths, cycles, stars, complete graphs and random trees as building blocks
  and adversarial cases.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

from ..congest.network import Edge, Network, canonical_edge


def _finish(
    edges: List[Edge],
    n: int,
    uid_seed: int,
    weights: Optional[Dict[Edge, int]] = None,
) -> Network:
    return Network(edges, n=n, weights=weights, uid_seed=uid_seed)


def path_graph(n: int, uid_seed: int = 0x5EED) -> Network:
    """A path on ``n`` nodes: 0 - 1 - ... - n-1."""
    if n < 1:
        raise ValueError("path needs at least one node")
    return _finish([(i, i + 1) for i in range(n - 1)], n, uid_seed)


def cycle_graph(n: int, uid_seed: int = 0x5EED) -> Network:
    """A cycle on ``n >= 3`` nodes."""
    if n < 3:
        raise ValueError("cycle needs at least three nodes")
    edges = [(i, i + 1) for i in range(n - 1)]
    edges.append((0, n - 1))
    return _finish(edges, n, uid_seed)


def star_graph(n: int, uid_seed: int = 0x5EED) -> Network:
    """A star: node 0 is the hub, 1..n-1 are leaves."""
    if n < 2:
        raise ValueError("star needs at least two nodes")
    return _finish([(0, i) for i in range(1, n)], n, uid_seed)


def complete_graph(n: int, uid_seed: int = 0x5EED) -> Network:
    """The complete graph K_n."""
    if n < 2:
        raise ValueError("complete graph needs at least two nodes")
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return _finish(edges, n, uid_seed)


def grid_2d(rows: int, cols: int, uid_seed: int = 0x5EED) -> Network:
    """A rows x cols planar grid.  Node (r, c) has index r * cols + c."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    edges: List[Edge] = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return _finish(edges, rows * cols, uid_seed)


def grid_node(r: int, c: int, cols: int) -> int:
    """Index of grid node (r, c) in a ``cols``-wide grid."""
    return r * cols + c


def grid_with_apex(rows: int, cols: int, uid_seed: int = 0x5EED) -> Network:
    """The Figure 2a graph: a rows x cols grid plus an apex node ``r``.

    The apex is node ``rows * cols`` and neighbors every node of row 0
    (the "top row").  With each row as its own part and the columns as
    shortcut edges, block-aggregation PA needs Omega(n * rows) messages
    while the paper's sub-part PA needs O~(n).
    """
    base = grid_2d(rows, cols, uid_seed)
    apex = rows * cols
    edges = list(base.edges)
    edges.extend((grid_node(0, c, cols), apex) for c in range(cols))
    return _finish(edges, apex + 1, uid_seed)


def torus_2d(rows: int, cols: int, uid_seed: int = 0x5EED) -> Network:
    """A rows x cols torus (genus-1, 4-regular)."""
    if rows < 3 or cols < 3:
        raise ValueError("torus needs both dimensions >= 3")
    edges = set()
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            right = r * cols + (c + 1) % cols
            down = ((r + 1) % rows) * cols + c
            edges.add(canonical_edge(v, right))
            edges.add(canonical_edge(v, down))
    return _finish(sorted(edges), rows * cols, uid_seed)


def ladder(length: int, uid_seed: int = 0x5EED) -> Network:
    """A 2 x length ladder (pathwidth 2)."""
    return grid_2d(2, length, uid_seed)


def caterpillar(spine: int, legs_per_node: int, uid_seed: int = 0x5EED) -> Network:
    """A caterpillar tree: a spine path with ``legs_per_node`` pendant legs.

    Caterpillars have pathwidth 1; they exercise the "Pathwidth p" row of
    Table 1 at its extreme.
    """
    if spine < 1:
        raise ValueError("caterpillar needs a spine")
    edges: List[Edge] = [(i, i + 1) for i in range(spine - 1)]
    nxt = spine
    for s in range(spine):
        for _ in range(legs_per_node):
            edges.append((s, nxt))
            nxt += 1
    return _finish(edges, nxt, uid_seed)


def k_tree(n: int, k: int, seed: int = 7, uid_seed: int = 0x5EED) -> Network:
    """A random k-tree on ``n`` nodes (treewidth exactly k for n > k).

    Construction: start from a (k+1)-clique; each new node is joined to a
    uniformly random existing k-clique.
    """
    if n < k + 1:
        raise ValueError("k-tree needs at least k+1 nodes")
    rng = random.Random(seed)
    edges = set()
    cliques: List[Tuple[int, ...]] = []
    base = tuple(range(k + 1))
    for i in range(k + 1):
        for j in range(i + 1, k + 1):
            edges.add((i, j))
    # All k-subsets of the base clique are attachable k-cliques.
    for drop in range(k + 1):
        cliques.append(tuple(x for x in base if x != drop))
    for v in range(k + 1, n):
        clique = rng.choice(cliques)
        for u in clique:
            edges.add(canonical_edge(u, v))
        for drop in range(k):
            new_clique = tuple(x for x in clique if x != clique[drop]) + (v,)
            cliques.append(tuple(sorted(new_clique)))
    return _finish(sorted(edges), n, uid_seed)


def series_parallel(n: int, seed: int = 7, uid_seed: int = 0x5EED) -> Network:
    """A random 2-tree on ``n`` nodes (treewidth exactly 2 for n >= 3).

    Construction: start from the edge (0, 1); every later node attaches to
    both endpoints of a uniformly random *existing edge*.  2-trees exclude
    K4 minors, so the result is series-parallel — the canonical
    treewidth-2 workload of Table 1 — and the build is O(n) (m = 2n - 3),
    comfortably usable at n = 50k.
    """
    if n < 2:
        raise ValueError("series-parallel graph needs at least two nodes")
    rng = random.Random(seed)
    edges: List[Edge] = [(0, 1)]
    for v in range(2, n):
        a, b = edges[rng.randrange(len(edges))]
        edges.append((a, v))
        edges.append((b, v))
    return _finish(edges, n, uid_seed)


def random_planar(
    n: int, seed: int = 7, hole_prob: float = 0.25, uid_seed: int = 0x5EED
) -> Network:
    """A triangulated grid with random holes (planar, connected, exact n).

    A near-square grid skeleton on exactly ``n`` nodes (last row possibly
    partial) is kept intact — that guarantees connectivity — and every
    complete grid cell is triangulated by one diagonal of random
    orientation with probability ``1 - hole_prob``; cells left without a
    diagonal are the holes.  O(m) and planar by construction
    (m <= 3n - 6 for n >= 5 holds with room to spare), the irregular
    planar workload next to the perfectly regular :func:`grid_2d`.
    """
    if n < 4:
        raise ValueError("random planar graph needs at least four nodes")
    if not 0.0 <= hole_prob <= 1.0:
        raise ValueError("hole probability must be in [0, 1]")
    rng = random.Random(seed)
    cols = max(2, math.isqrt(n))
    rows = (n + cols - 1) // cols
    edges: List[Edge] = []
    for v in range(n):
        r, c = divmod(v, cols)
        if c + 1 < cols and v + 1 < n:
            edges.append((v, v + 1))
        if v + cols < n:
            edges.append((v, v + cols))
    for r in range(rows - 1):
        for c in range(cols - 1):
            v = r * cols + c
            if v + cols + 1 >= n:
                continue  # incomplete cell in the partial last row
            if rng.random() < hole_prob:
                continue  # this cell is a hole
            if rng.random() < 0.5:
                edges.append((v, v + cols + 1))
            else:
                edges.append((v + 1, v + cols))
    return _finish(edges, n, uid_seed)


def random_tree(n: int, seed: int = 7, uid_seed: int = 0x5EED) -> Network:
    """A uniformly random labeled tree (via a random Pruefer-like attachment)."""
    if n < 1:
        raise ValueError("tree needs at least one node")
    rng = random.Random(seed)
    edges = [(rng.randrange(v), v) for v in range(1, n)]
    return _finish(edges, n, uid_seed)


def balanced_binary_tree(depth: int, uid_seed: int = 0x5EED) -> Network:
    """A complete binary tree of the given depth (root = node 0)."""
    n = 2 ** (depth + 1) - 1
    edges = [((v - 1) // 2, v) for v in range(1, n)]
    return _finish(edges, n, uid_seed)


def random_connected(
    n: int, extra_edge_prob: float, seed: int = 7, uid_seed: int = 0x5EED
) -> Network:
    """A connected Erdos-Renyi-style graph ("General" Table 1 row).

    A random spanning tree guarantees connectivity; every other pair is an
    edge independently with probability ``extra_edge_prob``.
    """
    if not 0.0 <= extra_edge_prob <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    rng = random.Random(seed)
    edges = set()
    order = list(range(n))
    rng.shuffle(order)
    for i in range(1, n):
        u = order[rng.randrange(i)]
        v = order[i]
        edges.add(canonical_edge(u, v))
    if extra_edge_prob > 0:
        for u in range(n):
            for v in range(u + 1, n):
                if (u, v) not in edges and rng.random() < extra_edge_prob:
                    edges.add((u, v))
    return _finish(sorted(edges), n, uid_seed)


def random_regular_ish(
    n: int, degree: int, seed: int = 7, uid_seed: int = 0x5EED
) -> Network:
    """A connected graph with (near-)uniform degree ~ ``degree``.

    Built as a Hamiltonian cycle plus random chords; good expander-like
    "general graph" workload with diameter O(log n).
    """
    if degree < 2:
        raise ValueError("degree must be at least 2")
    if n < degree + 1:
        raise ValueError("need n > degree")
    rng = random.Random(seed)
    edges = set()
    for i in range(n):
        edges.add(canonical_edge(i, (i + 1) % n))
    target = n * degree // 2
    attempts = 0
    while len(edges) < target and attempts < 50 * target:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            edges.add(canonical_edge(u, v))
    return _finish(sorted(edges), n, uid_seed)


def random_regular(
    n: int, degree: int, seed: int = 7, uid_seed: int = 0x5EED
) -> Network:
    """An exactly ``degree``-regular connected simple graph.

    Configuration (pairing) model with local repair: every node
    contributes ``degree`` stubs, a random perfect matching of the stubs
    proposes the edges, and a proposed self-loop or duplicate edge is
    repaired by re-drawing its second endpoint from the unmatched suffix
    (the standard practical variant, expected O(m) work).  If repair
    stalls or the matched graph is disconnected the whole pairing restarts
    with fresh randomness; for ``degree >= 3`` a handful of attempts
    suffice with overwhelming probability.  Unlike
    :func:`random_regular_ish` the result is exactly regular — the
    clean workload for the sqrt(n) scaling regime of Theorem 1.2.
    """
    if degree < 3:
        raise ValueError("random_regular needs degree >= 3 (connectivity)")
    if n <= degree:
        raise ValueError("need n > degree")
    if n * degree % 2:
        raise ValueError("n * degree must be even")
    rng = random.Random(seed)
    for _attempt in range(64):
        stubs = [v for v in range(n) for _ in range(degree)]
        rng.shuffle(stubs)
        edges = set()
        ok = True
        last = len(stubs) - 1
        for i in range(0, last, 2):
            u = stubs[i]
            v = stubs[i + 1]
            retries = 0
            while u == v or (u, v) in edges or (v, u) in edges:
                retries += 1
                if retries > 32 or i + 2 > last:
                    ok = False
                    break
                j = rng.randrange(i + 1, last + 1)
                stubs[i + 1], stubs[j] = stubs[j], stubs[i + 1]
                v = stubs[i + 1]
            if not ok:
                break
            edges.add((u, v) if u < v else (v, u))
        if not ok:
            continue
        net = _finish(sorted(edges), n, uid_seed)
        if net.is_connected():
            return net
    raise RuntimeError(
        f"failed to draw a connected {degree}-regular graph on {n} nodes"
    )


def preferential_attachment(
    n: int, attach: int = 3, seed: int = 7, uid_seed: int = 0x5EED
) -> Network:
    """A Barabási–Albert preferential-attachment graph (connected, O(m)).

    Starts from a star on ``attach + 1`` nodes; every later node joins
    with ``attach`` edges to distinct existing nodes drawn proportionally
    to degree (the classic repeated-endpoints trick: sampling uniformly
    from the flat endpoint list IS degree-proportional sampling).  Heavy
    tails and hub-dominated diameters make this the adversarial
    low-diameter workload of the scaling sweep.
    """
    if attach < 1:
        raise ValueError("attach must be >= 1")
    if n < attach + 2:
        raise ValueError("need n >= attach + 2")
    rng = random.Random(seed)
    edges: List[Edge] = []
    #: Every edge endpoint, once per incidence: uniform draws from this
    #: list are degree-proportional.
    endpoints: List[int] = []
    for v in range(1, attach + 1):
        edges.append((0, v))
        endpoints.extend((0, v))
    for v in range(attach + 1, n):
        targets: set = set()
        while len(targets) < attach:
            targets.add(endpoints[rng.randrange(len(endpoints))])
        for t in sorted(targets):
            edges.append((t, v))
            endpoints.extend((t, v))
    return _finish(edges, n, uid_seed)


def barbell(clique_size: int, path_length: int, uid_seed: int = 0x5EED) -> Network:
    """Two cliques joined by a path: a classic high-diameter stress case."""
    if clique_size < 2:
        raise ValueError("cliques need at least two nodes")
    edges: List[Edge] = []
    # First clique: 0..clique_size-1
    for i in range(clique_size):
        for j in range(i + 1, clique_size):
            edges.append((i, j))
    # Path: clique_size .. clique_size + path_length - 1
    prev = clique_size - 1
    for p in range(path_length):
        v = clique_size + p
        edges.append((prev, v))
        prev = v
    # Second clique
    base = clique_size + path_length
    for i in range(clique_size):
        for j in range(i + 1, clique_size):
            edges.append((base + i, base + j))
    edges.append((prev, base))
    return _finish(edges, base + clique_size, uid_seed)
