"""Structural graph properties used by tests and benchmark reporting.

These run on the orchestrator side (they are oracles, not distributed
algorithms) and are deliberately simple rather than fast.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..congest.network import Network


def connected_components(net: Network, edge_subset=None) -> List[int]:
    """Component label per node; labels are the minimum node index inside.

    ``edge_subset`` (iterable of edges) restricts the graph to a subgraph H
    over the same node set — the setting of the verification problems.
    """
    if edge_subset is None:
        adjacency = net.neighbors
    else:
        adj: List[List[int]] = [[] for _ in range(net.n)]
        for u, v in edge_subset:
            adj[u].append(v)
            adj[v].append(u)
        adjacency = adj
    label = [-1] * net.n
    for start in range(net.n):
        if label[start] != -1:
            continue
        stack = [start]
        label[start] = start
        while stack:
            u = stack.pop()
            for v in adjacency[u]:
                if label[v] == -1:
                    label[v] = start
                    stack.append(v)
    return label


def is_spanning_tree(net: Network, edges: Sequence[Tuple[int, int]]) -> bool:
    """True iff ``edges`` forms a spanning tree of the network."""
    if len(edges) != net.n - 1:
        return False
    labels = connected_components(net, edges)
    return len(set(labels)) == 1


def is_bipartite_subgraph(net: Network, edges: Sequence[Tuple[int, int]]) -> bool:
    """True iff the subgraph H = (V, edges) is bipartite."""
    adj: List[List[int]] = [[] for _ in range(net.n)]
    for u, v in edges:
        adj[u].append(v)
        adj[v].append(u)
    color = [-1] * net.n
    for start in range(net.n):
        if color[start] != -1:
            continue
        color[start] = 0
        stack = [start]
        while stack:
            u = stack.pop()
            for v in adj[u]:
                if color[v] == -1:
                    color[v] = color[u] ^ 1
                    stack.append(v)
                elif color[v] == color[u]:
                    return False
    return True


def is_dominating_set(net: Network, dominators: Set[int]) -> bool:
    """True iff every node is in ``dominators`` or adjacent to one."""
    for v in range(net.n):
        if v in dominators:
            continue
        if not any(u in dominators for u in net.neighbors[v]):
            return False
    return True


def is_k_dominating_set(net: Network, centers: Set[int], k: int) -> bool:
    """True iff every node is within hop distance k of some center."""
    if not centers:
        return net.n == 0
    dist = [-1] * net.n
    frontier = []
    for c in centers:
        dist[c] = 0
        frontier.append(c)
    depth = 0
    while frontier and depth < k:
        depth += 1
        nxt = []
        for u in frontier:
            for v in net.neighbors[u]:
                if dist[v] == -1:
                    dist[v] = depth
                    nxt.append(v)
        frontier = nxt
    return all(d != -1 for d in dist)


def induces_connected_subgraph(net: Network, nodes: Set[int]) -> bool:
    """True iff ``nodes`` induces a connected subgraph of ``net``."""
    if not nodes:
        return False
    start = next(iter(nodes))
    seen = {start}
    stack = [start]
    while stack:
        u = stack.pop()
        for v in net.neighbors[u]:
            if v in nodes and v not in seen:
                seen.add(v)
                stack.append(v)
    return len(seen) == len(nodes)


def subgraph_degrees(net: Network, edges: Sequence[Tuple[int, int]]) -> List[int]:
    """Degree of each node in the subgraph formed by ``edges``."""
    deg = [0] * net.n
    for u, v in edges:
        deg[u] += 1
        deg[v] += 1
    return deg


def cut_weight(net: Network, side: Set[int]) -> int:
    """Total weight of edges crossing (side, V - side)."""
    total = 0
    for u, v in net.edges:
        if (u in side) != (v in side):
            total += net.weight(u, v)
    return total
