"""Edge-weight assignment for weighted problem instances.

The paper's weighted problems (MST, min-cut, SSSP) assume integer edge
weights in [1, poly(n)], known initially to both endpoints.  These helpers
attach such weights to an unweighted :class:`Network`, including the
structured weightings used by the benchmarks (planted cuts, metric-ish
grids).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Optional, Set, Tuple

from ..congest.network import Edge, Network, canonical_edge


def with_random_weights(
    net: Network, max_weight: Optional[int] = None, seed: int = 7
) -> Network:
    """Copy of ``net`` with independent uniform weights in [1, max_weight].

    Default ``max_weight`` is n**2, inside the paper's poly(n) budget and
    large enough that random weights are distinct with high probability
    (convenient for unique-MST tests).
    """
    if max_weight is None:
        max_weight = max(4, net.n * net.n)
    rng = random.Random(seed)
    weights = {e: rng.randint(1, max_weight) for e in net.edges}
    return Network(net.edges, n=net.n, weights=weights, uid_seed=_uid_seed(net))


def with_unit_weights(net: Network) -> Network:
    """Copy of ``net`` where every edge has weight 1."""
    weights = {e: 1 for e in net.edges}
    return Network(net.edges, n=net.n, weights=weights, uid_seed=_uid_seed(net))


def with_distinct_weights(net: Network, seed: int = 7) -> Network:
    """Copy of ``net`` with a random permutation of 1..m as weights.

    Distinct weights make the MST unique, which simplifies equality checks
    against the Kruskal reference.
    """
    rng = random.Random(seed)
    perm = list(range(1, net.m + 1))
    rng.shuffle(perm)
    weights = {e: perm[i] for i, e in enumerate(net.edges)}
    return Network(net.edges, n=net.n, weights=weights, uid_seed=_uid_seed(net))


def with_planted_cut(
    net: Network,
    side: Set[int],
    cut_weight_each: int = 1,
    bulk_weight: int = 1000,
    seed: int = 7,
) -> Network:
    """Weight ``net`` so the cut around ``side`` is (likely) the min cut.

    Edges crossing (side, rest) get weight ``cut_weight_each``; all other
    edges get weights near ``bulk_weight``.  Used by the min-cut benchmark
    to give a known approximate optimum.
    """
    rng = random.Random(seed)
    weights: Dict[Edge, int] = {}
    for u, v in net.edges:
        crossing = (u in side) != (v in side)
        if crossing:
            weights[(u, v)] = cut_weight_each
        else:
            weights[(u, v)] = bulk_weight + rng.randint(0, bulk_weight // 10)
    return Network(net.edges, n=net.n, weights=weights, uid_seed=_uid_seed(net))


def _uid_seed(net: Network) -> int:
    # Preserve the uid assignment of the source network: rebuilding with
    # the same seed yields the same permutation because n is unchanged.
    # Network does not retain its seed, so we recover it by convention:
    # all generators in this repo thread a uid_seed through; weighted
    # copies keep the default.  uids only need to be *unique*, so this is
    # purely cosmetic for debugging continuity.
    return 0x5EED
