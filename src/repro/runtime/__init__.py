"""Runtime sessions: cross-phase reuse of the Part-Wise Aggregation pipeline.

The paper's applications are *loops* of PA solves; this package gives
them a long-lived acquisition point.  :class:`PASession` owns a network,
mode/seed, optional family-aware shortcut provider, and (opt-in) a setup
cache with incremental coarsening plus batched multi-aggregate solves.
All seven algorithm entry points route their PA through a session; with
the opt-ins off the session is a transparent facade over
:class:`~repro.core.pa.PASolver` — bit-for-bit, pinned by tests.

:class:`RecoveryDriver` (:mod:`repro.runtime.recovery`) adds the
fault-tolerance layer: heartbeat failure detection, Algorithm 9 leader
re-election and recompute-until-clean on a fault-injecting
:class:`~repro.congest.AsyncEngine`, with the whole recovery tax on its
own ``recovery_overhead`` ledger.

See docs/architecture.md, "Runtime sessions" and "Fault model".
"""

from .session import (
    EdgeUpdateReport,
    PASession,
    SessionStats,
    ensure_session,
    partition_fingerprint,
)
from .recovery import (
    HeartbeatConfig,
    RecoveryDriver,
    RecoveryExhaustedError,
    RecoveryStats,
)

__all__ = [
    "EdgeUpdateReport",
    "HeartbeatConfig",
    "PASession",
    "RecoveryDriver",
    "RecoveryExhaustedError",
    "RecoveryStats",
    "SessionStats",
    "ensure_session",
    "partition_fingerprint",
]
