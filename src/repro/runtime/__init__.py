"""Runtime sessions: cross-phase reuse of the Part-Wise Aggregation pipeline.

The paper's applications are *loops* of PA solves; this package gives
them a long-lived acquisition point.  :class:`PASession` owns a network,
mode/seed, optional family-aware shortcut provider, and (opt-in) a setup
cache with incremental coarsening plus batched multi-aggregate solves.
All seven algorithm entry points route their PA through a session; with
the opt-ins off the session is a transparent facade over
:class:`~repro.core.pa.PASolver` — bit-for-bit, pinned by tests.

See docs/architecture.md, "Runtime sessions".
"""

from .session import (
    PASession,
    SessionStats,
    ensure_session,
    partition_fingerprint,
)

__all__ = [
    "PASession",
    "SessionStats",
    "ensure_session",
    "partition_fingerprint",
]
