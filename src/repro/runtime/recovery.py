"""Self-healing PA/MST: heartbeat failure detection + recovery driver.

This is the runtime that makes the fault plans of
:mod:`repro.congest.faults` survivable.  A :class:`RecoveryDriver` owns
one fault-injecting :class:`~repro.congest.AsyncEngine` — with its
global pulse clock, synchronizer overhead ledger and per-phase fault
log — and runs workloads on it optimistically:

1. **Attempt** the workload.  The engine's fault log is the transport
   layer's honest knowledge: if any phase of the attempt observed an
   injection (a suppressed activation, a dropped payload, a cut safe
   wave), the attempt is *tainted* — its output cannot be trusted even
   if it happened to complete — and its entire cost is charged to the
   driver's :attr:`~RecoveryDriver.recovery_overhead` ledger.  An
   attempt that dies mid-flight (fault fallout surfacing as an
   exception) is tainted the same way; an exception with *no* observed
   faults is a genuine bug and propagates.
2. **Detect**: after a tainted attempt the driver runs heartbeat
   windows (modeled on timeout-driven round managers: every live node
   beacons its neighbors each pulse and suspects a neighbor it has not
   heard from within a timeout) until a window is clean — no suspects
   and no transport-level injections.  Crashed nodes stop beaconing, so
   their neighbors suspect them within ``timeout`` pulses; recovered
   nodes resume beaconing and are unsuspected.  Window cost is charged
   to the recovery ledger.
3. **Re-elect and recompute**: PA retries run the paper's Algorithm 9
   (:func:`repro.core.no_leader.solve_pa_without_leaders`) — leaders
   are re-elected from scratch by star-joining coarsening, so a crashed
   leader cannot poison the retry.  MST retries rebuild the global BFS
   tree and leader (the :class:`~repro.core.pa.PASolver` constructor's
   flood-min election); Boruvka itself restarts from singleton parts,
   whose leaders are trivially the nodes themselves.

Accounting rule (the load-bearing one, mirroring the synchronizer-tax
rule of PR 5): the **main ledger carries exactly what the fault-free
algorithm would have cost** — the successful attempt's tree, setup and
wave phases.  Everything recovery-specific lands on
:attr:`RecoveryDriver.recovery_overhead`: every heartbeat window, every
tainted attempt in full, and the Algorithm 9 re-election rounds
(``alg9_*`` phases, except the final setup, which the fault-free path
pays as its ordinary setup).  With no faults the first attempt is clean
and the driver returns its result untouched — bit-for-bit the ledger of
running the workload directly on the same engine (pinned by
``tests/runtime/test_recovery.py`` and ``benchmarks/bench_faults.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..congest.async_engine import AsyncEngine
from ..congest.engine import Program
from ..congest.faults import FaultPlan
from ..congest.ledger import CostLedger, RunResult
from ..congest.network import Network
from ..congest.schedule import Schedule
from ..obs.tracer import current_tracer
from ..core.aggregation import Aggregation
from ..core.no_leader import solve_pa_without_leaders
from ..core.pa import PAResult, PASolver, RANDOMIZED, solve_pa
from ..graphs.partitions import Partition


@dataclass(frozen=True)
class HeartbeatConfig:
    """Shape of one failure-detection window.

    ``window`` pulses per window; every live node beacons all neighbors
    each ``interval`` pulses and suspects a neighbor silent for more
    than ``timeout`` pulses.  ``timeout`` must leave room for detection
    within the window (``timeout + 2 <= window``).
    """

    window: int = 8
    interval: int = 1
    timeout: int = 3

    def __post_init__(self) -> None:
        if self.window < 2 or self.interval < 1 or self.timeout < 1:
            raise ValueError("window >= 2, interval >= 1, timeout >= 1")
        if self.timeout + 2 > self.window:
            raise ValueError(
                "timeout + 2 must be <= window (a crash at the window's "
                "start must be suspectable before the window ends)"
            )


class _HeartbeatProgram(Program):
    """Beacon/suspect failure detection (one window).

    Every node holds a local clock (a ``wake_at`` per pulse of the
    window — so a crash-recovered node *resumes* beaconing at its next
    surviving timer), beacons its neighbors each ``interval`` pulses,
    and tracks the last pulse it heard each neighbor.  Suspicion is
    re-evaluated every pulse: silent past the timeout -> suspected,
    heard again (recovery) -> unsuspected.  The final per-observer sets
    are the window's verdict.
    """

    name = "recovery:heartbeat"

    def __init__(self, net: Network, cfg: HeartbeatConfig) -> None:
        self.net = net
        self.cfg = cfg
        self.last_heard: List[Dict[int, int]] = [{} for _ in range(net.n)]
        self.suspected: List[Set[int]] = [set() for _ in range(net.n)]

    def on_start(self, ctx) -> None:
        for v in range(self.net.n):
            ctx.wake(v)
            for p in range(2, self.cfg.window + 1):
                ctx.wake_at(v, p)

    def on_node(self, ctx, v: int, inbox) -> None:
        t = ctx.tick
        heard = self.last_heard[v]
        for src, _beacon in inbox:
            heard[src] = t
        cfg = self.cfg
        if t < cfg.window and (t - 1) % cfg.interval == 0:
            for nb in self.net.neighbors[v]:
                ctx.send(v, nb, 0)
        suspected = self.suspected[v]
        for nb in self.net.neighbors[v]:
            if t - heard.get(nb, 0) > cfg.timeout:
                suspected.add(nb)
            else:
                suspected.discard(nb)

    def suspects(self) -> Set[int]:
        out: Set[int] = set()
        for per_observer in self.suspected:
            out |= per_observer
        return out


@dataclass
class RecoveryStats:
    """What the driver did across one or more workloads."""

    attempts: int = 0
    tainted_attempts: int = 0
    heartbeat_windows: int = 0
    reelections: int = 0
    last_suspects: Tuple[int, ...] = ()


class RecoveryExhaustedError(RuntimeError):
    """The driver ran out of attempts (or stability windows).

    Raised when ``max_attempts`` tainted attempts pass without a clean
    one, or the network never yields a clean heartbeat window within
    ``max_wait_windows`` — which happens exactly when the fault plan is
    not recoverable (``FaultPlan.clear_after is None`` with a victim the
    workload needs, or an outage longer than the driver's patience).
    """

    def __init__(self, stats: RecoveryStats, detail: str) -> None:
        super().__init__(
            f"recovery exhausted after {stats.attempts} attempt(s) and "
            f"{stats.heartbeat_windows} heartbeat window(s): {detail}"
        )
        self.stats = stats


class RecoveryDriver:
    """Run PA/MST to a *trusted* result on a fault-injecting engine.

    One driver = one :class:`~repro.congest.AsyncEngine` (with an
    optional :class:`~repro.congest.FaultPlan` and any delivery
    schedule), shared across attempts so the global pulse clock — the
    coordinate system of the fault plan — advances monotonically through
    attempts and heartbeat windows alike.  See the module docstring for
    the attempt/detect/re-elect loop and the accounting rule.
    """

    def __init__(
        self,
        net: Network,
        faults: Optional[FaultPlan] = None,
        schedule: Optional[Schedule] = None,
        mode: str = RANDOMIZED,
        seed: int = 0,
        heartbeat: Optional[HeartbeatConfig] = None,
        max_attempts: int = 8,
        max_wait_windows: int = 64,
        strict_bits: bool = True,
        strict_edges: bool = True,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.net = net
        self.mode = mode
        self.seed = seed
        self.heartbeat = heartbeat if heartbeat is not None else HeartbeatConfig()
        self.max_attempts = max_attempts
        self.max_wait_windows = max_wait_windows
        self.engine = AsyncEngine(
            net, schedule=schedule, faults=faults,
            strict_bits=strict_bits, strict_edges=strict_edges,
        )
        #: Detection + re-election + recompute tax, separate from every
        #: workload ledger (mirrors ``AsyncEngine.overhead``).
        self.recovery_overhead = CostLedger(stream="recovery")
        self.stats = RecoveryStats()

    # -- shared machinery ------------------------------------------------
    @property
    def overhead(self) -> CostLedger:
        """The engine's synchronizer tax (virtual time / control msgs)."""
        return self.engine.overhead

    def _faults_since(self, mark: int) -> bool:
        return any(r.affected for r in self.engine.fault_log[mark:])

    def run_heartbeat_window(self) -> Tuple[bool, Set[int]]:
        """One detection window; returns ``(clean, suspects)``.

        Clean means the protocol suspected nobody *and* the transport
        observed no injections during the window — either signal alone
        (a not-yet-timed-out crash, a stalled cut) keeps the driver
        waiting.  The window's rounds/messages are charged to
        :attr:`recovery_overhead`.
        """
        tracer = current_tracer()
        start_us = tracer.now_us() if tracer.enabled else 0
        program = _HeartbeatProgram(self.net, self.heartbeat)
        mark = len(self.engine.fault_log)
        stats = self.engine.run(
            program, max_ticks=self.heartbeat.window + 2,
            name="recovery:heartbeat",
        )
        self.recovery_overhead.charge(stats)
        self.stats.heartbeat_windows += 1
        suspects = program.suspects()
        self.stats.last_suspects = tuple(sorted(suspects))
        clean = not suspects and not self._faults_since(mark)
        if tracer.enabled:
            tracer.complete(
                "recovery.heartbeat_window",
                "recovery",
                start_us,
                {
                    "clean": clean,
                    "suspects": len(suspects),
                    "rounds": stats.rounds,
                    "messages": stats.messages,
                },
            )
        return clean, suspects

    def _await_stability(self, detail: str) -> None:
        for _ in range(self.max_wait_windows):
            clean, _suspects = self.run_heartbeat_window()
            if clean:
                return
        raise RecoveryExhaustedError(
            self.stats,
            f"{detail}; no clean heartbeat window in "
            f"{self.max_wait_windows} tries (suspects: "
            f"{list(self.stats.last_suspects)})",
        )

    def _charge_aborted(self, attempt: int, overhead_mark: int) -> None:
        """Cost of an attempt that died mid-phase, recovered from the
        engine's per-phase overhead records (pulses and payloads of the
        work actually driven — the phase never completed, so these are
        the honest observable costs)."""
        for rec in self.engine.overhead_log[overhead_mark:]:
            self.recovery_overhead.charge_local(
                f"attempt{attempt}:{rec.name}",
                rounds=rec.pulses, messages=rec.payload_messages,
            )

    def _split_reelection(
        self, ledger: CostLedger, solver: PASolver, attempt: int
    ) -> CostLedger:
        """Split a successful Algorithm 9 retry's ledger: re-election
        phases (``alg9_*`` except the final setup) to the recovery
        ledger, everything the fault-free path would also pay — tree,
        final setup, waves — to the returned main ledger.

        A pure re-attribution of already-charged phases, so it uses
        ``record`` throughout: every phase was traced when the retry
        first charged it, and re-emitting here would double count."""
        main = CostLedger()
        for p in ledger.phases():
            if p.name.startswith("alg9_") and not p.name.startswith(
                "alg9_final_setup:"
            ):
                self.recovery_overhead.record(
                    replace(p, name=f"reelect{attempt}:{p.name}")
                )
            else:
                main.record(p)
        main.merge(solver.tree_ledger, prefix="tree:")
        return main

    # -- workloads -------------------------------------------------------
    def solve_pa(
        self,
        partition: Partition,
        values: Sequence[object],
        agg: Aggregation,
    ) -> PAResult:
        """Part-Wise Aggregation that survives the engine's fault plan.

        Attempt 0 is the ordinary :func:`repro.core.pa.solve_pa` (so the
        no-fault path is bit-for-bit a plain run); retries re-elect
        leaders via Algorithm 9.  Returns the first trusted result, its
        ledger holding only the fault-free-equivalent cost.
        """
        detail = "no attempts made"
        tracer = current_tracer()
        for attempt in range(self.max_attempts):
            self.stats.attempts += 1
            fault_mark = len(self.engine.fault_log)
            overhead_mark = len(self.engine.overhead_log)
            attempt_us = tracer.now_us() if tracer.enabled else 0
            seed = self.seed + attempt
            solver: Optional[PASolver] = None
            try:
                solver = PASolver(
                    self.net, mode=self.mode, seed=seed, engine=self.engine
                )
                if attempt == 0:
                    result = solve_pa(
                        self.net, partition, values, agg,
                        mode=self.mode, seed=seed, solver=solver,
                    )
                else:
                    self.stats.reelections += 1
                    if tracer.enabled:
                        tracer.instant(
                            "reelection", "recovery", {"attempt": attempt}
                        )
                    result = solve_pa_without_leaders(
                        self.net, partition, values, agg,
                        mode=self.mode, seed=seed, solver=solver,
                    )
            except Exception as exc:
                if not self._faults_since(fault_mark):
                    raise  # a real bug, not fault fallout
                self.stats.tainted_attempts += 1
                self._charge_aborted(attempt, overhead_mark)
                if tracer.enabled:
                    tracer.complete(
                        "recovery.attempt", "recovery", attempt_us,
                        {"attempt": attempt, "workload": "pa",
                         "outcome": "died"},
                    )
                detail = f"attempt {attempt} died: {type(exc).__name__}: {exc}"
                self._await_stability(detail)
                continue
            if self._faults_since(fault_mark):
                # Completed, but the transport saw injections: the output
                # cannot be trusted, recompute after stabilizing.
                self.stats.tainted_attempts += 1
                self.recovery_overhead.merge(
                    result.ledger, prefix=f"attempt{attempt}:"
                )
                if attempt > 0:
                    # solve_pa merged the tree ledger already; the
                    # Algorithm 9 path does not.
                    self.recovery_overhead.merge(
                        solver.tree_ledger, prefix=f"attempt{attempt}:tree:"
                    )
                if tracer.enabled:
                    tracer.complete(
                        "recovery.attempt", "recovery", attempt_us,
                        {"attempt": attempt, "workload": "pa",
                         "outcome": "tainted"},
                    )
                detail = f"attempt {attempt} completed under observed faults"
                self._await_stability(detail)
                continue
            if attempt > 0:
                result.ledger = self._split_reelection(
                    result.ledger, solver, attempt
                )
            if tracer.enabled:
                tracer.complete(
                    "recovery.attempt", "recovery", attempt_us,
                    {"attempt": attempt, "workload": "pa",
                     "outcome": "clean"},
                )
            return result
        raise RecoveryExhaustedError(self.stats, detail)

    def minimum_spanning_tree(self, **mst_kwargs) -> RunResult:
        """MST that survives the engine's fault plan.

        Every attempt rebuilds the BFS tree and its flood-min leader
        election from scratch (that is MST's re-election: Boruvka starts
        from singleton parts whose leaders are the nodes themselves).
        Extra keyword arguments pass through to
        :func:`repro.algorithms.mst.minimum_spanning_tree`.
        """
        from ..algorithms.mst import minimum_spanning_tree
        from .session import PASession

        detail = "no attempts made"
        tracer = current_tracer()
        for attempt in range(self.max_attempts):
            self.stats.attempts += 1
            fault_mark = len(self.engine.fault_log)
            overhead_mark = len(self.engine.overhead_log)
            attempt_us = tracer.now_us() if tracer.enabled else 0
            seed = self.seed + attempt
            try:
                solver = PASolver(
                    self.net, mode=self.mode, seed=seed, engine=self.engine
                )
                session = PASession(
                    self.net, mode=self.mode, seed=seed, solver=solver
                )
                result = minimum_spanning_tree(
                    self.net, mode=self.mode, seed=seed, session=session,
                    **mst_kwargs,
                )
            except Exception as exc:
                if not self._faults_since(fault_mark):
                    raise
                self.stats.tainted_attempts += 1
                if attempt > 0:
                    self.stats.reelections += 1
                self._charge_aborted(attempt, overhead_mark)
                if tracer.enabled:
                    tracer.complete(
                        "recovery.attempt", "recovery", attempt_us,
                        {"attempt": attempt, "workload": "mst",
                         "outcome": "died"},
                    )
                detail = f"attempt {attempt} died: {type(exc).__name__}: {exc}"
                self._await_stability(detail)
                continue
            if self._faults_since(fault_mark):
                self.stats.tainted_attempts += 1
                if attempt > 0:
                    self.stats.reelections += 1
                self.recovery_overhead.merge(
                    result.ledger, prefix=f"attempt{attempt}:"
                )
                # MST results do not fold the tree ledger in (callers
                # merge it when they want it); the tainted attempt's
                # tree build is recovery cost like everything else.
                self.recovery_overhead.merge(
                    solver.tree_ledger, prefix=f"attempt{attempt}:tree:"
                )
                if tracer.enabled:
                    tracer.complete(
                        "recovery.attempt", "recovery", attempt_us,
                        {"attempt": attempt, "workload": "mst",
                         "outcome": "tainted"},
                    )
                detail = f"attempt {attempt} completed under observed faults"
                self._await_stability(detail)
                continue
            if attempt > 0:
                self.stats.reelections += 1
            if tracer.enabled:
                tracer.complete(
                    "recovery.attempt", "recovery", attempt_us,
                    {"attempt": attempt, "workload": "mst",
                     "outcome": "clean"},
                )
            return result
        raise RecoveryExhaustedError(self.stats, detail)
