"""The PA session: cross-phase reuse of the Theorem 1.2 pipeline.

Every application in the paper (Corollaries 1.3-1.5, A.1-A.3) is a loop of
Part-Wise Aggregation solves, yet a bare :class:`~repro.core.pa.PASolver`
treats each ``prepare`` as a one-shot: Boruvka's O(log n) phases rebuild
the sub-part division and the shortcut from scratch every time the
partition changes.  :class:`PASession` owns a solver (network, mode, seed,
ledger conventions, optional family-aware shortcut provider) and adds
three opt-in capabilities on top:

* **Setup caching** (``reuse=True``): ``prepare`` memoizes on a partition
  fingerprint ``(part_of, leaders)``.  Re-preparing an already-seen
  partition (e.g. a Boruvka phase whose coins produced no merges, or the
  k-th tree packing of min-cut starting from the same singleton
  partition) returns the cached setup with an empty setup ledger —
  amortization made explicit rather than re-charged.

* **Incremental coarsening** (``reuse=True``): when a partition is a
  merge-only coarsening of a prepared one, ``prepare_incremental``
  *projects* the previous phase's machinery instead of rebuilding — the
  sub-part forest is kept (old sub-parts still refine the merged parts),
  shortcut edge sets are unioned by part relabeling
  (:func:`~repro.core.shortcuts.coarsen_shortcut`), the wave boundary
  lists grow only at former part borders, and blocks are re-annotated
  distributively.  Quality is then *re-verified with PA itself*
  (Algorithm 2 — the paper's own trick for checking block parameters);
  a coarsened shortcut whose verified block count exceeds the budget is
  discarded for a fresh construction, so reuse can cost rounds but never
  correctness.

* **Incremental refinement** (``reuse=True``): the dual direction —
  when a partition split-only refines a prepared one (a part breaking
  into fragments, the service layer's regrouping updates),
  ``prepare_incremental`` cuts the sub-part forest at the new borders,
  relabels the shortcut (:func:`~repro.core.shortcuts.refine_shortcut`)
  and re-verifies under the same budget rule, with congestion re-checked
  too (splits can multiply it).  See :meth:`PASession.refine`.

* **Edge updates** (:meth:`PASession.apply_edge_updates`): insert/delete
  batches over the (immutable) network are absorbed by a tree-preserving
  *rebind* whenever no spanning-tree edge was removed — shortcuts are
  ``T``-restricted, so the whole cached machinery survives verbatim —
  and by a counted full rebuild otherwise.

* **Batched multi-aggregate solves** (``batch=True``):
  :meth:`solve_many` runs k aggregations over one setup in a single wave
  pass (k-tuple values, componentwise merge) — one broadcast/reversal/
  replay instead of k.  See docs/architecture.md ("Runtime sessions")
  for when that is ledger-legitimate.

With both flags off (the default) every call delegates verbatim to the
underlying solver: same code path, same randomness, same ledger entries,
bit for bit — pinned by tests/runtime/test_session.py.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..congest.errors import InvalidPartitionError
from ..congest.ledger import CostLedger
from ..congest.network import Network, canonical_edge
from ..obs.tracer import current_tracer
from ..congest.schedule import Schedule
from ..core.aggregation import Aggregation
from ..core.blocks import annotate_blocks
from ..core.corefast import verify_block_parameters
from ..core.pa import (
    PABatchResult,
    PAResult,
    PASetup,
    PASolver,
    RANDOMIZED,
    product_aggregation,
)
from ..core.shortcuts import (
    Shortcut,
    coarsen_shortcut,
    refine_shortcut,
    shortcut_hint_for_family,
)
from ..core.subparts import SubPartDivision
from ..core.trees import ROOT, RootedForest
from ..core.wave import compute_wave_boundary, plan_pa_waves
from ..graphs.partitions import Partition, validate_partition

Fingerprint = Tuple[Tuple[int, ...], Optional[Tuple[int, ...]]]


@dataclass
class SessionStats:
    """Counters describing how a session served its prepares/solves."""

    prepares: int = 0          # full pipeline constructions
    cache_hits: int = 0        # setups served from the fingerprint memo
    coarsenings: int = 0       # setups served by incremental coarsening
    refinements: int = 0       # setups served by split-only refinement
    rebuilds: int = 0          # coarsenings/refinements rejected by re-verify
    solves: int = 0            # single-aggregate solves
    batched_solves: int = 0    # aggregations folded into shared wave passes
    evictions: int = 0         # cache entries dropped by the LRU bound
    sharded_solves: int = 0    # wave passes run on the multiprocess backend
    sharded_fallbacks: int = 0  # sharded requests served in-process instead
    edge_updates: int = 0      # apply_edge_updates calls absorbed
    repairs: int = 0           # edge updates served by tree-preserving rebind
    graph_rebuilds: int = 0    # edge updates that re-elected/rebuilt the tree
    repair_evictions: int = 0  # cached setups invalidated by edge updates

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


def partition_fingerprint(
    partition: Partition, leaders: Optional[Sequence[int]] = None
) -> Fingerprint:
    """The session cache key: the exact part assignment plus leaders.

    ``part_of`` determines the division and shortcut given the solver's
    fixed tree/mode/seed *state*, and leaders determine wave roots;
    ``None`` leaders mean the solver's deterministic default, so they
    fingerprint as ``None`` rather than being materialized.
    """
    return (
        tuple(partition.part_of),
        tuple(leaders) if leaders is not None else None,
    )


def _coarsening_map(
    old: Partition, new: Partition
) -> Optional[List[int]]:
    """``pid_map[old_pid] = new_pid`` if ``new`` merge-only coarsens ``old``.

    Returns ``None`` when it does not (an old part's members land in more
    than one new part, or the node sets differ) — the caller then falls
    back to a full prepare.
    """
    if len(old.part_of) != len(new.part_of):
        return None
    pid_map: List[int] = [-1] * old.num_parts
    for node, old_pid in enumerate(old.part_of):
        new_pid = new.part_of[node]
        if pid_map[old_pid] == -1:
            pid_map[old_pid] = new_pid
        elif pid_map[old_pid] != new_pid:
            return None
    return pid_map


def _refinement_map(
    old: Partition, new: Partition
) -> Optional[List[int]]:
    """``new_to_old[new_pid] = old_pid`` if ``new`` split-only refines ``old``.

    The mirror of :func:`_coarsening_map`: valid when every new part's
    members lie inside exactly one old part (an old part may split into
    several fragments).  Returns ``None`` otherwise — the caller then
    falls back to a full prepare.
    """
    if len(old.part_of) != len(new.part_of):
        return None
    new_to_old: List[int] = [-1] * new.num_parts
    for node, new_pid in enumerate(new.part_of):
        old_pid = old.part_of[node]
        if new_to_old[new_pid] == -1:
            new_to_old[new_pid] = old_pid
        elif new_to_old[new_pid] != old_pid:
            return None
    return new_to_old


def _fragment_counts(
    new_to_old: Sequence[int], num_old: int
) -> Dict[int, int]:
    """How many fragments each old part split into."""
    counts: Dict[int, int] = {pid: 0 for pid in range(num_old)}
    for old_pid in new_to_old:
        counts[old_pid] += 1
    return counts


@dataclass
class EdgeUpdateReport:
    """What :meth:`PASession.apply_edge_updates` did with one update batch.

    ``repaired`` distinguishes the tree-preserving rebind (the BFS tree
    and every cached shortcut survived verbatim) from a full rebuild
    (tree re-election charged to ``ledger`` under the ``rebuild:``
    prefix).  ``evicted_setups`` counts cached setups the update
    invalidated — partitions disconnected by a deletion, sub-part
    forests that lost a spanning edge, or (on rebuild) everything.
    """

    added: int
    removed: int
    repaired: bool
    evicted_setups: int
    ledger: CostLedger


class PASession:
    """A long-lived PA acquisition point for one network.

    Parameters mirror :class:`~repro.core.pa.PASolver` (``net``, ``mode``,
    ``seed``, ``root``, ``strict_bits``, ``strict_edges``), plus:

    shortcut_provider / family / family_param / claim_small:
        Which shortcut construction ``prepare`` uses.  ``family`` names a
        registry row (``"planar"``, ``"treewidth"``, ...) and resolves to
        a provider via :func:`repro.families.provider_for`; passing both
        a provider and a family is an error.  ``None`` (default) is the
        general mode-selected pipeline, bit for bit.
    reuse:
        Enable setup caching and incremental coarsening.
    batch:
        Enable single-wave multi-aggregate solves in :meth:`solve_many`.
    max_entries:
        Bound the setup cache (``None`` = unbounded, the historical
        behavior).  When the bound is exceeded the least-recently-used
        entry is evicted — coarsened entries first; *pinned* entries
        (setups built by a full ``prepare``, the loop-entry partitions
        that phase loops revisit) survive as long as any unpinned entry
        can be evicted instead, and only fall to LRU among themselves
        once the cache is all pinned.
    schedule / async_mode:
        Run every engine phase asynchronously under a
        :class:`~repro.congest.Schedule` (``async_mode=True`` alone
        selects the delay-0 schedule); see
        :class:`~repro.core.pa.PASolver`.  The synchronizer's separate
        accounting is exposed as :attr:`async_overhead`.
    backend / workers / shard_min_n:
        ``backend="sharded"`` runs eligible wave passes on the
        multiprocess worker pool (:mod:`repro.shard`): the setup is split
        into conflict components, each shard solves its phases in a forked
        worker, and the per-shard ledgers merge deterministically —
        rounds/messages bit-for-bit identical to the in-process engines
        (gated in CI).  ``workers`` sizes the pool
        (:func:`repro.procpool.resolve_workers`; ``"auto"`` = the cpus
        the scheduler actually grants this process — the affinity mask
        under cgroup limits, not the machine's raw core count);
        ``shard_min_n`` keeps networks below the threshold in-process
        (fork + pickle overhead dominates small instances).  Requests the
        backend cannot serve — async/pre-scheduled engines, aggregations
        outside the stock registry, missing ``fork`` — fall back to the
        in-process solver, counted in ``stats.sharded_fallbacks``.
    solver:
        Adopt an existing solver (its engine, tree and rng state) instead
        of constructing one — how the ``solver=`` arguments of the
        algorithm entry points keep working.
    """

    def __init__(
        self,
        net: Network,
        mode: str = RANDOMIZED,
        seed: int = 0,
        root: Optional[int] = None,
        strict_bits: bool = True,
        strict_edges: bool = True,
        shortcut_provider: Optional[object] = None,
        family: Optional[str] = None,
        family_param: Optional[int] = None,
        claim_small: bool = False,
        reuse: bool = False,
        batch: bool = False,
        max_entries: Optional[int] = None,
        schedule: Optional[Schedule] = None,
        async_mode: bool = False,
        solver: Optional[PASolver] = None,
        engine_impl: str = "array",
        profile: bool = False,
        backend: str = "local",
        workers: object = "auto",
        shard_min_n: int = 4096,
    ) -> None:
        if backend not in ("local", "sharded"):
            raise ValueError(f"unknown backend {backend!r}")
        if family is not None:
            if shortcut_provider is not None:
                raise ValueError(
                    "pass either shortcut_provider or family, not both"
                )
            from ..families.registry import provider_for

            shortcut_provider = provider_for(
                family, param=family_param, claim_small=claim_small
            )
        self.shortcut_provider = shortcut_provider
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None for unbounded)")
        if solver is not None:
            if schedule is not None or async_mode:
                raise ValueError(
                    "pass either solver or schedule/async_mode, not both "
                    "(the solver already owns its engine)"
                )
            if solver.net is not net:
                theirs, mine = solver.net, net
                their_csr = theirs.adjacency_csr()
                my_csr = mine.adjacency_csr()
                if (
                    theirs.n != mine.n
                    or their_csr[0] != my_csr[0]
                    or their_csr[1] != my_csr[1]
                    or theirs.uid != mine.uid
                ):
                    raise ValueError(
                        "solver is bound to an incompatible network "
                        "(topology or uid permutation differs)"
                    )
            self.solver = solver
        else:
            self.solver = PASolver(
                net, mode=mode, seed=seed, root=root,
                strict_bits=strict_bits, strict_edges=strict_edges,
                schedule=schedule, async_mode=async_mode,
                engine_impl=engine_impl, profile=profile,
            )
        self.reuse = reuse
        self.batch = batch
        self.max_entries = max_entries
        self.backend = backend
        self.shard_min_n = shard_min_n
        if backend == "sharded":
            from ..procpool import resolve_workers

            self.workers = resolve_workers(workers)
        else:
            self.workers = None
        self._orchestrator = None
        self._last_solve_sharded = False
        self._closed = False
        self.stats = SessionStats()
        # Recency-ordered memo (oldest first); bounded by ``max_entries``.
        self._cache: "OrderedDict[Fingerprint, PASetup]" = OrderedDict()
        # Keys whose entries came from coarsening.  Partitions only ever
        # coarsen forward inside a phase loop, so once a coarsened setup
        # is superseded by the next coarsening it can never be requested
        # again and is evicted; full-prepare entries (loop entry points
        # like the singleton partition, revisited across min-cut packing
        # trees) are *pinned*: under the LRU bound they are evicted only
        # when no coarsened entry is left to evict instead.
        self._coarsened_keys: set = set()

    # -- conveniences the algorithms lean on ---------------------------
    @property
    def net(self) -> Network:
        return self.solver.net

    @property
    def mode(self) -> str:
        return self.solver.mode

    @property
    def engine(self):
        return self.solver.engine

    @property
    def tree(self):
        return self.solver.tree

    @property
    def tree_ledger(self) -> CostLedger:
        return self.solver.tree_ledger

    @property
    def async_overhead(self) -> Optional[CostLedger]:
        """The async engine's synchronizer ledger (None when synchronous).

        Per phase: ``rounds`` holds virtual time-units, ``messages`` the
        ack/safe control messages — see docs/architecture.md,
        "Asynchronous execution".
        """
        return getattr(self.solver.engine, "overhead", None)

    def clear_cache(self) -> None:
        """Drop all memoized setups (e.g. between unrelated workloads)."""
        if self._orchestrator is not None:
            for setup in self._cache.values():
                self._orchestrator.release(setup)
        self._cache.clear()
        self._coarsened_keys.clear()

    def close(self) -> None:
        """Release backend resources (the sharded worker pool); idempotent.

        Safe to call any number of times, from ``__exit__``, from pool
        eviction, or after a mid-solve failure; a closed session can keep
        serving — the orchestrator is lazily rebuilt on the next sharded
        solve.
        """
        self._closed = True
        if self._orchestrator is not None:
            self._orchestrator.close()
            self._orchestrator = None

    def __enter__(self) -> "PASession":
        self._closed = False
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def shard_report(self) -> Optional[Dict[str, object]]:
        """Scaling diagnostics of the last solve *iff it ran sharded*.

        Keys: ``workers``, ``shards``, ``shard_wall_seconds`` (per shard),
        ``barrier_seconds``, ``merge_seconds``, ``ship_seconds`` — the
        fields the bench runner promotes into BENCH json records.

        ``None`` whenever the most recent solve was served in-process
        (local backend, or a sharded request that fell back) — a stale
        report from an earlier sharded solve is never returned.
        """
        if self._orchestrator is None or not self._last_solve_sharded:
            return None
        return self._orchestrator.last_report

    # -- sharded backend -----------------------------------------------
    def _shard_orchestrator(self):
        if self._orchestrator is None:
            from ..shard import ShardOrchestrator

            engine = self.solver.engine
            self._orchestrator = ShardOrchestrator(
                self.workers,
                strict_bits=engine.strict_bits,
                strict_edges=engine.strict_edges,
                use_arrays=engine.use_arrays,
                profile=engine.profile,
            )
        return self._orchestrator

    def _shard_eligible(self) -> bool:
        """Whether the sharded backend may serve this session's solves."""
        import multiprocessing

        return (
            self.backend == "sharded"
            and self.solver.schedule is None
            and self.net.n >= self.shard_min_n
            and "fork" in multiprocessing.get_all_start_methods()
        )

    def _solve_sharded(
        self,
        setup: PASetup,
        values: Sequence[object],
        agg: Aggregation,
        agg_encoded: object,
        charge_setup: bool,
        phase_prefix: str,
    ) -> PAResult:
        """Mirror of ``PASolver.solve`` with the wave pass orchestrated.

        The plan is computed rank-0 from the *global* structures —
        advancing ``solver.rng`` exactly as the in-process path would —
        and only the three wave phases run on the workers.
        """
        solver = self.solver
        ledger = CostLedger()
        if charge_setup:
            ledger.merge(setup.setup_ledger, prefix="setup:")
        plan = plan_pa_waves(
            solver.engine, solver.net, setup.partition, setup.division,
            setup.shortcut, values, agg,
            randomized=(solver.mode == RANDOMIZED), rng=solver.rng,
        )
        try:
            outcome = self._shard_orchestrator().solve(
                setup, plan, values, agg_encoded, ledger,
                phase_prefix=phase_prefix,
            )
        except BaseException:
            # A worker died or pickling blew up mid-wave: the pool's state
            # is suspect, so reap it now rather than leaking forked
            # processes behind the exception (a fresh orchestrator is
            # lazily rebuilt if the caller retries).
            self.close()
            raise
        self._last_solve_sharded = True
        return PAResult(
            aggregates=outcome.aggregates,
            value_at_node=outcome.value_at_node,
            ledger=ledger,
            setup=setup,
        )

    # -- cache mechanics (LRU bound + loop-entry pinning) ---------------
    def _cache_lookup(self, key: Fingerprint) -> Optional[PASetup]:
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
        return cached

    def _cache_store(self, key: Fingerprint, setup: PASetup) -> None:
        self._cache[key] = setup
        self._cache.move_to_end(key)
        if self.max_entries is None:
            return
        while len(self._cache) > self.max_entries:
            # Evict the least-recently-used *unpinned* (coarsened) entry;
            # pinned loop-entry setups go only when nothing else is left.
            # The entry just stored is never its own victim.
            victim = None
            for k in self._cache:
                if k != key and k in self._coarsened_keys:
                    victim = k
                    break
            if victim is None:
                victim = next((k for k in self._cache if k != key), None)
            if victim is None:
                break
            evicted = self._cache.pop(victim)
            self._coarsened_keys.discard(victim)
            self.stats.evictions += 1
            if self._orchestrator is not None:
                # The workers pinned the shipped setup by identity; an
                # evicted entry would otherwise stay resident in every
                # worker until 16 further ships aged it out.
                self._orchestrator.release(evicted)

    def _traced_build(self, outcome: str, build):
        """Run ``build`` under a ``session.prepare`` span (traced only).

        ``outcome`` is what the caller expects ("full" or "coarsened");
        a coarsening that fell out of budget mid-build reports itself as
        "rebuild" (detected via the stats counter).  The span carries
        the built setup's ledger totals so a trace shows what each
        construction cost without walking ledger events.
        """
        tracer = current_tracer()
        if not tracer.enabled:
            return build()
        rebuilds_before = self.stats.rebuilds
        with tracer.span("session.prepare", "session") as args:
            setup = build()
            args["outcome"] = (
                "rebuild" if self.stats.rebuilds > rebuilds_before else outcome
            )
            args["rounds"] = setup.setup_ledger.rounds
            args["messages"] = setup.setup_ledger.messages
        return setup

    # ------------------------------------------------------------------
    def block_budget(self) -> int:
        """Max verified block parameter a coarsened shortcut may keep.

        The same default target the randomized construction freezes parts
        at (``max(3, 3 ceil(log2 n))``), so coarsening is held to the
        standard the from-scratch pipeline holds itself to.
        """
        log_n = max(1, math.ceil(math.log2(max(2, self.net.n))))
        return max(3, 3 * log_n)

    def prepare(
        self,
        partition: Partition,
        leaders: Optional[Sequence[int]] = None,
        congestion_budget: Optional[int] = None,
        block_target: Optional[int] = None,
        validate: bool = True,
    ) -> PASetup:
        """Build (or fetch) the PA machinery for a partition.

        With ``reuse`` off this is exactly
        ``solver.prepare(..., shortcut_provider=self.shortcut_provider)``.
        With ``reuse`` on, a fingerprint hit returns the cached setup with
        an *empty* setup ledger (construction was already charged when it
        was first built); a miss builds, memoizes and returns as usual.
        """
        if not self.reuse:
            self.stats.prepares += 1
            return self._traced_build(
                "full",
                lambda: self.solver.prepare(
                    partition, leaders=leaders,
                    congestion_budget=congestion_budget,
                    block_target=block_target, validate=validate,
                    shortcut_provider=self.shortcut_provider,
                ),
            )
        key = partition_fingerprint(partition, leaders)
        cached = self._cache_lookup(key)
        if cached is not None:
            self.stats.cache_hits += 1
            tracer = current_tracer()
            if tracer.enabled:
                tracer.instant("session.cache_hit", "session")
            return replace(cached, setup_ledger=CostLedger())
        self.stats.prepares += 1
        setup = self._traced_build(
            "full",
            lambda: self.solver.prepare(
                partition, leaders=leaders,
                congestion_budget=congestion_budget,
                block_target=block_target, validate=validate,
                shortcut_provider=self.shortcut_provider,
            ),
        )
        self._cache_store(key, setup)
        return setup

    def prepare_incremental(
        self,
        previous: Optional[PASetup],
        partition: Partition,
        leaders: Optional[Sequence[int]] = None,
    ) -> PASetup:
        """``prepare`` that may project ``previous`` instead of rebuilding.

        The contract phase loops rely on: with ``reuse`` off (or no usable
        ``previous``) this is exactly :meth:`prepare`; with ``reuse`` on
        and ``partition`` a merge-only coarsening of ``previous``'s, the
        previous machinery is projected and re-verified (see
        :meth:`coarsen`); a split-only *refinement* (parts breaking
        apart — the service layer's regrouping updates) is likewise
        projected and re-verified (see :meth:`refine`).  Either way the
        returned setup is correct for PA over ``partition`` — only its
        construction cost differs.
        """
        if not self.reuse or previous is None:
            return self.prepare(partition, leaders=leaders)
        key = partition_fingerprint(partition, leaders)
        cached = self._cache_lookup(key)
        if cached is not None:
            self.stats.cache_hits += 1
            tracer = current_tracer()
            if tracer.enabled:
                tracer.instant("session.cache_hit", "session")
            return replace(cached, setup_ledger=CostLedger())
        pid_map = _coarsening_map(previous.partition, partition)
        if pid_map is None:
            new_to_old = _refinement_map(previous.partition, partition)
            if new_to_old is None:
                return self.prepare(partition, leaders=leaders)
            setup = self._traced_build(
                "refined",
                lambda: self.refine(
                    previous, partition, new_to_old, leaders=leaders
                ),
            )
            # Refined entries are unpinned like coarsened ones, but the
            # previous entry is *not* superseded: unlike a phase loop's
            # forward-only merges, split partitions can re-merge (a
            # service tenant re-presenting yesterday's grouping), so the
            # parent entry stays until the LRU bound says otherwise.
            self._coarsened_keys.add(key)
            self._cache_store(key, setup)
            return setup
        setup = self._traced_build(
            "coarsened",
            lambda: self.coarsen(previous, partition, pid_map, leaders=leaders),
        )
        self._coarsened_keys.add(key)
        self._cache_store(key, setup)
        # The previous link of a coarsening chain is superseded: comp
        # labels only merge forward, so its partition cannot recur (the
        # no-merge retry re-presents the *latest* partition, which is the
        # entry just stored).  Full-prepare entries are never evicted.
        for prev_key in (
            partition_fingerprint(previous.partition, previous.leaders),
            partition_fingerprint(previous.partition, None),
        ):
            if prev_key != key and prev_key in self._coarsened_keys:
                self._coarsened_keys.discard(prev_key)
                self._cache.pop(prev_key, None)
        return setup

    def coarsen(
        self,
        previous: PASetup,
        partition: Partition,
        pid_map: Sequence[int],
        leaders: Optional[Sequence[int]] = None,
    ) -> PASetup:
        """Project ``previous``'s machinery onto a merged partition.

        Steps, each metered into the returned setup's ledger:

        1. relabel/union the shortcut (:func:`coarsen_shortcut`) — free of
           communication (the relabel broadcast that merged the parts
           already carried the new ids);
        2. keep the sub-part forest (old sub-parts still refine merged
           parts) and extend the wave boundary lists only at former part
           borders — one round in which nodes of merged parts compare
           part ids with neighbors;
        3. re-annotate blocks distributively (roots and depths change as
           blocks fuse);
        4. re-verify the block parameter *with PA itself* over the
           coarsened machinery (Algorithm 2 / Lemma 4.5).  If the
           verified count exceeds :meth:`block_budget`, the projection is
           discarded and a fresh :meth:`prepare` runs instead (charged to
           the same ledger) — quality degradation can cost a rebuild, but
           never rounds-silently compounds.

        Congestion needs no re-check: relabeling can only dedupe per-edge
        part sets, so ``c`` never grows under coarsening.
        """
        solver = self.solver
        net = solver.net
        if leaders is None:
            leaders = solver.default_leaders(partition)
        leaders = tuple(leaders)
        for pid, leader in enumerate(leaders):
            if partition.part_of[leader] != pid:
                raise ValueError(f"leader {leader} is not in part {pid}")

        ledger = CostLedger()
        shortcut = coarsen_shortcut(previous.shortcut, partition, pid_map)
        division = SubPartDivision(
            partition=partition,
            forest=previous.division.forest,
            rep_of=previous.division.rep_of,
            part_leader=leaders,
        )

        # Incremental wave boundary: every old boundary edge stays (its
        # endpoints' parts merged together or not at all); the only new
        # candidates are edges between formerly-distinct parts that now
        # share one — found by scanning just the members of merged parts.
        old_boundary = compute_wave_boundary(
            net, previous.partition, previous.division
        )
        merged_new_pids = set()
        seen_new: set = set()
        for new_pid in pid_map:
            if new_pid in seen_new:
                merged_new_pids.add(new_pid)
            seen_new.add(new_pid)
        boundary: List[Tuple[int, ...]] = list(old_boundary)
        old_part_of = previous.partition.part_of
        new_part_of = partition.part_of
        touched = 0
        for new_pid in merged_new_pids:
            for v in partition.members[new_pid]:
                gains = tuple(
                    nb
                    for nb in net.neighbors[v]
                    if new_part_of[nb] == new_pid
                    and old_part_of[nb] != old_part_of[v]
                )
                if gains:
                    boundary[v] = old_boundary[v] + gains
                touched += 1
        division._wave_boundary_cache = boundary
        # One round: members of merged parts exchange new part ids with
        # neighbors to discover the fresh boundary edges (the relabel
        # broadcast told them their own id; this is the neighbor side).
        ledger.charge_local(
            "coarsen_boundary_exchange", rounds=1, messages=2 * touched
        )

        annotations = annotate_blocks(solver.engine, shortcut, ledger)
        counts = verify_block_parameters(
            solver.engine, net, partition, division, shortcut, annotations,
            ledger, randomized=(solver.mode == RANDOMIZED), rng=solver.rng,
            phase_prefix="coarsen_verify",
        )
        self.stats.coarsenings += 1
        if max(counts, default=0) > self.block_budget():
            # Verified quality fell out of budget: rebuild from scratch,
            # keeping the verification cost on the ledger (it was paid).
            self.stats.rebuilds += 1
            rebuilt = self.solver.prepare(
                partition, leaders=leaders,
                shortcut_provider=self.shortcut_provider,
            )
            ledger.merge(rebuilt.setup_ledger, prefix="rebuild:")
            self.stats.prepares += 1
            return replace(rebuilt, setup_ledger=ledger)

        return PASetup(
            partition=partition,
            leaders=leaders,
            division=division,
            shortcut=shortcut,
            annotations=annotations,
            setup_ledger=ledger,
        )

    def refine(
        self,
        previous: PASetup,
        partition: Partition,
        new_to_old: Sequence[int],
        leaders: Optional[Sequence[int]] = None,
    ) -> PASetup:
        """Project ``previous``'s machinery onto a split partition.

        The dual of :meth:`coarsen`, with one structural difference: a
        split can invalidate sub-part trees (a sub-part straddling the
        new border is no longer inside one part), so besides relabeling
        the shortcut (:func:`refine_shortcut`, every fragment inherits
        its ancestor's edge set) the sub-part forest is *cut* at the new
        part borders — each severed subtree becomes its own sub-part,
        rooted where the cut left it.  Wave boundary lists only shrink
        (an intra-part edge of a fragment was intra-part before), so the
        repair filters the members of split parts.

        Unlike coarsening, both quality measures can degrade: congestion
        multiplies by the split factor on shared tree edges, and cut
        forests make blocks reachable from fewer representatives.  The
        projection is therefore re-verified with PA itself (Algorithm 2)
        *and* its congestion re-checked against
        ``max(previous c, general-graph envelope)``; exceeding either
        budget discards it for a fresh :meth:`prepare` charged to the
        same ledger under the ``rebuild:`` prefix.
        """
        solver = self.solver
        net = solver.net
        if leaders is None:
            leaders = solver.default_leaders(partition)
        leaders = tuple(leaders)
        for pid, leader in enumerate(leaders):
            if partition.part_of[leader] != pid:
                raise ValueError(f"leader {leader} is not in part {pid}")

        ledger = CostLedger()
        shortcut = refine_shortcut(previous.shortcut, partition, new_to_old)

        # Cut the sub-part forest at the new part borders: a parent edge
        # whose endpoints landed in different fragments is severed, the
        # orphaned child becoming the representative of its subtree.
        new_part_of = partition.part_of
        parent = list(previous.division.forest.parent)
        cut = 0
        for v, p in enumerate(parent):
            if p >= 0 and new_part_of[p] != new_part_of[v]:
                parent[v] = ROOT
                cut += 1
        forest = (
            RootedForest(net, parent) if cut else previous.division.forest
        )
        rep_of: List[int] = [-1] * net.n
        for v in forest.order:
            p = forest.parent[v]
            rep_of[v] = v if p < 0 else rep_of[p]
        division = SubPartDivision(
            partition=partition,
            forest=forest,
            rep_of=tuple(rep_of),
            part_leader=leaders,
        )

        # Incremental wave boundary: no edge *gains* boundary status under
        # a split (same-fragment neighbors were same-part before, and cut
        # tree edges now cross parts), so members of split parts just
        # filter their lists down to same-fragment neighbors.
        old_boundary = compute_wave_boundary(
            net, previous.partition, previous.division
        )
        split_old_pids = {
            old_pid
            for old_pid, count in _fragment_counts(
                new_to_old, previous.partition.num_parts
            ).items()
            if count > 1
        }
        boundary: List[Tuple[int, ...]] = list(old_boundary)
        fparent = forest.parent
        touched = 0
        for old_pid in split_old_pids:
            for v in previous.partition.members[old_pid]:
                boundary[v] = tuple(
                    nb
                    for nb in net.neighbors[v]
                    if new_part_of[nb] == new_part_of[v]
                    and fparent[v] != nb
                    and fparent[nb] != v
                )
                touched += 1
        division._wave_boundary_cache = boundary
        # One round: members of split parts exchange fragment ids with
        # neighbors to drop the edges that now cross parts (the split
        # broadcast told them their own fragment; this is the neighbor
        # side) — the mirror of the coarsening exchange.
        ledger.charge_local(
            "refine_boundary_exchange", rounds=1, messages=2 * touched
        )

        annotations = annotate_blocks(solver.engine, shortcut, ledger)
        counts = verify_block_parameters(
            solver.engine, net, partition, division, shortcut, annotations,
            ledger, randomized=(solver.mode == RANDOMIZED), rng=solver.rng,
            phase_prefix="refine_verify",
        )
        self.stats.refinements += 1
        diameter = max(1, 2 * solver.tree_result.depth)
        congestion_budget = max(
            previous.shortcut.congestion(),
            shortcut_hint_for_family("general", net.n, diameter)[1],
        )
        if (
            max(counts, default=0) > self.block_budget()
            or shortcut.congestion() > congestion_budget
        ):
            # Quality fell out of budget (too many blocks, or split
            # fragments piling onto shared tree edges): rebuild from
            # scratch, keeping the verification cost on the ledger.
            self.stats.rebuilds += 1
            rebuilt = self.solver.prepare(
                partition, leaders=leaders,
                shortcut_provider=self.shortcut_provider,
            )
            ledger.merge(rebuilt.setup_ledger, prefix="rebuild:")
            self.stats.prepares += 1
            return replace(rebuilt, setup_ledger=ledger)

        return PASetup(
            partition=partition,
            leaders=leaders,
            division=division,
            shortcut=shortcut,
            annotations=annotations,
            setup_ledger=ledger,
        )

    # -- evolving graphs ------------------------------------------------
    def apply_edge_updates(
        self,
        add: Sequence[Tuple[int, int]] = (),
        remove: Sequence[Tuple[int, int]] = (),
        weights: Optional[Dict[Tuple[int, int], int]] = None,
    ) -> EdgeUpdateReport:
        """Adopt an edge insert/delete batch, repairing instead of rebuilding.

        Networks are immutable, so the update builds a new
        :class:`Network` with the same node count and uid seed — uids are
        a pure function of both, so every node keeps its identity.  Two
        paths:

        * **repair** — when no removed edge is a spanning-tree edge, the
          BFS tree survives verbatim and with it every tree-restricted
          shortcut (their edges live in ``E[T]``, by Definition 2.2 the
          update cannot touch them).  The solver is rebound
          (:meth:`~repro.core.pa.PASolver.rebind`), and every cached
          setup whose partition stays connected and whose sub-part
          forest lost no edge is rebound too, its wave boundary repaired
          only at the endpoints of changed intra-part edges.  Setups the
          update invalidated are evicted, never served stale.
        * **rebuild** — a removed tree edge (or an engine that cannot be
          rebound, e.g. asynchronous) forces a fresh solver: new leader
          election + BFS tree with the same mode/seed, charged to the
          report's ledger under the ``rebuild:`` prefix, and the whole
          setup cache dropped.

        ``weights`` supplies weights for added edges on a weighted
        network (required there, rejected on unweighted ones).  Returns
        an :class:`EdgeUpdateReport`; costs are *not* folded into any
        setup ledger — the caller owns the update's cost, mirroring how
        ``prepare`` owns construction costs.
        """
        solver = self.solver
        net = solver.net
        add_set = {canonical_edge(u, v) for u, v in add}
        remove_set = {canonical_edge(u, v) for u, v in remove}
        overlap = add_set & remove_set
        if overlap:
            raise ValueError(
                f"edges both added and removed: {sorted(overlap)[:5]}"
            )
        for e in sorted(remove_set):
            if not net.has_edge(*e):
                raise ValueError(f"cannot remove non-edge {e}")
        for e in sorted(add_set):
            if net.has_edge(*e):
                raise ValueError(f"cannot add existing edge {e}")
        if weights is not None and net.weights is None:
            raise ValueError("weights given for an unweighted network")

        ledger = CostLedger()
        if not add_set and not remove_set:
            self.stats.edge_updates += 1
            return EdgeUpdateReport(0, 0, True, 0, ledger)

        new_edges = [e for e in net.edges if e not in remove_set]
        new_edges.extend(sorted(add_set))
        new_weights = None
        if net.weights is not None:
            new_weights = {
                e: w for e, w in net.weights.items() if e not in remove_set
            }
            given = (
                {}
                if weights is None
                else {
                    canonical_edge(u, v): w for (u, v), w in weights.items()
                }
            )
            for e in sorted(add_set):
                if e not in given:
                    raise ValueError(
                        f"added edge {e} needs a weight on a weighted network"
                    )
                new_weights[e] = given[e]
        new_net = Network(
            new_edges, n=net.n, weights=new_weights, uid_seed=net._uid_seed
        )

        # One round in which each endpoint of a changed edge learns of the
        # change (link-layer notification — the CONGEST analogue of a port
        # coming up or down).
        changed = sorted(add_set | remove_set)
        ledger.charge_local(
            "edge_update_notify", rounds=1, messages=2 * len(changed)
        )

        tree_edges = {
            canonical_edge(v, p)
            for v, p in enumerate(solver.tree.parent)
            if p >= 0
        }
        repaired = False
        if not (remove_set & tree_edges):
            try:
                solver.rebind(new_net)
                repaired = True
            except ValueError:
                repaired = False  # e.g. an async engine owns edge state
        if repaired:
            self.stats.repairs += 1
            evicted = self._repair_cached_setups(
                new_net, changed, remove_set
            )
        else:
            self.stats.graph_rebuilds += 1
            engine = solver.engine
            self.solver = PASolver(
                new_net, mode=solver.mode, seed=solver.seed,
                strict_bits=engine.strict_bits,
                strict_edges=engine.strict_edges,
                schedule=solver.schedule,
                engine_impl=solver.engine_impl,
                profile=getattr(engine, "profile", False),
            )
            ledger.merge(self.solver.tree_ledger, prefix="rebuild:")
            evicted = len(self._cache)
            self.clear_cache()
        self.stats.repair_evictions += evicted
        self.stats.edge_updates += 1
        tracer = current_tracer()
        if tracer.enabled:
            tracer.instant(
                "session.edge_update", "session",
                {
                    "added": len(add_set), "removed": len(remove_set),
                    "repaired": repaired, "evicted": evicted,
                },
            )
        return EdgeUpdateReport(
            added=len(add_set),
            removed=len(remove_set),
            repaired=repaired,
            evicted_setups=evicted,
            ledger=ledger,
        )

    def _repair_cached_setups(
        self,
        new_net: Network,
        changed: Sequence[Tuple[int, int]],
        removed: set,
    ) -> int:
        """Rebind surviving cached setups to the updated network.

        A cached setup survives when its partition still induces
        connected parts and its sub-part forest lost no spanning edge;
        its structures are then rebuilt *structure-identically* on the
        new network (same parent arrays, same ``up_parts``, same block
        annotations) and its wave boundary repaired only at the touched
        endpoints.  Everything else is evicted; returns the eviction
        count.
        """
        evicted = 0
        for key in list(self._cache):
            setup = self._cache[key]
            if self._orchestrator is not None:
                # The old setup object is dead either way (survivors are
                # replaced by rebound copies); drop the workers' pins.
                self._orchestrator.release(setup)
            forest_parent = setup.division.forest.parent
            ok = not any(
                p >= 0 and canonical_edge(v, p) in removed
                for v, p in enumerate(forest_parent)
            )
            if ok and removed:
                # Deletions can disconnect a part (insertions cannot).
                try:
                    validate_partition(new_net, setup.partition)
                except InvalidPartitionError:
                    ok = False
            if not ok:
                self._cache.pop(key)
                self._coarsened_keys.discard(key)
                evicted += 1
                continue
            forest = RootedForest(new_net, forest_parent)
            division = SubPartDivision(
                partition=setup.partition,
                forest=forest,
                rep_of=setup.division.rep_of,
                part_leader=setup.division.part_leader,
            )
            old_boundary = getattr(
                setup.division, "_wave_boundary_cache", None
            )
            if old_boundary is not None:
                part_of = setup.partition.part_of
                boundary = list(old_boundary)
                for u, v in changed:
                    if part_of[u] != part_of[v]:
                        continue
                    for x in (u, v):
                        boundary[x] = tuple(
                            nb
                            for nb in new_net.neighbors[x]
                            if part_of[nb] == part_of[x]
                            and forest.parent[x] != nb
                            and forest.parent[nb] != x
                        )
                division._wave_boundary_cache = boundary
            shortcut = Shortcut(
                self.solver.tree, setup.partition, setup.shortcut.up_parts
            )
            self._cache[key] = replace(
                setup, division=division, shortcut=shortcut
            )
        return evicted

    # ------------------------------------------------------------------
    def solve(
        self,
        setup: PASetup,
        values: Sequence[object],
        agg: Aggregation,
        charge_setup: bool = True,
        phase_prefix: str = "pa",
    ) -> PAResult:
        """One aggregation over a prepared setup.

        ``backend="local"`` delegates verbatim.  ``backend="sharded"``
        runs the wave pass on the worker pool when eligible (same plan,
        same rng advance, rounds/messages bit-for-bit) and falls back
        in-process otherwise (``stats.sharded_fallbacks``).
        """
        if self.backend == "sharded":
            from ..shard import encode_aggregation

            encoded = encode_aggregation(agg)
            if encoded is not None and self._shard_eligible():
                self.stats.sharded_solves += 1
                return self._solve_sharded(
                    setup, values, agg, encoded, charge_setup, phase_prefix,
                )
            self.stats.sharded_fallbacks += 1
        self.stats.solves += 1
        self._last_solve_sharded = False
        return self.solver.solve(
            setup, values, agg,
            charge_setup=charge_setup, phase_prefix=phase_prefix,
        )

    def solve_many(
        self,
        setup: PASetup,
        items: Sequence[Tuple[Sequence[object], Aggregation]],
        charge_setup: bool = True,
        phase_prefix: str = "pa_batch",
        phase_prefixes: Optional[Sequence[str]] = None,
    ) -> PABatchResult:
        """k aggregations over one setup; one wave pass when ``batch``.

        With ``batch`` off the aggregations run sequentially under
        ``phase_prefixes`` — the exact solves (order, names, randomness)
        the caller would have issued by hand, so ledgers stay bit-for-bit
        identical to the pre-session code.  Merge the returned
        ``.ledger`` exactly once; never the per-result ledgers.

        ``backend="sharded"`` orchestrates the pass(es) on the worker
        pool when eligible — the batched path ships the aggregation
        product by component names, the unbatched path routes each item
        through :meth:`solve` (sharding each in turn).
        """
        if self.backend == "sharded":
            result = self._solve_many_sharded(
                setup, items, charge_setup, phase_prefix, phase_prefixes,
            )
            if result is not None:
                return result
        if self.batch and len(items) > 1:
            self.stats.batched_solves += len(items)
        else:
            self.stats.solves += len(items)
        self._last_solve_sharded = False
        return self.solver.solve_many(
            setup, items, charge_setup=charge_setup,
            phase_prefix=phase_prefix, phase_prefixes=phase_prefixes,
            batched=self.batch,
        )

    def _solve_many_sharded(
        self,
        setup: PASetup,
        items: Sequence[Tuple[Sequence[object], Aggregation]],
        charge_setup: bool,
        phase_prefix: str,
        phase_prefixes: Optional[Sequence[str]],
    ) -> Optional[PABatchResult]:
        """Sharded mirror of ``PASolver.solve_many``; None = fall back.

        Argument validation stays with the delegate (it raises the same
        errors either way), so this only runs on well-formed requests.
        """
        if phase_prefixes is not None and len(phase_prefixes) != len(items):
            return None
        if not items:
            return None

        if not self.batch or len(items) == 1:
            # Sequential items, each routed through solve() (and thus
            # sharded when eligible) — exact order/prefix/randomness of
            # the unbatched delegate.
            ledger = CostLedger()
            per_agg: List[PAResult] = []
            for k, (values, agg) in enumerate(items):
                prefix = (
                    phase_prefixes[k] if phase_prefixes is not None
                    else f"{phase_prefix}{k}"
                )
                result = self.solve(
                    setup, values, agg,
                    charge_setup=charge_setup and k == 0,
                    phase_prefix=prefix,
                )
                ledger.merge(result.ledger)
                per_agg.append(result)
            return PABatchResult(
                per_agg=per_agg, ledger=ledger, setup=setup, batched=False
            )

        from ..shard import encode_batch

        aggs = [agg for _values, agg in items]
        encoded = encode_batch(aggs)
        if encoded is None or not self._shard_eligible():
            self.stats.sharded_fallbacks += 1
            return None
        self.stats.batched_solves += len(items)
        self.stats.sharded_solves += 1
        combined_values = list(zip(*(values for values, _agg in items)))
        combined = self._solve_sharded(
            setup, combined_values, product_aggregation(aggs), encoded,
            charge_setup, phase_prefix,
        )
        k = len(items)
        per_agg = []
        for idx in range(k):
            aggregates = {
                pid: (value[idx] if value is not None else None)
                for pid, value in combined.aggregates.items()
            }
            value_at_node = [
                (value[idx] if value is not None else None)
                for value in combined.value_at_node
            ]
            per_agg.append(
                PAResult(
                    aggregates=aggregates,
                    value_at_node=value_at_node,
                    ledger=combined.ledger,
                    setup=setup,
                )
            )
        return PABatchResult(
            per_agg=per_agg, ledger=combined.ledger, setup=setup,
            batched=True,
        )


def ensure_session(
    session: Optional[PASession],
    net: Network,
    mode: str = RANDOMIZED,
    seed: int = 0,
    solver: Optional[PASolver] = None,
    shortcut_provider: Optional[object] = None,
    family: Optional[str] = None,
    family_param: Optional[int] = None,
    schedule: Optional[Schedule] = None,
    async_mode: bool = False,
    engine_impl: str = "array",
) -> PASession:
    """The algorithms' session acquisition: adopt, wrap, or construct.

    * ``session`` given — use it (``solver``/provider/schedule arguments
      must not contradict it);
    * ``solver`` given — wrap it in a default session (reuse/batch off),
      preserving the historical ``solver=`` sharing contract bit for bit;
    * neither — construct ``PASolver(net, mode, seed)`` exactly as the
      algorithms always have, behind a default session
      (``schedule``/``async_mode`` select the asynchronous engine).
    """
    if session is not None:
        if solver is not None and solver is not session.solver:
            raise ValueError("pass either session or solver, not both")
        if shortcut_provider is not None or family is not None:
            raise ValueError(
                "a provider/family is configured on the session itself"
            )
        if schedule is not None or async_mode:
            raise ValueError(
                "a schedule is configured on the session itself; do not "
                "also pass schedule/async_mode to the algorithm"
            )
        return session
    return PASession(
        net, mode=mode, seed=seed, solver=solver,
        shortcut_provider=shortcut_provider, family=family,
        family_param=family_param, schedule=schedule, async_mode=async_mode,
        engine_impl=engine_impl,
    )
