"""Delivery schedules for the asynchronous engine.

A :class:`Schedule` assigns every message of an asynchronous execution an
*extra* delivery delay in virtual time units, on top of the one-unit hop
latency every edge always charges.  The async engine
(:mod:`repro.congest.async_engine`) queries the schedule per message —
payloads, and the ack/safe control traffic of its synchronizer layer —
so a schedule can slow an edge for everything that crosses it.

Schedules are *pure functions* of their construction parameters and the
message coordinates ``(src, dst, pulse, kind)``: the same schedule object
(or an equal-seeded copy) always assigns the same delays regardless of
the order the engine asks in.  That purity is what makes every fuzz
failure replayable from a ``(graph_seed, schedule_seed)`` pair alone.

Legitimacy note (see docs/architecture.md, "Asynchronous execution"):
schedules shape *timing*, never the cost model.  The rounds/messages a
phase charges to the main ledger are those of the synchronous execution
the synchronizer simulates; the schedule only moves the virtual clock and
the synchronizer overhead, which are accounted separately.
"""

from __future__ import annotations

#: Message kinds a schedule may distinguish.
PAYLOAD = 0
ACK = 1
SAFE = 2

_KIND_NAMES = {PAYLOAD: "payload", ACK: "ack", SAFE: "safe"}

_MASK = (1 << 64) - 1


def _mix(*parts: int) -> int:
    """Deterministic 64-bit hash of integer coordinates (splitmix-style).

    Python's builtin ``hash`` is salted per process for strings and is
    identity for small ints; this mixer gives well-spread, process-stable
    values so schedule draws are reproducible across runs and machines.
    """
    h = 0x9E3779B97F4A7C15
    for p in parts:
        h = (h ^ (p & _MASK)) * 0xBF58476D1CE4E5B9 & _MASK
        h = (h ^ (h >> 27)) * 0x94D049BB133111EB & _MASK
        h ^= h >> 31
    return h


class Schedule:
    """Base class: per-message extra delays in virtual time units.

    ``fifo`` declares whether the schedule promises per-directed-edge
    FIFO delivery for payloads; the engine additionally *enforces* it
    (clamping arrival times to be non-decreasing per edge) whenever the
    flag is set, so a wrapped non-FIFO delay source still yields a legal
    FIFO channel.
    """

    name: str = "schedule"
    #: Whether payload delivery on each directed edge is order-preserving.
    fifo: bool = False

    def delay(self, src: int, dst: int, pulse: int, kind: int) -> int:
        """Extra delay (>= 0 time units) for one message."""
        raise NotImplementedError

    def uniform_delay(self) -> "int | None":
        """The single constant this schedule assigns to *every* message,
        or ``None`` if delays vary by coordinate.

        This is a promise, not a measurement: a subclass may only return
        an int here if ``delay`` returns that value for all
        ``(src, dst, pulse, kind)``.  The async engine uses it to
        fast-forward long idle gaps (``wake_at`` far in the future)
        without walking each pulse frame — under a uniform delay ``d``
        every idle pulse costs exactly ``3 + d`` time units and one safe
        wave, so the jump is exact.  The conservative default ``None``
        disables the shortcut.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class SynchronousSchedule(Schedule):
    """Delay 0 everywhere: the asynchronous engine in lockstep.

    Every message takes exactly the one-unit hop latency, so every node's
    synchronizer gate resolves at the same virtual time each pulse and the
    execution order collapses to the synchronous engine's.  Running a
    program through the async engine under this schedule is the parity
    anchor: the main ledger must be bit-for-bit identical to the default
    engine's (pinned by tests and the fuzz harness).
    """

    name = "sync"
    fifo = True

    def delay(self, src: int, dst: int, pulse: int, kind: int) -> int:
        return 0

    def uniform_delay(self) -> int:
        return 0


class RandomDelaySchedule(Schedule):
    """Independent per-message delays, uniform on ``[0, max_delay]``.

    The draw is a pure hash of ``(seed, src, dst, pulse, kind)`` — no
    stream state — so delays do not depend on engine traversal order.
    Payloads on one edge may overtake each other (non-FIFO): the engine's
    resequencing layer is what keeps programs correct.
    """

    def __init__(self, seed: int = 0, max_delay: int = 3) -> None:
        if max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        self.seed = seed
        self.max_delay = max_delay
        self.name = f"random(d<={max_delay},seed={seed})"

    def delay(self, src: int, dst: int, pulse: int, kind: int) -> int:
        if self.max_delay == 0:
            return 0
        return _mix(self.seed, src, dst, pulse, kind) % (self.max_delay + 1)

    def uniform_delay(self) -> "int | None":
        return 0 if self.max_delay == 0 else None


class SlowEdgeSchedule(Schedule):
    """Adversarial slow edges: a seeded fraction of edges lag everything.

    Each undirected edge is slow with probability ``slow_fraction``
    (decided by a pure hash of the seed and the edge, both directions
    alike); slow edges add ``slow_delay`` units to every message — acks
    and safes included, so the synchronizer's handshake stalls behind the
    same bottlenecks real asynchrony would.  Per-edge delays are constant,
    hence FIFO.
    """

    fifo = True

    def __init__(
        self, seed: int = 0, slow_fraction: float = 0.2, slow_delay: int = 8
    ) -> None:
        if not 0.0 <= slow_fraction <= 1.0:
            raise ValueError("slow_fraction must be in [0, 1]")
        if slow_delay < 0:
            raise ValueError("slow_delay must be >= 0")
        self.seed = seed
        self.slow_fraction = slow_fraction
        self.slow_delay = slow_delay
        self._threshold = int(slow_fraction * (1 << 32))
        self.name = f"slow-edge(f={slow_fraction},d={slow_delay},seed={seed})"

    def is_slow(self, u: int, v: int) -> bool:
        a, b = (u, v) if u < v else (v, u)
        return (_mix(self.seed, a, b) >> 16) % (1 << 32) < self._threshold

    def delay(self, src: int, dst: int, pulse: int, kind: int) -> int:
        return self.slow_delay if self.is_slow(src, dst) else 0

    def uniform_delay(self) -> "int | None":
        if self.slow_delay == 0 or self.slow_fraction == 0.0:
            return 0
        if self.slow_fraction == 1.0:
            return self.slow_delay
        return None


class FIFORandomSchedule(RandomDelaySchedule):
    """Random per-message delays with FIFO channels enforced by the engine.

    Same delay distribution as :class:`RandomDelaySchedule`, but the
    engine clamps each directed edge's payload arrivals to be
    non-decreasing, modelling asynchronous links that reorder *across*
    edges but never within one (the classic message-passing assumption).
    """

    fifo = True

    def __init__(self, seed: int = 0, max_delay: int = 3) -> None:
        super().__init__(seed=seed, max_delay=max_delay)
        self.name = f"fifo-random(d<={max_delay},seed={seed})"


#: Registry for CLI/benchmark spec strings.
SCHEDULE_KINDS = ("sync", "random", "slow-edge", "fifo")


def make_schedule(
    kind: str,
    seed: int = 0,
    max_delay: int = 3,
    slow_fraction: float = 0.2,
    slow_delay: int = 8,
) -> Schedule:
    """Construct a schedule from a kind name (fuzzer/benchmark entry)."""
    if kind == "sync":
        return SynchronousSchedule()
    if kind == "random":
        return RandomDelaySchedule(seed=seed, max_delay=max_delay)
    if kind == "slow-edge":
        return SlowEdgeSchedule(
            seed=seed, slow_fraction=slow_fraction, slow_delay=slow_delay
        )
    if kind == "fifo":
        return FIFORandomSchedule(seed=seed, max_delay=max_delay)
    raise ValueError(
        f"unknown schedule kind {kind!r} (expected one of {SCHEDULE_KINDS})"
    )


def validate_schedule(
    schedule: Schedule,
    network,
    pulses: "tuple[int, ...]" = (0, 1, 7, 64),
    max_edges: int = 8,
) -> None:
    """Probe a schedule for the two contract violations that silently
    corrupt the event queue: negative delays (events in the past) and
    non-determinism (the same message coordinate answering differently
    across calls, which breaks replayability and the FIFO clamp).

    The probe samples real directed edges of ``network`` across a few
    pulses and all message kinds, calling ``delay`` twice per coordinate.
    It cannot prove a schedule correct — the per-message runtime guard in
    the async engine backstops coordinates the probe missed — but it
    catches the common bugs at construction, with a clear error instead
    of a corrupted heap.  Raises
    :class:`~repro.congest.errors.ScheduleValidationError`.
    """
    from .errors import ScheduleValidationError

    edges = []
    for u, v in network.edges[:max_edges]:
        edges.append((u, v))
        edges.append((v, u))
    if not edges:
        return
    for src, dst in edges:
        for pulse in pulses:
            for kind in (PAYLOAD, ACK, SAFE):
                d = schedule.delay(src, dst, pulse, kind)
                if not isinstance(d, int) or isinstance(d, bool):
                    raise ScheduleValidationError(
                        schedule, src, dst, pulse, kind,
                        f"returned {d!r} ({type(d).__name__}); delays must "
                        "be non-negative ints",
                    )
                if d < 0:
                    raise ScheduleValidationError(
                        schedule, src, dst, pulse, kind,
                        f"returned negative delay {d}",
                    )
                again = schedule.delay(src, dst, pulse, kind)
                if again != d:
                    raise ScheduleValidationError(
                        schedule, src, dst, pulse, kind,
                        f"is non-deterministic: returned {d} then {again} "
                        "for the same message coordinate (schedules must be "
                        "pure functions of (src, dst, pulse, kind))",
                    )
