"""Message payloads and their bit-size accounting.

The CONGEST model allows each message to carry O(log n) bits.  We make that
budget concrete: a payload is a (possibly nested) tuple of small integers,
strings drawn from a fixed tag alphabet, or ``None``, and
:func:`payload_bits` computes an upper bound on its encoded size.  The
network chooses a limit of ``BITS_PER_WORD_FACTOR * ceil(log2 n)`` bits so
that a constant number of node ids / weights / tags fit in one message —
exactly the license the paper's O(log n)-bit messages give.

Payloads are deliberately plain Python values rather than a Message class:
the engine moves millions of them, and tuples keep that cheap.
"""

from __future__ import annotations

from typing import Any

#: How many "machine words" of ceil(log2 n) bits one message may carry.
#: The model's O(log n) bits hides a constant; 16 words is generous enough
#: for every algorithm in the paper (a message never carries more than a
#: few ids, a weight, a tag and a couple of counters) while still catching
#: accidental "ship the whole set in one message" bugs.
BITS_PER_WORD_FACTOR = 16

#: Flat cost charged for a tag string (tags come from a fixed alphabet of
#: message types, so a constant number of bits suffices to encode one).
TAG_BITS = 8

#: Structural overhead charged per tuple nesting level.
TUPLE_OVERHEAD_BITS = 2


def int_bits(value: int) -> int:
    """Return the number of bits needed to encode ``value`` (with sign)."""
    if value == 0:
        return 1
    magnitude = value if value >= 0 else -value
    sign = 1 if value < 0 else 0
    return magnitude.bit_length() + sign


def payload_bits(payload: Any) -> int:
    """Upper-bound the encoded size of ``payload`` in bits.

    Supported payloads are ``None``, ``bool``, ``int``, ``float`` (charged a
    full word of 64 bits; algorithms in this repo only use floats for
    O(log n)-bit fixed-point quantities), ``str`` tags, and tuples of these.
    Anything else raises ``TypeError`` so that non-serializable state cannot
    masquerade as a network message.
    """
    if payload is None:
        return 1
    if payload is True or payload is False:
        return 1
    if isinstance(payload, int):
        return int_bits(payload)
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        # Tags come from a fixed per-algorithm alphabet of message types,
        # so a constant number of bits encodes any of them.
        return TAG_BITS
    if isinstance(payload, tuple):
        total = TUPLE_OVERHEAD_BITS
        for item in payload:
            total += payload_bits(item)
        return total
    raise TypeError(
        f"unsupported message payload type: {type(payload).__name__}"
    )


def message_bit_limit(n: int) -> int:
    """The per-message bit budget for an n-node network.

    This is the concrete instantiation of the model's O(log n) bits.
    """
    log_n = max(1, (max(2, n) - 1).bit_length())
    return BITS_PER_WORD_FACTOR * log_n
