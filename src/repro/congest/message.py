"""Message payloads and their bit-size accounting.

The CONGEST model allows each message to carry O(log n) bits.  We make that
budget concrete: a payload is a (possibly nested) tuple of small integers,
strings drawn from a fixed tag alphabet, or ``None``, and
:func:`payload_bits` computes an upper bound on its encoded size.  The
network chooses a limit of ``BITS_PER_WORD_FACTOR * ceil(log2 n)`` bits so
that a constant number of node ids / weights / tags fit in one message —
exactly the license the paper's O(log n)-bit messages give.

Payloads are deliberately plain Python values rather than a Message class:
the engine moves millions of them, and tuples keep that cheap.
"""

from __future__ import annotations

from typing import Any, Dict

try:  # numpy is optional for the scalar engine, required by the array one
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None  # type: ignore[assignment]

#: How many "machine words" of ceil(log2 n) bits one message may carry.
#: The model's O(log n) bits hides a constant; 16 words is generous enough
#: for every algorithm in the paper (a message never carries more than a
#: few ids, a weight, a tag and a couple of counters) while still catching
#: accidental "ship the whole set in one message" bugs.
BITS_PER_WORD_FACTOR = 16

#: Flat cost charged for a tag string (tags come from a fixed alphabet of
#: message types, so a constant number of bits suffices to encode one).
TAG_BITS = 8

#: Structural overhead charged per tuple nesting level.
TUPLE_OVERHEAD_BITS = 2


def int_bits(value: int) -> int:
    """Return the number of bits needed to encode ``value`` (with sign)."""
    if value == 0:
        return 1
    magnitude = value if value >= 0 else -value
    sign = 1 if value < 0 else 0
    return magnitude.bit_length() + sign


def payload_bits(payload: Any) -> int:
    """Upper-bound the encoded size of ``payload`` in bits.

    Supported payloads are ``None``, ``bool``, ``int``, ``float`` (charged a
    full word of 64 bits; algorithms in this repo only use floats for
    O(log n)-bit fixed-point quantities), ``str`` tags, and tuples of these.
    Anything else raises ``TypeError`` so that non-serializable state cannot
    masquerade as a network message.

    Numpy scalars are charged as the Python value they wrap: a wire format
    does not care whether the sender's register was an ``np.int64`` or an
    ``int``, so ``np.int64(1)``, ``1`` and ``True`` all cost 1 bit.  Arrays
    (``ndim > 0``) remain unsupported — shipping a whole vector in one
    message is exactly the bug the bit audit exists to catch.
    """
    if _np is not None and isinstance(payload, _np.generic):
        payload = payload.item()
    if payload is None:
        return 1
    if payload is True or payload is False:
        return 1
    if isinstance(payload, int):
        return int_bits(payload)
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        # Tags come from a fixed per-algorithm alphabet of message types,
        # so a constant number of bits encodes any of them.
        return TAG_BITS
    if isinstance(payload, tuple):
        total = TUPLE_OVERHEAD_BITS
        for item in payload:
            total += payload_bits(item)
        return total
    raise TypeError(
        f"unsupported message payload type: {type(payload).__name__}"
    )


#: Memo for :func:`payload_bits_cached`, keyed by ``repr(payload)``.  The
#: engine sends the same few payload shapes millions of times (tags, tokens,
#: small id tuples); recomputing the recursive bit count per send dominated
#: the hot path before this cache existed.
_BITS_CACHE: Dict[str, int] = {}

#: Cache size bound; on overflow the whole memo is dropped (payload variety
#: this large means the workload is generating unbounded-distinct payloads,
#: for which caching cannot help anyway).
_BITS_CACHE_MAX = 1 << 16

#: Types whose ``repr`` is a faithful type-and-shape fingerprint: it
#: distinguishes ``1`` from ``1.0`` from ``True`` from ``"1"``, which plain
#: equality (and hence a value-keyed dict) would conflate.  Only payloads
#: whose top-level type is one of these take the cached path; everything
#: else falls back to the exact recursive computation.
_CACHEABLE_TYPES = (tuple, int, str, bool, float, type(None))


#: Identity-keyed front cache: ``id(payload) -> (payload, bits)``.  Tokens
#: forwarded hop-by-hop are the *same* tuple object at every hop, so this
#: hits without even building the repr key.  Entries hold a strong
#: reference to the payload, which guarantees the id cannot be recycled
#: while the entry exists; the whole cache is dropped on overflow.
_ID_CACHE: Dict[int, tuple] = {}
_ID_CACHE_MAX = 1 << 15


def payload_bits_cached(payload: Any) -> int:
    """Memoized :func:`payload_bits` (same result, same errors).

    Two layers, both exact:

    1. an identity cache for payload objects the engine has already
       measured (the forwarding-heavy common case);
    2. a memo keyed by ``repr(payload)``: for the supported payload domain
       (None, bool, int, float, str and nested tuples of these) the repr
       round-trips the value *and* its types, so a hit is exact — never a
       merely-equal approximation (it distinguishes ``1`` / ``1.0`` /
       ``True`` / ``"1"``, which plain equality would conflate).

    Unsupported payload types bypass both caches and raise ``TypeError``
    from the exact computation, exactly as :func:`payload_bits` does.
    """
    entry = _ID_CACHE.get(id(payload))
    if entry is not None and entry[0] is payload:
        return entry[1]
    if not isinstance(payload, _CACHEABLE_TYPES):
        return payload_bits(payload)
    key = repr(payload)
    bits = _BITS_CACHE.get(key)
    if bits is None:
        bits = payload_bits(payload)
        if len(_BITS_CACHE) >= _BITS_CACHE_MAX:
            _BITS_CACHE.clear()
        _BITS_CACHE[key] = bits
    if len(_ID_CACHE) >= _ID_CACHE_MAX:
        _ID_CACHE.clear()
    _ID_CACHE[id(payload)] = (payload, bits)
    return bits


def message_bit_limit(n: int) -> int:
    """The per-message bit budget for an n-node network.

    This is the concrete instantiation of the model's O(log n) bits.
    """
    log_n = max(1, (max(2, n) - 1).bit_length())
    return BITS_PER_WORD_FACTOR * log_n
