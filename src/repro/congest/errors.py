"""Exception hierarchy for the CONGEST simulator.

All simulator-raised errors derive from :class:`CongestError` so callers can
catch model violations separately from ordinary Python errors.
"""

from __future__ import annotations


class CongestError(Exception):
    """Base class for all CONGEST-model violations and simulator failures."""


class NotAnEdgeError(CongestError):
    """A node attempted to send a message to a non-neighbor.

    In the CONGEST model communication happens only along graph edges; a
    send to any other node is a bug in the node program.  ``dst`` is
    ``None`` when the *source* itself is not a node of the network (e.g. a
    batch send from an out-of-range id, reported without consuming the
    batch iterable).
    """

    def __init__(self, src: int, dst: "int | None") -> None:
        if dst is None:
            super().__init__(f"{src} is not a node of the network")
        else:
            super().__init__(f"({src}, {dst}) is not an edge of the network")
        self.src = src
        self.dst = dst


class BandwidthExceededError(CongestError):
    """A single message exceeded the O(log n)-bit payload budget.

    The CONGEST model allows B = O(log n) bits per message.  The network
    computes a concrete bit budget (``Network.message_bits``) and the engine
    validates every payload against it.
    """

    def __init__(self, src: int, dst: int, bits: int, limit: int) -> None:
        super().__init__(
            f"message {src}->{dst} is {bits} bits; limit is {limit} bits"
        )
        self.src = src
        self.dst = dst
        self.bits = bits
        self.limit = limit


class ChannelCapacityError(CongestError):
    """More messages were scheduled on a directed edge than one round allows.

    Plain CONGEST permits one message per directed edge per round; the
    randomized meta-round mode of the paper (Section 4.2) permits
    O(log n).  Exceeding the configured capacity means the node program's
    own scheduling is wrong.
    """

    def __init__(self, src: int, dst: int, count: int, capacity: int) -> None:
        super().__init__(
            f"{count} messages scheduled on edge ({src}, {dst}) in one round"
            f" (capacity {capacity})"
        )
        self.src = src
        self.dst = dst
        self.count = count
        self.capacity = capacity


class RoundLimitExceededError(CongestError):
    """An engine phase failed to terminate within its round budget.

    Every phase is run with an explicit ``max_rounds`` safety budget; hitting
    it indicates either a livelocked program or a wrong complexity estimate.
    """

    def __init__(self, phase: str, limit: int) -> None:
        super().__init__(f"phase {phase!r} exceeded {limit} rounds")
        self.phase = phase
        self.limit = limit


class InvalidPartitionError(CongestError):
    """A vertex partition violates the Part-Wise Aggregation preconditions.

    Definition 1.1 requires every part to induce a connected subgraph and the
    parts to cover every vertex exactly once.
    """


class ScheduleValidationError(CongestError):
    """A delivery schedule violated its contract (negative delay or
    non-determinism).

    Schedules must be pure functions of ``(src, dst, pulse, kind)``
    returning non-negative int delays; anything else would corrupt the
    async engine's event queue (events in the past, irreproducible
    orderings).  Raised by
    :func:`repro.congest.schedule.validate_schedule` — called at
    :class:`~repro.congest.AsyncEngine` construction — or by the
    engine's per-message runtime guard on a coordinate the construction
    probe missed.
    """

    def __init__(
        self, schedule, src: int, dst: int, pulse: int, kind: int,
        problem: str,
    ) -> None:
        from .schedule import _KIND_NAMES

        name = getattr(schedule, "name", type(schedule).__name__)
        kind_name = _KIND_NAMES.get(kind, str(kind))
        super().__init__(
            f"schedule {name!r}: delay({src}, {dst}, pulse={pulse}, "
            f"kind={kind_name}) {problem}"
        )
        self.schedule = schedule
        self.src = src
        self.dst = dst
        self.pulse = pulse
        self.kind = kind


class ShortcutValidationError(CongestError):
    """A claimed tree-restricted shortcut violates Definition 2.2.

    Raised by :func:`repro.core.shortcuts.validate_shortcut` when a shortcut
    edge set is not a subset of the spanning tree's edges, or the recorded
    congestion/block structure is inconsistent with the edge assignment.
    """
