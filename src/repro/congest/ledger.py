"""Round and message accounting.

Every communication phase run on the engine reports a :class:`PhaseStats`;
an algorithm accumulates them into a :class:`CostLedger`.  The ledger is the
ground truth for every number reported in EXPERIMENTS.md: benchmarks read
``ledger.rounds`` and ``ledger.messages``, never closed-form formulas.

Rounds compose *sequentially* across phases (synchronous algorithms run
phase k+1 after a globally known round bound for phase k), so the ledger
simply sums them.  Phases that conceptually run in parallel on disjoint
parts of the graph are implemented as a single engine phase, so no special
"parallel composition" accounting is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..obs.tracer import current_tracer


@dataclass(frozen=True)
class EngineProfile:
    """Opt-in execution profile of one engine phase.

    Distinct from the rounds/messages *cost model* numbers: these are
    simulator-side quantities (how the engine spent its time), useful for
    finding hot phases and validating congestion claims.

    ``ticks``
        Engine ticks actually executed (idle ticks skipped by the timer
        wheel are counted in ``idle_ticks`` instead, though they *are*
        charged as rounds).
    ``peak_in_flight``
        Maximum number of messages in flight in any single tick.
    ``activations``
        Total ``on_node`` invocations across the phase.
    ``idle_ticks``
        Ticks the timer wheel fast-forwarded over (no mail, no wakeups,
        only a future timer pending).
    """

    ticks: int
    peak_in_flight: int
    activations: int
    idle_ticks: int = 0

    def __add__(self, other: "EngineProfile") -> "EngineProfile":
        return EngineProfile(
            ticks=self.ticks + other.ticks,
            peak_in_flight=max(self.peak_in_flight, other.peak_in_flight),
            activations=self.activations + other.activations,
            idle_ticks=self.idle_ticks + other.idle_ticks,
        )


@dataclass(frozen=True)
class PhaseStats:
    """Metered cost of one engine phase.

    ``rounds`` already includes any meta-round blowup (an engine tick with
    per-edge capacity kappa > 1 models kappa CONGEST rounds, as in the
    randomized variant of Section 4.2).

    ``bits`` is the summed payload-bit cost of the phase's messages — a
    diagnostic, finer than the O(log n)-budget audit: it is tracked
    whenever the engine runs with ``strict_bits`` (the audit computes the
    per-message cost anyway) and is 0 when the audit is off (untracked,
    not free).  It is never part of the rounds/messages gate.

    ``profile`` is populated only when the engine ran with profiling
    enabled (see :class:`~repro.congest.engine.Engine`); it never affects
    the cost-model numbers.
    """

    name: str
    rounds: int
    messages: int
    ticks: int = 0
    bits: int = 0
    profile: Optional[EngineProfile] = None

    def __add__(self, other: "PhaseStats") -> "PhaseStats":
        profile = None
        if self.profile is not None and other.profile is not None:
            profile = self.profile + other.profile
        return PhaseStats(
            name=self.name,
            rounds=self.rounds + other.rounds,
            messages=self.messages + other.messages,
            ticks=self.ticks + other.ticks,
            bits=self.bits + other.bits,
            profile=profile,
        )


class CostLedger:
    """Accumulates phase costs for one algorithm execution.

    The ledger keeps both the running totals and the full phase log so that
    benchmarks can break a cost down by pipeline stage (e.g. "how many
    messages did shortcut construction use vs. the PA waves?").

    ``stream`` labels the accounting stream a ledger belongs to in trace
    output (``"main"`` for algorithm cost, ``"async_overhead"`` for the
    synchronizer tax, ``"recovery"`` for the fault-recovery tax).  It has
    no effect on the totals — it only tags the trace events that
    :meth:`charge` emits when a tracer is installed.
    """

    def __init__(self, stream: str = "main") -> None:
        self._phases: List[PhaseStats] = []
        self.rounds: int = 0
        self.messages: int = 0
        self.stream = stream

    def record(self, stats: PhaseStats) -> PhaseStats:
        """Append one phase and add it to the totals — no trace event.

        Re-attribution paths (:meth:`merge`, recovery-tax splits) use
        this so every :class:`PhaseStats` is traced exactly once, at the
        ledger it was *first* charged to: summing a trace's ledger events
        never double counts.
        """
        self._phases.append(stats)
        self.rounds += stats.rounds
        self.messages += stats.messages
        return stats

    def charge(self, stats: PhaseStats) -> PhaseStats:
        """Record one phase and add it to the totals (traced if enabled)."""
        tracer = current_tracer()
        if tracer.enabled:
            tracer.ledger(self.stream, stats)
        return self.record(stats)

    def charge_local(self, name: str, rounds: int = 0, messages: int = 0) -> PhaseStats:
        """Charge a cost known without running the engine.

        Used for steps whose cost is structural and exact, e.g. "every node
        tells each neighbor its new component id" (1 round, 2m messages).
        """
        stats = PhaseStats(name=name, rounds=rounds, messages=messages)
        return self.charge(stats)

    def merge(self, other: "CostLedger", prefix: str = "") -> None:
        """Fold another ledger (e.g. of a sub-algorithm) into this one.

        A re-attribution, not a new cost: the phases were already traced
        when first charged to ``other``, so this uses :meth:`record`.
        """
        for stats in other._phases:
            name = f"{prefix}{stats.name}" if prefix else stats.name
            self.record(
                PhaseStats(
                    name=name,
                    rounds=stats.rounds,
                    messages=stats.messages,
                    ticks=stats.ticks,
                    bits=stats.bits,
                    profile=stats.profile,
                )
            )

    def phases(self) -> Tuple[PhaseStats, ...]:
        """The phase log, in execution order."""
        return tuple(self._phases)

    def by_name(self) -> Dict[str, PhaseStats]:
        """Aggregate phase costs by phase name."""
        out: Dict[str, PhaseStats] = {}
        for stats in self._phases:
            if stats.name in out:
                out[stats.name] = out[stats.name] + stats
            else:
                out[stats.name] = stats
        return out

    def summary(self) -> str:
        """Human-readable per-phase cost breakdown with aligned columns."""
        by_name = self.by_name()
        total_bits = sum(s.bits for s in self._phases)
        lines = [
            f"total: rounds={self.rounds} messages={self.messages}"
            + (f" bits={total_bits}" if total_bits else "")
        ]
        if not by_name:
            return lines[0]
        name_w = max(len(name) for name in by_name)
        rounds_w = max(len(str(s.rounds)) for s in by_name.values())
        msgs_w = max(len(str(s.messages)) for s in by_name.values())
        bits_w = max(len(str(s.bits)) for s in by_name.values())
        for name, stats in sorted(by_name.items()):
            line = (
                f"  {name.ljust(name_w)}  rounds={str(stats.rounds).rjust(rounds_w)}"
                f"  messages={str(stats.messages).rjust(msgs_w)}"
            )
            if total_bits:
                line += f"  bits={str(stats.bits).rjust(bits_w)}"
            lines.append(line)
        return "\n".join(lines)

    def __iter__(self) -> Iterator[PhaseStats]:
        return iter(self._phases)

    def __repr__(self) -> str:
        return (
            f"CostLedger(stream={self.stream!r}, phases={len(self._phases)}, "
            f"rounds={self.rounds}, messages={self.messages})"
        )


@dataclass
class RunResult:
    """Standard return envelope for a distributed algorithm run.

    ``output`` is algorithm-specific (e.g. per-node aggregates for PA, the
    MST edge set for MST); ``ledger`` carries the metered cost.
    """

    output: object
    ledger: CostLedger
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        return self.ledger.rounds

    @property
    def messages(self) -> int:
        return self.ledger.messages


def merge_max_rounds(parallel: List[CostLedger], name: str) -> PhaseStats:
    """Combine ledgers of phases that ran concurrently on disjoint regions.

    Rounds compose as the maximum, messages as the sum.  Only used by
    baselines that are *defined* per part (our algorithms run all parts in
    one engine phase instead).
    """
    rounds = max((led.rounds for led in parallel), default=0)
    messages = sum(led.messages for led in parallel)
    return PhaseStats(name=name, rounds=rounds, messages=messages)
