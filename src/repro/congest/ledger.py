"""Round and message accounting.

Every communication phase run on the engine reports a :class:`PhaseStats`;
an algorithm accumulates them into a :class:`CostLedger`.  The ledger is the
ground truth for every number reported in EXPERIMENTS.md: benchmarks read
``ledger.rounds`` and ``ledger.messages``, never closed-form formulas.

Rounds compose *sequentially* across phases (synchronous algorithms run
phase k+1 after a globally known round bound for phase k), so the ledger
simply sums them.  Phases that conceptually run in parallel on disjoint
parts of the graph are implemented as a single engine phase, so no special
"parallel composition" accounting is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class EngineProfile:
    """Opt-in execution profile of one engine phase.

    Distinct from the rounds/messages *cost model* numbers: these are
    simulator-side quantities (how the engine spent its time), useful for
    finding hot phases and validating congestion claims.

    ``ticks``
        Engine ticks actually executed (idle ticks skipped by the timer
        wheel are counted in ``idle_ticks`` instead, though they *are*
        charged as rounds).
    ``peak_in_flight``
        Maximum number of messages in flight in any single tick.
    ``activations``
        Total ``on_node`` invocations across the phase.
    ``idle_ticks``
        Ticks the timer wheel fast-forwarded over (no mail, no wakeups,
        only a future timer pending).
    """

    ticks: int
    peak_in_flight: int
    activations: int
    idle_ticks: int = 0

    def __add__(self, other: "EngineProfile") -> "EngineProfile":
        return EngineProfile(
            ticks=self.ticks + other.ticks,
            peak_in_flight=max(self.peak_in_flight, other.peak_in_flight),
            activations=self.activations + other.activations,
            idle_ticks=self.idle_ticks + other.idle_ticks,
        )


@dataclass(frozen=True)
class PhaseStats:
    """Metered cost of one engine phase.

    ``rounds`` already includes any meta-round blowup (an engine tick with
    per-edge capacity kappa > 1 models kappa CONGEST rounds, as in the
    randomized variant of Section 4.2).

    ``profile`` is populated only when the engine ran with profiling
    enabled (see :class:`~repro.congest.engine.Engine`); it never affects
    the cost-model numbers.
    """

    name: str
    rounds: int
    messages: int
    ticks: int = 0
    profile: Optional[EngineProfile] = None

    def __add__(self, other: "PhaseStats") -> "PhaseStats":
        profile = None
        if self.profile is not None and other.profile is not None:
            profile = self.profile + other.profile
        return PhaseStats(
            name=self.name,
            rounds=self.rounds + other.rounds,
            messages=self.messages + other.messages,
            ticks=self.ticks + other.ticks,
            profile=profile,
        )


class CostLedger:
    """Accumulates phase costs for one algorithm execution.

    The ledger keeps both the running totals and the full phase log so that
    benchmarks can break a cost down by pipeline stage (e.g. "how many
    messages did shortcut construction use vs. the PA waves?").
    """

    def __init__(self) -> None:
        self._phases: List[PhaseStats] = []
        self.rounds: int = 0
        self.messages: int = 0

    def charge(self, stats: PhaseStats) -> PhaseStats:
        """Record one phase and add it to the totals."""
        self._phases.append(stats)
        self.rounds += stats.rounds
        self.messages += stats.messages
        return stats

    def charge_local(self, name: str, rounds: int = 0, messages: int = 0) -> PhaseStats:
        """Charge a cost known without running the engine.

        Used for steps whose cost is structural and exact, e.g. "every node
        tells each neighbor its new component id" (1 round, 2m messages).
        """
        stats = PhaseStats(name=name, rounds=rounds, messages=messages)
        return self.charge(stats)

    def merge(self, other: "CostLedger", prefix: str = "") -> None:
        """Fold another ledger (e.g. of a sub-algorithm) into this one."""
        for stats in other._phases:
            name = f"{prefix}{stats.name}" if prefix else stats.name
            self.charge(
                PhaseStats(
                    name=name,
                    rounds=stats.rounds,
                    messages=stats.messages,
                    ticks=stats.ticks,
                    profile=stats.profile,
                )
            )

    def phases(self) -> Tuple[PhaseStats, ...]:
        """The phase log, in execution order."""
        return tuple(self._phases)

    def by_name(self) -> Dict[str, PhaseStats]:
        """Aggregate phase costs by phase name."""
        out: Dict[str, PhaseStats] = {}
        for stats in self._phases:
            if stats.name in out:
                out[stats.name] = out[stats.name] + stats
            else:
                out[stats.name] = stats
        return out

    def summary(self) -> str:
        """Human-readable multi-line cost breakdown."""
        lines = [f"total: rounds={self.rounds} messages={self.messages}"]
        for name, stats in sorted(self.by_name().items()):
            lines.append(
                f"  {name}: rounds={stats.rounds} messages={stats.messages}"
            )
        return "\n".join(lines)

    def __iter__(self) -> Iterator[PhaseStats]:
        return iter(self._phases)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CostLedger(rounds={self.rounds}, messages={self.messages})"


@dataclass
class RunResult:
    """Standard return envelope for a distributed algorithm run.

    ``output`` is algorithm-specific (e.g. per-node aggregates for PA, the
    MST edge set for MST); ``ledger`` carries the metered cost.
    """

    output: object
    ledger: CostLedger
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        return self.ledger.rounds

    @property
    def messages(self) -> int:
        return self.ledger.messages


def merge_max_rounds(parallel: List[CostLedger], name: str) -> PhaseStats:
    """Combine ledgers of phases that ran concurrently on disjoint regions.

    Rounds compose as the maximum, messages as the sum.  Only used by
    baselines that are *defined* per part (our algorithms run all parts in
    one engine phase instead).
    """
    rounds = max((led.rounds for led in parallel), default=0)
    messages = sum(led.messages for led in parallel)
    return PhaseStats(name=name, rounds=rounds, messages=messages)
