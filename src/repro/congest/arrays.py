"""Array-native execution state for the CONGEST engine.

The scalar engine dispatches one Python object per message; at 50k+ nodes
the interpreter, not the algorithms, is the ceiling.  This module is the
flat-array replacement for that hot loop: a tick's entire traffic lives in
parallel int64 *columns* (``src``, ``dst``, plus kernel-defined payload
columns) instead of per-message tuples, and delivery, capacity audits, bit
audits and activation ordering are all whole-tick numpy passes over the
CSR views in :class:`~repro.congest.network.NetworkArrays`.

Parity contract (pinned by ``tests/congest/test_array_parity.py`` and the
fuzz harness's engine axis): for every program pair (scalar program, array
kernel) the phase ledger — name, rounds, messages, ticks — and all
program outputs are bit-for-bit identical.  The rules that make this hold:

* a kernel emits messages in exactly the order the scalar program would
  have called ``ctx.send``; the engine's delivery sort is a *stable*
  ``np.lexsort`` by ``(dst, src)``, which therefore reproduces the scalar
  inbox order (stably sender-sorted mailboxes) including the order of
  same-edge messages;
* per-directed-edge capacity is enforced on the sorted batch before the
  kernel sees any of it — the same "whole tick is materialized first"
  semantics as :class:`~repro.congest.engine.BulkProgram`;
* payload bits are charged at emit time from kernel-supplied bit columns
  (:func:`int_bits_array` matches :func:`~repro.congest.message.int_bits`
  exactly, including at int64 extremes), so ``strict_bits`` raises on the
  same message the scalar engine would have;
* quiescence, the timer wheel, idle fast-forward and the round-limit check
  replicate ``Engine._run_loop`` tick for tick.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..obs.tracer import current_tracer
from .errors import (
    BandwidthExceededError,
    ChannelCapacityError,
    NotAnEdgeError,
    RoundLimitExceededError,
)
from .ledger import EngineProfile, PhaseStats

_INT64_MIN = np.iinfo(np.int64).min


def int_bits_array(values) -> np.ndarray:
    """Vectorized :func:`~repro.congest.message.int_bits`, exact on int64.

    ``bit_length`` is recovered from the float64 exponent (``np.frexp``),
    which is exact below 2**53; above that the top 32 bits are measured
    separately (always < 2**31, hence exact) so boundary values like
    ``2**60 - 1`` are not rounded up by the float conversion.
    """
    v = np.asarray(values, dtype=np.int64)
    mag = np.abs(v)
    out = np.frexp(mag.astype(np.float64))[1].astype(np.int64)
    hi = mag >> np.int64(32)
    big = hi > 0
    if big.any():
        out[big] = np.frexp(hi[big].astype(np.float64))[1].astype(np.int64) + 32
    out[mag == 0] = 1
    if (v == _INT64_MIN).any():
        # abs() wraps at the int64 minimum; its magnitude is exactly 2**63.
        out[v == _INT64_MIN] = 64
    return out + (v < 0)


def tuple_bits(*component_bits) -> np.ndarray:
    """Bit cost of a tuple payload from its components' bit costs.

    Mirrors ``payload_bits``: one ``TUPLE_OVERHEAD_BITS`` per nesting
    level plus the sum of the items.  Scalars broadcast, so constant
    components (tags, ``None``) can be passed as plain ints.
    """
    from .message import TUPLE_OVERHEAD_BITS

    total = np.asarray(TUPLE_OVERHEAD_BITS, dtype=np.int64)
    for bits in component_bits:
        total = total + np.asarray(bits, dtype=np.int64)
    return total


class ColumnArena:
    """Growable parallel int64 columns with an explicit live prefix.

    The array engine's analogue of the scalar engine's reusable mailbox
    arenas: buffers double on demand, ``clear`` resets the live count
    without releasing (or scrubbing) storage, and every read goes through
    a live-prefix view — so slots beyond the live count are *masked*:
    stale data from a previous phase can never leak into the next one.
    The masked-slot property tests poison the dead region and assert it
    stays invisible.
    """

    __slots__ = ("_cols", "_live", "_capacity")

    def __init__(self, names: Tuple[str, ...], capacity: int = 64) -> None:
        if not names:
            raise ValueError("a ColumnArena needs at least one column")
        capacity = max(1, capacity)
        self._cols: Dict[str, np.ndarray] = {
            name: np.empty(capacity, dtype=np.int64) for name in names
        }
        self._live = 0
        self._capacity = capacity

    def __len__(self) -> int:
        return self._live

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._cols)

    @property
    def capacity(self) -> int:
        return self._capacity

    def _grow_to(self, needed: int) -> None:
        # Geometric growth from the needed size: one allocation even when
        # a single append batch exceeds the capacity many times over.
        new_cap = max(self._capacity * 2, needed)
        for name, col in self._cols.items():
            grown = np.empty(new_cap, dtype=np.int64)
            grown[: self._live] = col[: self._live]
            self._cols[name] = grown
        self._capacity = new_cap

    def append(self, **values) -> None:
        """Append one batch of rows; scalar values broadcast.

        Every column must be provided.  At least one value must carry the
        batch length (all-scalar appends are a single row).
        """
        if set(values) != set(self._cols):
            raise ValueError(
                f"append must set exactly the columns {sorted(self._cols)}"
            )
        arrays = {k: np.asarray(v, dtype=np.int64) for k, v in values.items()}
        count = max((a.size for a in arrays.values() if a.ndim), default=1)
        if count == 0:
            return
        if self._live + count > self._capacity:
            self._grow_to(self._live + count)
        lo, hi = self._live, self._live + count
        for name, arr in arrays.items():
            self._cols[name][lo:hi] = arr
        self._live = hi

    def column(self, name: str) -> np.ndarray:
        """Live view of one column (no copy; valid until the next append)."""
        return self._cols[name][: self._live]

    def rows(self) -> Dict[str, np.ndarray]:
        """Live views of all columns."""
        return {name: col[: self._live] for name, col in self._cols.items()}

    def take(self) -> Dict[str, np.ndarray]:
        """Copy out the live rows and clear the arena."""
        out = {name: col[: self._live].copy() for name, col in self._cols.items()}
        self._live = 0
        return out

    def clear(self) -> None:
        """Reset the live count; buffers are retained for reuse."""
        self._live = 0


class Delivered:
    """One tick's delivered traffic, sorted stably by ``(dst, src)``.

    ``cols`` holds the kernel's payload columns in the same order.
    ``active`` is the sorted, deduplicated activation set for the tick —
    nodes with mail, explicitly woken nodes, and due timers — i.e. the
    exact node sequence the scalar engine would have dispatched.
    """

    __slots__ = ("src", "dst", "cols", "active")

    def __init__(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        cols: Dict[str, np.ndarray],
        active: np.ndarray,
    ) -> None:
        self.src = src
        self.dst = dst
        self.cols = cols
        self.active = active

    def __len__(self) -> int:
        return self.src.size


_EMPTY_I64 = np.empty(0, dtype=np.int64)


class ArrayContext:
    """Per-phase API handed to :class:`~repro.congest.engine.ArrayProgram`.

    The array analogue of :class:`~repro.congest.engine.Context`: kernels
    ``emit`` whole batches for next-tick delivery and wake whole node
    arrays.  Audits run at the same point their scalar twins do — edge
    membership and bit budgets at emit time (first offender in emission
    order raises), per-edge capacity at delivery time.
    """

    __slots__ = (
        "network",
        "arrays",
        "n",
        "tick",
        "capacity",
        "rounds_per_tick",
        "strict_bits",
        "strict_edges",
        "bit_limit",
        "_src_parts",
        "_dst_parts",
        "_col_parts",
        "_sent",
        "_bits",
        "_wake_parts",
        "_timers",
    )

    def __init__(
        self,
        network,
        strict_bits: bool,
        strict_edges: bool,
        capacity: int,
        rounds_per_tick: int,
    ) -> None:
        self.network = network
        self.arrays = network.array_views
        self.n = network.n
        self.tick = 0
        self.capacity = capacity
        self.rounds_per_tick = rounds_per_tick
        self.strict_bits = strict_bits
        self.strict_edges = strict_edges
        self.bit_limit = network.message_bits
        self._src_parts: List[np.ndarray] = []
        self._dst_parts: List[np.ndarray] = []
        self._col_parts: List[Dict[str, np.ndarray]] = []
        self._sent = 0
        # Cumulative payload bits of all emissions this phase; maintained
        # only under ``strict_bits`` (the audit materializes the per-row
        # bit column anyway), 0 when untracked — same rule as the scalar
        # Context.
        self._bits = 0
        self._wake_parts: List[np.ndarray] = []
        self._timers: Dict[int, List[np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Kernel-facing API
    # ------------------------------------------------------------------
    def emit(
        self,
        src,
        dst,
        cols: Optional[Dict[str, np.ndarray]] = None,
        bits: Optional[np.ndarray] = None,
    ) -> None:
        """Schedule a batch of messages for next-tick delivery.

        ``src``/``dst`` are parallel node arrays (scalars broadcast);
        ``cols`` are the payload columns, which must use one consistent
        schema across a phase.  Emission order is the wire order: it must
        match the scalar program's ``ctx.send`` order, and it is what the
        audits report against.  ``bits`` (per-message payload bit counts)
        is required when the engine runs with ``strict_bits``.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.ndim == 0 and dst.ndim == 0:
            src = src.reshape(1)
            dst = dst.reshape(1)
        elif src.ndim == 0:
            src = np.broadcast_to(src, dst.shape)
        elif dst.ndim == 0:
            dst = np.broadcast_to(dst, src.shape)
        count = src.size
        if count == 0:
            return
        if self.strict_edges:
            table = self.arrays.edge_keys
            if table.size == 0:
                raise NotAnEdgeError(int(src[0]), int(dst[0]))
            keys = src * self.n + dst
            pos = np.searchsorted(table, keys)
            pos[pos >= table.size] = table.size - 1
            ok = (src >= 0) & (src < self.n) & (table[pos] == keys)
            if not ok.all():
                i = int(np.argmax(~ok))
                raise NotAnEdgeError(int(src[i]), int(dst[i]))
        if self.strict_bits:
            if bits is None:
                raise ValueError(
                    "strict_bits engines require per-message bit counts; "
                    "the kernel must pass bits= to emit()"
                )
            bits = np.broadcast_to(np.asarray(bits, dtype=np.int64), src.shape)
            over = bits > self.bit_limit
            if over.any():
                i = int(np.argmax(over))
                raise BandwidthExceededError(
                    int(src[i]), int(dst[i]), int(bits[i]), self.bit_limit
                )
            self._bits += int(bits.sum())
        self._src_parts.append(src)
        self._dst_parts.append(dst)
        self._col_parts.append(
            {}
            if cols is None
            else {
                k: np.broadcast_to(np.asarray(v, dtype=np.int64), src.shape)
                for k, v in cols.items()
            }
        )
        self._sent += count

    def wake(self, nodes) -> None:
        """Activate ``nodes`` (an array or scalar) next tick."""
        arr = np.asarray(nodes, dtype=np.int64).reshape(-1)
        if arr.size:
            self._wake_parts.append(arr)

    def wake_at(self, nodes, tick: int) -> None:
        """Activate ``nodes`` at the absolute future tick ``tick``."""
        if tick <= self.tick:
            raise ValueError(
                f"wake_at requires a future tick (now {self.tick}, got {tick})"
            )
        arr = np.asarray(nodes, dtype=np.int64).reshape(-1)
        if arr.size:
            self._timers.setdefault(tick, []).append(arr)

    # ------------------------------------------------------------------
    # Engine-facing internals
    # ------------------------------------------------------------------
    def _drain(self) -> Tuple[np.ndarray, np.ndarray, Dict[str, np.ndarray]]:
        """Concatenate and clear the emission buffers (emission order)."""
        if not self._src_parts:
            return _EMPTY_I64, _EMPTY_I64, {}
        if len(self._src_parts) == 1:
            src = self._src_parts[0]
            dst = self._dst_parts[0]
            cols = dict(self._col_parts[0])
        else:
            src = np.concatenate(self._src_parts)
            dst = np.concatenate(self._dst_parts)
            names = self._col_parts[0].keys()
            for part in self._col_parts[1:]:
                if part.keys() != names:
                    raise ValueError(
                        "all emissions of a tick must share one column schema"
                    )
            cols = {
                name: np.concatenate([part[name] for part in self._col_parts])
                for name in names
            }
        self._src_parts = []
        self._dst_parts = []
        self._col_parts = []
        return src, dst, cols


def run_array_phase(
    engine,
    program,
    max_ticks: int,
    capacity: int,
    rounds_per_tick: int,
    phase_name: str,
    want_profile: bool,
) -> PhaseStats:
    """Execute an ``ArrayProgram`` to quiescence; the array twin of
    ``Engine._run_loop`` with identical accounting.
    """
    actx = ArrayContext(
        engine.network,
        engine.strict_bits,
        engine.strict_edges,
        capacity,
        rounds_per_tick,
    )
    n = actx.n
    timers = actx._timers
    total_messages = 0
    ticks = 0
    live_ticks = 0
    idle_ticks = 0
    peak_in_flight = 0
    activations = 0
    # Observability: one fetch + one ``enabled`` check per phase; with
    # tracing off ``tracer`` is None and the loop does no per-tick work.
    _t = current_tracer()
    tracer = _t if _t.enabled else None
    bits_mark = 0

    program.array_start(actx)
    start_us = tracer.now_us() if tracer is not None else 0

    while actx._sent or actx._wake_parts or timers:
        if not actx._sent and not actx._wake_parts:
            # Only future timers remain: fast-forward the clock, charging
            # the skipped ticks as rounds exactly like the scalar loop.
            next_tick = min(timers)
            if tracer is not None and next_tick - 1 > ticks:
                tracer.instant(
                    "fast_forward",
                    "engine.ff",
                    {
                        "phase": phase_name,
                        "from_tick": ticks,
                        "to_tick": next_tick,
                        "skipped": next_tick - 1 - ticks,
                    },
                )
            idle_ticks += next_tick - 1 - ticks
            ticks = next_tick - 1
        if ticks >= max_ticks:
            raise RoundLimitExceededError(phase_name, max_ticks)
        ticks += 1
        live_ticks += 1
        actx.tick = ticks

        src, dst, cols = actx._drain()
        in_flight = actx._sent
        actx._sent = 0
        wake_parts = actx._wake_parts
        actx._wake_parts = []
        due = timers.pop(ticks, None)
        if due is not None:
            wake_parts = wake_parts + due

        total_messages += in_flight
        if in_flight > peak_in_flight:
            peak_in_flight = in_flight

        if src.size:
            # Stable sort by (dst, src): same-edge messages keep emission
            # order, reproducing the scalar engine's sender-sorted inbox.
            order = np.lexsort((src, dst))
            src = src[order]
            dst = dst[order]
            cols = {name: col[order] for name, col in cols.items()}
            if capacity < src.size:
                # Per-directed-edge load = run length of equal (dst, src)
                # keys in the sorted batch.
                key = dst * n + src
                step = np.flatnonzero(np.diff(key)) + 1
                starts = np.concatenate((np.zeros(1, dtype=np.int64), step))
                ends = np.concatenate((step, np.asarray([key.size])))
                over = (ends - starts) > capacity
                if over.any():
                    i = int(starts[np.argmax(over)])
                    raise ChannelCapacityError(
                        int(src[i]), int(dst[i]), capacity + 1, capacity
                    )
            # dst is sorted, so dedup by run boundaries (cheaper than
            # np.unique's hash table on the full delivery batch).
            keep = np.empty(dst.size, dtype=bool)
            keep[0] = True
            np.not_equal(dst[1:], dst[:-1], out=keep[1:])
            touched = dst[keep]
        else:
            touched = _EMPTY_I64

        if wake_parts:
            active = np.concatenate([touched] + wake_parts)
            active.sort()
            if active.size > 1:
                keep = np.empty(active.size, dtype=bool)
                keep[0] = True
                np.not_equal(active[1:], active[:-1], out=keep[1:])
                active = active[keep]
        else:
            active = touched
        activations += active.size
        if tracer is not None:
            delivered_bits = actx._bits - bits_mark
            bits_mark = actx._bits
            tracer.counter(
                phase_name,
                {
                    "tick": ticks,
                    "messages": in_flight,
                    "bits": delivered_bits,
                    "activations": int(active.size),
                },
            )

        program.array_tick(actx, Delivered(src, dst, cols, active))

    prof = None
    if want_profile:
        prof = EngineProfile(
            ticks=live_ticks,
            peak_in_flight=peak_in_flight,
            activations=activations,
            idle_ticks=idle_ticks,
        )
    stats = PhaseStats(
        name=phase_name,
        rounds=ticks * rounds_per_tick,
        messages=total_messages,
        ticks=ticks,
        bits=actx._bits,
        profile=prof,
    )
    if tracer is not None:
        tracer.complete(
            phase_name,
            "engine.phase",
            start_us,
            {
                "impl": "array",
                "rounds": stats.rounds,
                "messages": stats.messages,
                "ticks": stats.ticks,
                "bits": stats.bits,
            },
        )
    return stats
