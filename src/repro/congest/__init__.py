"""The CONGEST-model substrate: network, synchronous engine, cost ledger.

This subpackage is the simulator the whole reproduction runs on.  It knows
nothing about shortcuts or Part-Wise Aggregation; it only provides:

* :class:`Network` — the static topology with KT0 unique ids and weights;
* :class:`Engine` / :class:`Program` — synchronous message-passing
  execution with per-edge capacity and per-message bit budgets enforced;
* :class:`CostLedger` / :class:`PhaseStats` — metered rounds and messages.
"""

from .async_engine import AsyncEngine, AsyncPhaseOverhead
from .engine import (
    BulkProgram,
    Context,
    Engine,
    FastContext,
    FunctionProgram,
    Inbox,
    Program,
)
from .errors import (
    BandwidthExceededError,
    ChannelCapacityError,
    CongestError,
    InvalidPartitionError,
    NotAnEdgeError,
    RoundLimitExceededError,
    ScheduleValidationError,
    ShortcutValidationError,
)
from .faults import (
    CrashEvent,
    FaultPlan,
    FaultReport,
    MessageLoss,
    PartitionEvent,
)
from .ledger import (
    CostLedger,
    EngineProfile,
    PhaseStats,
    RunResult,
    merge_max_rounds,
)
from .message import (
    int_bits,
    message_bit_limit,
    payload_bits,
    payload_bits_cached,
)
from .network import Network, canonical_edge, network_from_networkx
from .schedule import (
    FIFORandomSchedule,
    RandomDelaySchedule,
    Schedule,
    SlowEdgeSchedule,
    SynchronousSchedule,
    make_schedule,
    validate_schedule,
)

__all__ = [
    "AsyncEngine",
    "AsyncPhaseOverhead",
    "BandwidthExceededError",
    "BulkProgram",
    "ChannelCapacityError",
    "CongestError",
    "Context",
    "CostLedger",
    "CrashEvent",
    "Engine",
    "EngineProfile",
    "FIFORandomSchedule",
    "FastContext",
    "FaultPlan",
    "FaultReport",
    "FunctionProgram",
    "Inbox",
    "InvalidPartitionError",
    "MessageLoss",
    "Network",
    "NotAnEdgeError",
    "PartitionEvent",
    "PhaseStats",
    "Program",
    "RandomDelaySchedule",
    "RoundLimitExceededError",
    "RunResult",
    "Schedule",
    "ScheduleValidationError",
    "ShortcutValidationError",
    "SlowEdgeSchedule",
    "SynchronousSchedule",
    "canonical_edge",
    "int_bits",
    "make_schedule",
    "merge_max_rounds",
    "message_bit_limit",
    "network_from_networkx",
    "payload_bits",
    "payload_bits_cached",
    "validate_schedule",
]
