"""The synchronous CONGEST execution engine.

A *program* (see :class:`Program`) is a state machine over all nodes: the
engine calls ``on_start`` once, then repeatedly delivers the previous
round's messages to their recipients and invokes ``on_node`` for every node
that has mail or requested a wakeup.  The engine enforces the CONGEST
constraints — messages travel only along edges, at most ``capacity``
messages per directed edge per round, at most O(log n) bits per payload —
and meters every message into a :class:`~repro.congest.ledger.PhaseStats`.

Meta-rounds (Section 4.2 of the paper): the randomized PA variant lets a
node forward O(log n) messages per edge per "meta-round", each meta-round
costing O(log n) real CONGEST rounds.  The engine models this with
``capacity=kappa`` and ``rounds_per_tick=kappa``: one engine tick then
charges kappa rounds, which is exactly the paper's accounting.

The orchestrator (ordinary Python code between phases) may sequence phases
and precompute static structure, but all *communication* happens here.

Performance notes (the engine is the hot loop under every number in
EXPERIMENTS.md):

* per-node mailboxes are allocated once per phase and reused across ticks
  instead of rebuilding a ``defaultdict`` of lists every tick;
* the common ``capacity == 1`` check reuses one integer set across ticks
  (edge keys are packed as ``src * n + dst``), so steady-state delivery
  allocates nothing beyond the inbox tuples handed to programs;
* inboxes are sorted by sender only when they arrive out of order (sends
  are usually emitted in activation order, which is already sorted);
* payload bit budgets are checked through the memoized
  :func:`~repro.congest.message.payload_bits_cached`;
* ``wake_at`` is backed by a real timer wheel: idle stretches where only a
  future timer is pending are fast-forwarded in O(1) while still being
  charged as rounds;
* per-node mailbox arenas are owned by the :class:`Engine` and reused
  across *phases*, not just across ticks, so a multi-phase pipeline pays
  the O(n) arena allocation once per engine;
* programs implementing the :class:`BulkProgram` protocol receive one
  ``on_bulk`` call per tick carrying the whole activation batch, instead
  of one ``on_node`` call per active node — the delivery schedule, outbox
  order and metered costs are identical, only the Python dispatch count
  changes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from .errors import (
    BandwidthExceededError,
    ChannelCapacityError,
    NotAnEdgeError,
    RoundLimitExceededError,
)
from ..obs.tracer import current_tracer
from .ledger import EngineProfile, PhaseStats
from .message import _ID_CACHE, payload_bits_cached
from .network import Network

#: (sender, payload) pairs as delivered to a node in one round.
Inbox = Tuple[Tuple[int, object], ...]


class Context:
    """Per-phase API handed to node programs.

    Programs interact with the world exclusively through this object:
    ``send`` schedules a message for delivery next tick, ``wake`` schedules
    a spontaneous activation of a node next tick, and ``wake_at`` schedules
    one at an absolute future tick (used for timers such as the random part
    delays of the randomized PA variant).
    """

    __slots__ = (
        "network",
        "tick",
        "_mail",
        "_touched",
        "_sent",
        "_bits",
        "_wakeups",
        "_timers",
        "_strict_bits",
        "_bit_limit",
        "_neighbor_sets",
    )

    def __init__(
        self,
        network: Network,
        strict_bits: bool,
        mail: Optional[List[List[Tuple[int, object]]]] = None,
    ) -> None:
        self.network = network
        self.tick = 0
        # Next-tick delivery arena: sends append directly to the
        # recipient's mailbox (no intermediate outbox), ``_touched`` lists
        # the recipients with mail (each once), ``_sent`` counts messages.
        # The engine swaps these per tick (and passes its reusable arena
        # in; a stand-alone Context allocates its own).
        self._mail: List[List[Tuple[int, object]]] = (
            [[] for _ in range(network.n)] if mail is None else mail
        )
        self._touched: List[int] = []
        self._sent = 0
        # Cumulative payload bits of all sends this phase.  Maintained only
        # under ``strict_bits`` (the audit computes each message's cost
        # anyway, so tracking the sum is one addition); 0 means untracked.
        self._bits = 0
        self._wakeups: set = set()
        #: Timer wheel: absolute tick -> set of nodes to activate then.
        self._timers: Dict[int, Set[int]] = {}
        self._strict_bits = strict_bits
        self._bit_limit = network.message_bits
        # Same single-hash-lookup check as Network.has_edge, with the
        # tuple-of-frozensets bound once for the hot loop.
        self._neighbor_sets = network.neighbor_sets

    def send(self, src: int, dst: int, payload: object) -> None:
        """Schedule ``payload`` on directed edge (src, dst) for next tick."""
        # src is range-checked explicitly: negative ids would otherwise hit
        # Python's negative indexing and validate against the wrong node's
        # neighbor set (ROOT == -1 is a live sentinel in tree code).
        try:
            valid = src >= 0 and dst in self._neighbor_sets[src]
        except IndexError:
            valid = False
        if not valid:
            raise NotAnEdgeError(src, dst)
        if self._strict_bits:
            # Inlined fast path of payload_bits_cached: payloads that are
            # forwarded (or interned by their program) are the same object
            # at every hop, so the identity hit avoids even a function call.
            entry = _ID_CACHE.get(id(payload))
            if entry is not None and entry[0] is payload:
                bits = entry[1]
            else:
                bits = payload_bits_cached(payload)
            if bits > self._bit_limit:
                raise BandwidthExceededError(src, dst, bits, self._bit_limit)
            self._bits += bits
        box = self._mail[dst]
        if not box:
            self._touched.append(dst)
        box.append((src, payload))
        self._sent += 1

    def send_batch(self, src: int, entries) -> None:
        """Bulk :meth:`send` from one source node.

        ``entries`` is an iterable of sequences carrying the destination at
        index 0 and the payload at index -1 — both plain ``(dst, payload)``
        pairs and the richer internal queue entries qualify.  Semantics,
        checks, errors and outbox ordering are exactly those of calling
        ``send(src, dst, payload)`` per entry; only the per-message lookup
        overhead is hoisted out of the loop.
        """
        if not 0 <= src < len(self._neighbor_sets):
            # entries may be a one-shot generator; it must survive the
            # error path untouched (the caller may want to report or
            # re-send it), so the error names only the invalid source.
            raise NotAnEdgeError(src, None)
        neighbors = self._neighbor_sets[src]
        mail = self._mail
        touched = self._touched
        count = 0
        if self._strict_bits:
            limit = self._bit_limit
            cache_get = _ID_CACHE.get
            for entry in entries:
                dst = entry[0]
                payload = entry[-1]
                if dst not in neighbors:
                    self._sent += count
                    raise NotAnEdgeError(src, dst)
                hit = cache_get(id(payload))
                if hit is not None and hit[0] is payload:
                    bits = hit[1]
                else:
                    bits = payload_bits_cached(payload)
                if bits > limit:
                    self._sent += count
                    raise BandwidthExceededError(src, dst, bits, limit)
                self._bits += bits
                box = mail[dst]
                if not box:
                    touched.append(dst)
                box.append((src, payload))
                count += 1
        else:
            for entry in entries:
                dst = entry[0]
                if dst not in neighbors:
                    self._sent += count
                    raise NotAnEdgeError(src, dst)
                box = mail[dst]
                if not box:
                    touched.append(dst)
                box.append((src, entry[-1]))
                count += 1
        self._sent += count

    def wake(self, node: int) -> None:
        """Ensure ``node`` is activated next tick even without mail."""
        self._wakeups.add(node)

    def wake_at(self, node: int, tick: int) -> None:
        """Schedule activation of ``node`` at absolute tick ``tick``.

        Backed by the engine's timer wheel: the node is activated (with an
        empty inbox unless it also has mail) exactly at the requested tick,
        and the intervening idle ticks are charged as rounds without
        per-tick work.  ``tick`` must be strictly in the future.
        """
        if tick <= self.tick:
            raise ValueError(
                f"wake_at requires a future tick (now {self.tick}, got {tick})"
            )
        bucket = self._timers.get(tick)
        if bucket is None:
            self._timers[tick] = bucket = set()
        bucket.add(node)


class FastContext(Context):
    """A :class:`Context` with the per-message model audits compiled out.

    Used by the engine when ``strict_bits=False`` *and*
    ``strict_edges=False``: the per-send edge-membership check and the
    bit-budget audit are skipped entirely.  Delivery schedule, per-edge
    capacity enforcement and all metered costs are unchanged (pinned by
    the parity tests); only a buggy program that sends to a non-neighbor
    would now mis-deliver instead of raising, which is why the relaxed
    mode is reserved for workloads whose programs the test suite already
    exercises under the strict engine.
    """

    __slots__ = ()

    def send(self, src: int, dst: int, payload: object) -> None:
        box = self._mail[dst]
        if not box:
            self._touched.append(dst)
        box.append((src, payload))
        self._sent += 1

    def send_batch(self, src: int, entries) -> None:
        mail = self._mail
        touched = self._touched
        count = 0
        for entry in entries:
            dst = entry[0]
            box = mail[dst]
            if not box:
                touched.append(dst)
            box.append((src, entry[-1]))
            count += 1
        self._sent += count


class Program:
    """Base class for engine programs.

    Subclasses override :meth:`on_start` (inject initial messages/wakeups)
    and :meth:`on_node` (per-node transition function).

    Termination contract (quiescence): a program never signals completion
    explicitly.  A phase ends exactly when, after some tick, there are no
    messages in flight, no ``wake`` requests for the next tick, and no
    pending ``wake_at`` timers.  Consequently a program that should keep
    running must, every time it is activated, either send a message, call
    ``wake``, or hold a future ``wake_at`` timer; conversely a program that
    is done must simply stop doing all three.  Deadlock (waiting for a
    message nobody will send) therefore manifests as early quiescence, and
    livelock (re-waking forever) as a
    :class:`~repro.congest.errors.RoundLimitExceededError`.
    """

    #: Descriptive name used in ledgers and error messages.
    name: str = "program"

    def on_start(self, ctx: Context) -> None:
        """Inject round-0 messages and wakeups."""

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        """Process one node's mail for the current tick."""
        raise NotImplementedError


class BulkProgram(Program):
    """A program that processes one tick's whole activation batch at once.

    The engine hands a ``BulkProgram`` a single :meth:`on_bulk` call per
    tick with the complete activation batch — a list of ``(node, inbox)``
    pairs in the exact order (sorted node id) and with the exact inboxes
    the sequential path would have used.  Array-friendly programs override
    :meth:`on_bulk` to hoist attribute lookups and per-call overhead out of
    the per-node loop; the default implementation simply loops over
    :meth:`on_node`, so a ``BulkProgram`` with only ``on_node`` behaves
    identically to a plain :class:`Program`.

    Contract: the batch list and its inbox tuples are owned by the engine;
    ``on_bulk`` must not keep references past the call.  Because all
    inboxes of a tick are materialized before the first node runs, a
    capacity violation anywhere in the tick surfaces before *any* node of
    that tick executes (the sequential path would have run the earlier
    nodes first) — metered costs and delivery schedules are unaffected,
    since sends and wakes only ever target the next tick.
    """

    def on_bulk(self, ctx: Context, batch: List[Tuple[int, Inbox]]) -> None:
        """Process every activation of this tick in one call."""
        on_node = self.on_node
        for node, inbox in batch:
            on_node(ctx, node, inbox)

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        """Single-node fallback (used by code that drives programs manually)."""
        raise NotImplementedError


class ArrayProgram(Program):
    """A program whose whole-tick transition is a numpy kernel.

    Where a :class:`BulkProgram` still receives Python inboxes, an
    ``ArrayProgram`` receives the tick's entire delivered traffic as flat
    int64 columns (:class:`~repro.congest.arrays.Delivered`) and emits
    next-tick batches through an
    :class:`~repro.congest.arrays.ArrayContext`.  The engine routes these
    programs through the array run loop
    (:func:`~repro.congest.arrays.run_array_phase`), whose metering,
    audits and activation order are bit-for-bit those of the scalar loop.

    Kernels must emit messages in exactly the order their scalar twin
    would have called ``ctx.send`` — the delivery sort is stable, so this
    is what makes the two engines' inbox orders (and hence ledgers and
    outputs) coincide.
    """

    name = "array_program"

    def array_start(self, actx) -> None:
        """Inject tick-1 emissions and wakeups (the ``on_start`` twin)."""

    def array_tick(self, actx, delivered) -> None:
        """Process one tick's delivered batch (the per-tick transition)."""
        raise NotImplementedError

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        raise TypeError(
            f"{type(self).__name__} is array-native; the scalar engine "
            "cannot run it node-by-node"
        )


class Engine:
    """Runs programs on a network and meters their cost.

    Parameters
    ----------
    network:
        The communication graph.
    strict_bits:
        Validate every payload against the O(log n)-bit budget.  On by
        default; benchmarks on large inputs may disable it for speed after
        the test suite has pinned payload sizes.
    strict_edges:
        Validate that every send travels along a network edge.  On by
        default; with both ``strict_bits`` and ``strict_edges`` off the
        engine hands programs a :class:`FastContext` whose send path does
        no per-message auditing at all (ledger values are identical either
        way — pinned by tests).  The audits come off together:
        ``strict_edges=False`` with ``strict_bits=True`` is rejected
        rather than silently keeping the edge audit.
    profile:
        Attach an :class:`~repro.congest.ledger.EngineProfile` (ticks, peak
        in-flight messages, activation counts) to every returned
        :class:`~repro.congest.ledger.PhaseStats`.  Off by default; the
        cost-model numbers are identical either way.
    use_arrays:
        Advertise that phases on this engine should prefer array-native
        kernels.  The flag does not change how any given program runs —
        an :class:`ArrayProgram` always takes the array loop, a scalar
        program the scalar loop — it is how orchestrators (which own the
        choice of program per phase) learn which implementation the
        caller selected.  Ledgers are identical either way; that is the
        parity contract the differential suite pins.
    """

    def __init__(
        self,
        network: Network,
        strict_bits: bool = True,
        profile: bool = False,
        strict_edges: bool = True,
        use_arrays: bool = False,
    ) -> None:
        if not strict_edges and strict_bits:
            raise ValueError(
                "strict_edges=False requires strict_bits=False: the "
                "audit-free FastContext drops both checks together"
            )
        self.network = network
        self.strict_bits = strict_bits
        self.strict_edges = strict_edges
        self.profile = profile
        self.use_arrays = use_arrays
        #: Double-buffered per-node mailbox arenas, allocated lazily and
        #: reused across phases (every tick leaves all mailboxes empty, so
        #: reuse is free): one arena is being delivered while programs
        #: fill the other.  Dropped after an abnormal phase exit, which
        #: may leave mail behind.
        self._arena: Optional[Tuple[
            List[List[Tuple[int, object]]],
            List[List[Tuple[int, object]]],
        ]] = None
        self._arena_in_use = False

    def run(
        self,
        program: Program,
        max_ticks: int,
        capacity: int = 1,
        rounds_per_tick: int = 1,
        name: Optional[str] = None,
        profile: Optional[bool] = None,
    ) -> PhaseStats:
        """Execute ``program`` to quiescence and return its metered cost.

        ``capacity`` is the per-directed-edge, per-tick message cap
        (CONGEST: 1).  ``rounds_per_tick`` is how many CONGEST rounds one
        engine tick represents; the randomized meta-round mode uses
        ``capacity == rounds_per_tick == Theta(log n)``.

        ``profile`` overrides the engine-wide profiling default for this
        phase only.

        Raises :class:`RoundLimitExceededError` if the program does not
        quiesce within ``max_ticks`` ticks.
        """
        phase_name = name or program.name
        want_profile = self.profile if profile is None else profile
        if isinstance(program, ArrayProgram):
            # Array-native phases own their (numpy) state; the scalar
            # mailbox arenas are neither needed nor touched.
            from .arrays import run_array_phase

            return run_array_phase(
                self, program, max_ticks, capacity,
                rounds_per_tick, phase_name, want_profile,
            )
        n = self.network.n
        # Double-buffered mailbox arenas: programs (via the Context) fill
        # one while the engine delivers from the other; each tick swaps
        # them.  The arenas belong to the engine and are reused across
        # phases; a reentrant run (one program driving another on the same
        # engine) gets a private allocation.
        if self._arena is None or self._arena_in_use:
            arena = ([[] for _ in range(n)], [[] for _ in range(n)])
            if not self._arena_in_use:
                self._arena = arena
        else:
            arena = self._arena
        ctx_cls = (
            Context if (self.strict_bits or self.strict_edges) else FastContext
        )
        ctx = ctx_cls(self.network, self.strict_bits, mail=arena[0])
        reentrant = self._arena_in_use
        self._arena_in_use = True
        # Observability: one current_tracer() fetch and one ``enabled``
        # check per *phase*; with tracing off the run loop sees
        # ``tracer=None`` and does no per-tick or per-event work at all.
        tracer = current_tracer()
        active_tracer = tracer if tracer.enabled else None
        try:
            program.on_start(ctx)
            if active_tracer is None:
                return self._run_loop(
                    program, ctx, arena[1], max_ticks, capacity,
                    rounds_per_tick, phase_name, want_profile,
                )
            start_us = active_tracer.now_us()
            stats = self._run_loop(
                program, ctx, arena[1], max_ticks, capacity,
                rounds_per_tick, phase_name, want_profile,
                tracer=active_tracer,
            )
            active_tracer.complete(
                phase_name,
                "engine.phase",
                start_us,
                {
                    "impl": "scalar",
                    "rounds": stats.rounds,
                    "messages": stats.messages,
                    "ticks": stats.ticks,
                    "bits": stats.bits,
                },
            )
            return stats
        except BaseException:
            if not reentrant:
                self._arena = None  # may hold undelivered mail; rebuild
            raise
        finally:
            self._arena_in_use = reentrant

    def _run_loop(
        self,
        program: Program,
        ctx: Context,
        spare_mail: List[List[Tuple[int, object]]],
        max_ticks: int,
        capacity: int,
        rounds_per_tick: int,
        phase_name: str,
        want_profile: bool,
        tracer=None,
    ) -> PhaseStats:
        spare_touched: List[int] = []
        # Delivered-bits watermark for the per-tick counter series; only
        # consulted when tracing (``tracer`` is None on the disabled path).
        bits_mark = 0

        timers = ctx._timers
        total_messages = 0
        ticks = 0
        live_ticks = 0
        idle_ticks = 0
        peak_in_flight = 0
        activations = 0
        on_node = program.on_node
        # Bulk dispatch: a BulkProgram receives the whole activation batch
        # in one call per tick (same order, same inboxes).
        is_bulk = isinstance(program, BulkProgram)
        on_bulk = program.on_bulk if is_bulk else None
        bulk_batch: List[Tuple[int, Inbox]] = []
        # Recycled per-tick containers (the delivered arena and the drained
        # wakeup set become the next tick's fill targets).
        spare_wakeups: set = set()

        while ctx._sent or ctx._wakeups or timers:
            if not ctx._sent and not ctx._wakeups:
                # Only future timers remain: fast-forward the clock.  The
                # skipped ticks are still charged as rounds (time passes in
                # a synchronous network whether or not anyone speaks).
                next_tick = min(timers)
                if tracer is not None and next_tick - 1 > ticks:
                    tracer.instant(
                        "fast_forward",
                        "engine.ff",
                        {
                            "phase": phase_name,
                            "from_tick": ticks,
                            "to_tick": next_tick,
                            "skipped": next_tick - 1 - ticks,
                        },
                    )
                idle_ticks += next_tick - 1 - ticks
                ticks = next_tick - 1
            if ticks >= max_ticks:
                raise RoundLimitExceededError(phase_name, max_ticks)
            ticks += 1
            live_ticks += 1
            ctx.tick = ticks

            # Swap arenas: what the programs filled is delivered this
            # tick; the drained spare becomes the new fill target.  Sends
            # already live in their recipients' mailboxes — there is no
            # bucketing pass.  Per-edge capacity is not tracked at send
            # time: a directed edge's load is exactly the multiplicity of
            # its sender in the destination's mailbox, so the inbox scan
            # below (which must look at senders anyway for deterministic
            # ordering) enforces it with no extra per-message accounting.
            mailboxes = ctx._mail
            touched = ctx._touched
            in_flight = ctx._sent
            wakeups = ctx._wakeups
            ctx._mail = spare_mail
            ctx._touched = spare_touched
            ctx._sent = 0
            ctx._wakeups = spare_wakeups
            if timers:
                due = timers.pop(ticks, None)
                if due:
                    wakeups |= due

            total_messages += in_flight
            if in_flight > peak_in_flight:
                peak_in_flight = in_flight

            # Deterministic activation order: sorted node ids; inboxes
            # sorted by sender.  Programs must not rely on this for
            # correctness, but it makes every run reproducible.
            if wakeups:
                wakeups.update(touched)
                active = sorted(wakeups)
            else:
                touched.sort()
                active = touched
            activations += len(active)
            if tracer is not None:
                delivered_bits = ctx._bits - bits_mark
                bits_mark = ctx._bits
                tracer.counter(
                    phase_name,
                    {
                        "tick": ticks,
                        "messages": in_flight,
                        "bits": delivered_bits,
                        "activations": len(active),
                    },
                )
            for node in active:
                mail = mailboxes[node]
                if not mail:
                    inbox: Inbox = ()
                elif len(mail) == 1:
                    inbox = (mail[0],)
                    mail.clear()
                elif len(mail) == 2:
                    # Specialized two-message case: order stably by sender
                    # and apply the same per-edge capacity rule as the
                    # general scan below, without its loop machinery.
                    first, second = mail
                    s0 = first[0]
                    s1 = second[0]
                    if s0 < s1:
                        inbox = (first, second)
                    elif s0 > s1:
                        inbox = (second, first)
                    elif capacity < 2:
                        raise ChannelCapacityError(s0, node, 2, capacity)
                    else:
                        inbox = (first, second)
                    mail.clear()
                else:
                    # Sends are usually emitted in activation order, which
                    # is already sorted by sender; sort only on disorder
                    # (stable, by sender only — payloads may be
                    # unorderable).  The same scan counts each sender's
                    # run length, i.e. the per-directed-edge load.
                    for _attempt in (0, 1):
                        prev = -1
                        run = 0
                        in_order = True
                        for sender, _payload in mail:
                            if sender > prev:
                                prev = sender
                                run = 1
                            elif sender == prev:
                                run += 1
                                if run > capacity:
                                    raise ChannelCapacityError(
                                        sender, node, run, capacity
                                    )
                            else:
                                in_order = False
                                break
                        if in_order:
                            break
                        mail.sort(key=_sender_of)
                    inbox = tuple(mail)
                    mail.clear()
                if is_bulk:
                    bulk_batch.append((node, inbox))
                else:
                    on_node(ctx, node, inbox)
            if is_bulk and bulk_batch:
                on_bulk(ctx, bulk_batch)
                bulk_batch.clear()
            touched.clear()
            spare_touched = touched
            spare_mail = mailboxes  # fully drained by the inbox builds
            wakeups.clear()
            spare_wakeups = wakeups

        prof = None
        if want_profile:
            prof = EngineProfile(
                ticks=live_ticks,
                peak_in_flight=peak_in_flight,
                activations=activations,
                idle_ticks=idle_ticks,
            )
        return PhaseStats(
            name=phase_name,
            rounds=ticks * rounds_per_tick,
            messages=total_messages,
            ticks=ticks,
            bits=ctx._bits,
            profile=prof,
        )


def _sender_of(item: Tuple[int, object]) -> int:
    return item[0]


class FunctionProgram(Program):
    """Adapter turning plain functions into a :class:`Program`.

    Useful for small one-off phases and for tests::

        prog = FunctionProgram("ping", start, step)
    """

    def __init__(
        self,
        name: str,
        on_start: Callable[[Context], None],
        on_node: Callable[[Context, int, Inbox], None],
    ) -> None:
        self.name = name
        self._on_start = on_start
        self._on_node = on_node

    def on_start(self, ctx: Context) -> None:
        self._on_start(ctx)

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        self._on_node(ctx, node, inbox)
