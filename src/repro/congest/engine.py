"""The synchronous CONGEST execution engine.

A *program* (see :class:`Program`) is a state machine over all nodes: the
engine calls ``on_start`` once, then repeatedly delivers the previous
round's messages to their recipients and invokes ``on_node`` for every node
that has mail or requested a wakeup.  The engine enforces the CONGEST
constraints — messages travel only along edges, at most ``capacity``
messages per directed edge per round, at most O(log n) bits per payload —
and meters every message into a :class:`~repro.congest.ledger.PhaseStats`.

Meta-rounds (Section 4.2 of the paper): the randomized PA variant lets a
node forward O(log n) messages per edge per "meta-round", each meta-round
costing O(log n) real CONGEST rounds.  The engine models this with
``capacity=kappa`` and ``rounds_per_tick=kappa``: one engine tick then
charges kappa rounds, which is exactly the paper's accounting.

The orchestrator (ordinary Python code between phases) may sequence phases
and precompute static structure, but all *communication* happens here.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .errors import (
    BandwidthExceededError,
    ChannelCapacityError,
    NotAnEdgeError,
    RoundLimitExceededError,
)
from .ledger import PhaseStats
from .message import payload_bits
from .network import Network

#: (sender, payload) pairs as delivered to a node in one round.
Inbox = Tuple[Tuple[int, object], ...]


class Context:
    """Per-phase API handed to node programs.

    Programs interact with the world exclusively through this object:
    ``send`` schedules a message for delivery next tick, ``wake`` schedules
    a spontaneous activation of a node next tick (used for timers such as
    the random part delays of the randomized PA variant).
    """

    __slots__ = ("network", "tick", "_outbox", "_wakeups", "_strict_bits")

    def __init__(self, network: Network, strict_bits: bool) -> None:
        self.network = network
        self.tick = 0
        self._outbox: List[Tuple[int, int, object]] = []
        self._wakeups: set = set()
        self._strict_bits = strict_bits

    def send(self, src: int, dst: int, payload: object) -> None:
        """Schedule ``payload`` on directed edge (src, dst) for next tick."""
        if not self.network.has_edge(src, dst):
            raise NotAnEdgeError(src, dst)
        if self._strict_bits:
            bits = payload_bits(payload)
            if bits > self.network.message_bits:
                raise BandwidthExceededError(
                    src, dst, bits, self.network.message_bits
                )
        self._outbox.append((src, dst, payload))

    def wake(self, node: int) -> None:
        """Ensure ``node`` is activated next tick even without mail."""
        self._wakeups.add(node)

    def wake_at(self, node: int, tick: int) -> None:
        """Request activation of ``node`` at an absolute future tick.

        Implemented by re-waking each tick until the target is reached; the
        caller's ``on_node`` should check ``ctx.tick`` itself.  Provided as
        a convenience for delay-based programs.
        """
        # The engine has no timer wheel; programs re-arm themselves.  This
        # helper only validates the request.
        if tick <= self.tick:
            raise ValueError("wake_at requires a future tick")
        self._wakeups.add(node)


class Program:
    """Base class for engine programs.

    Subclasses override :meth:`on_start` (inject initial messages/wakeups)
    and :meth:`on_node` (per-node transition function).  A program signals
    completion passively: the phase ends when no messages are in flight and
    no wakeups are pending.
    """

    #: Descriptive name used in ledgers and error messages.
    name: str = "program"

    def on_start(self, ctx: Context) -> None:
        """Inject round-0 messages and wakeups."""

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        """Process one node's mail for the current tick."""
        raise NotImplementedError


class Engine:
    """Runs programs on a network and meters their cost.

    Parameters
    ----------
    network:
        The communication graph.
    strict_bits:
        Validate every payload against the O(log n)-bit budget.  On by
        default; benchmarks on large inputs may disable it for speed after
        the test suite has pinned payload sizes.
    """

    def __init__(self, network: Network, strict_bits: bool = True) -> None:
        self.network = network
        self.strict_bits = strict_bits

    def run(
        self,
        program: Program,
        max_ticks: int,
        capacity: int = 1,
        rounds_per_tick: int = 1,
        name: Optional[str] = None,
    ) -> PhaseStats:
        """Execute ``program`` to quiescence and return its metered cost.

        ``capacity`` is the per-directed-edge, per-tick message cap
        (CONGEST: 1).  ``rounds_per_tick`` is how many CONGEST rounds one
        engine tick represents; the randomized meta-round mode uses
        ``capacity == rounds_per_tick == Theta(log n)``.

        Raises :class:`RoundLimitExceededError` if the program does not
        quiesce within ``max_ticks`` ticks.
        """
        phase_name = name or program.name
        ctx = Context(self.network, self.strict_bits)
        program.on_start(ctx)

        total_messages = 0
        ticks = 0

        while ctx._outbox or ctx._wakeups:
            if ticks >= max_ticks:
                raise RoundLimitExceededError(phase_name, max_ticks)
            ticks += 1
            ctx.tick = ticks

            outbox = ctx._outbox
            wakeups = ctx._wakeups
            ctx._outbox = []
            ctx._wakeups = set()

            total_messages += len(outbox)

            # Group by recipient; enforce per-directed-edge capacity.
            inboxes: Dict[int, List[Tuple[int, object]]] = defaultdict(list)
            if capacity == 1:
                seen_edges = set()
                for src, dst, payload in outbox:
                    key = (src, dst)
                    if key in seen_edges:
                        raise ChannelCapacityError(src, dst, 2, capacity)
                    seen_edges.add(key)
                    inboxes[dst].append((src, payload))
            else:
                edge_load: Dict[Tuple[int, int], int] = defaultdict(int)
                for src, dst, payload in outbox:
                    key = (src, dst)
                    edge_load[key] += 1
                    if edge_load[key] > capacity:
                        raise ChannelCapacityError(
                            src, dst, edge_load[key], capacity
                        )
                    inboxes[dst].append((src, payload))

            # Deterministic activation order: sorted node ids; inboxes
            # sorted by sender.  Programs must not rely on this for
            # correctness, but it makes every run reproducible.
            active = sorted(set(inboxes.keys()) | wakeups)
            for node in active:
                mail = inboxes.get(node)
                if mail is None:
                    inbox: Inbox = ()
                elif len(mail) == 1:
                    inbox = (mail[0],)
                else:
                    mail.sort(key=lambda item: item[0])
                    inbox = tuple(mail)
                program.on_node(ctx, node, inbox)

        return PhaseStats(
            name=phase_name,
            rounds=ticks * rounds_per_tick,
            messages=total_messages,
            ticks=ticks,
        )


class FunctionProgram(Program):
    """Adapter turning plain functions into a :class:`Program`.

    Useful for small one-off phases and for tests::

        prog = FunctionProgram("ping", start, step)
    """

    def __init__(
        self,
        name: str,
        on_start: Callable[[Context], None],
        on_node: Callable[[Context, int, Inbox], None],
    ) -> None:
        self.name = name
        self._on_start = on_start
        self._on_node = on_node

    def on_start(self, ctx: Context) -> None:
        self._on_start(ctx)

    def on_node(self, ctx: Context, node: int, inbox: Inbox) -> None:
        self._on_node(ctx, node, inbox)
