"""Event-driven asynchronous execution of synchronous CONGEST programs.

The paper's algorithms are specified in the synchronous model, but their
*message* optimality is exactly what makes an asynchronous execution
interesting: a message-frugal algorithm pays a small synchronizer tax,
a message-heavy one drowns in it (Awerbuch's classic observation, and
the axis studied by the message-reduction / message-time-trade-off lines
of related work).  :class:`AsyncEngine` makes that a measurable axis of
the reproduction:

* every message carries a per-edge delivery delay drawn from a pluggable
  :class:`~repro.congest.schedule.Schedule` (synchronous, seeded-random,
  adversarial slow-edge, FIFO-per-edge);
* an **alpha-synchronizer** layer runs unmodified
  :class:`~repro.congest.engine.Program`s on top of the asynchronous
  event queue: payloads are tagged with the sender's pulse, receipts are
  acknowledged, a node that has all its pulse-``t`` sends acknowledged is
  *safe* for ``t`` and tells its neighbors, and a node starts pulse
  ``t + 1`` once all neighbors are safe for ``t`` — so each node's
  pulse-``t`` inbox is exactly the synchronous round-``t`` inbox, while
  different nodes may be pulses apart at any instant (out-of-order,
  bounded-skew execution);
* delivery is genuinely out of order under non-FIFO schedules: early
  arrivals are buffered per pulse, and each inbox is *resequenced* into
  the synchronous engine's canonical order (sorted by sender, per-sender
  emission order) before the program sees it.

Accounting (the load-bearing rule; see docs/architecture.md,
"Asynchronous execution"): the **main ledger is schedule-invariant** —
``run`` returns the same rounds/messages/ticks the synchronous engine
charges, because those are cost-model facts about the algorithm, not
about the network's timing.  Everything the asynchrony itself costs is
accounted *separately* in :attr:`AsyncEngine.overhead`: virtual
time-units of makespan (charged to the overhead ledger's ``rounds``
column) and ack/safe control messages (its ``messages`` column), with a
per-phase :class:`AsyncPhaseOverhead` record keeping the full breakdown.
Under the delay-0 :class:`~repro.congest.schedule.SynchronousSchedule`
the virtual clock is uniform, the execution order collapses to the
synchronous engine's, and the main ledger is bit-for-bit identical to
:class:`~repro.congest.engine.Engine`'s — pinned by the schedule-fuzzing
harness (``tests/fuzz/``) and by ``tests/congest/test_async_engine.py``.

Simplifications (documented, simulator-side): the synchronizer's safe
waves are simulated only up to the last pulse that has any payload,
wakeup or timer pending — the simulator detects quiescence globally
instead of running a distributed termination-detection layer, and idle
nodes charge one "frame" (payload + ack slots) per pulse so the virtual
clock stays uniform when delays are.  Both affect only the overhead
accounting, never the main ledger.  Long idle gaps (a ``wake_at`` far in
the future) are *fast-forwarded* whenever the schedule promises a
uniform delay (``Schedule.uniform_delay``): a gap of ``g`` pulses is
charged its exact walked cost — ``g * (3 + d)`` time units and ``g``
safe waves — in one jump, leaving every ledger and overhead record
bit-for-bit identical to the pulse-by-pulse walk (pinned by
``tests/congest/test_async_fast_forward.py``).

Fault injection: pass a :class:`~repro.congest.faults.FaultPlan` and the
engine drops crashed nodes' activations, their in-flight and addressed
payloads, and everything crossing a partitioned cut, all as pure
functions of the plan and the *global* pulse (the engine accumulates a
pulse offset across phases).  Each phase's observed injections land in a
:class:`~repro.congest.faults.FaultReport` on :attr:`AsyncEngine.fault_log`;
with no plan (or an empty one) every code path, ledger and overhead
record is bit-for-bit the fault-free engine's.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, List, Optional, Set, Tuple

from ..obs.tracer import current_tracer
from .engine import Context, FastContext, Program
from .errors import (
    ChannelCapacityError,
    RoundLimitExceededError,
    ScheduleValidationError,
)
from .faults import FaultPlan, FaultReport
from .ledger import CostLedger, EngineProfile, PhaseStats
from .network import Network
from .schedule import (
    ACK,
    PAYLOAD,
    SAFE,
    Schedule,
    SynchronousSchedule,
    validate_schedule,
)

# Event codes (first tuple slot after (time, seq)).
_EV_PAYLOAD = 0
_EV_ACK = 1
_EV_SAFE = 2
_EV_SELF_SAFE = 3


@dataclass(frozen=True)
class AsyncPhaseOverhead:
    """What one phase's asynchronous execution cost beyond the cost model.

    ``time_units``
        Virtual-clock makespan of the phase (every hop costs one unit
        plus the schedule's delay; a pulse frame is >= 3 units).
    ``pulses``
        Synchronizer pulses driven (equals the main ledger's ``ticks``).
    ``payload_messages`` / ``ack_messages`` / ``safe_messages``
        Program messages vs. the synchronizer's control traffic.  Acks
        are one per payload; safe waves cost about ``2m`` per pulse.
    ``max_skew``
        Largest observed gap (in pulses) between the most- and
        least-advanced nodes — the out-of-orderness witness.  0 under
        the delay-0 schedule; > 0 under heterogeneous delays.
    """

    name: str
    pulses: int
    time_units: int
    payload_messages: int
    ack_messages: int
    safe_messages: int
    max_skew: int

    @property
    def control_messages(self) -> int:
        return self.ack_messages + self.safe_messages


class AsyncEngine:
    """Drop-in :class:`~repro.congest.engine.Engine` with async semantics.

    Same ``run`` signature and same returned :class:`PhaseStats` (the
    cost model is schedule-invariant); the asynchrony's own costs go to
    :attr:`overhead` (a :class:`CostLedger` whose ``rounds`` column holds
    virtual time-units and whose ``messages`` column holds synchronizer
    control messages) and :attr:`overhead_log` (full per-phase records).

    Parameters mirror the synchronous engine plus ``schedule``.
    """

    def __init__(
        self,
        network: Network,
        schedule: Optional[Schedule] = None,
        strict_bits: bool = True,
        profile: bool = False,
        strict_edges: bool = True,
        faults: Optional[FaultPlan] = None,
        fast_forward: bool = True,
    ) -> None:
        if not strict_edges and strict_bits:
            raise ValueError(
                "strict_edges=False requires strict_bits=False: the "
                "audit-free FastContext drops both checks together"
            )
        self.network = network
        self.schedule = schedule if schedule is not None else SynchronousSchedule()
        validate_schedule(self.schedule, network)
        self.strict_bits = strict_bits
        self.strict_edges = strict_edges
        self.profile = profile
        #: The fault plan, normalized so an *empty* plan is no plan at
        #: all — the no-fault path must be bit-for-bit the fault-free
        #: engine, with zero extra branches taken.
        self.faults = faults if faults is not None and not faults.empty else None
        self.fast_forward = fast_forward
        #: Idle-gap jumps taken (diagnostic; the jump is cost-exact so
        #: this never shows in any ledger).
        self.fast_forward_jumps = 0
        #: Global pulse offset: phase-local pulse t of the next phase is
        #: global pulse ``global_pulse + t``.  Fault plans are written in
        #: global coordinates so crash windows span phase boundaries.
        self.global_pulse = 0
        #: Synchronizer accounting, separate from every program ledger:
        #: per phase, ``rounds`` = virtual time-units, ``messages`` =
        #: ack + safe control messages.
        self.overhead = CostLedger(stream="async_overhead")
        #: Per-phase :class:`AsyncPhaseOverhead` records, in run order.
        self.overhead_log: List[AsyncPhaseOverhead] = []
        #: Per-phase :class:`FaultReport` records (only when a non-empty
        #: plan is installed), in run order.
        self.fault_log: List[FaultReport] = []

    def run(
        self,
        program: Program,
        max_ticks: int,
        capacity: int = 1,
        rounds_per_tick: int = 1,
        name: Optional[str] = None,
        profile: Optional[bool] = None,
    ) -> PhaseStats:
        """Execute ``program`` to quiescence under the engine's schedule.

        The returned stats are the synchronous cost model's (pinned
        bit-for-bit against :class:`~repro.congest.engine.Engine` by the
        fuzz harness); the phase's asynchronous overhead is appended to
        :attr:`overhead` / :attr:`overhead_log` as a side effect.
        """
        phase_name = name or program.name
        want_profile = self.profile if profile is None else profile
        ctx_cls = (
            Context if (self.strict_bits or self.strict_edges) else FastContext
        )
        ctx = ctx_cls(self.network, self.strict_bits)
        run = _AsyncPhase(
            self.network, self.schedule, program, ctx, max_ticks, capacity,
            phase_name, faults=self.faults, pulse_base=self.global_pulse,
            fast_forward=self.fast_forward,
        )
        # Observability: one fetch + one ``enabled`` check per phase; the
        # phase sees ``tracer=None`` on the disabled path and emits
        # nothing (the null path is pinned bit-for-bit by the baseline
        # gate — trace hooks never touch ledgers or event ordering).
        _t = current_tracer()
        tracer = _t if _t.enabled else None
        run.tracer = tracer
        start_us = tracer.now_us() if tracer is not None else 0
        try:
            stats, overhead = run.execute(rounds_per_tick, want_profile)
        finally:
            self.fast_forward_jumps += run.jumps
            # Advance global time even when the phase dies mid-flight (a
            # fault-aborted attempt must not freeze the fault clock, or a
            # crash window could never pass): the horizon reached is the
            # phase's pulse span, and equals stats.ticks on success.
            self.global_pulse += run.last_interesting
            if self.faults is not None:
                self.fault_log.append(run.fault_report)
        if tracer is not None:
            tracer.complete(
                phase_name,
                "engine.phase",
                start_us,
                {
                    "impl": "async",
                    "rounds": stats.rounds,
                    "messages": stats.messages,
                    "ticks": stats.ticks,
                    "bits": stats.bits,
                    "time_units": overhead.time_units,
                    "pulses": overhead.pulses,
                    "payload_messages": overhead.payload_messages,
                    "ack_messages": overhead.ack_messages,
                    "safe_messages": overhead.safe_messages,
                    "max_skew": overhead.max_skew,
                },
            )
        self.overhead.charge(
            PhaseStats(
                name=phase_name,
                rounds=overhead.time_units,
                messages=overhead.control_messages,
                ticks=overhead.pulses,
            )
        )
        self.overhead_log.append(overhead)
        return stats


class _AsyncPhase:
    """One phase's event-driven execution state (private to the engine)."""

    def __init__(
        self,
        net: Network,
        schedule: Schedule,
        program: Program,
        ctx: Context,
        max_ticks: int,
        capacity: int,
        phase_name: str,
        faults: Optional[FaultPlan] = None,
        pulse_base: int = 0,
        fast_forward: bool = True,
    ) -> None:
        self.net = net
        self.schedule = schedule
        self.program = program
        self.ctx = ctx
        self.max_ticks = max_ticks
        self.capacity = capacity
        self.phase_name = phase_name
        self.faults = faults
        self.pulse_base = pulse_base
        self.fast_forward = fast_forward
        self.fault_report = FaultReport(phase=phase_name, base_pulse=pulse_base)
        self.jumps = 0
        #: Recording tracer or None (set by AsyncEngine.run; None keeps
        #: every hook below to a single identity check).
        self.tracer = None

        n = net.n
        self.neighbors = net.neighbors
        self.deg = [len(net.neighbors[v]) for v in range(n)]
        #: Last pulse each node has entered (0 = the on_start frame).
        self.pulse = [0] * n
        #: Entry time of each node's current pulse (virtual clock).
        self.entered_at = [0] * n
        #: node -> target pulse -> [(sender, emit_seq, payload), ...].
        self.mailbox: List[Dict[int, List[Tuple[int, int, object]]]] = [
            {} for _ in range(n)
        ]
        #: node -> pulses with a pending ``wake`` activation.
        self.wake_pending: List[Set[int]] = [set() for _ in range(n)]
        #: pulse -> nodes with a ``wake_at`` timer (global wheel).
        self.timers: Dict[int, Set[int]] = {}
        #: node -> pulse -> payloads sent in that pulse, not yet acked.
        self.unacked: List[Dict[int, int]] = [{} for _ in range(n)]
        #: node -> pulse -> neighbor safes received for that pulse.
        self.safe_cnt: List[Dict[int, int]] = [{} for _ in range(n)]
        #: Pulses for which each node already emitted (or stalled) its
        #: safe wave.  A node can become safe for pulse t+1 *before*
        #: pulse t (it enters t+1 on its neighbors' safes, not its own,
        #: and an idle t+1 needs no acks while t may still wait on some),
        #: so this is a per-pulse set, not a high-water mark.
        self.safe_emitted: List[Set[int]] = [set() for _ in range(n)]
        #: Last pulse any payload/wakeup/timer targets ("interesting").
        self.last_interesting = 0
        #: Nodes whose gate is open but whose next pulse exceeds
        #: ``last_interesting`` (they re-check when it rises).
        self.li_waiters: Set[int] = set()
        #: pulse -> nodes that became safe while the run looked finished
        #: (their safe wave is released if the horizon later extends).
        self.stalled_safe: Dict[int, List[int]] = {}
        #: FIFO clamp: directed edge -> last payload arrival time.
        self.fifo_last: Dict[Tuple[int, int], int] = {}
        #: Undelivered-work counters (fast-forward preconditions): total
        #: buffered mailbox entries and distinct pending wake pulses.
        self.mail_total = 0
        self.wake_total = 0
        self.two_m = sum(self.deg)

        self.heap: List[tuple] = []
        self.event_seq = 0
        self.emit_seq = 0
        #: target pulse -> payloads delivered into it (peak_in_flight).
        self.in_flight: Dict[int, int] = {}
        self.live_pulses: Set[int] = set()
        self.payload_msgs = 0
        self.ack_msgs = 0
        self.safe_msgs = 0
        self.activations = 0
        self.clock = 0
        #: Skew tracking: population count per pulse + running min.
        self.pulse_pop: Dict[int, int] = {0: n}
        self.min_pulse = 0
        self.max_pulse = 0
        self.max_skew = 0

        #: Gate-open (pulse, node) entries awaiting execution at the
        #: current timestamp, plus a membership set for dedup.
        self.ready: List[Tuple[int, int]] = []
        self.ready_set: Set[int] = set()

    # -- event helpers --------------------------------------------------
    def _push(self, time: int, payload: tuple) -> None:
        self.event_seq += 1
        heappush(self.heap, (time, self.event_seq) + payload)

    def _raise_horizon(self, target_pulse: int, now: int) -> None:
        """Extend the last interesting pulse; release stalled machinery."""
        if target_pulse <= self.last_interesting:
            return
        self.last_interesting = target_pulse
        if self.stalled_safe:
            for t in sorted(self.stalled_safe):
                if t + 1 > self.last_interesting:
                    continue
                for u in self.stalled_safe.pop(t):
                    self._fan_out_safe(u, t, now)
        if self.li_waiters:
            for v in sorted(self.li_waiters):
                self._try_queue(v)

    # -- the synchronizer protocol --------------------------------------
    def _fan_out_safe(self, u: int, t: int, now: int) -> None:
        schedule_delay = self.schedule.delay
        faults = self.faults
        for nb in self.neighbors[u]:
            if faults is not None and faults.edge_down(
                u, nb, self.pulse_base + t + 1
            ):
                # The safe wave crossing a partitioned cut is lost; the
                # far side's pulse gate stays shut until the cut heals or
                # the phase quiesces early (both tainting the run).
                self.fault_report.dropped_control += 1
                if self.tracer is not None:
                    self.tracer.instant(
                        "control_dropped",
                        "fault",
                        {"src": u, "dst": nb, "pulse": self.pulse_base + t + 1},
                    )
                continue
            self._push(now + 1 + schedule_delay(u, nb, t, SAFE), (_EV_SAFE, nb, t))
        self.safe_msgs += len(self.neighbors[u])

    def _become_safe(self, u: int, t: int, now: int) -> None:
        if t in self.safe_emitted[u]:
            return
        self.safe_emitted[u].add(t)
        if t + 1 > self.last_interesting:
            # The run looks over beyond pulse t; withhold the safe wave
            # (released by _raise_horizon if more work appears).
            self.stalled_safe.setdefault(t, []).append(u)
            return
        self._fan_out_safe(u, t, now)

    def _try_queue(self, v: int) -> None:
        """Queue v's next pulse entry if its gate is open."""
        if v in self.ready_set:
            return
        t = self.pulse[v] + 1
        if self.deg[v] and self.safe_cnt[v].get(t - 1, 0) < self.deg[v]:
            return
        if t > self.last_interesting:
            self.li_waiters.add(v)
            return
        self.li_waiters.discard(v)
        self.ready_set.add(v)
        self.ready.append((t, v))

    # -- program-side steps ---------------------------------------------
    def _harvest(self, sender_pulse: int, now: int) -> int:
        """Convert one activation's context effects into timed events."""
        ctx = self.ctx
        sent = ctx._sent
        target = sender_pulse + 1
        if sent:
            schedule_delay = self.schedule.delay
            fifo = self.schedule.fifo
            fifo_last = self.fifo_last
            for dst in ctx._touched:
                box = ctx._mail[dst]
                for src, payload in box:
                    self.emit_seq += 1
                    arrival = now + 1 + schedule_delay(src, dst, sender_pulse, PAYLOAD)
                    if arrival < now + 1:
                        # Runtime backstop behind validate_schedule's
                        # construction probe: an event in the past would
                        # silently corrupt the queue.
                        raise ScheduleValidationError(
                            self.schedule, src, dst, sender_pulse, PAYLOAD,
                            f"returned negative delay {arrival - now - 1}",
                        )
                    if fifo:
                        key = (src, dst)
                        prev = fifo_last.get(key, 0)
                        if arrival < prev:
                            arrival = prev
                        fifo_last[key] = arrival
                    self._push(
                        arrival,
                        (_EV_PAYLOAD, dst, target, src, self.emit_seq, payload),
                    )
                    bucket = self.unacked[src]
                    if sender_pulse in self.safe_emitted[src]:
                        raise RuntimeError(
                            "async engine: node "
                            f"{src} gained a pulse-{sender_pulse} send after "
                            "being declared safe (sends on behalf of other "
                            "nodes are only legal in on_start)"
                        )
                    bucket[sender_pulse] = bucket.get(sender_pulse, 0) + 1
                box.clear()
            ctx._touched.clear()
            ctx._sent = 0
            self.payload_msgs += sent
            self._raise_horizon(target, now)
        if ctx._wakeups:
            for w in ctx._wakeups:
                if self.pulse[w] > sender_pulse:
                    raise RuntimeError(
                        f"async engine: wake({w}) for pulse {target} arrived "
                        f"after the node already passed it (cross-node wakes "
                        "are only legal in on_start)"
                    )
                bucket = self.wake_pending[w]
                if target not in bucket:
                    bucket.add(target)
                    self.wake_total += 1
            ctx._wakeups.clear()
            self._raise_horizon(target, now)
        if ctx._timers:
            for t, bucket in ctx._timers.items():
                for w in bucket:
                    if self.pulse[w] >= t:
                        raise RuntimeError(
                            f"async engine: wake_at({w}, {t}) arrived after "
                            "the node already passed that pulse"
                        )
                wheel = self.timers.get(t)
                if wheel is None:
                    self.timers[t] = set(bucket)
                else:
                    wheel |= bucket
                self._raise_horizon(t, now)
            ctx._timers.clear()
        return sent

    def _build_inbox(self, v: int, t: int) -> tuple:
        mail = self.mailbox[v].pop(t, None)
        if not mail:
            return ()
        self.mail_total -= len(mail)
        # Canonical resequencing: the synchronous engine delivers each
        # inbox sorted (stably) by sender, which preserves each sender's
        # emission order — exactly (sender, emit_seq) order here, no
        # matter how the schedule reordered arrivals.
        mail.sort(key=_mail_key)
        capacity = self.capacity
        prev = -1
        run = 0
        for sender, _seq, _payload in mail:
            if sender == prev:
                run += 1
                if run > capacity:
                    raise ChannelCapacityError(sender, v, run, capacity)
            else:
                prev = sender
                run = 1
        return tuple((sender, payload) for sender, _seq, payload in mail)

    def _enter(self, v: int, t: int, now: int) -> None:
        """Node v starts pulse t (executing its activation if it has one)."""
        if t > self.max_ticks:
            raise RoundLimitExceededError(self.phase_name, self.max_ticks)
        prev = self.pulse[v]
        self.pulse[v] = t
        self.entered_at[v] = now
        self.safe_cnt[v].pop(prev - 1, None)
        # Skew bookkeeping: move v from pulse ``prev`` to ``t``.  The
        # max observed skew is sampled at virtual-time boundaries (in
        # ``execute``), not here — entries *within* one timestamp are
        # simultaneous, so mid-batch gaps are not real skew.
        pop = self.pulse_pop
        pop[t] = pop.get(t, 0) + 1
        left = pop[prev] - 1
        if left:
            pop[prev] = left
        else:
            del pop[prev]
            if prev == self.min_pulse:
                self.min_pulse = min(pop)
        if t > self.max_pulse:
            self.max_pulse = t

        timer_bucket = self.timers.get(t)
        timer_hit = timer_bucket is not None and v in timer_bucket
        if timer_hit:
            timer_bucket.discard(v)
            if not timer_bucket:
                del self.timers[t]
        woken = t in self.wake_pending[v]
        if woken:
            self.wake_pending[v].discard(t)
            self.wake_total -= 1
        inbox = self._build_inbox(v, t)

        sent = 0
        if self.faults is not None and not self.faults.alive(
            v, self.pulse_base + t
        ):
            # A crashed node never activates: wakeups and timers landing
            # on its dead pulses die with it (payloads were already
            # dropped at delivery).  Its pulse still walks forward via
            # the SELF_SAFE below — the simulator's stand-in for
            # neighbors whose failure detectors presume it dead rather
            # than gating on it forever.
            report = self.fault_report
            if inbox or woken or timer_hit:
                report.suppressed_activations += 1
                if self.tracer is not None:
                    self.tracer.instant(
                        "activation_suppressed",
                        "fault",
                        {"node": v, "pulse": self.pulse_base + t},
                    )
            if woken:
                report.dropped_wakeups += 1
            if timer_hit:
                report.dropped_timers += 1
        elif inbox or woken or timer_hit:
            self.activations += 1
            self.live_pulses.add(t)
            ctx = self.ctx
            ctx.tick = t
            self.program.on_node(ctx, v, inbox)
            sent = self._harvest(t, now)
        if sent == 0:
            # Nothing to wait on, but the pulse frame still spans the
            # payload + ack slots so the virtual clock stays uniform
            # under uniform delays (see module docstring).
            self._push(now + 2, (_EV_SELF_SAFE, v, t))
        self._try_queue(v)

    def _maybe_fast_forward(self) -> None:
        """Jump over an all-idle pulse gap to the next timer, cost-exactly.

        Preconditions (checked here; the caller guarantees the heap is
        empty): every node is gate-open for the same next pulse ``t``,
        nothing is buffered or pending anywhere (no mail, no wakes, no
        stalled safes, no horizon waiters), the only future work is a
        ``wake_at`` timer at ``T > t``, and the schedule promises one
        uniform delay ``d``.  Walking that gap would execute ``T - t``
        identical idle frames: each enters a pulse, self-safes at +2 and
        fans safes arriving at +3+d — so the walk costs exactly
        ``(T - t) * (3 + d)`` time units and ``(T - t)`` full safe waves
        (``2m`` messages each), and leaves every node about to enter
        ``T``.  The jump applies that closed form and reproduces the
        walk's state verbatim: stats, overhead records and skew are
        bit-for-bit identical (pinned by the fast-forward parity tests).

        With a fault plan installed, crashes and message loss are inert
        across idle frames (no activations, no payloads; zombie pulses
        walk identically), but a partition drops safe waves — which
        *stalls* rather than walks — so any plan with partitions
        disables the jump.
        """
        ready = self.ready
        n = self.net.n
        if len(ready) != n or not self.timers:
            return
        if self.mail_total or self.wake_total:
            return
        if self.stalled_safe or self.li_waiters:
            return
        if self.faults is not None and self.faults.partitions:
            return
        t = ready[0][0]
        for entry in ready:
            if entry[0] != t:
                return
        next_timer = min(self.timers)
        if next_timer <= t:
            return
        d = self.schedule.uniform_delay()
        if d is None:
            return
        gap = next_timer - t
        self.clock += gap * (3 + d)
        self.safe_msgs += gap * self.two_m
        deg = self.deg
        at = next_timer - 1
        for v in range(n):
            self.pulse[v] = at
            self.safe_cnt[v] = {at: deg[v]}
        self.pulse_pop = {at: n}
        self.min_pulse = at
        self.max_pulse = at
        self.ready = [(next_timer, v) for v in range(n)]
        self.ready_set = set(range(n))
        self.jumps += 1
        if self.tracer is not None:
            self.tracer.instant(
                "fast_forward",
                "engine.ff",
                {
                    "phase": self.phase_name,
                    "from_pulse": t,
                    "to_pulse": next_timer,
                    "skipped": gap,
                },
            )

    # -- main loop -------------------------------------------------------
    def execute(
        self, rounds_per_tick: int, want_profile: bool
    ) -> Tuple[PhaseStats, AsyncPhaseOverhead]:
        ctx = self.ctx
        ctx.tick = 0
        self.program.on_start(ctx)
        self._harvest(0, 0)
        n = self.net.n
        for u in range(n):
            if not self.unacked[u].get(0):
                self._push(2, (_EV_SELF_SAFE, u, 0))
        for u in range(n):
            self._try_queue(u)

        heap = self.heap
        while heap or self.ready:
            # Execute every gate-open entry at the current timestamp in
            # deterministic (pulse, node) order before advancing the
            # clock; executing may open further gates at the same
            # timestamp (horizon raises, banked safes), so drain fully.
            if self.ready:
                if self.fast_forward and not heap:
                    self._maybe_fast_forward()
                batch = self.ready
                self.ready = []
                batch.sort()
                for t, v in batch:
                    self.ready_set.discard(v)
                    self._enter(v, t, self.clock)
                continue
            now = heap[0][0]
            self.clock = now
            skew = self.max_pulse - self.min_pulse
            if skew > self.max_skew:
                self.max_skew = skew
            while heap and heap[0][0] == now:
                event = heappop(heap)
                code = event[2]
                if code == _EV_PAYLOAD:
                    _t, _s, _c, dst, tpulse, src, eseq, payload = event
                    faults = self.faults
                    if faults is not None:
                        gp = self.pulse_base + tpulse
                        if (
                            not faults.alive(dst, gp)
                            or not faults.alive(src, gp)
                            or faults.edge_down(src, dst, gp)
                            or faults.lost(src, dst, gp)
                        ):
                            # Dropped delivery — dead receiver, sender
                            # crashed with the message in flight, cut
                            # edge, or seeded loss.  The payload dies,
                            # but the sender gets a transport-level
                            # delivery timeout in the ack's place so the
                            # synchronizer's unacked count always drains
                            # (faults taint runs; they never hang them).
                            self.fault_report.dropped_payloads += 1
                            self.fault_report.delivery_timeouts += 1
                            if self.tracer is not None:
                                self.tracer.instant(
                                    "payload_dropped",
                                    "fault",
                                    {"src": src, "dst": dst, "pulse": gp},
                                )
                            self._push(
                                now + 1
                                + self.schedule.delay(dst, src, tpulse - 1, ACK),
                                (_EV_ACK, src, tpulse - 1),
                            )
                            continue
                    self.mailbox[dst].setdefault(tpulse, []).append(
                        (src, eseq, payload)
                    )
                    self.mail_total += 1
                    self.in_flight[tpulse] = self.in_flight.get(tpulse, 0) + 1
                    self.ack_msgs += 1
                    self._push(
                        now + 1 + self.schedule.delay(dst, src, tpulse - 1, ACK),
                        (_EV_ACK, src, tpulse - 1),
                    )
                elif code == _EV_ACK:
                    _t, _s, _c, u, p = event
                    bucket = self.unacked[u]
                    left = bucket[p] - 1
                    if left:
                        bucket[p] = left
                    else:
                        del bucket[p]
                        self._become_safe(u, p, now)
                elif code == _EV_SAFE:
                    _t, _s, _c, dst, p = event
                    cnt = self.safe_cnt[dst]
                    cnt[p] = cnt.get(p, 0) + 1
                    if cnt[p] == self.deg[dst] and self.pulse[dst] == p:
                        self._try_queue(dst)
                else:  # _EV_SELF_SAFE
                    _t, _s, _c, u, p = event
                    if not self.unacked[u].get(p):
                        self._become_safe(u, p, now)

        ticks = self.last_interesting
        if self.tracer is not None:
            # Per-pulse delivered-payload counters (the async twin of the
            # sync engines' per-tick series; emitted at phase end since
            # pulses interleave across nodes during the run).
            for p in sorted(self.in_flight):
                self.tracer.counter(
                    self.phase_name,
                    {"pulse": p, "messages": self.in_flight[p]},
                )
        stats = PhaseStats(
            name=self.phase_name,
            rounds=ticks * rounds_per_tick,
            messages=self.payload_msgs,
            ticks=ticks,
            bits=ctx._bits,
            profile=(
                EngineProfile(
                    ticks=len(self.live_pulses),
                    peak_in_flight=max(self.in_flight.values(), default=0),
                    activations=self.activations,
                    idle_ticks=ticks - len(self.live_pulses),
                )
                if want_profile
                else None
            ),
        )
        overhead = AsyncPhaseOverhead(
            name=self.phase_name,
            pulses=ticks,
            time_units=self.clock,
            payload_messages=self.payload_msgs,
            ack_messages=self.ack_msgs,
            safe_messages=self.safe_msgs,
            max_skew=self.max_skew,
        )
        return stats, overhead


def _mail_key(entry: Tuple[int, int, object]) -> Tuple[int, int]:
    return (entry[0], entry[1])
