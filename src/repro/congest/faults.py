"""Seeded, replayable fault plans for the asynchronous engine.

A :class:`FaultPlan` describes node crashes (with optional recovery),
per-edge message loss and partition-then-heal events, all in *global
pulse* coordinates — the :class:`~repro.congest.async_engine.AsyncEngine`
keeps a running pulse offset across phases, so "node 3 is down for pulses
[20, 60)" means the same thing no matter how the workload splits into
engine phases.

Every predicate is a **pure function** of the plan's construction
parameters and the queried coordinates (``node``/``src``/``dst`` and the
global pulse): no stream state, no draw order.  That is the same purity
contract :mod:`repro.congest.schedule` keeps, and for the same reason —
it makes every faulty run replayable from a ``(graph_seed,
schedule_seed, fault_seed)`` triple alone (the fuzz harness's fault
axis depends on it).

What faults mean in the simulator (see docs/architecture.md, "Fault
model"):

* a **crashed** node stops activating — pending wakeups and timers at its
  dead pulses are dropped, payloads addressed to it are dropped, and
  payloads it had in flight when it crashed are dropped too.  The
  synchronizer keeps walking the dead node's pulse forward (its safe
  waves still flow), modelling neighbors whose failure detectors presume
  it dead rather than blocking on it forever;
* **message loss** drops payloads per ``(src, dst, pulse)`` coordinate
  (all-or-nothing per delivery).  The sender receives a transport-level
  delivery timeout in place of the ack, so the synchronizer never
  deadlocks on a lost message — the loss is *observable* (it taints the
  run) but never hangs it;
* a **partition** takes down every edge crossing the cut: payloads and
  safe waves crossing it are dropped, which stalls the synchronizer on
  both sides until the cut heals or the phase quiesces early.

Crash/loss/partition events never touch the main cost ledger directly;
their observable effect is recorded per phase in a :class:`FaultReport`
(``AsyncEngine.fault_log``), which the recovery runtime
(:mod:`repro.runtime.recovery`) uses to decide whether an attempt was
tainted and must be recomputed.  Byzantine behavior and message
*corruption* are deliberately out of scope — a message either arrives
intact or not at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from .schedule import _mix


@dataclass(frozen=True)
class CrashEvent:
    """Node ``node`` is down for global pulses ``[at, recover_at)``.

    ``recover_at=None`` means the node never recovers.  ``at`` must be
    >= 1: pulse 0 is the ``on_start`` setup frame, which belongs to the
    workload's initialization, not to the simulated network.
    """

    node: int
    at: int
    recover_at: Optional[int] = None

    def __post_init__(self) -> None:
        if self.at < 1:
            raise ValueError("crash pulse must be >= 1 (pulse 0 is on_start)")
        if self.recover_at is not None and self.recover_at <= self.at:
            raise ValueError("recover_at must be > at (or None: no recovery)")


@dataclass(frozen=True)
class MessageLoss:
    """Payloads on any edge are lost with probability ``rate``.

    The decision is a pure hash of ``(seed, src, dst, pulse)`` — each
    directed delivery coordinate is lost or not, identically on every
    replay.  Active for global pulses ``[start, end)`` (``end=None`` =
    forever).  Only payloads are lost; the synchronizer's control
    traffic models the transport layer itself and stays reliable.
    """

    rate: float
    seed: int = 0
    start: int = 1
    end: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("loss rate must be in [0, 1]")
        if self.start < 1:
            raise ValueError("loss start pulse must be >= 1")
        if self.end is not None and self.end <= self.start:
            raise ValueError("loss end must be > start (or None: forever)")
        object.__setattr__(self, "_threshold", int(self.rate * (1 << 32)))

    def lost(self, src: int, dst: int, pulse: int) -> bool:
        if pulse < self.start or (self.end is not None and pulse >= self.end):
            return False
        draw = (_mix(self.seed, src, dst, pulse, 11) >> 16) % (1 << 32)
        return draw < self._threshold  # type: ignore[attr-defined]


@dataclass(frozen=True)
class PartitionEvent:
    """Every edge crossing ``side`` is down for pulses ``[at, heal_at)``.

    ``side`` is one shore of the cut; ``heal_at=None`` means the
    partition never heals.  While down, the cut drops payloads *and*
    safe waves, so the synchronizer genuinely stalls across it — the
    honest asynchronous consequence of a partition.
    """

    at: int
    heal_at: Optional[int]
    side: FrozenSet[int]

    def __post_init__(self) -> None:
        if self.at < 1:
            raise ValueError("partition pulse must be >= 1")
        if self.heal_at is not None and self.heal_at <= self.at:
            raise ValueError("heal_at must be > at (or None: no healing)")
        if not self.side:
            raise ValueError("partition side must be non-empty")
        object.__setattr__(self, "side", frozenset(self.side))

    def down(self, u: int, v: int, pulse: int) -> bool:
        if pulse < self.at or (self.heal_at is not None and pulse >= self.heal_at):
            return False
        return (u in self.side) != (v in self.side)


@dataclass(frozen=True)
class FaultPlan:
    """A replayable set of fault events, queried in global pulse time.

    The plan is inert data: the async engine queries :meth:`alive`,
    :meth:`lost` and :meth:`edge_down` at well-defined coordinates, and
    equal plans always answer identically.  ``FaultPlan()`` (no events)
    is indistinguishable from no plan at all — the engine normalizes it
    away so the no-fault path stays bit-for-bit the fault-free engine.
    """

    crashes: Tuple[CrashEvent, ...] = ()
    losses: Tuple[MessageLoss, ...] = ()
    partitions: Tuple[PartitionEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "losses", tuple(self.losses))
        object.__setattr__(self, "partitions", tuple(self.partitions))
        down: Dict[int, List[Tuple[int, Optional[int]]]] = {}
        for ev in self.crashes:
            down.setdefault(ev.node, []).append((ev.at, ev.recover_at))
        object.__setattr__(
            self,
            "_down",
            {node: tuple(sorted(spans, key=lambda s: s[0]))
             for node, spans in down.items()},
        )

    # -- queries (pure) --------------------------------------------------
    @property
    def empty(self) -> bool:
        return not (self.crashes or self.losses or self.partitions)

    def alive(self, node: int, pulse: int) -> bool:
        spans = self._down.get(node)  # type: ignore[attr-defined]
        if spans is None:
            return True
        for at, recover_at in spans:
            if pulse >= at and (recover_at is None or pulse < recover_at):
                return False
        return True

    def lost(self, src: int, dst: int, pulse: int) -> bool:
        for loss in self.losses:
            if loss.lost(src, dst, pulse):
                return True
        return False

    def edge_down(self, u: int, v: int, pulse: int) -> bool:
        for part in self.partitions:
            if part.down(u, v, pulse):
                return True
        return False

    def crashed_nodes(self) -> FrozenSet[int]:
        return frozenset(ev.node for ev in self.crashes)

    @property
    def clear_after(self) -> Optional[int]:
        """First global pulse from which the plan injects nothing, ever.

        ``None`` when some event is permanent (no recovery/heal/end).  A
        plan with a finite ``clear_after`` is *recoverable*: the recovery
        driver is guaranteed a fault-free attempt once the global clock
        passes it.
        """
        clear = 1
        for ev in self.crashes:
            if ev.recover_at is None:
                return None
            clear = max(clear, ev.recover_at)
        for loss in self.losses:
            if loss.end is None:
                return None
            clear = max(clear, loss.end)
        for part in self.partitions:
            if part.heal_at is None:
                return None
            clear = max(clear, part.heal_at)
        return clear

    # -- seeded construction (the fuzzer/bench entry) --------------------
    @classmethod
    def seeded(
        cls,
        seed: int,
        n: int,
        crashes: int = 1,
        recover: bool = True,
        crash_window: Tuple[int, int] = (3, 40),
        outage: Tuple[int, int] = (10, 40),
        loss_rate: float = 0.0,
        loss_window: Tuple[int, int] = (1, 60),
        partition: bool = False,
        partition_window: Tuple[int, int] = (5, 35),
    ) -> "FaultPlan":
        """Derive a plan purely from ``(seed, n)`` and the shape knobs.

        Crash victims, crash pulses and outage lengths are all hash
        draws — the same ``(seed, n, knobs)`` always yields the same
        plan, which is what makes the fuzz triple replayable.  With
        ``recover=True`` (and bounded loss/partition windows) the plan
        has a finite :attr:`clear_after`, so recovery always terminates.
        """
        if crashes < 0:
            raise ValueError("crashes must be >= 0")
        crashes = min(crashes, max(0, n - 1))  # never crash every node
        victims = sorted(range(n), key=lambda v: _mix(seed, v, 21))[:crashes]
        lo, hi = crash_window
        out_lo, out_hi = outage
        crash_events = []
        for i, node in enumerate(sorted(victims)):
            at = lo + _mix(seed, i, 22) % max(1, hi - lo + 1)
            recover_at = (
                at + out_lo + _mix(seed, i, 23) % max(1, out_hi - out_lo + 1)
                if recover else None
            )
            crash_events.append(CrashEvent(node=node, at=at, recover_at=recover_at))
        losses = ()
        if loss_rate > 0.0:
            losses = (
                MessageLoss(
                    rate=loss_rate, seed=_mix(seed, 24),
                    start=loss_window[0], end=loss_window[1],
                ),
            )
        partitions = ()
        if partition and n >= 4:
            side = frozenset(
                v for v in range(n) if _mix(seed, v, 25) % 4 == 0
            )
            if side and len(side) < n:
                partitions = (
                    PartitionEvent(
                        at=partition_window[0], heal_at=partition_window[1],
                        side=side,
                    ),
                )
        return cls(
            crashes=tuple(crash_events), losses=losses, partitions=partitions
        )


@dataclass
class FaultReport:
    """What one engine phase's fault injection actually did.

    One record per phase (``AsyncEngine.fault_log``), in run order.  All
    counters are *observations* of the plan acting on this phase's
    traffic — a phase whose report is not :attr:`affected` ran exactly
    as it would have with no plan at all, which is the signal the
    recovery driver uses to certify an attempt clean.
    """

    phase: str
    base_pulse: int = 0
    suppressed_activations: int = 0
    dropped_payloads: int = 0
    dropped_control: int = 0
    dropped_wakeups: int = 0
    dropped_timers: int = 0
    delivery_timeouts: int = 0

    @property
    def affected(self) -> bool:
        return bool(
            self.suppressed_activations
            or self.dropped_payloads
            or self.dropped_control
            or self.dropped_wakeups
            or self.dropped_timers
            or self.delivery_timeouts
        )
