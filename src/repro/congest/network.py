"""Static network topology for the CONGEST simulator.

A :class:`Network` is an immutable undirected graph with nodes ``0..n-1``.
Per the KT0 model of Awerbuch et al., every node additionally has an
arbitrary unique O(log n)-bit identifier (``uid``) which is initially known
only to itself; node programs must treat array indices as *ports* (a node
may talk to a neighbor without knowing the neighbor's uid until told).

Edge weights, when present, are positive integers in [1, poly(n)] as the
paper requires for MST / min-cut / SSSP instances.

Storage layout (the 100k-node regime): adjacency is kept in CSR form — one
flat ``array('i')`` of neighbors plus an offsets array — built in O(m)
without a global sorted-edge pass.  Everything derived from it
(``edges``, ``neighbors``, ``neighbor_sets``, ``_edge_set``, the uid
tables) is materialized lazily on first use and then cached, so a network
that is only ever walked through the CSR arrays never pays for the Python
object forms.  The lazily produced views are bit-for-bit identical to the
eager ones (sorted neighbor order, lexicographically sorted ``edges``),
which is what keeps every ledger value unchanged.
"""

from __future__ import annotations

import random
from array import array
from functools import cached_property
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .message import message_bit_limit

Edge = Tuple[int, int]

#: Reusable empty adjacency tuple (isolated nodes share one object).
_EMPTY: Tuple[int, ...] = ()


def canonical_edge(u: int, v: int) -> Edge:
    """Return the canonical (min, max) form of an undirected edge."""
    return (u, v) if u <= v else (v, u)


class Network:
    """An undirected communication graph with metered CONGEST semantics.

    Parameters
    ----------
    edges:
        Iterable of (u, v) pairs over nodes ``0..n-1``.  Self-loops and
        duplicate edges are rejected: the CONGEST model is defined on simple
        graphs.
    n:
        Number of nodes.  If omitted, inferred as ``max node + 1``.
    weights:
        Optional mapping from canonical edge to a positive integer weight.
    rng / uid_seed:
        Source of randomness for assigning the arbitrary unique node ids.
        By default uids are a seeded random permutation of
        ``[n, 2n)`` — distinct from indices, so code that confuses
        uids with indices fails loudly in tests.
    """

    def __init__(
        self,
        edges: Iterable[Edge],
        n: Optional[int] = None,
        weights: Optional[Dict[Edge, int]] = None,
        uid_seed: int = 0x5EED,
    ) -> None:
        ends = array("i")
        extend = ends.extend
        max_node = -1
        min_node = 0
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop at node {u} is not allowed")
            if u > v:
                u, v = v, u
            extend((u, v))
            if v > max_node:
                max_node = v
            if u < min_node:
                min_node = u
        if min_node < 0:
            raise ValueError(f"negative node id {min_node} in edge list")
        m = len(ends) >> 1
        if n is None:
            n = max_node + 1
        if n <= 0:
            raise ValueError("network must have at least one node")
        if max_node >= n:
            raise ValueError(f"edge endpoint {max_node} >= n = {n}")

        self.n: int = n
        self.m: int = m
        self._uid_seed: int = uid_seed

        # CSR construction: degree count, prefix offsets, bucket fill, then
        # an in-place sort of each node's slice.  Per-slice sorting keeps
        # the classic "neighbors in ascending order" contract (activation
        # and send order all over the codebase depend on it) while avoiding
        # any global O(m log m) pass over the edge list.
        degree_count = [0] * n
        for w in ends:
            degree_count[w] += 1
        itemsize = array("i").itemsize
        offsets = array("i", bytes(itemsize * (n + 1)))
        total = 0
        for v in range(n):
            offsets[v] = total
            total += degree_count[v]
        offsets[n] = total
        adj = array("i", bytes(itemsize * total))
        cursor = offsets[:n]  # running fill positions, one per node
        it = iter(ends)
        for u in it:
            v = next(it)
            cu = cursor[u]
            adj[cu] = v
            cursor[u] = cu + 1
            cv = cursor[v]
            adj[cv] = u
            cursor[v] = cv + 1
        for v in range(n):
            start, end = offsets[v], offsets[v + 1]
            if end - start > 1:
                seg = sorted(adj[start:end])
                prev = -1
                for w in seg:
                    if w == prev:
                        raise ValueError(
                            f"duplicate edge {canonical_edge(v, w)}"
                        )
                    prev = w
                adj[start:end] = array("i", seg)
        self._offsets: array = offsets
        self._adj: array = adj

        if weights is not None:
            normalized: Dict[Edge, int] = {}
            for (u, v), w in weights.items():
                e = canonical_edge(u, v)
                if not self.has_edge(*e):
                    raise ValueError(f"weight given for non-edge {e}")
                if not isinstance(w, int) or w < 1:
                    raise ValueError(
                        f"edge weight must be a positive integer, got {w!r}"
                    )
                normalized[e] = w
            if len(normalized) < m:
                missing = self._edge_set - normalized.keys()
                raise ValueError(
                    f"missing weights for edges: {sorted(missing)[:5]}"
                )
            self.weights: Optional[Dict[Edge, int]] = normalized
        else:
            self.weights = None

        self.message_bits: int = message_bit_limit(n)

    # ------------------------------------------------------------------
    # Lazily materialized views (identical to the former eager forms)
    # ------------------------------------------------------------------
    @cached_property
    def edges(self) -> Tuple[Edge, ...]:
        """All edges as canonical (min, max) tuples, lexicographically sorted."""
        adj = self._adj
        offsets = self._offsets
        out: List[Edge] = []
        append = out.append
        for u in range(self.n):
            for k in range(offsets[u], offsets[u + 1]):
                v = adj[k]
                if v > u:
                    append((u, v))
        return tuple(out)

    @cached_property
    def neighbors(self) -> Tuple[Tuple[int, ...], ...]:
        """Per-node neighbor tuples in ascending order."""
        adj = self._adj
        offsets = self._offsets
        return tuple(
            tuple(adj[offsets[v]:offsets[v + 1]]) if degree else _EMPTY
            for v, degree in enumerate(self.degrees())
        )

    @cached_property
    def neighbor_sets(self) -> Tuple[frozenset, ...]:
        """Per-node neighbor sets: O(1) membership in the send hot path."""
        adj = self._adj
        offsets = self._offsets
        return tuple(
            frozenset(adj[offsets[v]:offsets[v + 1]])
            for v in range(self.n)
        )

    @cached_property
    def _edge_set(self) -> frozenset:
        return frozenset(self.edges)

    @cached_property
    def array_views(self) -> "NetworkArrays":
        """Flat numpy views of the topology for the array-native engine.

        Derived once from the same CSR storage the scalar paths walk, so
        both engines see byte-identical structure.  See
        :class:`NetworkArrays` for the exact layout.
        """
        import numpy as np

        offsets = np.frombuffer(self._offsets, dtype=np.intc).astype(np.int64)
        adj = (
            np.frombuffer(self._adj, dtype=np.intc).astype(np.int64)
            if len(self._adj)
            else np.empty(0, dtype=np.int64)
        )
        degrees = np.diff(offsets)
        src_of_slot = np.repeat(np.arange(self.n, dtype=np.int64), degrees)
        # Directed-edge keys src * n + dst for every CSR slot.  Slots are
        # grouped by ascending src and each group lists dst ascending, so
        # the key array is already sorted — searchsorted gives O(log m)
        # membership without a hash table.
        edge_keys = src_of_slot * self.n + adj
        uid = np.array(self.uid, dtype=np.int64)
        return NetworkArrays(
            offsets=offsets,
            adj=adj,
            degrees=degrees,
            src_of_slot=src_of_slot,
            edge_keys=edge_keys,
            uid=uid,
        )

    @cached_property
    def uid(self) -> Tuple[int, ...]:
        """KT0 unique ids: a seeded random permutation of [n, 2n)."""
        rng = random.Random(self._uid_seed)
        uids = list(range(self.n, 2 * self.n))
        rng.shuffle(uids)
        return tuple(uids)

    @cached_property
    def _uid_to_node(self) -> Dict[int, int]:
        return {u: i for i, u in enumerate(self.uid)}

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------
    def adjacency_csr(self) -> Tuple[array, array]:
        """The raw CSR arrays ``(offsets, adjacency)``.

        ``adjacency[offsets[v]:offsets[v + 1]]`` lists v's neighbors in
        ascending order.  Exposed for array-friendly bulk consumers; the
        arrays are the network's own storage and must not be mutated.
        """
        return self._offsets, self._adj

    def has_edge(self, u: int, v: int) -> bool:
        """True iff (u, v) is an edge of the network (one hash lookup)."""
        return 0 <= u < self.n and v in self.neighbor_sets[u]

    def degree(self, v: int) -> int:
        """Degree of node ``v``."""
        if v < 0:
            v += self.n
        if not 0 <= v < self.n:
            raise IndexError(f"node {v} out of range")
        return self._offsets[v + 1] - self._offsets[v]

    def degrees(self) -> List[int]:
        """All node degrees (one O(n) pass over the offsets array)."""
        offsets = self._offsets
        return [offsets[v + 1] - offsets[v] for v in range(self.n)]

    def weight(self, u: int, v: int) -> int:
        """Weight of edge (u, v); 1 if the network is unweighted."""
        if self.weights is None:
            return 1
        return self.weights[canonical_edge(u, v)]

    def node_of_uid(self, uid: int) -> int:
        """Inverse of ``self.uid`` (orchestrator convenience, not node-local)."""
        return self._uid_to_node[uid]

    def total_weight(self) -> int:
        """Sum of all edge weights."""
        if self.weights is None:
            return self.m
        return sum(self.weights.values())

    # ------------------------------------------------------------------
    # Global structure (orchestrator-side helpers; used for validation,
    # test oracles, and workload setup -- never inside node programs)
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """True iff the network is connected (DFS from node 0 over the CSR)."""
        if self.n == 1:
            return True
        adj = self._adj
        offsets = self._offsets
        seen = bytearray(self.n)
        seen[0] = 1
        stack = [0]
        count = 1
        while stack:
            u = stack.pop()
            for k in range(offsets[u], offsets[u + 1]):
                v = adj[k]
                if not seen[v]:
                    seen[v] = 1
                    count += 1
                    stack.append(v)
        return count == self.n

    def bfs_depths(self, root: int) -> List[int]:
        """Hop distances from ``root`` (-1 for unreachable nodes)."""
        adj = self._adj
        offsets = self._offsets
        depth = [-1] * self.n
        depth[root] = 0
        frontier = [root]
        while frontier:
            nxt = []
            append = nxt.append
            for u in frontier:
                du = depth[u] + 1
                for k in range(offsets[u], offsets[u + 1]):
                    v = adj[k]
                    if depth[v] < 0:
                        depth[v] = du
                        append(v)
            frontier = nxt
        return depth

    def eccentricity(self, root: int) -> int:
        """Maximum hop distance from ``root`` to any reachable node."""
        return max(self.bfs_depths(root))

    def diameter_estimate(self) -> int:
        """A 2-approximation of the hop diameter via double-BFS.

        This is the same estimate distributed algorithms themselves can
        compute in O(D) rounds, so using it for thresholds (e.g. the
        ``|P_i| < D`` test of Algorithm 1) is model-faithful.
        """
        ecc0 = self.eccentricity(0)
        depths = self.bfs_depths(0)
        far = max(range(self.n), key=lambda v: depths[v])
        return max(ecc0, self.eccentricity(far), 1)

    def exact_diameter(self) -> int:
        """Exact hop diameter (O(nm); test/benchmark oracle only)."""
        best = 0
        for v in range(self.n):
            ecc = self.eccentricity(v)
            if ecc > best:
                best = ecc
        return max(best, 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "weighted" if self.weights is not None else "unweighted"
        return f"Network(n={self.n}, m={self.m}, {kind})"


class NetworkArrays:
    """Numpy mirrors of a :class:`Network`'s CSR topology.

    ``adj[offsets[v]:offsets[v + 1]]`` lists v's neighbors ascending (the
    same slots as ``adjacency_csr``), ``src_of_slot[k]`` is the node whose
    slice slot ``k`` belongs to, and ``edge_keys`` packs each slot's
    directed edge as ``src * n + dst`` in globally ascending order (so
    ``np.searchsorted`` is an exact edge-membership test).  All arrays are
    int64 and must be treated as immutable.
    """

    __slots__ = ("offsets", "adj", "degrees", "src_of_slot", "edge_keys", "uid")

    def __init__(self, offsets, adj, degrees, src_of_slot, edge_keys, uid) -> None:
        self.offsets = offsets
        self.adj = adj
        self.degrees = degrees
        self.src_of_slot = src_of_slot
        self.edge_keys = edge_keys
        self.uid = uid


def network_from_networkx(graph, uid_seed: int = 0x5EED) -> Network:
    """Build a :class:`Network` from a networkx graph.

    Node labels must be ``0..n-1``.  If every edge carries an integer
    ``weight`` attribute it becomes the network's weight function.
    """
    n = graph.number_of_nodes()
    if set(graph.nodes()) != set(range(n)):
        raise ValueError("networkx graph must be labeled 0..n-1")
    edges = [canonical_edge(u, v) for u, v in graph.edges()]
    weights = None
    if all("weight" in data for _, _, data in graph.edges(data=True)) and n > 0 and graph.number_of_edges() > 0:
        weights = {
            canonical_edge(u, v): int(data["weight"])
            for u, v, data in graph.edges(data=True)
        }
    return Network(edges, n=n, weights=weights, uid_seed=uid_seed)
