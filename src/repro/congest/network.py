"""Static network topology for the CONGEST simulator.

A :class:`Network` is an immutable undirected graph with nodes ``0..n-1``.
Per the KT0 model of Awerbuch et al., every node additionally has an
arbitrary unique O(log n)-bit identifier (``uid``) which is initially known
only to itself; node programs must treat array indices as *ports* (a node
may talk to a neighbor without knowing the neighbor's uid until told).

Edge weights, when present, are positive integers in [1, poly(n)] as the
paper requires for MST / min-cut / SSSP instances.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .message import message_bit_limit

Edge = Tuple[int, int]


def canonical_edge(u: int, v: int) -> Edge:
    """Return the canonical (min, max) form of an undirected edge."""
    return (u, v) if u <= v else (v, u)


class Network:
    """An undirected communication graph with metered CONGEST semantics.

    Parameters
    ----------
    edges:
        Iterable of (u, v) pairs over nodes ``0..n-1``.  Self-loops and
        duplicate edges are rejected: the CONGEST model is defined on simple
        graphs.
    n:
        Number of nodes.  If omitted, inferred as ``max node + 1``.
    weights:
        Optional mapping from canonical edge to a positive integer weight.
    rng / uid_seed:
        Source of randomness for assigning the arbitrary unique node ids.
        By default uids are a seeded random permutation of
        ``[n, 2n)`` — distinct from indices, so code that confuses
        uids with indices fails loudly in tests.
    """

    def __init__(
        self,
        edges: Iterable[Edge],
        n: Optional[int] = None,
        weights: Optional[Dict[Edge, int]] = None,
        uid_seed: int = 0x5EED,
    ) -> None:
        edge_list: List[Edge] = []
        seen = set()
        max_node = -1
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop at node {u} is not allowed")
            e = canonical_edge(u, v)
            if e in seen:
                raise ValueError(f"duplicate edge {e}")
            seen.add(e)
            edge_list.append(e)
            if e[1] > max_node:
                max_node = e[1]
        if n is None:
            n = max_node + 1
        if n <= 0:
            raise ValueError("network must have at least one node")
        if max_node >= n:
            raise ValueError(f"edge endpoint {max_node} >= n = {n}")

        self.n: int = n
        self.edges: Tuple[Edge, ...] = tuple(sorted(edge_list))
        self.m: int = len(self.edges)
        self._edge_set = frozenset(self.edges)

        neighbors: List[List[int]] = [[] for _ in range(n)]
        for u, v in self.edges:
            neighbors[u].append(v)
            neighbors[v].append(u)
        self.neighbors: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(adj)) for adj in neighbors
        )
        #: Per-node neighbor sets: membership tests in O(1) without the
        #: canonical-edge round trip (the engine's send() hot path).
        self.neighbor_sets: Tuple[frozenset, ...] = tuple(
            frozenset(adj) for adj in self.neighbors
        )

        if weights is not None:
            normalized: Dict[Edge, int] = {}
            for (u, v), w in weights.items():
                e = canonical_edge(u, v)
                if e not in self._edge_set:
                    raise ValueError(f"weight given for non-edge {e}")
                if not isinstance(w, int) or w < 1:
                    raise ValueError(
                        f"edge weight must be a positive integer, got {w!r}"
                    )
                normalized[e] = w
            missing = self._edge_set - normalized.keys()
            if missing:
                raise ValueError(f"missing weights for edges: {sorted(missing)[:5]}")
            self.weights: Optional[Dict[Edge, int]] = normalized
        else:
            self.weights = None

        rng = random.Random(uid_seed)
        uids = list(range(n, 2 * n))
        rng.shuffle(uids)
        self.uid: Tuple[int, ...] = tuple(uids)
        self._uid_to_node: Dict[int, int] = {u: i for i, u in enumerate(uids)}

        self.message_bits: int = message_bit_limit(n)

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------
    def has_edge(self, u: int, v: int) -> bool:
        """True iff (u, v) is an edge of the network."""
        return canonical_edge(u, v) in self._edge_set

    def degree(self, v: int) -> int:
        """Degree of node ``v``."""
        return len(self.neighbors[v])

    def weight(self, u: int, v: int) -> int:
        """Weight of edge (u, v); 1 if the network is unweighted."""
        if self.weights is None:
            return 1
        return self.weights[canonical_edge(u, v)]

    def node_of_uid(self, uid: int) -> int:
        """Inverse of ``self.uid`` (orchestrator convenience, not node-local)."""
        return self._uid_to_node[uid]

    def total_weight(self) -> int:
        """Sum of all edge weights."""
        if self.weights is None:
            return self.m
        return sum(self.weights.values())

    # ------------------------------------------------------------------
    # Global structure (orchestrator-side helpers; used for validation,
    # test oracles, and workload setup -- never inside node programs)
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """True iff the network is connected (BFS from node 0)."""
        if self.n == 1:
            return True
        seen = bytearray(self.n)
        seen[0] = 1
        stack = [0]
        count = 1
        while stack:
            u = stack.pop()
            for v in self.neighbors[u]:
                if not seen[v]:
                    seen[v] = 1
                    count += 1
                    stack.append(v)
        return count == self.n

    def bfs_depths(self, root: int) -> List[int]:
        """Hop distances from ``root`` (-1 for unreachable nodes)."""
        depth = [-1] * self.n
        depth[root] = 0
        frontier = [root]
        while frontier:
            nxt = []
            for u in frontier:
                du = depth[u]
                for v in self.neighbors[u]:
                    if depth[v] < 0:
                        depth[v] = du + 1
                        nxt.append(v)
            frontier = nxt
        return depth

    def eccentricity(self, root: int) -> int:
        """Maximum hop distance from ``root`` to any reachable node."""
        return max(self.bfs_depths(root))

    def diameter_estimate(self) -> int:
        """A 2-approximation of the hop diameter via double-BFS.

        This is the same estimate distributed algorithms themselves can
        compute in O(D) rounds, so using it for thresholds (e.g. the
        ``|P_i| < D`` test of Algorithm 1) is model-faithful.
        """
        ecc0 = self.eccentricity(0)
        depths = self.bfs_depths(0)
        far = max(range(self.n), key=lambda v: depths[v])
        return max(ecc0, self.eccentricity(far), 1)

    def exact_diameter(self) -> int:
        """Exact hop diameter (O(nm); test/benchmark oracle only)."""
        best = 0
        for v in range(self.n):
            ecc = self.eccentricity(v)
            if ecc > best:
                best = ecc
        return max(best, 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "weighted" if self.weights is not None else "unweighted"
        return f"Network(n={self.n}, m={self.m}, {kind})"


def network_from_networkx(graph, uid_seed: int = 0x5EED) -> Network:
    """Build a :class:`Network` from a networkx graph.

    Node labels must be ``0..n-1``.  If every edge carries an integer
    ``weight`` attribute it becomes the network's weight function.
    """
    n = graph.number_of_nodes()
    if set(graph.nodes()) != set(range(n)):
        raise ValueError("networkx graph must be labeled 0..n-1")
    edges = [canonical_edge(u, v) for u, v in graph.edges()]
    weights = None
    if all("weight" in data for _, _, data in graph.edges(data=True)) and n > 0 and graph.number_of_edges() > 0:
        weights = {
            canonical_edge(u, v): int(data["weight"])
            for u, v, data in graph.edges(data=True)
        }
    return Network(edges, n=n, weights=weights, uid_seed=uid_seed)
