"""Benchmark harness helpers.

pytest-benchmark measures wall time, which is a property of the simulator,
not of the algorithms; the quantities the paper is about are *rounds* and
*messages*.  Each benchmark therefore runs its workload once through
``measure`` (so pytest-benchmark has a timing), stores the distributed
metrics in ``benchmark.extra_info``, and prints the table/series rows the
experiment reproduces.  EXPERIMENTS.md is written from these printouts.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print an aligned table under a title banner (captured by pytest -s)."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


def record(benchmark, **metrics) -> None:
    """Stash distributed metrics in the pytest-benchmark report."""
    for key, value in metrics.items():
        benchmark.extra_info[key] = value


def run_once(benchmark, fn: Callable[[], object]) -> object:
    """Run ``fn`` exactly once under the benchmark timer; return its result."""
    box: Dict[str, object] = {}

    def wrapper():
        box["result"] = fn()

    benchmark.pedantic(wrapper, rounds=1, iterations=1)
    return box["result"]


def fmt_ratio(value: float) -> str:
    return f"{value:.2f}"
