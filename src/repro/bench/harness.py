"""Benchmark harness helpers.

Wall time is a property of the simulator, not of the algorithms; the
quantities the paper is about are *rounds* and *messages*.  Each benchmark
therefore runs its workload once through ``run_once`` (so the runner — or
pytest-benchmark — has a timing), stores the distributed metrics in
``benchmark.extra_info``, and emits the table/series rows the experiment
reproduces via :func:`print_table`.

``print_table`` both prints (so ``pytest -s`` still shows the tables) and
registers a structured :class:`Table` in a module-level registry.  The
headless runner (:mod:`repro.bench.runner`) drains that registry after each
experiment and regenerates ``EXPERIMENTS.md`` from the structured rows —
the numbers flow from the ledgers to the document without a stdout-capture
step in between.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass
class Table:
    """One experiment table: a title, a header row, and stringified rows."""

    title: str
    headers: Tuple[str, ...]
    rows: List[Tuple[str, ...]] = field(default_factory=list)

    def render(self) -> str:
        """Aligned plain-text rendering (what ``pytest -s`` shows)."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        out = [f"\n== {self.title} ==", line, "-" * len(line)]
        for row in self.rows:
            out.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(out)

    def render_markdown(self) -> str:
        """GitHub-flavored markdown rendering (for EXPERIMENTS.md)."""
        out = [
            "| " + " | ".join(self.headers) + " |",
            "|" + "|".join("---" for _ in self.headers) + "|",
        ]
        for row in self.rows:
            out.append("| " + " | ".join(row) + " |")
        return "\n".join(out)


#: Tables registered by :func:`print_table` since the last drain.
_TABLES: List[Table] = []


def drain_tables() -> List[Table]:
    """Return and clear the tables registered since the last drain."""
    global _TABLES
    drained, _TABLES = _TABLES, []
    return drained


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print an aligned table under a title banner and register it.

    The printout keeps ``pytest -s`` output readable; the registered
    :class:`Table` is what the headless runner uses to regenerate
    EXPERIMENTS.md.
    """
    table = Table(
        title=title,
        headers=tuple(str(h) for h in headers),
        rows=[tuple(str(cell) for cell in row) for row in rows],
    )
    _TABLES.append(table)
    print(table.render())


def record(benchmark, **metrics) -> None:
    """Stash distributed metrics in the benchmark report.

    By convention every benchmark records at least ``rounds`` and
    ``messages`` for its headline workload — the runner lifts those two
    into the top level of BENCH_<date>.json.
    """
    for key, value in metrics.items():
        benchmark.extra_info[key] = value


def run_once(benchmark, fn: Callable[[], object]) -> object:
    """Run ``fn`` exactly once under the benchmark timer; return its result."""
    box: Dict[str, object] = {}

    def wrapper():
        box["result"] = fn()

    benchmark.pedantic(wrapper, rounds=1, iterations=1)
    return box["result"]


def fmt_ratio(value: float) -> str:
    return f"{value:.2f}"
