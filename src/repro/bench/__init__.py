"""Benchmark harness and headless runner.

``repro.bench.harness`` provides the table/metric helpers the benchmark
files use; ``repro.bench.runner`` (also a CLI: ``python -m
repro.bench.runner``) executes every ``benchmarks/bench_*.py`` without
pytest, writes a machine-readable ``BENCH_<date>.json`` and regenerates
``EXPERIMENTS.md`` from the structured ledger-derived tables.
"""

from .harness import Table, drain_tables, fmt_ratio, print_table, record, run_once

__all__ = [
    "Table",
    "drain_tables",
    "fmt_ratio",
    "print_table",
    "record",
    "run_once",
]
