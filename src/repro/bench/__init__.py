"""Benchmark harness: tables, metric recording, single-shot timing."""

from .harness import fmt_ratio, print_table, record, run_once

__all__ = ["fmt_ratio", "print_table", "record", "run_once"]
