"""Headless benchmark runner: every ``benchmarks/bench_*.py`` without pytest.

The benchmark files are written as pytest tests taking a ``benchmark``
fixture, but nothing they need is pytest-specific: the fixture surface they
use is ``benchmark.pedantic(fn, rounds, iterations)`` and
``benchmark.extra_info``.  :class:`HeadlessBenchmark` provides exactly
that, so the runner can import each bench module and call its ``test_*``
functions directly — no test session, no capture plugins, no report files.

Outputs:

* ``BENCH_<date>.json`` — machine-readable per-experiment results: wall
  time, the ledger-derived ``rounds`` / ``messages`` headline metrics, all
  recorded extra metrics, and the structured experiment tables.  This file
  is the perf baseline PRs are compared against.
* ``EXPERIMENTS.md`` — regenerated from the structured tables registered
  through :func:`repro.bench.harness.print_table` (ledger data, not
  captured stdout).

Parallel sweeps: ``--jobs N`` (or ``--jobs auto``) fans the bench *files*
out over a process pool — each worker imports one file and runs its
experiments in isolation, so module-level state cannot leak between
files.  The merged report is deterministic regardless of completion
order: experiments are always emitted sorted by file name, in definition
order within a file (identical to the serial sweep).  Wall times remain
per-experiment measurements inside the worker; only scheduling changes.

``--only`` filters the sweep to matching bench files: shell-glob
matching when the value contains a metacharacter (``--only
'bench_cor1*'``), plain substring otherwise (``--only scaling``).

Regression gate: ``--check-against BASELINE.json`` compares every
experiment's ledger ``rounds`` / ``messages`` against the baseline and
exits non-zero on any difference.  Wall times are never gated — they are
hardware facts, not model facts; the ledger is the correctness contract
(docs/architecture.md).

Usage::

    PYTHONPATH=src python -m repro.bench.runner --out BENCH_pr1.json
    PYTHONPATH=src python -m repro.bench.runner --only theorem12 --no-experiments
    PYTHONPATH=src python -m repro.bench.runner --jobs auto --check-against BENCH_pr1.json
"""

from __future__ import annotations

import argparse
import fnmatch
import importlib.util
import inspect
import io
import json
import os
import sys
import time
import traceback
from contextlib import redirect_stdout
from dataclasses import dataclass, field
from datetime import date, datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..procpool import lift_wall_gate, resolve_workers
from .harness import Table, drain_tables


class HeadlessBenchmark:
    """Duck-typed stand-in for the pytest-benchmark fixture.

    Supports the two entry points the harness uses (``pedantic`` and the
    callable protocol) and records wall time of the measured function.
    """

    def __init__(self) -> None:
        self.extra_info: Dict[str, object] = {}
        self.wall_seconds: Optional[float] = None

    def pedantic(
        self,
        fn: Callable[..., object],
        args: Sequence = (),
        kwargs: Optional[Dict] = None,
        rounds: int = 1,
        iterations: int = 1,
        **_ignored,
    ) -> object:
        kwargs = kwargs or {}
        result = None
        start = time.perf_counter()
        for _ in range(max(1, rounds) * max(1, iterations)):
            result = fn(*args, **kwargs)
        self.wall_seconds = time.perf_counter() - start
        return result

    def __call__(self, fn: Callable[..., object], *args, **kwargs) -> object:
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        self.wall_seconds = time.perf_counter() - start
        return result


@dataclass
class ExperimentResult:
    """Outcome of one benchmark function run headlessly."""

    file: str
    name: str
    status: str  # "ok" | "error"
    wall_seconds: Optional[float]
    rounds: Optional[int]
    messages: Optional[int]
    metrics: Dict[str, object]
    tables: List[Table]
    error: Optional[str] = None

    #: Sharded-backend scaling fields promoted to the record's top level
    #: (schema repro-bench/2) when the experiment reports them.
    _SHARD_FIELDS = ("workers", "shard_wall_seconds", "shard_merge_seconds")

    def to_json(self) -> Dict[str, object]:
        return {
            "file": self.file,
            "name": self.name,
            "status": self.status,
            "wall_seconds": self.wall_seconds,
            "rounds": self.rounds,
            "messages": self.messages,
            **{
                key: self.metrics[key]
                for key in self._SHARD_FIELDS
                if key in self.metrics
            },
            "metrics": self.metrics,
            "tables": [
                {"title": t.title, "headers": list(t.headers),
                 "rows": [list(r) for r in t.rows]}
                for t in self.tables
            ],
            **({"error": self.error} if self.error else {}),
        }


def discover_bench_files(bench_dir: Path) -> List[Path]:
    """All ``bench_*.py`` files in ``bench_dir``, sorted by name."""
    return sorted(bench_dir.glob("bench_*.py"))


def only_matches(only: Optional[str], file_name: str) -> bool:
    """Does a bench file fall inside the ``--only`` filter?

    ``only`` is a shell-style glob matched against the file name (a bare
    ``*``-free string keeps the historical substring behavior, so
    ``--only scaling`` and ``--only 'bench_scal*'`` both select
    ``bench_scaling.py``).  ``None`` selects everything.
    """
    if not only:
        return True
    if any(ch in only for ch in "*?["):
        return fnmatch.fnmatch(file_name, only)
    return only in file_name


def load_bench_module(path: Path):
    """Import a benchmark file by path (no package required)."""
    spec = importlib.util.spec_from_file_location(f"_bench_{path.stem}", path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load benchmark module {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def bench_functions(module) -> List[Callable]:
    """The ``test_*`` callables of a bench module, in definition order."""
    functions = []
    for name, obj in vars(module).items():
        if name.startswith("test_") and callable(obj):
            functions.append(obj)
    functions.sort(key=lambda fn: fn.__code__.co_firstlineno)
    return functions


def _coerce_count(value: object) -> Optional[int]:
    """Lift a recorded metric into the headline int slot if it is one."""
    if isinstance(value, bool):
        return None
    if isinstance(value, int):
        return value
    return None


def run_experiment(
    path: Path,
    fn: Callable,
    quiet: bool = True,
    trace_dir: Optional[Path] = None,
) -> ExperimentResult:
    """Run one benchmark function headlessly and collect its results.

    With ``trace_dir`` set, the experiment runs under a recording
    :class:`repro.obs.Tracer` and its events are written to
    ``<trace_dir>/<file-stem>__<fn>.trace.json`` (Chrome trace format —
    open in Perfetto, or profile with ``python -m repro.obs summarize``).
    Tracing never changes ledgers (the zero-cost-when-off contract runs
    the other way too: hooks only *observe*), so traced sweeps stay
    baseline-comparable.
    """
    benchmark = HeadlessBenchmark()
    parameters = inspect.signature(fn).parameters
    if "benchmark" not in parameters:
        # Report instead of raising so one odd test_ function cannot kill
        # the whole sweep (mirrors the import-error path).
        return ExperimentResult(
            file=path.name, name=fn.__name__, status="error",
            wall_seconds=None, rounds=None, messages=None, metrics={},
            tables=[],
            error=f"{path.name}::{fn.__name__} does not take a "
                  f"'benchmark' fixture",
        )
    drain_tables()  # drop anything a previous failure left behind
    error = None
    status = "ok"
    sink = io.StringIO()
    tracer = None
    if trace_dir is not None:
        from ..obs import Tracer, use_tracer

        tracer = Tracer()
    try:
        if tracer is not None:
            with use_tracer(tracer):
                if quiet:
                    with redirect_stdout(sink):
                        fn(benchmark=benchmark)
                else:
                    fn(benchmark=benchmark)
        elif quiet:
            with redirect_stdout(sink):
                fn(benchmark=benchmark)
        else:
            fn(benchmark=benchmark)
    except Exception:  # noqa: BLE001 - report, don't crash the sweep
        status = "error"
        error = traceback.format_exc()
    if tracer is not None:
        trace_dir.mkdir(parents=True, exist_ok=True)
        tracer.write_chrome(trace_dir / f"{path.stem}__{fn.__name__}.trace.json")
    tables = drain_tables()
    metrics = dict(benchmark.extra_info)
    return ExperimentResult(
        file=path.name,
        name=fn.__name__,
        status=status,
        wall_seconds=benchmark.wall_seconds,
        rounds=_coerce_count(metrics.get("rounds")),
        messages=_coerce_count(metrics.get("messages")),
        metrics=metrics,
        tables=tables,
        error=error,
    )


def run_file(
    path: Path,
    quiet: bool = True,
    progress: Optional[Callable[[str], None]] = None,
    trace_dir: Optional[Path] = None,
) -> List[ExperimentResult]:
    """Run every experiment of one bench file, in definition order."""
    try:
        module = load_bench_module(path)
    except Exception:  # noqa: BLE001
        return [
            ExperimentResult(
                file=path.name, name="<import>", status="error",
                wall_seconds=None, rounds=None, messages=None,
                metrics={}, tables=[], error=traceback.format_exc(),
            )
        ]
    results = []
    for fn in bench_functions(module):
        if progress:
            progress(f"{path.name}::{fn.__name__}")
        results.append(run_experiment(path, fn, quiet=quiet, trace_dir=trace_dir))
    return results


def _run_file_worker(
    task: Tuple[str, bool, Optional[str]]
) -> List[ExperimentResult]:
    """Process-pool entry point: one (file, quiet, trace dir) per task."""
    path_str, quiet, trace_dir = task
    return run_file(
        Path(path_str), quiet=quiet,
        trace_dir=Path(trace_dir) if trace_dir else None,
    )


def _init_parallel_worker() -> None:
    """Pool initializer: lift wall-clock assertions inside workers."""
    lift_wall_gate()


def resolve_jobs(jobs: str) -> int:
    """Turn a ``--jobs`` argument into a worker count.

    The shared :func:`repro.procpool.resolve_workers` rules, with bad
    arguments exiting the CLI instead of raising.  ``run_all``
    additionally caps the pool at the number of bench files.
    """
    return resolve_workers(jobs, error=SystemExit)


def run_all(
    bench_dir: Path,
    only: Optional[str] = None,
    quiet: bool = True,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
    trace_dir: Optional[Path] = None,
) -> List[ExperimentResult]:
    """Run every discovered benchmark (optionally filtered by substring).

    With ``jobs > 1`` the bench files are distributed over a process pool.
    The result order is identical to the serial sweep (sorted file names,
    definition order within each file) no matter how workers are
    scheduled, so merged reports are deterministic.
    """
    paths = [
        path for path in discover_bench_files(bench_dir)
        if only_matches(only, path.name)
    ]
    if jobs > 1 and len(paths) > 1:
        from concurrent.futures import ProcessPoolExecutor

        results: List[ExperimentResult] = []
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(paths)),
            initializer=_init_parallel_worker,
        ) as pool:
            # executor.map preserves submission order: the merged list is
            # deterministic even though workers finish out of order.
            tasks = [
                (str(p), quiet, str(trace_dir) if trace_dir else None)
                for p in paths
            ]
            for path, file_results in zip(
                paths,
                pool.map(_run_file_worker, tasks),
            ):
                if progress:
                    for r in file_results:
                        progress(f"{r.file}::{r.name}")
                results.extend(file_results)
        return results
    results = []
    for path in paths:
        results.extend(
            run_file(path, quiet=quiet, progress=progress, trace_dir=trace_dir)
        )
    return results


# ----------------------------------------------------------------------
# Report generation
# ----------------------------------------------------------------------
def results_to_json(results: Sequence[ExperimentResult]) -> Dict[str, object]:
    ok = [r for r in results if r.status == "ok"]
    return {
        # /2 adds the promoted sharded-scaling fields (workers,
        # shard_wall_seconds, shard_merge_seconds) on experiment records;
        # /1 baselines still load — the drift gate reads only
        # rounds/messages.
        "schema": "repro-bench/2",
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": sys.version.split()[0],
        "experiments": [r.to_json() for r in results],
        "totals": {
            "experiments": len(results),
            "ok": len(ok),
            "errors": len(results) - len(ok),
            "wall_seconds": sum(r.wall_seconds or 0.0 for r in results),
        },
    }


def render_experiments_md(results: Sequence[ExperimentResult]) -> str:
    """EXPERIMENTS.md content: every experiment table, from ledger data."""
    lines = [
        "# EXPERIMENTS",
        "",
        "Regenerated by `python -m repro.bench.runner` from the structured",
        "experiment tables (which are computed from `CostLedger` data — the",
        "ledger is the ground truth for every number here, never captured",
        "stdout and never closed-form formulas).",
        "",
        f"Last run: {datetime.now(timezone.utc).isoformat(timespec='seconds')}",
        "",
        "| experiment | status | wall (s) | rounds | messages |",
        "|---|---|---|---|---|",
    ]
    for r in results:
        wall = f"{r.wall_seconds:.3f}" if r.wall_seconds is not None else "-"
        lines.append(
            f"| `{r.file}::{r.name}` | {r.status} | {wall} "
            f"| {r.rounds if r.rounds is not None else '-'} "
            f"| {r.messages if r.messages is not None else '-'} |"
        )
    lines.append("")
    for r in results:
        lines.append(f"## {r.file}::{r.name}")
        lines.append("")
        if r.status != "ok":
            lines.append("**FAILED**")
            lines.append("")
            lines.append("```")
            lines.append((r.error or "unknown error").rstrip())
            lines.append("```")
            lines.append("")
            continue
        for table in r.tables:
            lines.append(f"### {table.title}")
            lines.append("")
            lines.append(table.render_markdown())
            lines.append("")
    return "\n".join(lines)


def render_hot_phase_md(trace_dir: Path, top: int = 12) -> str:
    """Markdown "hot phases" section aggregated from a sweep's traces.

    Reads every ``*.trace.json`` a ``--trace`` sweep wrote and ranks the
    main-stream phases by ledger rounds, with messages/bits/wall beside
    them — the cross-experiment answer to "where do the rounds go?".
    Returns "" when the directory holds no traces.
    """
    from ..obs.summary import load_trace, summarize, top_phases

    paths = sorted(trace_dir.glob("*.trace.json"))
    events: List[Dict] = []
    for path in paths:
        events.extend(load_trace(path))
    if not events:
        return ""
    summary = summarize(events)
    rows = top_phases(summary, "rounds", top)
    if not rows:
        return ""
    lines = [
        "## Trace-derived hot phases",
        "",
        f"Top {len(rows)} phases by ledger rounds, aggregated over "
        f"{len(paths)} trace file(s) from this sweep (`--trace`; profile "
        "individual traces with `python -m repro.obs summarize`).",
        "",
        "| phase | charges | rounds | messages | bits | wall (ms) |",
        "|---|---|---|---|---|---|",
    ]
    for name, tot in rows:
        wall_ms = summary.wall_us.get(name, 0) / 1000
        lines.append(
            f"| `{name}` | {tot.count} | {tot.rounds} | {tot.messages} "
            f"| {tot.bits} | {wall_ms:.3f} |"
        )
    lines.append("")
    return "\n".join(lines)


def check_against_baseline(
    results: Sequence[ExperimentResult],
    baseline_path: Path,
    report: Callable[[str], None] = print,
    only: Optional[str] = None,
) -> List[str]:
    """Compare ledger rounds/messages against a baseline BENCH json.

    Returns a list of human-readable problems (empty = parity).  Only the
    ledger quantities are compared — wall times are reported, never gated.
    Experiments absent from the baseline (newly added benchmarks) are
    noted and skipped; experiments present in the baseline but missing
    from this run are failures (a silently dropped benchmark would
    otherwise shrink the gate's coverage).  ``only`` mirrors the sweep's
    file filter: baseline experiments outside it are out of scope, not
    missing.
    """
    baseline = json.loads(baseline_path.read_text())
    base_map = {
        (e["file"], e["name"]): e for e in baseline.get("experiments", [])
        if only_matches(only, e["file"])
    }
    problems: List[str] = []
    seen = set()
    for r in results:
        key = (r.file, r.name)
        seen.add(key)
        base = base_map.get(key)
        if base is None:
            report(f"[check] new experiment (not in baseline): {r.file}::{r.name}")
            continue
        if r.status != "ok":
            problems.append(f"{r.file}::{r.name} failed (baseline has it ok)")
            continue
        if (r.rounds, r.messages) != (base["rounds"], base["messages"]):
            problems.append(
                f"{r.file}::{r.name} ledger drift: rounds/messages "
                f"{base['rounds']}/{base['messages']} -> {r.rounds}/{r.messages}"
            )
    for key in base_map:
        if key not in seen:
            problems.append(f"{key[0]}::{key[1]} missing from this run")
    return problems


def default_bench_dir() -> Path:
    """``benchmarks/`` under the repo root (next to ``src/``), else cwd."""
    here = Path(__file__).resolve()
    for ancestor in here.parents:
        candidate = ancestor / "benchmarks"
        if candidate.is_dir():
            return candidate
    return Path.cwd() / "benchmarks"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.runner",
        description="Run all benchmarks headlessly; write BENCH json and "
        "regenerate EXPERIMENTS.md.",
    )
    parser.add_argument(
        "--bench-dir", type=Path, default=None,
        help="directory holding bench_*.py (default: autodetected)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="output JSON path (default: BENCH_<YYYYMMDD>.json in cwd)",
    )
    parser.add_argument(
        "--experiments-md", type=Path, default=Path("EXPERIMENTS.md"),
        help="path of the regenerated EXPERIMENTS.md",
    )
    parser.add_argument(
        "--no-experiments", action="store_true",
        help="skip regenerating EXPERIMENTS.md",
    )
    parser.add_argument(
        "--only", default=None,
        help="run only matching bench files: a shell glob when the value "
        "contains *?[ (e.g. 'bench_cor1*'), else a name substring",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="let the benchmarks' table printouts through to stdout",
    )
    parser.add_argument(
        "--jobs", default="1", metavar="N",
        help="run bench files in N worker processes ('auto' = cpu count)",
    )
    parser.add_argument(
        "--check-against", type=Path, default=None, metavar="BASELINE",
        help="compare ledger rounds/messages against a baseline BENCH json "
        "and exit non-zero on any drift (wall times are never gated)",
    )
    parser.add_argument(
        "--trace", type=Path, default=None, metavar="DIR",
        help="record one Chrome/Perfetto trace per experiment into DIR "
        "(profile with 'python -m repro.obs summarize'); EXPERIMENTS.md "
        "gains a trace-derived hot-phase table",
    )
    args = parser.parse_args(argv)

    bench_dir = args.bench_dir or default_bench_dir()
    if not bench_dir.is_dir():
        print(f"error: benchmark directory not found: {bench_dir}", file=sys.stderr)
        return 2
    out_path = args.out or Path(f"BENCH_{date.today().strftime('%Y%m%d')}.json")

    jobs = resolve_jobs(args.jobs)
    if args.trace is not None:
        args.trace.mkdir(parents=True, exist_ok=True)
    results = run_all(
        bench_dir,
        only=args.only,
        quiet=not args.verbose,
        progress=lambda label: print(f"[bench] {label}", flush=True),
        jobs=jobs,
        trace_dir=args.trace,
    )
    if not results:
        print(
            f"warning: no benchmarks matched "
            f"(dir={bench_dir}{', only=' + args.only if args.only else ''})",
            file=sys.stderr,
        )
    report = results_to_json(results)
    out_path.write_text(json.dumps(report, indent=1, default=str) + "\n")
    print(f"[bench] wrote {out_path} "
          f"({report['totals']['ok']}/{report['totals']['experiments']} ok, "
          f"{report['totals']['wall_seconds']:.2f}s measured)")

    if args.trace is not None:
        traces = sorted(args.trace.glob("*.trace.json"))
        print(f"[bench] wrote {len(traces)} trace(s) to {args.trace}")

    if not args.no_experiments:
        md = render_experiments_md(results)
        if args.trace is not None:
            hot = render_hot_phase_md(args.trace)
            if hot:
                md += "\n" + hot
        args.experiments_md.write_text(md + "\n")
        print(f"[bench] wrote {args.experiments_md}")

    if args.check_against is not None:
        if not args.check_against.is_file():
            print(f"error: baseline not found: {args.check_against}",
                  file=sys.stderr)
            return 2
        problems = check_against_baseline(
            results, args.check_against, only=args.only
        )
        if problems:
            print(f"[check] LEDGER DRIFT vs {args.check_against}:",
                  file=sys.stderr)
            for problem in problems:
                print(f"[check]   {problem}", file=sys.stderr)
            return 3
        print(f"[check] ledger parity with {args.check_against}: "
              f"all rounds/messages identical")

    return 0 if report["totals"]["errors"] == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
