"""PASession: parity with the bare solver, and reuse/batch invariance.

The session contract has two halves, both pinned here:

* with caching/batching **off** (the default), every algorithm's ledger
  rounds/messages are bit-for-bit identical to the pre-session code —
  equivalently, to calling it with no session at all (both modes);
* with them **on**, *outputs* (MST edges, cut value and sides, distances,
  CDS/k-dominating sets, labels, verifier verdicts) are unchanged — reuse
  may re-shape the ledger, never the answer.
"""

from __future__ import annotations

import pytest

from repro import PASession
from repro.analysis import kruskal_mst
from repro.core import MIN, MIN_TUPLE, PASolver, SUM
from repro.graphs import (
    grid_2d,
    random_connected,
    random_connected_partition,
    with_distinct_weights,
)
from repro.graphs.partitions import Partition
from repro.algorithms import (
    approx_min_cut,
    approx_sssp,
    cc_labeling,
    connected_dominating_set,
    k_dominating_set,
    minimum_spanning_tree,
    verify_bipartiteness,
    verify_connectivity,
    verify_cycle_containment,
    verify_spanning_tree,
)
from repro.runtime import ensure_session, partition_fingerprint

MODES = ["randomized", "deterministic"]


def _weighted_net():
    return with_distinct_weights(random_connected(40, 0.08, seed=11), seed=3)


def _subgraph(net):
    return [e for i, e in enumerate(net.edges) if i % 3 != 0]


def _ledger_signature(ledger):
    return (ledger.rounds, ledger.messages)


# ----------------------------------------------------------------------
# Facade parity: default session == bare solver, bit for bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", MODES)
def test_session_prepare_solve_parity(mode):
    net = grid_2d(5, 8)
    part = random_connected_partition(net, 5, seed=9)

    bare = PASolver(net, mode=mode, seed=6)
    setup_b = bare.prepare(part)
    result_b = bare.solve(setup_b, [1] * net.n, SUM)

    sess = PASession(net, mode=mode, seed=6)
    setup_s = sess.prepare(part)
    result_s = sess.solve(setup_s, [1] * net.n, SUM)

    assert setup_s.shortcut.up_parts == setup_b.shortcut.up_parts
    assert _ledger_signature(setup_s.setup_ledger) == _ledger_signature(
        setup_b.setup_ledger
    )
    assert result_s.aggregates == result_b.aggregates
    assert _ledger_signature(result_s.ledger) == _ledger_signature(
        result_b.ledger
    )
    # Same phase log, entry for entry — not just the same totals.
    assert [
        (p.name, p.rounds, p.messages) for p in result_s.ledger
    ] == [(p.name, p.rounds, p.messages) for p in result_b.ledger]


@pytest.mark.parametrize("mode", MODES)
def test_algorithm_ledgers_identical_without_optins(mode):
    """Every algorithm, default session vs explicit pass-through solver."""
    net = _weighted_net()
    h = _subgraph(net)
    runs = {
        "mst": lambda **kw: minimum_spanning_tree(net, mode=mode, seed=17, **kw),
        "mincut": lambda **kw: approx_min_cut(
            net, mode=mode, seed=5, max_trees=2, **kw
        ),
        "sssp": lambda **kw: approx_sssp(net, 0, beta=0.25, mode=mode, seed=5, **kw),
        "cc": lambda **kw: cc_labeling(net, h, mode=mode, seed=5, **kw),
        "cds": lambda **kw: connected_dominating_set(net, mode=mode, seed=5, **kw),
        "kdom": lambda **kw: k_dominating_set(net, 6, mode=mode, seed=5, **kw),
        "verify_conn": lambda **kw: verify_connectivity(
            net, h, mode=mode, seed=5, **kw
        ),
        "verify_cyc": lambda **kw: verify_cycle_containment(
            net, h, mode=mode, seed=5, **kw
        ),
        "verify_span": lambda **kw: verify_spanning_tree(
            net, h, mode=mode, seed=5, **kw
        ),
        "verify_bip": lambda **kw: verify_bipartiteness(
            net, h, mode=mode, seed=5, **kw
        ),
    }
    for name, run in runs.items():
        plain = run()
        via_session = run(
            session=PASession(net, mode=mode, seed=17 if name == "mst" else 5)
        )
        assert _ledger_signature(plain.ledger) == _ledger_signature(
            via_session.ledger
        ), name
        if name == "mincut":
            assert plain.output == via_session.output
        elif name in ("mst", "cds", "kdom"):
            assert set(plain.output) == set(via_session.output), name
        else:
            assert plain.output == via_session.output, name


@pytest.mark.parametrize("mode", MODES)
def test_solver_argument_still_shares_pipeline(mode):
    """The historical solver= sharing contract holds through the session."""
    net = _weighted_net()
    solver = PASolver(net, mode=mode, seed=5)
    run = verify_connectivity(net, _subgraph(net), mode=mode, seed=5,
                              solver=solver)
    assert run.output in (True, False)
    # ensure_session wraps rather than replaces:
    sess = ensure_session(None, net, mode=mode, seed=5, solver=solver)
    assert sess.solver is solver
    with pytest.raises(ValueError):
        ensure_session(
            PASession(net, mode=mode, seed=5), net, solver=solver
        )


# ----------------------------------------------------------------------
# Reuse/batch on: outputs unchanged
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", MODES)
def test_outputs_unchanged_with_reuse_and_batching(mode):
    net = _weighted_net()
    h = _subgraph(net)

    def sess(seed):
        return PASession(net, mode=mode, seed=seed, reuse=True, batch=True)

    ref = kruskal_mst(net)
    mst_on = minimum_spanning_tree(net, mode=mode, seed=17, session=sess(17))
    assert set(mst_on.output) == ref

    cut_off = approx_min_cut(net, mode=mode, seed=5, max_trees=2)
    cut_on = approx_min_cut(net, mode=mode, seed=5, max_trees=2,
                            session=sess(5))
    assert cut_on.output == cut_off.output

    sssp_off = approx_sssp(net, 0, beta=0.25, mode=mode, seed=5)
    sssp_on = approx_sssp(net, 0, beta=0.25, mode=mode, seed=5,
                          session=sess(5))
    assert sssp_on.output == sssp_off.output

    cds_off = connected_dominating_set(net, mode=mode, seed=5)
    cds_on = connected_dominating_set(net, mode=mode, seed=5, session=sess(5))
    assert cds_on.output == cds_off.output

    kdom_off = k_dominating_set(net, 6, mode=mode, seed=5)
    kdom_on = k_dominating_set(net, 6, mode=mode, seed=5, session=sess(5))
    assert kdom_on.output == kdom_off.output

    cyc_off = verify_cycle_containment(net, h, mode=mode, seed=5)
    cyc_on = verify_cycle_containment(net, h, mode=mode, seed=5,
                                      session=sess(5))
    assert cyc_on.output == cyc_off.output


@pytest.mark.parametrize("mode", MODES)
def test_reuse_reduces_mst_ledger_rounds(mode):
    """Coarsening+caching must strictly cut the metered Boruvka cost."""
    net = with_distinct_weights(grid_2d(8, 8), seed=5)
    off = minimum_spanning_tree(net, mode=mode, seed=7)
    sess = PASession(net, mode=mode, seed=7, reuse=True, batch=True)
    on = minimum_spanning_tree(net, mode=mode, seed=7, session=sess)
    assert set(on.output) == set(off.output)
    assert on.rounds < off.rounds
    assert sess.stats.coarsenings > 0
    assert sess.stats.prepares <= 2  # first phase, plus at most one rebuild


# ----------------------------------------------------------------------
# The cache and the coarsening path
# ----------------------------------------------------------------------
def test_prepare_cache_hit_is_construction_free():
    net = grid_2d(6, 8)
    part = random_connected_partition(net, 6, seed=3)
    sess = PASession(net, seed=5, reuse=True)
    first = sess.prepare(part)
    assert first.setup_ledger.rounds > 0
    again = sess.prepare(part)
    assert again.setup_ledger.rounds == 0
    assert again.setup_ledger.messages == 0
    assert again.shortcut is first.shortcut
    assert sess.stats.cache_hits == 1
    sess.clear_cache()
    rebuilt = sess.prepare(part)
    assert rebuilt.setup_ledger.rounds > 0


def test_fingerprint_distinguishes_leaders():
    net = grid_2d(4, 6)
    part = Partition([v // 6 for v in range(net.n)])
    assert partition_fingerprint(part) == partition_fingerprint(part, None)
    assert partition_fingerprint(part, [0, 6, 12, 18]) != partition_fingerprint(
        part
    )


@pytest.mark.parametrize("mode", MODES)
def test_coarsened_setup_solves_correctly(mode):
    net = grid_2d(8, 8)
    rows = Partition([v // 8 for v in range(net.n)])
    merged = Partition([(v // 8) // 2 for v in range(net.n)])

    sess = PASession(net, mode=mode, seed=5, reuse=True)
    setup0 = sess.prepare(rows)
    setup1 = sess.prepare_incremental(setup0, merged)
    assert sess.stats.coarsenings == 1
    result = sess.solve(setup1, [1] * net.n, SUM, charge_setup=False)
    assert result.aggregates == {pid: 16 for pid in range(4)}
    assert result.value_at_node == [16] * net.n
    # Congestion never grows under coarsening.
    assert setup1.shortcut.quality()[1] <= setup0.shortcut.quality()[1]
    # The coarsening charged real verification work.
    assert setup1.setup_ledger.rounds > 0


def test_non_coarsenable_partition_falls_back_to_prepare():
    net = grid_2d(8, 8)
    rows = Partition([v // 8 for v in range(net.n)])
    cols = Partition([v % 8 for v in range(net.n)])  # splits every row
    sess = PASession(net, seed=5, reuse=True)
    setup0 = sess.prepare(rows)
    setup1 = sess.prepare_incremental(setup0, cols)
    assert sess.stats.coarsenings == 0
    assert sess.stats.prepares == 2
    result = sess.solve(setup1, [1] * net.n, SUM, charge_setup=False)
    assert result.aggregates == {pid: 8 for pid in range(8)}


def test_coarsen_rejects_foreign_leader():
    net = grid_2d(8, 8)
    rows = Partition([v // 8 for v in range(net.n)])
    merged = Partition([(v // 8) // 2 for v in range(net.n)])
    sess = PASession(net, seed=5, reuse=True)
    setup0 = sess.prepare(rows)
    with pytest.raises(ValueError):
        sess.coarsen(setup0, merged, [0, 0, 1, 1], leaders=[0, 0, 32, 48])


# ----------------------------------------------------------------------
# Batched multi-aggregate solves
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", MODES)
def test_solve_many_matches_individual_solves(mode):
    net = grid_2d(6, 8)
    part = random_connected_partition(net, 6, seed=3)
    uids = [net.uid[v] for v in range(net.n)]
    moe_like = [(net.uid[v] % 7, net.uid[v]) for v in range(net.n)]

    seq_sess = PASession(net, mode=mode, seed=5, batch=False)
    setup = seq_sess.prepare(part)
    seq = seq_sess.solve_many(
        setup,
        [([1] * net.n, SUM), (uids, MIN), (moe_like, MIN_TUPLE)],
        charge_setup=False,
    )

    bat_sess = PASession(net, mode=mode, seed=5, batch=True)
    setup_b = bat_sess.prepare(part)
    bat = bat_sess.solve_many(
        setup_b,
        [([1] * net.n, SUM), (uids, MIN), (moe_like, MIN_TUPLE)],
        charge_setup=False,
    )

    assert bat.batched and not seq.batched
    for k in range(3):
        assert bat.per_agg[k].aggregates == seq.per_agg[k].aggregates, k
        assert bat.per_agg[k].value_at_node == seq.per_agg[k].value_at_node, k
    # One wave pass instead of three: strictly fewer rounds and messages.
    assert bat.ledger.rounds < seq.ledger.rounds
    assert bat.ledger.messages < seq.ledger.messages


def test_solve_many_sequential_matches_handwritten_calls():
    """batch=False must reproduce the by-hand solve sequence bit for bit."""
    net = grid_2d(6, 8)
    part = random_connected_partition(net, 6, seed=3)
    uids = [net.uid[v] for v in range(net.n)]

    by_hand = PASolver(net, seed=5)
    setup_h = by_hand.prepare(part)
    hand_ledgers = []
    for values, agg, prefix in (
        ([1] * net.n, SUM, "a"), (uids, MIN, "b")
    ):
        r = by_hand.solve(
            setup_h, values, agg, charge_setup=False, phase_prefix=prefix
        )
        hand_ledgers.extend(
            (p.name, p.rounds, p.messages) for p in r.ledger
        )

    sess = PASession(net, seed=5, batch=False)
    setup_s = sess.prepare(part)
    seq = sess.solve_many(
        setup_s,
        [([1] * net.n, SUM), (uids, MIN)],
        charge_setup=False,
        phase_prefixes=["a", "b"],
    )
    assert [
        (p.name, p.rounds, p.messages) for p in seq.ledger
    ] == hand_ledgers


def test_solve_many_handles_all_none_slots():
    net = grid_2d(4, 6)
    part = Partition([v // 6 for v in range(net.n)])
    sess = PASession(net, seed=5, batch=True)
    setup = sess.prepare(part)
    nothing = [None] * net.n
    batch = sess.solve_many(
        setup, [(nothing, MIN), ([1] * net.n, SUM)], charge_setup=False
    )
    assert all(v is None for v in batch.per_agg[0].aggregates.values())
    assert batch.per_agg[1].aggregates == {pid: 6 for pid in range(4)}


def test_solve_many_rejects_bad_arguments():
    net = grid_2d(4, 6)
    sess = PASession(net, seed=5)
    setup = sess.prepare(Partition([v // 6 for v in range(net.n)]))
    with pytest.raises(ValueError):
        sess.solve_many(setup, [])
    with pytest.raises(ValueError):
        sess.solve_many(
            setup, [([1] * net.n, SUM)], phase_prefixes=["a", "b"]
        )


# ----------------------------------------------------------------------
# Session construction and provider plumbing
# ----------------------------------------------------------------------
def test_family_resolves_to_provider_and_flows_to_prepare():
    net = grid_2d(8, 8)
    sess = PASession(net, seed=5, family="planar")
    assert sess.shortcut_provider is not None
    part = Partition([v // 8 for v in range(net.n)])
    setup = sess.prepare(part)
    result = sess.solve(setup, [1] * net.n, SUM, charge_setup=False)
    assert result.aggregates == {pid: 8 for pid in range(8)}


def test_family_and_provider_are_mutually_exclusive():
    net = grid_2d(4, 4)
    from repro.families import GeneralProvider

    with pytest.raises(ValueError):
        PASession(net, family="planar", shortcut_provider=GeneralProvider())


def test_ensure_session_rejects_provider_override():
    net = grid_2d(4, 4)
    sess = PASession(net, seed=5)
    with pytest.raises(ValueError):
        ensure_session(sess, net, family="planar")


def test_algorithms_accept_family_argument():
    net = with_distinct_weights(grid_2d(6, 6), seed=5)
    run = minimum_spanning_tree(net, seed=7, family="planar")
    assert set(run.output) == kruskal_mst(net)


def test_session_rejects_incompatible_solver_network():
    net_a = grid_2d(4, 6)
    net_b = random_connected(24, 0.2, seed=3)  # same n, different topology
    assert net_a.n == net_b.n
    solver = PASolver(net_a, seed=5)
    with pytest.raises(ValueError):
        PASession(net_b, solver=solver)
    # Same topology under a different object (min-cut's reweighted copies)
    # is accepted.
    from repro.congest import Network

    clone = Network(net_a.edges, n=net_a.n)
    PASession(clone, solver=solver)


def test_coarsening_chain_evicts_superseded_entries():
    net = grid_2d(8, 8)
    rows = Partition([v // 8 for v in range(net.n)])
    pairs = Partition([(v // 8) // 2 for v in range(net.n)])
    quads = Partition([(v // 8) // 4 for v in range(net.n)])

    sess = PASession(net, seed=5, reuse=True)
    setup0 = sess.prepare(rows)              # full prepare: kept forever
    setup1 = sess.prepare_incremental(setup0, pairs)
    assert len(sess._cache) == 2
    setup2 = sess.prepare_incremental(setup1, quads)
    # The pairs entry was a superseded coarsening link: evicted.  The
    # full-prepare rows entry and the latest link survive.
    assert len(sess._cache) == 2
    assert partition_fingerprint(rows, None) in sess._cache
    assert partition_fingerprint(quads, None) in sess._cache
    assert partition_fingerprint(pairs, None) not in sess._cache
    # The latest entry still serves the no-merge retry pattern.
    again = sess.prepare_incremental(setup2, quads)
    assert again.setup_ledger.rounds == 0
