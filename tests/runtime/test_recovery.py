"""RecoveryDriver: heartbeat detection, self-healing PA/MST, accounting."""

import pytest

from repro.congest import AsyncEngine, CrashEvent, FaultPlan
from repro.core import SUM, solve_pa
from repro.algorithms.mst import minimum_spanning_tree
from repro.analysis.reference import kruskal_mst
from repro.graphs import random_connected, random_connected_partition, with_distinct_weights
from repro.runtime import (
    HeartbeatConfig,
    RecoveryDriver,
    RecoveryExhaustedError,
)


def _phase_log(ledger):
    return [(p.name, p.rounds, p.messages, p.ticks) for p in ledger.phases()]


@pytest.fixture
def workload():
    net = with_distinct_weights(random_connected(24, 0.12, seed=9), seed=9)
    part = random_connected_partition(net, 4, seed=9)
    values = [(v * 7 + 3) % 101 for v in range(net.n)]
    return net, part, values


def test_heartbeat_config_validation():
    with pytest.raises(ValueError):
        HeartbeatConfig(window=1)
    with pytest.raises(ValueError):
        HeartbeatConfig(window=4, timeout=3)  # timeout + 2 > window
    cfg = HeartbeatConfig(window=8, interval=2, timeout=3)
    assert cfg.window == 8


# ---------------------------------------------------------------------------
# The no-fault path is bit-for-bit a plain run
# ---------------------------------------------------------------------------

def test_no_fault_pa_is_bit_for_bit(workload):
    net, part, values = workload
    ref = solve_pa(net, part, values, SUM, seed=5, async_mode=True)
    driver = RecoveryDriver(net, seed=5)
    res = driver.solve_pa(part, values, SUM)
    assert res.aggregates == ref.aggregates
    assert res.value_at_node == ref.value_at_node
    assert _phase_log(res.ledger) == _phase_log(ref.ledger)
    assert driver.stats.attempts == 1
    assert driver.stats.tainted_attempts == 0
    assert driver.stats.heartbeat_windows == 0
    assert driver.recovery_overhead.phases() == ()
    assert driver.engine.fault_log == []


def test_no_fault_mst_is_bit_for_bit(workload):
    net, _part, _values = workload
    ref = minimum_spanning_tree(net, seed=7, async_mode=True)
    driver = RecoveryDriver(net, seed=7)
    res = driver.minimum_spanning_tree()
    assert res.output == ref.output
    assert _phase_log(res.ledger) == _phase_log(ref.ledger)
    assert driver.stats.attempts == 1
    assert driver.recovery_overhead.phases() == ()


# ---------------------------------------------------------------------------
# Heartbeat detection
# ---------------------------------------------------------------------------

def test_heartbeat_suspects_crashed_node_then_clears(workload):
    net, _part, _values = workload
    plan = FaultPlan(crashes=(CrashEvent(node=5, at=2, recover_at=30),))
    driver = RecoveryDriver(net, faults=plan)
    clean, suspects = driver.run_heartbeat_window()
    assert not clean
    assert 5 in suspects
    # Keep running windows: the global clock walks past recover_at and a
    # window eventually comes back clean.
    for _ in range(16):
        clean, suspects = driver.run_heartbeat_window()
        if clean:
            break
    assert clean and not suspects
    assert driver.stats.heartbeat_windows >= 2
    names = [p.name for p in driver.recovery_overhead.phases()]
    assert names and all(n == "recovery:heartbeat" for n in names)


def test_clean_network_heartbeat_is_clean(workload):
    net, _part, _values = workload
    driver = RecoveryDriver(net)
    clean, suspects = driver.run_heartbeat_window()
    assert clean and not suspects


# ---------------------------------------------------------------------------
# Self-healing PA and MST
# ---------------------------------------------------------------------------

def test_pa_recovers_from_a_crash_with_identical_output(workload):
    net, part, values = workload
    ref = solve_pa(net, part, values, SUM, seed=5, async_mode=True)
    plan = FaultPlan(crashes=(CrashEvent(node=3, at=5, recover_at=60),))
    driver = RecoveryDriver(net, faults=plan, seed=5)
    res = driver.solve_pa(part, values, SUM)
    assert res.aggregates == ref.aggregates
    assert res.value_at_node == ref.value_at_node
    stats = driver.stats
    assert stats.attempts >= 2 and stats.tainted_attempts >= 1
    assert stats.reelections >= 1 and stats.heartbeat_windows >= 1
    # Recovery tax is real and strictly segregated: the main ledger
    # carries no attempt/heartbeat/re-election phases.
    recovery_names = [p.name for p in driver.recovery_overhead.phases()]
    assert any(n == "recovery:heartbeat" for n in recovery_names)
    assert any(n.startswith("attempt0:") for n in recovery_names)
    main_names = [p.name for p in res.ledger.phases()]
    assert not any(
        n.startswith(("attempt", "recovery:", "reelect", "alg9_pick"))
        for n in main_names
    )
    assert sum(p.rounds for p in driver.recovery_overhead.phases()) > 0


def test_mst_recovers_from_two_crashes(workload):
    net, _part, _values = workload
    plan = FaultPlan(crashes=(
        CrashEvent(node=2, at=6, recover_at=70),
        CrashEvent(node=9, at=12, recover_at=55),
    ))
    driver = RecoveryDriver(net, faults=plan, seed=7)
    res = driver.minimum_spanning_tree()
    assert res.output == frozenset(kruskal_mst(net))
    assert driver.stats.tainted_attempts >= 1
    assert driver.stats.reelections >= 1
    assert sum(p.messages for p in driver.recovery_overhead.phases()) > 0


def test_seeded_plan_recovery_converges(workload):
    net, part, values = workload
    ref = solve_pa(net, part, values, SUM, seed=1, async_mode=True)
    plan = FaultPlan.seeded(1234, net.n, crashes=2, crash_window=(3, 20),
                            outage=(8, 25))
    driver = RecoveryDriver(net, faults=plan, seed=1)
    res = driver.solve_pa(part, values, SUM)
    assert res.aggregates == ref.aggregates
    assert res.value_at_node == ref.value_at_node


def test_permanent_crash_exhausts_the_driver(workload):
    net, part, values = workload
    plan = FaultPlan(crashes=(CrashEvent(node=3, at=2, recover_at=None),))
    driver = RecoveryDriver(
        net, faults=plan, max_attempts=2, max_wait_windows=3
    )
    with pytest.raises(RecoveryExhaustedError) as err:
        driver.solve_pa(part, values, SUM)
    assert err.value.stats.attempts >= 1
    assert err.value.stats.last_suspects == (3,)


def test_genuine_bugs_propagate_when_no_faults_observed(workload):
    net, part, _values = workload
    driver = RecoveryDriver(net)
    with pytest.raises(Exception) as err:
        driver.solve_pa(part, [1, 2], SUM)  # wrong values length: a bug
    assert not isinstance(err.value, RecoveryExhaustedError)
    assert driver.stats.tainted_attempts == 0


def test_driver_rejects_bad_limits(workload):
    net, _part, _values = workload
    with pytest.raises(ValueError):
        RecoveryDriver(net, max_attempts=0)


def test_engine_is_shared_across_attempts(workload):
    # The global pulse clock must advance monotonically through tainted
    # attempts and heartbeat windows — that is what locates the fault
    # plan's windows in time.
    net, part, values = workload
    plan = FaultPlan(crashes=(CrashEvent(node=3, at=5, recover_at=60),))
    driver = RecoveryDriver(net, faults=plan, seed=5)
    assert driver.engine.global_pulse == 0
    driver.solve_pa(part, values, SUM)
    assert driver.engine.global_pulse > 60  # walked past the outage
    assert isinstance(driver.engine, AsyncEngine)
