"""The bounded session cache: LRU eviction order, loop-entry pinning.

``PASession(max_entries=...)`` bounds the setup memo for long-lived
sessions (the ROADMAP item).  The policy under test: least-recently-used
eviction, with *coarsened* entries evicted before *pinned* full-prepare
entries (the loop-entry partitions phase loops return to), hits
refreshing recency, and ``max_entries=None`` preserving the historical
unbounded behavior bit for bit.
"""

from __future__ import annotations

import pytest

from repro import PASession
from repro.graphs import grid_2d
from repro.graphs.partitions import Partition
from repro.runtime import partition_fingerprint


def _net():
    return grid_2d(4, 6)


def _partition(net, block: int) -> Partition:
    """Partition a 4x6 grid into vertical strips ``block`` columns wide."""
    assert 6 % block == 0
    part_of = [(v % 6) // block for v in range(net.n)]
    return Partition(part_of)


def _distinct_partitions(net):
    """Six structurally distinct connected partitions of the grid."""
    parts = [_partition(net, b) for b in (1, 2, 3, 6)]
    rows = Partition([v // 6 for v in range(net.n)])
    halves = Partition([0 if v < 12 else 1 for v in range(net.n)])
    return parts + [rows, halves]


def _key(partition):
    return partition_fingerprint(partition, None)


def test_max_entries_validation():
    with pytest.raises(ValueError):
        PASession(_net(), max_entries=0)
    PASession(_net(), max_entries=1)  # smallest legal bound


def test_unbounded_cache_is_the_default():
    net = _net()
    sess = PASession(net, reuse=True)
    for p in _distinct_partitions(net):
        sess.prepare(p)
    assert len(sess._cache) == 6
    assert sess.stats.evictions == 0


def test_lru_eviction_order_over_the_bound():
    net = _net()
    sess = PASession(net, reuse=True, max_entries=3)
    partitions = _distinct_partitions(net)[:5]
    # Mark every full prepare as coarsened so pure LRU order is visible.
    for p in partitions[:3]:
        sess.prepare(p)
        sess._coarsened_keys.add(_key(p))
    # Touch p0 (a hit) so p1 becomes the LRU entry.
    sess.prepare(partitions[0])
    assert sess.stats.cache_hits == 1

    sess.prepare(partitions[3])
    sess._coarsened_keys.add(_key(partitions[3]))
    assert _key(partitions[1]) not in sess._cache      # LRU went first
    assert _key(partitions[0]) in sess._cache          # refreshed by the hit
    assert sess.stats.evictions == 1

    sess.prepare(partitions[4])
    assert _key(partitions[2]) not in sess._cache      # next LRU
    assert {_key(partitions[0]), _key(partitions[3]), _key(partitions[4])} <= set(
        sess._cache
    )
    assert sess.stats.evictions == 2


def test_pinned_entries_survive_while_unpinned_exist():
    net = _net()
    sess = PASession(net, reuse=True, max_entries=2)
    partitions = _distinct_partitions(net)
    pinned = partitions[0]
    sess.prepare(pinned)                                # full prepare: pinned
    coarse_key = _key(partitions[1])
    sess.prepare(partitions[1])
    sess._coarsened_keys.add(coarse_key)                # mark as coarsened

    # Inserting a third entry must evict the *older coarsened* entry, not
    # the even older pinned one.
    sess.prepare(partitions[2])
    assert _key(pinned) in sess._cache
    assert coarse_key not in sess._cache
    assert coarse_key not in sess._coarsened_keys       # bookkeeping follows
    assert sess.stats.evictions == 1

    # A pinned-entry hit is still free after the churn.
    before = sess.stats.cache_hits
    sess.prepare(pinned)
    assert sess.stats.cache_hits == before + 1


def test_all_pinned_falls_back_to_lru_among_pinned():
    net = _net()
    sess = PASession(net, reuse=True, max_entries=2)
    partitions = _distinct_partitions(net)
    for p in partitions[:3]:                            # all full prepares
        sess.prepare(p)
    assert len(sess._cache) == 2
    assert _key(partitions[0]) not in sess._cache       # oldest pinned went
    assert _key(partitions[1]) in sess._cache
    assert _key(partitions[2]) in sess._cache
    assert sess.stats.evictions == 1


def test_bound_of_one_keeps_only_the_newest():
    net = _net()
    sess = PASession(net, reuse=True, max_entries=1)
    partitions = _distinct_partitions(net)
    for p in partitions[:3]:
        sess.prepare(p)
        assert list(sess._cache) == [_key(p)]
    # Re-preparing the survivor is a hit; an older one is a rebuild.
    hits = sess.stats.cache_hits
    sess.prepare(partitions[2])
    assert sess.stats.cache_hits == hits + 1
    prepares = sess.stats.prepares
    sess.prepare(partitions[0])
    assert sess.stats.prepares == prepares + 1


def test_coarsening_chain_respects_bound_and_keeps_loop_entry():
    """A Boruvka-like coarsening chain under a tight bound: the pinned
    loop-entry setup survives; superseded coarsenings are dropped (by
    supersession or by the bound) without breaking the chain."""
    net = _net()
    sess = PASession(net, reuse=True, max_entries=2)
    entry = _partition(net, 1)        # 6 strips — the loop entry
    mid = _partition(net, 2)          # 3 strips (merge-only coarsening)
    top = _partition(net, 3)          # 2 strips (coarsens mid)

    setup = sess.prepare(entry)
    setup_mid = sess.prepare_incremental(setup, mid)
    assert sess.stats.coarsenings >= 1
    setup_top = sess.prepare_incremental(setup_mid, top)
    assert _key(entry) in sess._cache                   # loop entry pinned
    assert len(sess._cache) <= 2
    # The chain still solves: the top setup is usable machinery.
    from repro.core import SUM

    res = sess.solve(setup_top, [1] * net.n, SUM, charge_setup=False)
    assert all(
        res.aggregates[top.part_of[v]] == len(top.members[top.part_of[v]])
        for v in range(net.n)
    )
    # Returning to the loop entry is construction-free.
    hits = sess.stats.cache_hits
    sess.prepare(entry)
    assert sess.stats.cache_hits == hits + 1
