"""Session lifecycle: close semantics, pool hygiene, report freshness.

The bug class under test is the leaked forked worker: every path that
abandons an orchestrator — ``with`` exit, double close, a worker dying
mid-wave, a cached setup aging out of the LRU — must reap or release it
explicitly rather than trusting the garbage collector.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro import PASession
from repro.core import SUM
from repro.core.aggregation import Aggregation
from repro.graphs import random_connected, random_connected_partition

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="sharded backend requires the fork start method",
)


def _fixture(**kw):
    net = random_connected(48, 0.08, seed=11)
    partition = random_connected_partition(net, 8, seed=5)
    session = PASession(net, seed=3, **kw)
    return session, partition


def test_context_manager_closes_local_session():
    with PASession(random_connected(20, 0.15, seed=2), seed=1) as session:
        assert not session._closed
    assert session._closed


def test_close_is_idempotent():
    session, _ = _fixture()
    session.close()
    session.close()
    assert session._closed
    assert session._orchestrator is None


@needs_fork
def test_context_manager_reaps_worker_pool():
    session, partition = _fixture(
        backend="sharded", workers=2, shard_min_n=0
    )
    with session:
        setup = session.prepare(partition)
        session.solve(setup, list(range(session.net.n)), SUM)
        assert session.stats.sharded_solves == 1
        assert session._orchestrator is not None
    assert session._orchestrator is None
    # Doubly-closed sharded session: still a no-op.
    session.close()


@needs_fork
def test_mid_solve_failure_reaps_the_pool():
    session, partition = _fixture(
        backend="sharded", workers=2, shard_min_n=0
    )
    setup = session.prepare(partition)
    values = list(range(session.net.n))
    session.solve(setup, values, SUM)  # builds the orchestrator
    boom = RuntimeError("worker died mid-wave")

    class _Exploding:
        def solve(self, *a, **kw):
            raise boom

        def close(self):
            self.closed = True

    session._orchestrator = _Exploding()
    with pytest.raises(RuntimeError, match="mid-wave"):
        session.solve(setup, values, SUM)
    # The suspect pool was closed AND dropped, not left dangling.
    assert session._orchestrator is None
    # A retry lazily rebuilds a fresh pool and still answers.  (The
    # counter tracks attempts, so the exploded solve counted too.)
    result = session.solve(setup, values, SUM)
    assert session.stats.sharded_solves == 3
    expected = {
        pid: sum(values[v] for v in partition.members[pid])
        for pid in range(partition.num_parts)
    }
    assert result.aggregates == expected
    session.close()


@needs_fork
def test_shard_report_goes_stale_after_in_process_fallback():
    session, partition = _fixture(
        backend="sharded", workers=2, shard_min_n=0
    )
    try:
        setup = session.prepare(partition)
        values = list(range(session.net.n))
        session.solve(setup, values, SUM)
        assert session.shard_report is not None

        # A custom (non-stock) aggregation falls back in-process; the
        # previous sharded report must NOT leak through.
        custom = Aggregation("custom", lambda a, b: a + b)
        session.solve(setup, values, custom)
        assert session.stats.sharded_fallbacks == 1
        assert session.shard_report is None

        # The next sharded solve refreshes it.
        session.solve(setup, values, SUM)
        assert session.shard_report is not None
    finally:
        session.close()


def test_shard_report_none_on_local_backend():
    session, partition = _fixture()
    setup = session.prepare(partition)
    session.solve(setup, list(range(session.net.n)), SUM)
    assert session.shard_report is None


@needs_fork
def test_cache_eviction_releases_shipped_setup():
    session, partition = _fixture(
        backend="sharded", workers=2, shard_min_n=0, reuse=True,
        max_entries=1,
    )
    try:
        values = list(range(session.net.n))
        setup = session.prepare(partition)
        session.solve(setup, values, SUM)
        orch = session._orchestrator
        assert id(setup) in orch._shipped

        # Preparing a second partition evicts the first (max_entries=1);
        # the shipped copy must be released from the workers, not left
        # to age out of their per-process LRUs.
        other = random_connected_partition(session.net, 4, seed=9)
        session.prepare(other)
        assert session.stats.evictions == 1
        assert id(setup) not in orch._shipped
    finally:
        session.close()


@needs_fork
def test_clear_cache_releases_all_shipped_setups():
    session, partition = _fixture(
        backend="sharded", workers=2, shard_min_n=0, reuse=True
    )
    try:
        setup = session.prepare(partition)
        session.solve(setup, list(range(session.net.n)), SUM)
        orch = session._orchestrator
        assert orch._shipped
        session.clear_cache()
        assert not orch._shipped
    finally:
        session.close()


def test_closed_session_keeps_serving_in_process():
    session, partition = _fixture(reuse=True)
    setup = session.prepare(partition)
    session.close()
    values = list(range(session.net.n))
    result = session.solve(setup, values, SUM, charge_setup=False)
    expected = {
        pid: sum(values[v] for v in partition.members[pid])
        for pid in range(partition.num_parts)
    }
    assert result.aggregates == expected
