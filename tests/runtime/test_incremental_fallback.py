"""prepare_incremental must fall back to a full prepare when the new
partition is not a merge-only coarsening of the previous one."""

from __future__ import annotations

from repro import PASession
from repro.core import SUM
from repro.graphs import random_connected, random_connected_partition
from repro.graphs.partitions import Partition


def _session_and_setup():
    net = random_connected(40, 0.08, seed=11)
    partition = random_connected_partition(net, 6, seed=5)
    session = PASession(net, seed=3, reuse=True)
    setup = session.prepare(partition)
    return net, session, setup


def _coarsen_map_of(partition, merges):
    """A merge-only coarsening of ``partition`` collapsing pid pairs."""
    pid_map = list(range(partition.num_parts))
    for a, b in merges:
        pid_map[max(a, b)] = min(a, b)
    # compress labels to 0..k-1
    labels = sorted(set(pid_map))
    rank = {old: new for new, old in enumerate(labels)}
    return Partition([rank[pid_map[p]] for p in partition.part_of])


def test_split_part_falls_back_to_full_prepare():
    net, session, setup = _session_and_setup()
    # A finer tiling necessarily splits some old part across several new
    # parts, so it is not a merge-only coarsening.
    finer = random_connected_partition(net, 9, seed=6)
    assert finer.num_parts > setup.partition.num_parts
    prepares_before = session.stats.prepares
    refined = session.prepare_incremental(setup, finer)
    # Served by a full prepare (the coarsening map rejected the split).
    assert session.stats.prepares == prepares_before + 1
    assert session.stats.coarsenings == 0
    assert refined.partition is finer
    # And it actually solves.
    values = list(range(net.n))
    result = session.solve(refined, values, SUM)
    assert set(result.aggregates) == set(range(finer.num_parts))


def test_coarsening_is_still_served_incrementally():
    """Control: a genuine merge-only coarsening avoids the full prepare."""
    net, session, setup = _session_and_setup()
    merged = _coarsen_map_of(setup.partition, [(0, 1)])
    prepares_before = session.stats.prepares
    coarse = session.prepare_incremental(setup, merged)
    assert session.stats.coarsenings == 1
    # A coarsening may still rebuild if re-verification rejects it; either
    # way it must not be a *silent* full prepare.
    if session.stats.rebuilds == 0:
        assert session.stats.prepares == prepares_before
    assert coarse.partition is merged


def test_mismatched_node_sets_fall_back():
    net, session, setup = _session_and_setup()
    other_net = random_connected(44, 0.08, seed=12)
    other_partition = random_connected_partition(other_net, 6, seed=5)
    # Different node count: the coarsening map must reject outright; the
    # session serves a fresh full prepare for the new partition's nodes.
    assert len(other_partition.part_of) != len(setup.partition.part_of)
    prepares_before = session.stats.prepares
    session2 = PASession(other_net, seed=3, reuse=True)
    fresh = session2.prepare_incremental(setup, other_partition)
    assert session2.stats.prepares == 1
    assert session2.stats.coarsenings == 0
    assert fresh.partition is other_partition
    # The original session's stats are untouched by the other session.
    assert session.stats.prepares == prepares_before


def test_fallback_result_matches_plain_prepare():
    """The fallback's machinery is the same as a from-scratch prepare."""
    net, session, setup = _session_and_setup()
    finer = random_connected_partition(net, 9, seed=6)
    values = list(range(net.n))

    via_incremental = session.prepare_incremental(setup, finer)
    got = session.solve(via_incremental, values, SUM)

    control = PASession(net, seed=3)
    control_setup = control.prepare(finer)
    want = control.solve(control_setup, values, SUM)

    assert got.aggregates == want.aggregates
    assert got.value_at_node == want.value_at_node
